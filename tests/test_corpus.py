"""Tests for the content-addressed trace corpus (workloads.corpus)."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads import LoopRegion, StreamRegion, SyntheticTrace
from repro.workloads.corpus import (
    ENV_CORPUS_DIR,
    TraceCorpus,
    active_corpus,
    file_digest,
    set_active_corpus,
)
from repro.workloads.tracefile import save_trace


def make_gen(seed=3, name="looper"):
    return SyntheticTrace(
        [(LoopRegion(0, 64 * 64), 1.0)], seed=seed, name=name, instr_per_ref=5.0
    )


@pytest.fixture
def corpus(tmp_path):
    return TraceCorpus(tmp_path / "corpus", create=True)


class TestIngestion:
    def test_add_list_load_roundtrip(self, corpus, tmp_path):
        path = save_trace(tmp_path / "t", make_gen(), 500)
        entry = corpus.add(path)
        assert entry.name == "looper"
        assert entry.length == 500
        assert entry.digest == file_digest(path)
        assert corpus.names() == ("looper",)
        replay = corpus.load(entry.digest)
        a1, _ = make_gen().batch(500)
        a2, _ = replay.batch(500)
        assert (a1 == a2).all()

    def test_dedupe_by_content(self, corpus, tmp_path):
        p1 = save_trace(tmp_path / "a", make_gen(), 300)
        p2 = save_trace(tmp_path / "b", make_gen(), 300)  # same stream
        e1 = corpus.add(p1)
        e2 = corpus.add(p2)
        assert e1.digest == e2.digest
        assert len(corpus) == 1

    def test_capture_straight_into_corpus(self, corpus):
        entry = corpus.capture(make_gen(), 400, name="direct")
        assert entry.name == "direct"
        assert entry.length == 400
        assert corpus.object_path(entry.digest).exists()

    def test_add_rejects_broken_archive(self, corpus, tmp_path):
        bad = tmp_path / "bad.npz"
        bad.write_bytes(b"not a trace")
        with pytest.raises(WorkloadError):
            corpus.add(bad)
        assert len(corpus) == 0  # nothing ingested

    def test_missing_manifest_requires_create(self, tmp_path):
        with pytest.raises(WorkloadError, match="corpus"):
            TraceCorpus(tmp_path / "nope")

    def test_reopen_reads_manifest(self, corpus, tmp_path):
        corpus.capture(make_gen(), 100, name="persisted")
        reopened = TraceCorpus(corpus.root)
        assert reopened.names() == ("persisted",)


class TestLookup:
    def test_lookup_by_name_prefix_and_digest(self, corpus):
        entry = corpus.capture(make_gen(), 200, name="alpha")
        assert corpus.get("alpha").digest == entry.digest
        assert corpus.get(entry.digest).digest == entry.digest
        assert corpus.get(entry.digest[:12]).digest == entry.digest

    def test_unknown_name_suggests_nearest(self, corpus):
        corpus.capture(make_gen(), 200, name="alpha")
        with pytest.raises(WorkloadError, match="did you mean 'alpha'"):
            corpus.get("alpah")

    def test_ambiguous_prefix_rejected(self, corpus):
        e1 = corpus.capture(make_gen(name="g-one"), 200, name="one")
        e2 = corpus.capture(make_gen(name="g-two"), 200, name="two")
        assert e1.digest != e2.digest  # distinct content, distinct address
        with pytest.raises(WorkloadError):
            corpus.get(e1.digest[:4])  # below the minimum prefix length

    def test_remove(self, corpus):
        entry = corpus.capture(make_gen(), 200, name="gone")
        corpus.remove("gone")
        assert len(corpus) == 0
        assert not corpus.object_path(entry.digest).exists()


class TestVerify:
    def test_clean_corpus_verifies(self, corpus):
        corpus.capture(make_gen(name="g-a"), 300, name="a")
        corpus.capture(make_gen(name="g-b"), 300, name="b")
        assert len(corpus) == 2
        assert corpus.verify() == []

    def test_truncated_object_caught(self, corpus):
        entry = corpus.capture(make_gen(), 300, name="trunc")
        obj = corpus.object_path(entry.digest)
        data = obj.read_bytes()
        obj.write_bytes(data[: len(data) // 2])
        problems = corpus.verify()
        assert len(problems) == 1
        assert "trunc" in problems[0]

    def test_content_flip_caught(self, corpus):
        entry = corpus.capture(make_gen(), 300, name="flip")
        obj = corpus.object_path(entry.digest)
        data = bytearray(obj.read_bytes())
        data[len(data) // 2] ^= 0xFF
        obj.write_bytes(bytes(data))
        problems = corpus.verify()
        assert problems  # digest mismatch or checksum failure
        assert any("flip" in p for p in problems)

    def test_missing_object_caught(self, corpus):
        entry = corpus.capture(make_gen(), 300, name="lost")
        corpus.object_path(entry.digest).unlink()
        problems = corpus.verify()
        assert len(problems) == 1
        assert "lost" in problems[0]


class TestActiveCorpus:
    def test_module_global_channel(self, corpus):
        previous = set_active_corpus(corpus)
        try:
            assert active_corpus() is corpus
        finally:
            set_active_corpus(previous)

    def test_env_channel(self, corpus, monkeypatch):
        corpus.capture(make_gen(), 100, name="via-env")
        monkeypatch.setenv(ENV_CORPUS_DIR, str(corpus.root))
        found = active_corpus()
        assert found is not None
        assert found.names() == ("via-env",)

    def test_required_without_corpus_raises(self, monkeypatch):
        monkeypatch.delenv(ENV_CORPUS_DIR, raising=False)
        previous = set_active_corpus(None)
        try:
            with pytest.raises(WorkloadError):
                active_corpus(required=True)
        finally:
            set_active_corpus(previous)


class TestTraceWorkloadSpec:
    """The exec-layer trace kind: digests as cache-key identity."""

    def _stocked(self, corpus):
        e1 = corpus.capture(make_gen(seed=1, name="g1"), 2000, name="g1")
        e2 = corpus.capture(
            SyntheticTrace(
                [(StreamRegion(1 << 20, 1 << 22), 1.0)],
                seed=2, name="g2", instr_per_ref=4.0,
            ),
            2000,
            name="g2",
        )
        return e1, e2

    def test_spec_roundtrip_and_label(self, corpus):
        from repro.exec.jobs import WorkloadSpec

        e1, e2 = self._stocked(corpus)
        spec = WorkloadSpec.trace((e1.digest, e2.digest), ncores=2)
        again = WorkloadSpec.from_dict(spec.to_dict())
        assert again == spec
        assert spec.label.startswith("trace:")
        assert e1.digest[:12] in spec.label

    def test_digest_count_must_match_cores(self, corpus):
        from repro.exec.jobs import WorkloadSpec

        e1, e2 = self._stocked(corpus)
        with pytest.raises(WorkloadError):
            WorkloadSpec.trace((e1.digest, e2.digest), ncores=4)

    def test_build_resolves_active_corpus(self, corpus, small_system):
        from repro.exec.jobs import WorkloadSpec

        e1, _ = self._stocked(corpus)
        spec = WorkloadSpec.trace((e1.digest,), ncores=2)
        previous = set_active_corpus(corpus)
        try:
            workload = spec.build(small_system.scale_context())
        finally:
            set_active_corpus(previous)
        assert len(workload.generators) == 2
        assert workload.benchmarks == ("g1", "g1")

    def test_build_without_corpus_raises(self, monkeypatch, corpus):
        from repro.exec.jobs import WorkloadSpec

        e1, _ = self._stocked(corpus)
        monkeypatch.delenv(ENV_CORPUS_DIR, raising=False)
        previous = set_active_corpus(None)
        try:
            with pytest.raises(WorkloadError):
                WorkloadSpec.trace((e1.digest,), ncores=2).build(None)
        finally:
            set_active_corpus(previous)
