"""Public-API surface tests: exports resolve, docs exist, versions sane."""

import importlib
import inspect

import pytest

import repro

SUBPACKAGES = (
    "repro.cache",
    "repro.hierarchy",
    "repro.inclusion",
    "repro.core",
    "repro.energy",
    "repro.workloads",
    "repro.sim",
    "repro.analysis",
    "repro.testing",
    "repro.cli",
)


class TestExports:
    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_top_level_all_resolves(self):
        missing = object()
        for name in repro.__all__:
            assert getattr(repro, name, missing) is not missing, name

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_subpackages_import(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} needs a module docstring"

    @pytest.mark.parametrize(
        "module_name",
        [m for m in SUBPACKAGES if m not in ("repro.cli", "repro.testing")],
    )
    def test_subpackage_all_resolves(self, module_name):
        module = importlib.import_module(module_name)
        missing = object()
        for name in getattr(module, "__all__", []):
            assert getattr(module, name, missing) is not missing, f"{module_name}.{name}"


class TestDocumentation:
    def _public_members(self, module):
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                yield name, obj

    @pytest.mark.parametrize("module_name", SUBPACKAGES[:-2])
    def test_every_public_item_documented(self, module_name):
        module = importlib.import_module(module_name)
        undocumented = [
            name for name, obj in self._public_members(module) if not obj.__doc__
        ]
        assert not undocumented, f"{module_name}: missing docstrings on {undocumented}"

    def test_policy_classes_documented(self):
        from repro.core.policies import make_policy, policy_names

        for name in policy_names():
            policy = make_policy(name)
            assert type(policy).__doc__, name


class TestRegistryConsistency:
    def test_every_registered_policy_builds_and_binds(self):
        from repro.core.policies import make_policy, policy_names
        from repro.errors import ConfigurationError
        from repro.testing import build_micro

        for name in policy_names():
            try:
                build_micro(name)
            except ConfigurationError:
                # hybrid-placement policies require a hybrid LLC
                build_micro(name, sram_ways=4)

    def test_policy_sets_are_registered(self):
        from repro.core.policies import (
            HOMOGENEOUS_POLICIES,
            HYBRID_POLICIES,
            LAP_VARIANTS,
            LHYBRID_STAGES,
            make_policy,
        )

        for group in (HOMOGENEOUS_POLICIES, HYBRID_POLICIES, LAP_VARIANTS, LHYBRID_STAGES):
            for name in group:
                assert make_policy(name) is not None

    def test_aliases_resolve_to_same_class(self):
        from repro.core.policies import make_policy

        assert type(make_policy("noni")) is type(make_policy("non-inclusive"))
        assert type(make_policy("ex")) is type(make_policy("exclusive"))


class TestQuickstartDocExample:
    def test_readme_quickstart_snippet(self):
        from repro import SystemConfig, make_workload, simulate

        system = SystemConfig.scaled(ncores=2, llc_kb=32, l2_kb=4)
        workload = make_workload("mcf", system)
        result = simulate(system, "lap", workload, refs_per_core=1000)
        assert result.epi > 0
        assert result.mpki > 0
