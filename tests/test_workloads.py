"""Tests for traces, regions, synthetic benchmarks, and mixes."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads import (
    PAPER_BENCHMARK_ORDER,
    PARSEC_ORDER,
    TABLE3_MIXES,
    ConcatTrace,
    FixedTrace,
    HotRegion,
    LoopRegion,
    MemRef,
    RandomRegion,
    ScaleContext,
    StreamRegion,
    SyntheticTrace,
    WriteBurstRegion,
    benchmark_names,
    build_benchmark,
    get_benchmark,
    get_parsec,
    make_duplicate,
    make_multiprogrammed,
    make_multithreaded,
    make_table3_mix,
    random_mixes,
)

CTX = ScaleContext(l1_bytes=2048, l2_bytes=8192, llc_bytes=131072)


class TestFixedTrace:
    def test_batches_in_order(self):
        t = FixedTrace([MemRef(0), MemRef(64, True), MemRef(128)])
        addrs, writes = t.batch(2)
        assert addrs.tolist() == [0, 64]
        assert writes.tolist() == [False, True]

    def test_exhaustion_raises(self):
        t = FixedTrace([MemRef(0)])
        t.batch(1)
        with pytest.raises(WorkloadError):
            t.batch(1)

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            FixedTrace([])

    def test_refs_iterator(self):
        t = FixedTrace([MemRef(0), MemRef(64)])
        refs = list(t.refs(2))
        assert refs[1].addr == 64


class TestConcatTrace:
    def test_phases_in_sequence(self):
        a = FixedTrace([MemRef(0)] * 4)
        b = FixedTrace([MemRef(64)] * 4)
        t = ConcatTrace([(a, 2), (b, 2)])
        addrs, _ = t.batch(4)
        assert addrs.tolist() == [0, 0, 64, 64]

    def test_wraps_around(self):
        a = FixedTrace([MemRef(0)] * 8)
        b = FixedTrace([MemRef(64)] * 8)
        t = ConcatTrace([(a, 1), (b, 1)])
        addrs, _ = t.batch(4)
        assert addrs.tolist() == [0, 64, 0, 64]


class TestRegions:
    def _rng(self):
        return np.random.default_rng(7)

    def test_loop_region_cycles(self):
        r = LoopRegion(base=0, size_bytes=4 * 64)
        addrs, writes = r.sample(self._rng(), 10)
        assert addrs.tolist()[:5] == [0, 64, 128, 192, 0]
        assert not writes.any()

    def test_loop_region_respects_base(self):
        base = 1 << 30
        r = LoopRegion(base=base, size_bytes=2 * 64)
        addrs, _ = r.sample(self._rng(), 4)
        assert set(addrs.tolist()) == {base, base + 64}

    def test_loop_region_stride(self):
        r = LoopRegion(base=0, size_bytes=8 * 64, stride_blocks=2)
        addrs, _ = r.sample(self._rng(), 4)
        assert addrs.tolist() == [0, 128, 256, 384]

    def test_stream_region_never_revisits_before_wrap(self):
        r = StreamRegion(base=0, size_bytes=1000 * 64)
        addrs, _ = r.sample(self._rng(), 500)
        assert len(set(addrs.tolist())) == 500

    def test_stream_rw_pair_emits_read_then_write(self):
        r = StreamRegion(base=0, size_bytes=1000 * 64, rw_pair=True)
        addrs, writes = r.sample(self._rng(), 6)
        assert addrs.tolist() == [0, 0, 64, 64, 128, 128]
        assert writes.tolist() == [False, True, False, True, False, True]

    def test_stream_rw_pair_split_across_batches(self):
        r = StreamRegion(base=0, size_bytes=1000 * 64, rw_pair=True)
        a1, w1 = r.sample(self._rng(), 3)
        a2, w2 = r.sample(self._rng(), 3)
        combined = list(zip(a1.tolist() + a2.tolist(), w1.tolist() + w2.tolist()))
        assert combined[2] == (64, False) and combined[3] == (64, True)

    def test_random_region_in_range(self):
        r = RandomRegion(base=128, size_bytes=16 * 64, write_prob=0.5)
        addrs, _ = r.sample(self._rng(), 200)
        assert addrs.min() >= 128
        assert addrs.max() < 128 + 16 * 64

    def test_random_region_write_fraction(self):
        r = RandomRegion(base=0, size_bytes=64 * 64, write_prob=0.3)
        _, writes = r.sample(self._rng(), 5000)
        assert 0.25 < writes.mean() < 0.35

    def test_write_burst_repeats_block(self):
        r = WriteBurstRegion(base=0, size_bytes=64 * 64, burst=4)
        addrs, _ = r.sample(self._rng(), 8)
        assert len(set(addrs.tolist()[:4])) == 1
        assert len(set(addrs.tolist()[4:8])) == 1

    def test_block_alignment_everywhere(self):
        for region in (
            LoopRegion(0, 640),
            StreamRegion(0, 640),
            RandomRegion(0, 640),
            HotRegion(0, 640),
            WriteBurstRegion(0, 640),
        ):
            addrs, _ = region.sample(self._rng(), 50)
            assert (addrs % 64 == 0).all()

    def test_invalid_parameters_rejected(self):
        with pytest.raises(WorkloadError):
            LoopRegion(0, 32)  # smaller than one block
        with pytest.raises(WorkloadError):
            RandomRegion(0, 640, write_prob=1.5)
        with pytest.raises(WorkloadError):
            WriteBurstRegion(0, 640, burst=0)


class TestSyntheticTrace:
    def test_deterministic_per_seed(self):
        def build():
            return SyntheticTrace(
                [(LoopRegion(0, 64 * 64), 0.5), (RandomRegion(1 << 20, 64 * 64), 0.5)],
                seed=11,
            )

        a1, w1 = build().batch(500)
        a2, w2 = build().batch(500)
        assert (a1 == a2).all() and (w1 == w2).all()

    def test_different_seeds_differ(self):
        def build(seed):
            return SyntheticTrace([(RandomRegion(0, 64 * 64), 1.0)], seed=seed)

        a1, _ = build(1).batch(200)
        a2, _ = build(2).batch(200)
        assert (a1 != a2).any()

    def test_region_weights_respected(self):
        t = SyntheticTrace(
            [(LoopRegion(0, 64 * 64), 0.9), (RandomRegion(1 << 30, 64 * 64), 0.1)],
            seed=3,
        )
        addrs, _ = t.batch(5000)
        low = (addrs < (1 << 30)).mean()
        assert 0.85 < low < 0.95

    def test_empty_regions_rejected(self):
        with pytest.raises(WorkloadError):
            SyntheticTrace([], seed=0)

    def test_nonpositive_batch_rejected(self):
        t = SyntheticTrace([(LoopRegion(0, 640), 1.0)], seed=0)
        with pytest.raises(WorkloadError):
            t.batch(0)


class TestScaleContext:
    def test_region_size_block_rounded(self):
        assert CTX.region_size(0.25) % 64 == 0
        assert CTX.region_size(3.0) == 3 * 8192

    def test_rejects_inverted_capacities(self):
        with pytest.raises(WorkloadError):
            ScaleContext(l1_bytes=8192, l2_bytes=2048, llc_bytes=1024)


class TestSpecBenchmarks:
    def test_all_thirteen_registered(self):
        assert len(benchmark_names()) == 13
        assert set(benchmark_names()) == set(PAPER_BENCHMARK_ORDER)

    @pytest.mark.parametrize("name", PAPER_BENCHMARK_ORDER)
    def test_benchmark_builds_and_generates(self, name):
        trace = build_benchmark(name, CTX, seed=1)
        addrs, writes = trace.batch(256)
        assert len(addrs) == 256
        assert (addrs % 64 == 0).all()

    def test_paper_aliases_resolve(self):
        assert get_benchmark("omn").name == "omnetpp"
        assert get_benchmark("xalan").name == "xalancbmk"
        assert get_benchmark("lib").name == "libquantum"
        assert get_benchmark("Gems").name == "GemsFDTD"

    def test_unknown_benchmark_raises(self):
        with pytest.raises(WorkloadError):
            get_benchmark("gcc")

    def test_base_offset_disjoint(self):
        t0 = build_benchmark("mcf", CTX, seed=1, base=0)
        t1 = build_benchmark("mcf", CTX, seed=1, base=1 << 40)
        a0, _ = t0.batch(200)
        a1, _ = t1.batch(200)
        assert set(a0.tolist()).isdisjoint(set(a1.tolist()))

    def test_descriptions_present(self):
        for name in benchmark_names():
            assert len(get_benchmark(name).description) > 20


class TestParsec:
    def test_all_ten_registered(self):
        assert len(PARSEC_ORDER) == 10

    @pytest.mark.parametrize("name", PARSEC_ORDER)
    def test_threads_build(self, name):
        threads = get_parsec(name).build_threads(CTX, seed=1, nthreads=4)
        assert len(threads) == 4
        for t in threads:
            addrs, _ = t.batch(64)
            assert len(addrs) == 64

    def test_threads_share_addresses(self):
        threads = get_parsec("canneal").build_threads(CTX, seed=1, nthreads=2)
        a0 = set(threads[0].batch(2000)[0].tolist())
        a1 = set(threads[1].batch(2000)[0].tolist())
        assert a0 & a1, "threads must share some region addresses"

    def test_private_regions_disjoint_between_threads(self):
        threads = get_parsec("blackscholes").build_threads(CTX, seed=1, nthreads=2)
        from repro.workloads.spec import REGION_SPAN

        a0 = [a for a in threads[0].batch(2000)[0].tolist() if a >= 8 * REGION_SPAN]
        a1 = [a for a in threads[1].batch(2000)[0].tolist() if a >= 8 * REGION_SPAN]
        assert a0 and a1
        assert set(a0).isdisjoint(a1)

    def test_unknown_parsec_raises(self):
        with pytest.raises(WorkloadError):
            get_parsec("raytrace2")


class TestMixes:
    def test_table3_complete(self):
        assert len(TABLE3_MIXES) == 10
        for benchmarks in TABLE3_MIXES.values():
            assert len(benchmarks) == 4

    def test_table3_wh1_matches_paper(self):
        assert TABLE3_MIXES["WH1"] == ("omnetpp", "xalancbmk", "zeusmp", "libquantum")

    def test_make_table3_mix(self):
        wl = make_table3_mix("WL3", CTX, seed=0)
        assert wl.ncores == 4
        assert wl.benchmarks == ("GemsFDTD", "GemsFDTD", "GemsFDTD", "mcf")

    def test_unknown_mix_raises(self):
        with pytest.raises(WorkloadError):
            make_table3_mix("WL9", CTX)

    def test_multiprogrammed_cores_disjoint(self):
        wl = make_multiprogrammed(["mcf", "mcf"], CTX, seed=0)
        a0 = set(wl.generators[0].batch(500)[0].tolist())
        a1 = set(wl.generators[1].batch(500)[0].tolist())
        assert a0.isdisjoint(a1)

    def test_duplicate_builder(self):
        wl = make_duplicate("astar", CTX, ncores=4, seed=0)
        assert wl.benchmarks == ("astar",) * 4

    def test_multithreaded_kind(self):
        wl = make_multithreaded("dedup", CTX, nthreads=4, seed=0)
        assert wl.kind == "multithreaded"
        assert wl.ncores == 4

    def test_random_mixes_deterministic(self):
        assert random_mixes(10, seed=5) == random_mixes(10, seed=5)
        assert random_mixes(10, seed=5) != random_mixes(10, seed=6)

    def test_random_mixes_draw_from_pool(self):
        pool = {"mcf", "lbm"}
        mixes = random_mixes(20, seed=1, benchmarks=sorted(pool))
        assert all(set(m) <= pool for m in mixes)
