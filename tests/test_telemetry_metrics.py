"""Tests for the metrics registry (repro.telemetry.metrics)."""

import json

import pytest

from repro.errors import TelemetryError
from repro.telemetry.metrics import (
    BUCKET_BOUNDS,
    BUCKET_LABELS,
    OVERFLOW_LABEL,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)


@pytest.fixture
def registry():
    """A fresh registry installed as the process default, restored after."""
    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    yield fresh
    set_registry(previous)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("jobs")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative_increment(self):
        c = Counter("jobs")
        with pytest.raises(TelemetryError, match="jobs"):
            c.inc(-1)
        assert c.value == 0


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("depth")
        g.set(3)
        g.add(-1.5)
        assert g.value == 1.5


class TestHistogram:
    def test_tracks_count_sum_min_max_mean(self):
        h = Histogram("wall_s")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 6.0
        assert h.min == 1.0 and h.max == 3.0
        assert h.mean == 2.0

    def test_empty_mean_is_zero(self):
        assert Histogram("x").mean == 0.0

    def test_bucket_labels_are_fixed_log_ladder(self):
        # The ladder is a module constant: the same observation always
        # lands in the same named bucket, on any machine, at any time.
        h = Histogram("x")
        h.observe(0.0015)  # first bound >= 0.0015 is 2e-3
        h.observe(0.0015)
        h.observe(7_000_000)  # first bound >= 7e6 is 1e7
        assert h.buckets() == {"2e-03": 2, "1e+07": 1}

    def test_overflow_bucket(self):
        h = Histogram("x")
        h.observe(1e12)  # beyond the 1e9 top of the ladder
        assert h.buckets() == {OVERFLOW_LABEL: 1}

    def test_buckets_in_ladder_order(self):
        h = Histogram("x")
        for v in (5e8, 1e-9, 42, 1e15):
            h.observe(v)
        labels = list(h.buckets())
        ladder_positions = [BUCKET_LABELS.index(lb) for lb in labels[:-1]]
        assert ladder_positions == sorted(ladder_positions)
        assert labels[-1] == OVERFLOW_LABEL

    def test_rejects_negative_and_nan(self):
        h = Histogram("x")
        with pytest.raises(TelemetryError):
            h.observe(-0.1)
        with pytest.raises(TelemetryError):
            h.observe(float("nan"))

    def test_bounds_are_sorted_and_wide(self):
        assert list(BUCKET_BOUNDS) == sorted(BUCKET_BOUNDS)
        assert BUCKET_BOUNDS[0] == 1e-9 and BUCKET_BOUNDS[-1] == 5e9


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        assert r.histogram("h") is r.histogram("h")
        assert len(r) == 2

    def test_kind_mismatch_raises(self):
        r = MetricsRegistry()
        r.counter("a")
        with pytest.raises(TelemetryError, match="Counter"):
            r.gauge("a")
        with pytest.raises(TelemetryError, match="Counter"):
            r.histogram("a")

    def test_rejects_bad_names(self):
        r = MetricsRegistry()
        with pytest.raises(TelemetryError):
            r.counter("")
        with pytest.raises(TelemetryError):
            r.counter(None)

    def test_reset_drops_everything(self):
        r = MetricsRegistry()
        r.counter("a").inc()
        r.reset()
        assert len(r) == 0
        assert r.counter("a").value == 0

    def test_snapshot_groups_by_kind(self):
        r = MetricsRegistry()
        r.counter("jobs").inc(2)
        r.gauge("depth").set(1.5)
        r.histogram("wall").observe(0.5)
        snap = r.snapshot()
        assert snap["counters"] == {"jobs": 2}
        assert snap["gauges"] == {"depth": 1.5}
        assert snap["histograms"]["wall"]["count"] == 1
        assert snap["histograms"]["wall"]["buckets"] == {"5e-01": 1}

    def test_snapshot_json_round_trips(self):
        r = MetricsRegistry()
        r.counter("jobs").inc()
        assert json.loads(r.snapshot_json()) == r.snapshot()

    def test_set_registry_swaps_default(self):
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            set_registry(previous)
        assert get_registry() is previous

    def test_set_registry_type_checked(self):
        with pytest.raises(TelemetryError):
            set_registry("not a registry")


class TestBuiltinReporting:
    """The simulator and hierarchy report into the default registry."""

    def test_simulate_reports_run_and_access_counters(self, registry, small_system):
        from repro import make_workload, simulate

        workload = make_workload("mcf", small_system, seed=1)
        result = simulate(small_system, "lap", workload, refs_per_core=300)
        snap = registry.snapshot()
        assert snap["counters"]["sim.runs"] == 1
        assert snap["counters"]["sim.accesses"] == result.hier.accesses
        assert snap["counters"]["hierarchy.runs"] == 1
        assert snap["counters"]["hierarchy.accesses"] == result.hier.accesses
        assert snap["histograms"]["sim.wall_s"]["count"] == 1
        assert snap["histograms"]["sim.accesses_per_s"]["count"] == 1

    def test_reporting_is_edge_triggered(self, registry, small_system):
        # Two runs -> exactly two observations, not one per access.
        from repro import make_workload, simulate

        for seed in (1, 2):
            workload = make_workload("mcf", small_system, seed=seed)
            simulate(small_system, "lap", workload, refs_per_core=200)
        snap = registry.snapshot()
        assert snap["counters"]["sim.runs"] == 2
        assert snap["histograms"]["sim.wall_s"]["count"] == 2


class TestBucketEdges:
    """Values exactly on the 1-2-5 ladder bounds must label stably:
    bisect_left means an exact bound lands in its own bucket, the next
    representable value above rolls to the following label."""

    def observe_label(self, value):
        h = Histogram("edge")
        h.observe(value)
        (label,) = h.buckets()
        return label

    def test_exact_bound_lands_in_its_own_bucket(self):
        assert self.observe_label(0.002) == "2e-03"
        # Every ladder bound, exactly: its own label, never the next.
        for bound, label in zip(BUCKET_BOUNDS, BUCKET_LABELS):
            assert self.observe_label(bound) == label

    def test_just_above_bound_rolls_to_next_label(self):
        import math

        for i in (0, 10, 30, len(BUCKET_BOUNDS) - 2):
            above = math.nextafter(BUCKET_BOUNDS[i], float("inf"))
            assert self.observe_label(above) == BUCKET_LABELS[i + 1]

    def test_zero_lands_in_first_bucket(self):
        assert self.observe_label(0.0) == BUCKET_LABELS[0] == "1e-09"

    def test_top_bound_exact_is_not_overflow(self):
        assert self.observe_label(BUCKET_BOUNDS[-1]) == BUCKET_LABELS[-1]

    def test_above_top_bound_overflows(self):
        import math

        above = math.nextafter(BUCKET_BOUNDS[-1], float("inf"))
        assert self.observe_label(above) == OVERFLOW_LABEL
        assert self.observe_label(1e12) == OVERFLOW_LABEL

    def test_negative_still_rejected(self):
        h = Histogram("edge")
        with pytest.raises(TelemetryError):
            h.observe(-1e-12)


class TestConcurrency:
    """inc()/observe() are read-modify-writes: without per-instrument
    locking, concurrent updates lose writes and snapshots can see a
    count that disagrees with the bucket totals."""

    N_THREADS = 8
    PER_THREAD = 2000

    def _hammer(self, fn):
        import threading

        errors = []

        def worker():
            try:
                for _ in range(self.PER_THREAD):
                    fn()
            except Exception as exc:  # surfaced after join
                errors.append(exc)

        threads = [threading.Thread(target=worker)
                   for _ in range(self.N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors

    def test_concurrent_counter_incs_are_exact(self):
        r = MetricsRegistry()
        self._hammer(lambda: r.counter("jobs").inc())
        assert r.counter("jobs").value == self.N_THREADS * self.PER_THREAD

    def test_concurrent_gauge_adds_are_exact(self):
        r = MetricsRegistry()
        self._hammer(lambda: r.gauge("depth").add(1))
        assert r.gauge("depth").value == self.N_THREADS * self.PER_THREAD

    def test_concurrent_histogram_observes_are_exact(self):
        r = MetricsRegistry()
        self._hammer(lambda: r.histogram("wall").observe(0.5))
        h = r.histogram("wall")
        assert h.count == self.N_THREADS * self.PER_THREAD
        assert sum(h.buckets().values()) == h.count

    def test_snapshot_stays_consistent_under_concurrent_writes(self):
        import threading

        r = MetricsRegistry()
        stop = threading.Event()
        errors = []

        def writer(n):
            try:
                while not stop.is_set():
                    r.counter(f"c{n}").inc()
                    r.histogram("h").observe(0.25)
            except Exception as exc:
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(n,))
                   for n in range(4)]
        for t in threads:
            t.start()
        try:
            for _ in range(200):
                snap = r.snapshot()
                json.dumps(snap)  # JSON-safe at any instant
                hist = snap["histograms"].get("h")
                if hist and hist["count"]:
                    # the headline invariant: buckets account for count
                    assert sum(hist["buckets"].values()) == hist["count"]
                    assert hist["sum"] == pytest.approx(
                        hist["count"] * 0.25
                    )
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=60)
        assert not errors
