"""Unit tests for replacement policies (LRU/MRU/Random/SRRIP/loop-aware)."""

import pytest

from repro.cache import CacheBlock
from repro.cache.replacement import (
    LoopAwarePolicy,
    LRUPolicy,
    MRUPolicy,
    RandomPolicy,
    SRRIPPolicy,
)


def blocks(n=4, tech="sram"):
    return [CacheBlock(w, tech) for w in range(n)]


def fill_all(bs, start_now=1):
    for i, b in enumerate(bs):
        b.fill(i, dirty=False, loop_bit=False, now=start_now + i)


class TestLRU:
    def test_prefers_invalid(self):
        bs = blocks()
        fill_all(bs)
        bs[2].reset()
        assert LRUPolicy().victim(bs, 100) is bs[2]

    def test_evicts_oldest(self):
        bs = blocks()
        fill_all(bs)
        assert LRUPolicy().victim(bs, 100) is bs[0]

    def test_on_hit_refreshes(self):
        bs = blocks()
        fill_all(bs)
        LRUPolicy().on_hit(bs[0], 99)
        assert LRUPolicy().victim(bs, 100) is bs[1]

    def test_single_block(self):
        bs = blocks(1)
        fill_all(bs)
        assert LRUPolicy().victim(bs, 10) is bs[0]


class TestMRU:
    def test_evicts_newest(self):
        bs = blocks()
        fill_all(bs)
        assert MRUPolicy().victim(bs, 100) is bs[-1]

    def test_prefers_invalid(self):
        bs = blocks()
        fill_all(bs)
        bs[1].reset()
        assert MRUPolicy().victim(bs, 100) is bs[1]


class TestRandom:
    def test_prefers_invalid(self):
        bs = blocks()
        fill_all(bs)
        bs[3].reset()
        assert RandomPolicy(seed=0).victim(bs, 10) is bs[3]

    def test_deterministic_per_seed(self):
        bs = blocks()
        fill_all(bs)
        picks_a = [RandomPolicy(seed=7).victim(bs, i) for i in range(10)]
        picks_b = [RandomPolicy(seed=7).victim(bs, i) for i in range(10)]
        assert picks_a == picks_b

    def test_only_valid_blocks_chosen(self):
        bs = blocks()
        fill_all(bs)
        pol = RandomPolicy(seed=3)
        assert all(pol.victim(bs, i).valid for i in range(20))


class TestSRRIP:
    def test_insert_uses_long_interval(self):
        pol = SRRIPPolicy(bits=2)
        b = CacheBlock(0)
        b.fill(1, dirty=False, loop_bit=False, now=1)
        pol.on_insert(b, 1)
        assert b.rrpv == 2  # max_rrpv - 1

    def test_hit_promotes_to_zero(self):
        pol = SRRIPPolicy(bits=2)
        b = CacheBlock(0)
        pol.on_insert(b, 1)
        pol.on_hit(b, 2)
        assert b.rrpv == 0

    def test_victim_is_distant_block(self):
        pol = SRRIPPolicy(bits=2)
        bs = blocks()
        fill_all(bs)
        for b in bs:
            pol.on_insert(b, 1)
        bs[2].rrpv = 3
        assert pol.victim(bs, 5) is bs[2]

    def test_aging_converges(self):
        pol = SRRIPPolicy(bits=2)
        bs = blocks()
        fill_all(bs)
        for b in bs:
            b.rrpv = 0
        victim = pol.victim(bs, 5)
        assert victim in bs
        assert victim.rrpv >= pol.max_rrpv

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            SRRIPPolicy(bits=0)


class TestLoopAware:
    def test_prefers_invalid_first(self):
        bs = blocks()
        fill_all(bs)
        bs[1].reset()
        assert LoopAwarePolicy().victim(bs, 10) is bs[1]

    def test_evicts_lru_non_loop_block(self):
        bs = blocks()
        fill_all(bs)
        bs[0].loop_bit = True  # the LRU block is protected
        assert LoopAwarePolicy().victim(bs, 10) is bs[1]

    def test_falls_back_to_loop_blocks_when_all_loop(self):
        bs = blocks()
        fill_all(bs)
        for b in bs:
            b.loop_bit = True
        assert LoopAwarePolicy().victim(bs, 10) is bs[0]

    def test_priority_order_matches_fig9(self):
        # invalid > LRU non-loop > LRU loop (Fig. 9's victim selector)
        bs = blocks()
        fill_all(bs)
        bs[0].loop_bit = True
        bs[1].loop_bit = True
        victim = LoopAwarePolicy().victim(bs, 10)
        assert victim is bs[2]
        bs[3].reset()
        assert LoopAwarePolicy().victim(bs, 11) is bs[3]

    def test_wraps_alternate_baseline(self):
        pol = LoopAwarePolicy(SRRIPPolicy(bits=2))
        bs = blocks()
        fill_all(bs)
        for b in bs:
            pol.on_insert(b, 1)
        bs[0].loop_bit = True
        bs[1].rrpv = 3
        assert pol.victim(bs, 5) is bs[1]

    def test_name_reflects_baseline(self):
        assert "lru" in LoopAwarePolicy().name
        assert "srrip" in LoopAwarePolicy(SRRIPPolicy()).name
