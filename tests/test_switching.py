"""Tests for the dynamic switching baselines (FLEXclusion, Dswitch)."""

import pytest

from repro.inclusion.switching import (
    MODE_EX,
    MODE_NONI,
    DswitchPolicy,
    FLEXclusionPolicy,
)
from tests.conftest import A, B, C, D, E, F, G, H, build_micro, run_refs


def reads(*addrs):
    return [(a, False) for a in addrs]


def writes(*addrs):
    return [(a, True) for a in addrs]


class TestDecisionFunctions:
    def test_flex_picks_exclusion_on_capacity_benefit(self):
        pol = FLEXclusionPolicy()
        assert pol._decide(miss_noni=100, write_noni=0, miss_ex=50, write_ex=500) == MODE_EX

    def test_flex_ignores_writes(self):
        """FLEXclusion is write-blind: huge exclusive write traffic does
        not deter it when capacity wins (the paper's criticism)."""
        pol = FLEXclusionPolicy()
        assert pol._decide(100, 0, 80, 10_000) == MODE_EX

    def test_flex_prefers_noni_on_ties(self):
        pol = FLEXclusionPolicy()
        assert pol._decide(100, 0, 100, 0) == MODE_NONI
        assert pol._decide(100, 0, 99, 0) == MODE_NONI  # within tolerance

    def test_dswitch_weighs_writes(self):
        pol = DswitchPolicy(miss_weight=1.5)
        # same misses, exclusive writes much more -> pick noni
        assert pol._decide(100, 100, 100, 1000) == MODE_NONI
        # same writes, exclusive misses much less -> pick ex
        assert pol._decide(100, 100, 10, 100) == MODE_EX

    def test_dswitch_tradeoff_crossover(self):
        pol = DswitchPolicy(miss_weight=1.0)
        # noni: 100 writes + 100 misses = 200; ex: 150 writes + 40 misses = 190
        assert pol._decide(100, 100, 40, 150) == MODE_EX


class TestSwitchedDataFlow:
    def _policy_in_mode(self, name, mode, **kwargs):
        h = build_micro(name, **kwargs)
        h.policy.dueling.winner = mode
        return h

    def test_noni_mode_fills_on_miss(self):
        h = self._policy_in_mode("flexclusion", MODE_NONI)
        run_refs(h, reads(A))
        assert h.llc.peek(A) is not None

    def test_ex_mode_bypasses_fill(self):
        h = self._policy_in_mode("flexclusion", MODE_EX)
        run_refs(h, reads(A))
        assert h.llc.peek(A) is None

    def test_ex_mode_inserts_clean_victims(self):
        h = self._policy_in_mode("dswitch", MODE_EX)
        run_refs(h, reads(A, B, C, D, E, F, G, H))
        assert h.llc.stats.clean_victim_writes >= 4

    def test_noni_mode_drops_clean_victims(self):
        h = self._policy_in_mode("dswitch", MODE_NONI)
        run_refs(h, reads(A, B, C, D, E, F, G, H))
        assert h.llc.stats.clean_victim_writes == 0

    def test_ex_mode_invalidates_on_hit(self):
        h = self._policy_in_mode("flexclusion", MODE_EX)
        run_refs(h, reads(A, B, C, D, E, F, G, H))
        assert h.llc.peek(A) is not None
        run_refs(h, reads(A))
        assert h.llc.peek(A) is None

    def test_ex_mode_hit_invalidation_preserves_dirty_data(self):
        """Regression: exclusive-mode hit-invalidation must hand a dirty
        LLC copy's writeback obligation up into the L2 fill, exactly as
        the pure exclusive policy does."""
        for name in ("flexclusion", "dswitch"):
            h = self._policy_in_mode(name, MODE_EX)
            run_refs(h, writes(A) + reads(B, C, D, E))  # dirty A in the LLC
            assert h.llc.peek(A).dirty
            run_refs(h, reads(A))  # hit-invalidation
            assert h.llc.peek(A) is None
            assert h.l2s[0].peek(A).dirty, name

    def test_dirty_victims_written_in_both_modes(self):
        for mode in (MODE_NONI, MODE_EX):
            h = self._policy_in_mode("dswitch", mode)
            run_refs(h, writes(A) + reads(B, C, D, E, F, G, H))
            s = h.llc.stats
            assert s.dirty_victim_writes + s.update_writes == 1


class TestSwitchingEndToEnd:
    def test_dswitch_picks_efficient_mode_on_loop_workload(self):
        """On a loop-heavy (WH) workload Dswitch should end up closer to
        non-inclusion than to exclusion in energy."""
        from repro import SystemConfig, make_workload, simulate

        system = SystemConfig.scaled(duel_interval=1024)
        res = {}
        for pol in ("non-inclusive", "exclusive", "dswitch"):
            wl = make_workload("omnetpp", system)
            res[pol] = simulate(system, pol, wl, refs_per_core=6000)
        gap_to_noni = abs(res["dswitch"].epi - res["non-inclusive"].epi)
        gap_to_ex = abs(res["dswitch"].epi - res["exclusive"].epi)
        assert gap_to_noni < gap_to_ex

    def test_flexclusion_tracks_exclusive_performance(self, small_system):
        from repro import make_workload, simulate

        res = {}
        for pol in ("non-inclusive", "exclusive", "flexclusion"):
            wl = make_workload("mcf", small_system)
            res[pol] = simulate(small_system, pol, wl, refs_per_core=8000)
        # FLEXclusion is performance-oriented: within a few percent of
        # the better-performing traditional mode.
        best = max(res["non-inclusive"].throughput, res["exclusive"].throughput)
        assert res["flexclusion"].throughput >= best * 0.95

    def test_leader_sets_stay_in_fixed_modes(self):
        h = build_micro("dswitch", llc_bytes=8192, llc_assoc=4)  # 32 sets
        pol = h.policy
        assert pol.dueling.role(0) is not None
        # leader roles never change regardless of winner
        pol.dueling.winner = MODE_EX
        assert pol.dueling.policy_for(0) == MODE_NONI
        offset = pol.dueling.period // 2
        assert pol.dueling.policy_for(offset) == MODE_EX
