"""Coverage of small public primitives: stats containers, misc cache ops."""

import pytest

from repro.cache import Cache, CacheStats, LRUPolicy
from repro.cache.stats import CoherenceStats, DuelingStats, LoopBlockStats
from repro.utils import fmt_bytes


class TestCacheStatsContainer:
    def test_reset_zeroes_everything(self):
        s = CacheStats()
        s.hits = 5
        s.data_writes_stt = 3
        s.reset()
        assert s.hits == 0 and s.data_writes_stt == 0

    def test_snapshot_roundtrip(self):
        s = CacheStats()
        s.misses = 7
        snap = s.snapshot()
        assert snap["misses"] == 7
        assert "fill_writes" in snap

    def test_add_accumulates(self):
        a, b = CacheStats(), CacheStats()
        a.hits = 2
        b.hits = 3
        b.clean_victim_writes = 1
        a.add(b)
        assert a.hits == 5 and a.clean_victim_writes == 1

    def test_llc_writes_property(self):
        s = CacheStats()
        s.fill_writes = 1
        s.clean_victim_writes = 2
        s.dirty_victim_writes = 3
        s.update_writes = 4
        assert s.llc_writes == 10

    def test_miss_rate(self):
        s = CacheStats()
        assert s.miss_rate == 0.0
        s.lookups, s.misses = 10, 4
        assert s.miss_rate == pytest.approx(0.4)


class TestOtherStats:
    def test_coherence_total_traffic(self):
        c = CoherenceStats(snoop_broadcasts=3, invalidation_messages=2)
        assert c.total_traffic == 5
        c.reset()
        assert c.total_traffic == 0

    def test_dueling_interval_reset(self):
        d = DuelingStats(leader_a_misses=4, leader_b_misses=2)
        d.reset_interval()
        assert d.leader_a_misses == 0 and d.leader_b_misses == 0

    def test_loop_stats_fraction_and_buckets(self):
        s = LoopBlockStats()
        s.l2_evictions = 10
        s.loop_evictions = 4
        s.record_ctc(1)
        s.record_ctc(7)
        s.record_ctc(0)  # ignored
        assert s.loop_block_fraction == pytest.approx(0.4)
        assert s.ctc_buckets() == {"ctc=1": 1, "1<ctc<5": 0, "ctc>=5": 1}


class TestMiscCacheOps:
    def test_read_block_counts_region_read(self):
        c = Cache("m", 1024, 4, 64, replacement=LRUPolicy(), tech="stt")
        c.insert(0, dirty=False)
        before = c.stats.data_reads_stt
        c.read_block(c.peek(0))
        assert c.stats.data_reads_stt == before + 1

    def test_repr_smoke(self):
        c = Cache("m", 1024, 4, 64)
        assert "m" in repr(c)
        c.insert(0, dirty=True)
        assert "tag" in repr(c.peek(0))
        assert "valid" in repr(c.sets[0])


class TestSwitchingIntrospection:
    def test_current_mode_tracks_winner(self):
        from repro.inclusion.switching import MODE_EX
        from repro.testing import build_micro

        h = build_micro("dswitch", llc_bytes=8192, llc_assoc=4)
        h.policy.dueling.winner = MODE_EX
        assert h.policy.current_mode == MODE_EX


class TestFmtBytesEdge:
    def test_gigabyte_path(self):
        assert fmt_bytes(3 * 1024**3) == "3GB"


class TestLAPOverheads:
    def test_full_scale_overhead_negligible(self):
        from repro.core import lap_overheads
        from repro.hierarchy import table2_config

        o = lap_overheads(table2_config())
        # one bit per 64B block = 1/512 of capacity, ~0.2%
        assert o.relative_overhead == pytest.approx(
            (o.l2_loop_bits + o.llc_loop_bits + 64) / o.data_bits
        )
        assert o.relative_overhead < 0.003
        assert o.llc_loop_bits == 8 * 1024 * 1024 // 64

    def test_counter_cost_constant(self):
        from repro.core import lap_overheads
        from repro.hierarchy import scaled_config, table2_config

        assert (
            lap_overheads(scaled_config()).counter_bits
            == lap_overheads(table2_config()).counter_bits
            == 64
        )

    def test_summary_rows_render(self):
        from repro.analysis import render_table
        from repro.core import lap_overheads
        from repro.hierarchy import scaled_config

        rows = lap_overheads(scaled_config()).summary_rows()
        out = render_table("overheads", ["what", "value"], rows)
        assert "loop-bits" in out
