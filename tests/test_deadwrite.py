"""Tests for the dead-write bypass extension (Section VII combination)."""

import pytest

from repro.core.deadwrite import (
    DeadWriteBypassExclusive,
    DeadWriteBypassLAP,
    DeadWritePredictor,
)
from repro.errors import ConfigurationError
from tests.conftest import A, B, C, D, E, F, G, H, build_micro, run_refs


def reads(*addrs):
    return [(a, False) for a in addrs]


def writes(*addrs):
    return [(a, True) for a in addrs]


class TestPredictor:
    def test_cold_regions_not_bypassed(self):
        p = DeadWritePredictor()
        assert not p.predicts_dead(0x1000)

    def test_dead_training_lowers_counter(self):
        p = DeadWritePredictor(initial=1)
        p.train(0x1000, reused=False)
        assert p.predicts_dead(0x1000)

    def test_reuse_training_recovers(self):
        p = DeadWritePredictor(initial=1)
        p.train(0x1000, reused=False)
        p.train(0x1000, reused=True)
        assert not p.predicts_dead(0x1000)

    def test_counters_saturate(self):
        p = DeadWritePredictor(max_level=3, initial=2)
        for _ in range(10):
            p.train(0x1000, reused=True)
        for _ in range(3):
            p.train(0x1000, reused=False)
        assert p.predicts_dead(0x1000)

    def test_regions_independent(self):
        p = DeadWritePredictor(initial=1)
        p.train(0x0, reused=False)
        other = 0x1000 * 7  # different page, different bucket
        assert p.predicts_dead(0x0)
        assert not p.predicts_dead(other)

    def test_same_page_shares_bucket(self):
        p = DeadWritePredictor(initial=1)
        p.train(0x1000, reused=False)
        assert p.predicts_dead(0x1040)  # same 4KB page

    @pytest.mark.parametrize("kwargs", [dict(table_size=1000), dict(initial=0), dict(initial=5)])
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            DeadWritePredictor(**{"max_level": 3, **kwargs})

    def test_training_stats(self):
        p = DeadWritePredictor()
        p.train(0, reused=True)
        p.train(0, reused=False)
        p.record_bypass()
        assert (p.trained_live, p.trained_dead, p.bypassed) == (1, 1, 1)


class TestBypassPolicies:
    def test_registry_names(self):
        from repro.core.policies import make_policy

        assert make_policy("lap+dwb").name == "lap+dwb"
        assert make_policy("exclusive+dwb").name == "exclusive+dwb"

    def test_dirty_victims_never_bypassed(self):
        h = build_micro(DeadWriteBypassExclusive(initial=1))
        # Poison the predictor so everything clean would be bypassed.
        for page in range(16):
            h.policy.predictor.train(page << 12, reused=False)
        run_refs(h, writes(A) + reads(B, C, D, E, F, G, H))
        s = h.llc.stats
        assert s.dirty_victim_writes + s.update_writes == 1

    def test_trained_dead_region_is_bypassed(self):
        h = build_micro(DeadWriteBypassExclusive(initial=1))
        h.policy.predictor.train(A, reused=False)  # page of A..H is dead
        before = h.llc.stats.clean_victim_writes
        run_refs(h, reads(A, B, C, D, E, F, G, H))
        assert h.llc.stats.clean_victim_writes == before
        assert h.policy.predictor.bypassed >= 4

    def test_untrained_region_inserts_normally(self):
        h = build_micro(DeadWriteBypassExclusive())
        run_refs(h, reads(A, B, C, D, E, F, G, H))
        assert h.llc.stats.clean_victim_writes == 4

    def test_training_happens_on_llc_evictions(self):
        # 2-way LLC set: clean inserts evict each other unreused.
        h = build_micro(DeadWriteBypassExclusive(), llc_bytes=128, llc_assoc=2)
        addrs = [i * 64 for i in range(12)]
        run_refs(h, reads(*addrs))
        assert h.policy.predictor.trained_dead > 0

    def test_lap_dwb_keeps_lap_semantics(self):
        h = build_micro(DeadWriteBypassLAP())
        run_refs(h, reads(A, B, C, D, E, F, G, H))
        assert h.llc.stats.fill_writes == 0  # still LAP: no fills
        run_refs(h, reads(A))
        assert h.llc.peek(A) is not None  # still LAP: no hit-invalidation

    def test_lap_dwb_never_bypasses_duplicate_updates(self):
        """Clean victims with a duplicate still refresh the loop-bit."""
        h = build_micro(DeadWriteBypassLAP(initial=1))
        run_refs(h, reads(A, B, C, D, E, F, G, H))
        h.policy.predictor.train(A, reused=False)
        run_refs(h, reads(A))
        run_refs(h, reads(E, F, G, H))  # clean trip with duplicate present
        assert h.llc.peek(A).loop_bit


class TestBypassEndToEnd:
    def test_bypass_reduces_writes_on_streaming(self, small_system):
        from repro import make_workload, simulate

        res = {}
        for pol in ("exclusive", "exclusive+dwb"):
            wl = make_workload("bwaves", small_system)
            res[pol] = simulate(small_system, pol, wl, refs_per_core=8000)
        assert res["exclusive+dwb"].llc_writes < res["exclusive"].llc_writes
        assert res["exclusive+dwb"].epi < res["exclusive"].epi

    def test_combination_compounds_with_lap(self, small_system):
        from repro import make_workload, simulate

        res = {}
        for pol in ("lap", "lap+dwb"):
            wl = make_workload("bwaves", small_system)
            res[pol] = simulate(small_system, pol, wl, refs_per_core=8000)
        assert res["lap+dwb"].llc_writes <= res["lap"].llc_writes
