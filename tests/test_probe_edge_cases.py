"""Edge cases for the probe bus and the standard probes.

Covers the failure modes a probe author actually hits: a probe class
that overrides nothing (usually a typo'd handler name), zero-interval
occupancy sampling, probes attached mid-run, empty-LLC occupancy
snapshots, and the redundant-fill detector fed events about addresses
it never saw filled.
"""

import pytest

from repro.errors import ConfigurationError
from repro.instr.probe import PROBE_EVENTS, Probe, ProbeBus
from repro.instr.probes import (
    LoopProbe,
    OccupancySampler,
    RedundantFillProbe,
    make_probes,
)
from repro.telemetry import TraceProbe, read_events
from repro.testing import A, B, C, D, E, build_micro, run_refs


class TestUselessProbeRejection:
    def test_probe_with_no_overrides_raises_naming_the_class(self):
        class Dud(Probe):
            pass

        with pytest.raises(ValueError, match="Dud overrides no on_"):
            ProbeBus((Dud(),))

    def test_misspelled_handler_is_caught(self):
        class Typo(Probe):
            def on_llc_evicted(self, addr):  # not a bus event
                pass

        with pytest.raises(ValueError) as exc:
            ProbeBus((Typo(),))
        assert "Typo" in str(exc.value)
        assert "misspelled" in str(exc.value)

    def test_error_lists_the_handler_vocabulary(self):
        class Dud(Probe):
            pass

        with pytest.raises(ValueError) as exc:
            ProbeBus((Dud(),))
        for event in PROBE_EVENTS:
            assert f"on_{event}" in str(exc.value)

    def test_attach_probe_rejects_useless_probe_too(self):
        class Dud(Probe):
            pass

        h = build_micro("non-inclusive")
        with pytest.raises(ValueError, match="Dud"):
            h.attach_probe(Dud())

    def test_one_override_is_enough(self):
        class Minimal(Probe):
            def on_access(self, core, addr, is_write):
                pass

        bus = ProbeBus((Minimal(),))
        assert len(bus.handlers("access")) == 1
        assert bus.handlers("llc_fill") == ()


class TestZeroIntervalSampling:
    def test_sampler_rejects_zero_interval(self):
        with pytest.raises(ConfigurationError, match="positive"):
            OccupancySampler(0)

    def test_sampler_rejects_negative_interval(self):
        with pytest.raises(ConfigurationError, match="positive"):
            OccupancySampler(-5)

    def test_make_probes_rejects_occupancy_without_interval(self):
        with pytest.raises(ConfigurationError, match="occupancy"):
            make_probes("occupancy", occupancy_interval=0)

    def test_default_spec_with_zero_interval_just_omits_the_sampler(self):
        probes = make_probes("default", occupancy_interval=0)
        assert not any(isinstance(p, OccupancySampler) for p in probes)
        probes = make_probes("default", occupancy_interval=16)
        assert any(isinstance(p, OccupancySampler) for p in probes)

    def test_interval_one_samples_every_access(self):
        h = build_micro("non-inclusive")
        h.attach_probe(OccupancySampler(1))
        run_refs(h, [(A, False), (B, False), (C, False)])
        assert h.loop_stats().llc_loop_samples > 0


class TestMidRunAttach:
    def test_trace_probe_attached_mid_run_sees_only_the_rest(self, tmp_path):
        h = build_micro("non-inclusive")
        run_refs(h, [(A, False), (B, False), (C, False)])
        probe = TraceProbe(tmp_path / "tail.jsonl", events="access")
        h.attach_probe(probe)
        run_refs(h, [(D, False), (E, False)])
        h.finish()
        events = read_events(tmp_path / "tail.jsonl")
        assert [e.addr for e in events] == [D, E]

    def test_sampler_attached_mid_run_starts_from_attach_point(self):
        h = build_micro("non-inclusive")
        run_refs(h, [(A, False), (B, False)])
        before = h.loop_stats().llc_loop_samples
        assert before == 0
        h.attach_probe(OccupancySampler(1))
        run_refs(h, [(C, False)])
        assert h.loop_stats().llc_loop_samples > before

    def test_attach_does_not_perturb_existing_probes(self):
        refs = [(A, True), (B, False), (C, True), (A, False), (D, False)]
        baseline = build_micro("non-inclusive")
        run_refs(baseline, refs)
        baseline.finish()

        class Silent(Probe):
            def on_access(self, core, addr, is_write):
                pass

        h = build_micro("non-inclusive")
        run_refs(h, refs[:2])
        h.attach_probe(Silent())
        run_refs(h, refs[2:])
        h.finish()
        assert h.stats.accesses == baseline.stats.accesses
        assert h.llc.stats.llc_writes == baseline.llc.stats.llc_writes
        assert h.loop_stats().l2_evictions == baseline.loop_stats().l2_evictions


class TestEmptyLlcOccupancy:
    def test_fresh_llc_reports_zero_occupancy(self):
        h = build_micro("non-inclusive")
        assert h.llc.loop_block_occupancy() == (0, 0)

    def test_empty_snapshot_is_harmless(self):
        # An explicit (0, 0) sample must not skew any loop statistics.
        h = build_micro("non-inclusive")
        h.emit_occupancy_sample(*h.llc.loop_block_occupancy())
        stats = h.loop_stats()
        assert stats.llc_loop_samples == 0
        assert stats.llc_loop_blocks == 0
        h.finish()  # still finalises cleanly

    def test_exclusive_llc_starts_empty_under_sampling(self):
        # Under exclusion the LLC holds nothing until the first L2
        # victim arrives, so early samples genuinely see an empty LLC.
        h = build_micro("exclusive")
        h.attach_probe(OccupancySampler(1))
        run_refs(h, [(A, False)])
        assert h.llc.loop_block_occupancy() == (0, 0)
        assert h.loop_stats().llc_loop_samples == 0
        h.finish()


class TestRedundantFillProbe:
    class _Stats:
        redundant_fills = 0

    def probe(self):
        p = RedundantFillProbe()
        p._llc_stats = self._Stats()
        return p

    def test_events_on_unseen_addresses_are_noops(self):
        p = self.probe()
        p.on_demand_hit(A)
        p.on_llc_evict(B)
        p.on_dirty_victim(C)
        assert p._llc_stats.redundant_fills == 0

    def test_consumed_fill_is_not_redundant(self):
        p = self.probe()
        p.on_llc_fill(A)
        p.on_demand_hit(A)  # the fill was useful
        p.on_dirty_victim(A)
        assert p._llc_stats.redundant_fills == 0

    def test_evicted_fill_is_not_redundant(self):
        p = self.probe()
        p.on_llc_fill(A)
        p.on_llc_evict(A)  # left the LLC before any dirty victim
        p.on_dirty_victim(A)
        assert p._llc_stats.redundant_fills == 0

    def test_overwritten_fresh_fill_counts_exactly_once(self):
        p = self.probe()
        p.on_llc_fill(A)
        p.on_dirty_victim(A)
        p.on_dirty_victim(A)  # already consumed: not double-counted
        assert p._llc_stats.redundant_fills == 1

    def test_bind_targets_the_llc_stats(self):
        h = build_micro("non-inclusive")
        p = RedundantFillProbe()
        p.bind(h)
        assert p._llc_stats is h.llc.stats


def test_loop_probe_tolerates_starting_mid_stream():
    # A LoopProbe attached mid-run sees victims for blocks whose fills
    # it never observed; the tracker must treat those as unknown, not
    # crash or misclassify.
    h = build_micro("non-inclusive")
    run_refs(h, [(A, True), (B, False), (C, False), (D, False)])
    late = LoopProbe()
    h.attach_probe(late)
    run_refs(h, [(E, False), (A, False), (B, True), (C, False)])
    h.finish()
    stats = late.tracker.stats
    assert stats.l2_evictions >= 0
    assert sum(stats.ctc_histogram.values()) >= 0
