"""Tests for the HTML dashboard, bench trend, and the report CLI."""

import json

import pytest

from repro.errors import TelemetryError
from repro.obs.ledger import scan_dirs
from repro.obs.trend import TrendCell, bench_trend, regressions, trend_rows


@pytest.fixture(scope="module")
def sweep_dir(tmp_path_factory):
    """One tiny real sweep shared by the rendering tests."""
    from repro.exec import JobSpec, ResultCache, WorkloadSpec, execute_jobs
    from repro.sim import SystemConfig

    root = tmp_path_factory.mktemp("sweep")
    jobs = [
        JobSpec(
            system=SystemConfig.scaled(ncores=2, llc_kb=32, l2_kb=4),
            workload=WorkloadSpec.duplicate("mcf", ncores=2, seed=0),
            policy=policy,
            refs_per_core=300,
        )
        for policy in ("non-inclusive", "lap")
    ]
    execute_jobs(jobs, cache=ResultCache(root), manifest_dir=root)
    return root


def bench_doc(latest=900.0, prior=(1000.0, 800.0)):
    """A minimal schema-2 bench document with one (lap, soa) cell."""
    entries = [
        {"timestamp": f"2026-08-0{i + 1}T00:00:00Z",
         "accesses_per_sec": {"lap": {"soa": value}}}
        for i, value in enumerate([*prior, latest])
    ]
    return {"schema": 2, "entries": entries}


class TestTrend:
    def test_best_prior_is_max_not_previous(self):
        cells = bench_trend(bench_doc(latest=900.0, prior=(1000.0, 800.0)))
        (cell,) = cells
        assert cell.latest == 900.0
        assert cell.best_prior == 1000.0, "a slow middle entry must not reset it"
        assert cell.delta_pct == pytest.approx(-10.0)

    def test_regression_threshold_semantics(self):
        cell = TrendCell("lap", "soa",
                         series=[("t0", 1000.0), ("t1", 900.0)])
        assert not cell.regressed(10.0), "-10% is within a 10% tolerance"
        assert cell.regressed(5.0)
        assert regressions([cell], 5.0) == [cell]
        assert regressions([cell], 15.0) == []

    def test_single_entry_has_no_baseline(self):
        cell = TrendCell("lap", "soa", series=[("t0", 1000.0)])
        assert cell.best_prior is None
        assert cell.delta_pct is None
        assert not cell.regressed(0.0)

    def test_legacy_v1_record_contributes_object_points(self):
        doc = {
            "schema": 2,
            "legacy": {"timestamp": "old",
                       "accesses_per_sec": {"lap": 500.0}},
            "entries": [{"timestamp": "new",
                         "accesses_per_sec": {"lap": {"object": 600.0}}}],
        }
        (cell,) = bench_trend(doc)
        assert (cell.policy, cell.backend) == ("lap", "object")
        assert cell.series == [("old", 500.0), ("new", 600.0)]

    def test_trend_rows_flag_regressions(self):
        cells = bench_trend(bench_doc(latest=500.0, prior=(1000.0,)))
        rows = trend_rows(cells, 10.0)
        assert rows[0][-1] == "-50.0% REGRESSION"
        rows = trend_rows(cells, None)
        assert rows[0][-1] == "-50.0%"

    def test_rejects_non_dict(self):
        with pytest.raises(TelemetryError):
            bench_trend(["not", "a", "doc"])


class TestRenderDashboard:
    def test_self_contained_html_with_all_sections(self, sweep_dir):
        from repro.obs.dashboard import render_dashboard

        html = render_dashboard(
            scan_dirs([sweep_dir]),
            bench_doc=bench_doc(),
            check_rows=[("inclusion", True, "ok"), ("dirty", True, "ok")],
        )
        assert html.startswith("<!DOCTYPE html>")
        for marker in (
            'class="viz-root"',
            "prefers-color-scheme: dark",
            "Policy grids",
            "Execution performance",
            "Result provenance",
            "Hot-path bench trend",
            "Energy per instruction",
        ):
            assert marker in html, marker
        # Self-contained: no external fetches of any kind.
        for banned in ("http://", "https://", "<script src", "<link "):
            assert banned not in html, banned

    def test_check_badges_render_pass_and_fail(self, sweep_dir):
        from repro.obs.dashboard import render_dashboard

        html = render_dashboard(
            scan_dirs([sweep_dir]),
            check_rows=[("inclusion", True, "ok"),
                        ("dirty<loss>", False, "bad & wrong")],
        )
        assert "✓" in html and "✗" in html
        assert "FAIL" in html
        # attrs reach the page escaped, never raw
        assert "dirty<loss>" not in html
        assert "dirty&lt;loss&gt;" in html

    def test_renders_without_bench_or_checks(self, sweep_dir):
        from repro.obs.dashboard import render_dashboard

        html = render_dashboard(scan_dirs([sweep_dir]))
        assert "<!DOCTYPE html>" in html
        assert "Policy grids" in html

    def test_renders_empty_ledger(self):
        from repro.obs.dashboard import render_dashboard
        from repro.obs.ledger import RunLedger

        html = render_dashboard(RunLedger())
        assert "<!DOCTYPE html>" in html

    def test_bench_regression_is_highlighted(self, sweep_dir):
        from repro.obs.dashboard import render_dashboard

        html = render_dashboard(
            scan_dirs([sweep_dir]),
            bench_doc=bench_doc(latest=500.0, prior=(1000.0,)),
            regression_pct=10.0,
        )
        assert "-50.0%" in html


class TestReportCli:
    def test_report_html_end_to_end(self, sweep_dir, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.html"
        rc = main([
            "report", "--cache-dir", str(sweep_dir),
            "--out", str(out), "--no-check",
        ])
        assert rc == 0
        html = out.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "Policy grids" in html
        assert "lap" in html

    def test_report_writes_ledger_json(self, sweep_dir, tmp_path):
        from repro.cli import main

        out = tmp_path / "report.html"
        ledger_path = tmp_path / "ledger.json"
        rc = main([
            "report", "--cache-dir", str(sweep_dir),
            "--out", str(out), "--no-check",
            "--ledger", str(ledger_path),
        ])
        assert rc == 0
        doc = json.loads(ledger_path.read_text())
        assert doc["kind"] == "repro-ledger"
        assert doc["totals"]["rows"] == 2

    def test_report_without_dirs_or_cache_errors(self, monkeypatch, tmp_path):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        rc = main(["report", "--out", str(tmp_path / "r.html")])
        assert rc != 0

    def test_report_markdown_mode_untouched(self, tmp_path, capsys):
        """The legacy `repro report` (no --out/--cache-dir) still builds
        the markdown experiment record."""
        from repro.cli import main

        results = tmp_path / "results"
        results.mkdir()
        rc = main(["report", "--results-dir", str(results)])
        assert rc == 0
        assert "#" in capsys.readouterr().out


class TestBenchTrendCli:
    def _write(self, tmp_path, doc):
        path = tmp_path / "BENCH_hotpath.json"
        path.write_text(json.dumps(doc))
        return path

    def test_trend_table_exit_zero(self, tmp_path, capsys):
        from repro.cli import main

        path = self._write(tmp_path, bench_doc())
        rc = main(["bench", "trend", "--out", str(path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "lap" in out and "soa" in out

    def test_trend_fail_on_regression_exits_one(self, tmp_path, capsys):
        from repro.cli import main

        path = self._write(tmp_path, bench_doc(latest=500.0, prior=(1000.0,)))
        rc = main(["bench", "trend", "--out", str(path),
                   "--fail-on-regression", "10"])
        assert rc == 1
        assert "regressed" in capsys.readouterr().err

    def test_trend_within_tolerance_exits_zero(self, tmp_path):
        from repro.cli import main

        path = self._write(tmp_path, bench_doc(latest=950.0, prior=(1000.0,)))
        rc = main(["bench", "trend", "--out", str(path),
                   "--fail-on-regression", "10"])
        assert rc == 0

    def test_trend_json_mode(self, tmp_path, capsys):
        from repro.cli import main

        path = self._write(tmp_path, bench_doc())
        rc = main(["bench", "trend", "--out", str(path), "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["cells"][0]["policy"] == "lap"
        assert doc["cells"][0]["latest"] == 900.0

    def test_trend_missing_file_errors(self, tmp_path):
        from repro.cli import main

        rc = main(["bench", "trend", "--out", str(tmp_path / "absent.json")])
        assert rc != 0
