"""End-to-end tests for the simulation service (repro.serve.server).

Each test boots a real server on an ephemeral port (background thread,
own event loop) and talks to it through :class:`ServeClient` over
actual TCP — the same path ``repro submit`` takes.
"""

import threading
import time

import pytest

from repro.errors import BackpressureError, ServeError
from repro.exec import JobSpec, ResultCache, WorkloadSpec, execute_jobs
from repro.serve import ServeClient, ServeConfig, serve_in_thread
from repro.sim import SystemConfig


def spec(seed=0, policy="lap", refs=500) -> JobSpec:
    return JobSpec(
        system=SystemConfig.scaled(ncores=2, llc_kb=32, l2_kb=4),
        workload=WorkloadSpec.duplicate("mcf", ncores=2, seed=seed),
        policy=policy,
        refs_per_core=refs,
    )


@pytest.fixture(autouse=True)
def fresh_registry():
    """Counter assertions need a registry this test alone writes to."""
    from repro.telemetry.metrics import MetricsRegistry, set_registry

    previous = set_registry(MetricsRegistry())
    yield
    set_registry(previous)


@pytest.fixture
def run_counter(monkeypatch):
    """Counts every actual simulation; the dedup tests hang off this."""
    lock = threading.Lock()
    counts = {"runs": 0}
    real_run = JobSpec.run

    def counting_run(self):
        with lock:
            counts["runs"] += 1
        return real_run(self)

    monkeypatch.setattr(JobSpec, "run", counting_run)
    return counts


def quiet_config(tmp_path=None, **kwargs) -> ServeConfig:
    cache = ResultCache(tmp_path / "cache") if tmp_path is not None else None
    return ServeConfig(
        port=0, cache=cache, heartbeat_interval=None, **kwargs
    )


class TestEndToEnd:
    def test_served_result_bit_identical_to_direct_run(self, tmp_path):
        job = spec()
        direct = execute_jobs([job])[0]
        with serve_in_thread(quiet_config(tmp_path)) as handle:
            client = ServeClient(port=handle.port)
            result = client.run(job, timeout=120)
        assert result.to_dict() == direct.to_dict()

    def test_identical_concurrent_submissions_simulate_once(
        self, tmp_path, run_counter
    ):
        """The headline property: N identical concurrent submissions
        coalesce onto one record, the pool simulates exactly once, and
        every waiter gets the bit-identical result."""
        job = spec()
        direct = execute_jobs([job])[0]
        assert run_counter["runs"] == 1  # the direct run above
        n_clients = 8
        results, failures = [], []

        with serve_in_thread(quiet_config(tmp_path, workers=2)) as handle:
            def hammer(n):
                try:
                    client = ServeClient(port=handle.port, client_id=f"c{n}")
                    results.append(client.run(job, timeout=120))
                except Exception as exc:  # surfaced after join
                    failures.append(exc)

            threads = [threading.Thread(target=hammer, args=(n,))
                       for n in range(n_clients)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            metrics = ServeClient(port=handle.port).metrics()

        assert not failures
        assert len(results) == n_clients
        assert run_counter["runs"] == 2, "one direct + exactly one served"
        for result in results:
            assert result.to_dict() == direct.to_dict()
        serve = metrics["serve"]
        assert serve["jobs"]["total"] == 1, "8 submissions, one record"
        counters = metrics["registry"]["counters"]
        assert counters["serve.submitted"] == n_clients
        assert counters["serve.coalesced"] == n_clients - 1

    def test_warm_cache_short_circuits_without_simulating(
        self, tmp_path, run_counter
    ):
        job = spec()
        cache = ResultCache(tmp_path / "cache")
        execute_jobs([job], cache=cache)  # warm it (1 run)
        with serve_in_thread(quiet_config(tmp_path)) as handle:
            client = ServeClient(port=handle.port)
            receipt = client.submit(job)
            assert receipt["state"] == "done"
            assert receipt["source"] == "cache"
            result = client.result(receipt["id"])
        assert run_counter["runs"] == 1, "the warm-up run was the only one"
        assert result.to_dict() == execute_jobs([job], cache=cache)[0].to_dict()

    def test_batch_submission_returns_receipt_per_job(self, tmp_path):
        jobs = [spec(seed=s) for s in range(3)]
        with serve_in_thread(quiet_config(tmp_path, workers=2)) as handle:
            client = ServeClient(port=handle.port)
            receipts = client.submit(jobs)
            assert len(receipts) == 3
            assert len({r["id"] for r in receipts}) == 3
            for receipt in receipts:
                client.wait(receipt["id"], timeout=120)
            listed = client.jobs()
        assert {j["id"] for j in listed} == {r["id"] for r in receipts}
        assert all(j["state"] == "done" for j in listed)


class TestBackpressure:
    def test_full_queue_returns_backpressure_not_blocking(self, monkeypatch):
        """With the single worker pinned and the 1-slot queue full, a
        third submission must be refused immediately with the 429
        backpressure error — not queued, not blocked, not dropped."""
        gate = threading.Event()
        real_run = JobSpec.run

        def gated_run(self):
            gate.wait(timeout=60)
            return real_run(self)

        monkeypatch.setattr(JobSpec, "run", gated_run)
        config = ServeConfig(port=0, workers=1, queue_limit=1,
                             heartbeat_interval=None)
        try:
            with serve_in_thread(config) as handle:
                client = ServeClient(port=handle.port)
                first = client.submit(spec(seed=0))
                deadline = time.monotonic() + 30
                while client.status(first["id"])["state"] != "running":
                    assert time.monotonic() < deadline, "worker never picked up"
                    time.sleep(0.01)
                second = client.submit(spec(seed=1))
                assert second["state"] == "queued"

                start = time.monotonic()
                with pytest.raises(BackpressureError):
                    client.submit(spec(seed=2))
                assert time.monotonic() - start < 5, "shed, not blocked"

                # Identical resubmissions still coalesce: dedup needs
                # no queue slot, so it is exempt from backpressure.
                again = client.submit(spec(seed=1))
                assert again["id"] == second["id"]
                assert again["coalesced"] >= 1

                gate.set()
                client.wait(first["id"], timeout=120)
                client.wait(second["id"], timeout=120)
                # Queue drained: the shed job now goes through.
                third = client.submit(spec(seed=2))
                client.wait(third["id"], timeout=120)
        finally:
            gate.set()

    def test_backpressure_counted_in_metrics(self, monkeypatch):
        gate = threading.Event()
        real_run = JobSpec.run
        monkeypatch.setattr(
            JobSpec, "run",
            lambda self: (gate.wait(timeout=60), real_run(self))[1],
        )
        config = ServeConfig(port=0, workers=1, queue_limit=1,
                             heartbeat_interval=None)
        try:
            with serve_in_thread(config) as handle:
                client = ServeClient(port=handle.port)
                client.submit(spec(seed=0))
                deadline = time.monotonic() + 30
                while client.metrics()["serve"]["inflight"] != 1:
                    assert time.monotonic() < deadline
                    time.sleep(0.01)
                client.submit(spec(seed=1))
                with pytest.raises(BackpressureError):
                    client.submit(spec(seed=2))
                counters = client.metrics()["registry"]["counters"]
                assert counters["serve.backpressure"] == 1
                gate.set()
        finally:
            gate.set()


class TestHttpSurface:
    def test_unknown_and_malformed_job_ids(self, tmp_path):
        with serve_in_thread(quiet_config(tmp_path)) as handle:
            client = ServeClient(port=handle.port)
            with pytest.raises(ServeError) as err:
                client.status("0" * 64)
            assert err.value.status == 404
            with pytest.raises(ServeError) as err:
                client.status("not-a-job-id")
            assert err.value.status == 400
            with pytest.raises(ServeError) as err:
                client.result("0" * 64)
            assert err.value.status == 404

    def test_result_before_done_is_conflict(self, monkeypatch):
        gate = threading.Event()
        real_run = JobSpec.run
        monkeypatch.setattr(
            JobSpec, "run",
            lambda self: (gate.wait(timeout=60), real_run(self))[1],
        )
        try:
            with serve_in_thread(
                ServeConfig(port=0, workers=1, heartbeat_interval=None)
            ) as handle:
                client = ServeClient(port=handle.port)
                receipt = client.submit(spec())
                with pytest.raises(ServeError) as err:
                    client.result(receipt["id"])
                assert err.value.status == 409
                gate.set()
                client.wait(receipt["id"], timeout=120)
                client.result(receipt["id"])  # now it works
        finally:
            gate.set()

    def test_bad_json_submission_is_400(self, tmp_path):
        import http.client as hc

        with serve_in_thread(quiet_config(tmp_path)) as handle:
            conn = hc.HTTPConnection("127.0.0.1", handle.port, timeout=30)
            conn.request("POST", "/jobs", body=b"{not json",
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            assert response.status == 400
            conn.close()

    def test_failed_job_reports_error_and_allows_resubmit(self, monkeypatch):
        real_run = JobSpec.run
        calls = {"n": 0}

        def failing_then_ok(self):
            calls["n"] += 1
            if calls["n"] <= 2:  # fails the first attempt AND its retry
                raise RuntimeError("injected failure")
            return real_run(self)

        monkeypatch.setattr(JobSpec, "run", failing_then_ok)
        with serve_in_thread(
            ServeConfig(port=0, workers=1, heartbeat_interval=None)
        ) as handle:
            client = ServeClient(port=handle.port)
            receipt = client.submit(spec())
            deadline = time.monotonic() + 60
            while client.status(receipt["id"])["state"] not in ("done", "failed"):
                assert time.monotonic() < deadline
                time.sleep(0.01)
            status = client.status(receipt["id"])
            assert status["state"] == "failed"
            assert "injected failure" in status["error"]
            # a failed key is retryable: resubmission queues a fresh run
            retry = client.submit(spec())
            assert retry["state"] in ("queued", "running")
            client.wait(retry["id"], timeout=120)

    def test_fairness_one_greedy_one_light_client(self, monkeypatch):
        """Server-level fairness: with everything queued behind a gate,
        the light client's single job runs second, not sixth."""
        gate = threading.Event()
        order = []
        lock = threading.Lock()
        real_run = JobSpec.run

        def tracking_run(self):
            gate.wait(timeout=60)
            with lock:
                order.append(self.workload.seed)
            return real_run(self)

        monkeypatch.setattr(JobSpec, "run", tracking_run)
        try:
            with serve_in_thread(
                ServeConfig(port=0, workers=1, heartbeat_interval=None)
            ) as handle:
                greedy = ServeClient(port=handle.port, client_id="greedy")
                light = ServeClient(port=handle.port, client_id="light")
                receipts = [greedy.submit(spec(seed=s)) for s in range(4)]
                light_receipt = light.submit(spec(seed=100))
                gate.set()
                for receipt in receipts:
                    greedy.wait(receipt["id"], timeout=120)
                light.wait(light_receipt["id"], timeout=120)
        finally:
            gate.set()
        # seed 0 was in flight (or next) when the light job arrived;
        # round-robin must schedule seed 100 ahead of greedy's backlog.
        assert 100 in order
        assert order.index(100) <= 2, f"light client starved: {order}"
