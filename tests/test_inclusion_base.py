"""Unit tests for the InclusionPolicy shared mechanics (base.py)."""

import pytest

from repro.inclusion.base import InclusionPolicy, LLCAccess
from tests.conftest import A, B, C, D, E, F, G, H, build_micro, run_refs


def reads(*addrs):
    return [(a, False) for a in addrs]


class TestBindAndHooks:
    def test_bind_attaches_llc_and_touch_policy(self):
        # Policies that never override the per-set replacement choice
        # leave touch_policy unset (LLC hits skip the indirection) ...
        h = build_micro("non-inclusive")
        assert h.policy.llc is h.llc
        assert h.llc.touch_policy is None
        # ... while set-dueled policies route hit touches through it.
        h2 = build_micro("lap")
        assert h2.llc.touch_policy == h2.policy.replacement_for

    def test_base_policy_is_abstract(self):
        pol = InclusionPolicy()
        with pytest.raises(NotImplementedError):
            pol.llc_access(0, 0, False)
        with pytest.raises(NotImplementedError):
            pol.l2_victim(0, None)

    def test_default_loop_bit_is_false(self):
        assert InclusionPolicy().l2_fill_loop_bit(True) is False

    def test_default_replacement_is_none(self):
        assert InclusionPolicy().replacement_for(0) is None

    def test_on_l2_dirtied_clears_loop_bit(self):
        from repro.cache import CacheBlock

        block = CacheBlock(0)
        block.loop_bit = True
        InclusionPolicy().on_l2_dirtied(block)
        assert not block.loop_bit


class TestInsertOrUpdate:
    def test_insert_path_counts_category(self):
        h = build_micro("non-inclusive")
        h.policy.insert_or_update(0, A, dirty=False, category="fill")
        assert h.llc.stats.fill_writes == 1
        assert h.llc.peek(A) is not None

    def test_update_path_merges_dirty(self):
        h = build_micro("non-inclusive")
        h.policy.insert_or_update(0, A, dirty=False, category="fill")
        h.policy.insert_or_update(0, A, dirty=True, category="dirty_victim")
        assert h.llc.stats.update_writes == 1
        assert h.llc.stats.dirty_victim_writes == 0
        assert h.llc.peek(A).dirty

    def test_merged_fill_stays_a_fill_write(self):
        """Regression: a fill merging into an existing clean copy was
        miscounted as a clean_victim_write, corrupting the Fig. 15
        breakdown across dynamic-mode switches."""
        h = build_micro("non-inclusive")
        h.policy.insert_or_update(0, A, dirty=False, category="fill")
        h.policy.insert_or_update(0, A, dirty=False, category="fill")
        assert h.llc.stats.fill_writes == 2
        assert h.llc.stats.clean_victim_writes == 0

    def test_merged_clean_victim_keeps_its_class(self):
        h = build_micro("non-inclusive")
        h.policy.insert_or_update(0, A, dirty=False, category="fill")
        h.policy.insert_or_update(0, A, dirty=False, category="clean_victim")
        assert h.llc.stats.fill_writes == 1
        assert h.llc.stats.clean_victim_writes == 1

    def test_dirty_flag_in_llc_access(self):
        """The dirty field defaults False and rides along on hits."""
        assert LLCAccess(hit=True, tech="stt").dirty is False
        assert LLCAccess(hit=True, tech="stt", dirty=True).dirty is True

    def test_duplicate_never_created(self):
        h = build_micro("non-inclusive")
        for _ in range(3):
            h.policy.insert_or_update(0, A, dirty=False, category="fill")
        cache_set = h.llc.sets[h.llc.set_index(A)]
        holders = [b for b in cache_set.blocks if b.valid and b.tag == h.llc.tag_of(A)]
        assert len(holders) == 1

    def test_unknown_category_rejected(self):
        h = build_micro("non-inclusive")
        with pytest.raises(ValueError):
            h.policy._place_and_insert(0, A, dirty=False, loop_bit=False, category="bogus")

    def test_insert_charges_bank_write(self):
        h = build_micro("non-inclusive")
        before = h.timing.banks.busy_until[0]
        h.policy.insert_or_update(0, A, dirty=False, category="fill")
        assert h.timing.banks.busy_until[h.llc.bank_of(A)] > before

    def test_llc_victim_cascades_to_memory(self):
        h = build_micro("non-inclusive", llc_bytes=128, llc_assoc=2)
        h.policy.insert_or_update(0, A, dirty=True, category="dirty_victim")
        h.policy.insert_or_update(0, B, dirty=False, category="fill")
        before = h.stats.mem_writes
        h.policy.insert_or_update(0, C, dirty=False, category="fill")  # evicts dirty A
        assert h.stats.mem_writes == before + 1


class TestLLCAccessNamedTuple:
    def test_fields(self):
        acc = LLCAccess(hit=True, tech="stt")
        assert acc.hit and acc.tech == "stt"


class TestHierarchyNotes:
    def test_fresh_fill_lifecycle(self):
        h = build_micro("non-inclusive")
        h.note_fill(A)
        h.note_dirty_victim(A)
        assert h.llc.stats.redundant_fills == 1
        # a second dirty victim for the same line is NOT redundant again
        h.note_dirty_victim(A)
        assert h.llc.stats.redundant_fills == 1

    def test_demand_hit_clears_freshness(self):
        h = build_micro("non-inclusive")
        h.note_fill(A)
        h.note_demand_hit(A)
        h.note_dirty_victim(A)
        assert h.llc.stats.redundant_fills == 0

    def test_eviction_clears_freshness(self):
        h = build_micro("non-inclusive")
        h.note_fill(A)
        h.note_llc_evict(A)
        h.note_dirty_victim(A)
        assert h.llc.stats.redundant_fills == 0

    def test_shared_by_peers_false_without_coherence(self):
        h = build_micro("non-inclusive")
        run_refs(h, reads(A))
        assert not h.shared_by_peers(0, A)
