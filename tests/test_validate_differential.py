"""Tests for the differential harness and the end-to-end check suite.

The centerpiece is the mutation test: re-introduce the historical
dirty-loss bug (exclusive hit-invalidation dropping the dirty bit) into
the policy registry and prove that ``repro check``'s machinery — the
fuzz stage included — fires on it, with the shrunk counterexample still
reproducing the same invariant violation.
"""

import pytest

from repro.arena import registry
from repro.errors import InvariantViolation
from repro.inclusion.base import LLCAccess
from repro.inclusion.traditional import ExclusivePolicy, NonInclusivePolicy
from repro.validate import (
    DEFAULT_POLICIES,
    fuzz,
    generate_trace,
    run_checks,
    run_differential,
    run_trace,
)


class BuggyExclusivePolicy(ExclusivePolicy):
    """Pre-fix exclusive policy: drops the dirty bit on hit-invalidation."""

    def llc_access(self, core, addr, is_write):
        block = self._llc_lookup(core, addr)
        if block is None:
            return LLCAccess(hit=False, tech=self.llc.tech)
        tech = block.tech
        if not self.h.shared_by_peers(core, addr):
            self.llc.discard(addr)
            self.llc.stats.hit_invalidations += 1
            self.h.note_llc_evict(addr)
        return LLCAccess(hit=True, tech=tech)


@pytest.fixture
def buggy_exclusive():
    """Swap the registry's exclusive policy for the pre-fix one."""
    with registry.overridden("exclusive", BuggyExclusivePolicy):
        yield


class TestCrossPolicyIdentities:
    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_default_policies_no_coherence(self, seed):
        trace = generate_trace(seed, refs=1200, ncores=1)
        report = run_differential(trace, DEFAULT_POLICIES, interval=64)
        assert report.policies == DEFAULT_POLICIES
        joined = " | ".join(report.identities)
        # The L2 front-end is policy-blind for the
        # non-back-invalidating policies ...
        assert "l2_hits equal across" in joined
        assert "l2_victims equal across" in joined
        segment = joined.split("l2_hits equal across")[1].split("|")[0]
        members = segment.strip().strip("{}").split(", ")
        assert "non-inclusive" in members and "inclusive" not in members
        # ... and the write-class laws were asserted per policy.
        assert "write-class laws" in joined

    @pytest.mark.parametrize("seed", [3, 11])
    def test_default_policies_with_coherence(self, seed):
        trace = generate_trace(seed, refs=1200, ncores=2)
        report = run_differential(
            trace, DEFAULT_POLICIES, ncores=2, enable_coherence=True, interval=64
        )
        assert "accesses equal across" in " | ".join(report.identities)

    def test_write_class_numbers_match_fig15_laws(self):
        trace = generate_trace(5, refs=1500, ncores=1)
        report = run_differential(trace, DEFAULT_POLICIES)
        # non-inclusive / inclusive: never write clean victims.
        assert report.llc["non-inclusive"]["clean_victim_writes"] == 0
        assert report.llc["inclusive"]["clean_victim_writes"] == 0
        # exclusive / LAP family / rd-copyback: never data-fill the LLC.
        for name in ("exclusive", "lap", "lhybrid", "rd-copyback"):
            assert report.llc[name]["fill_writes"] == 0
        # reuse-detector drops clean victims like non-inclusion does.
        assert report.llc["reuse-detector"]["clean_victim_writes"] == 0

    def test_as_rows_covers_every_policy(self):
        trace = generate_trace(2, refs=400)
        report = run_differential(trace, ("non-inclusive", "exclusive"))
        rows = report.as_rows()
        assert [r[0] for r in rows] == ["non-inclusive", "exclusive"]

    def test_detects_accounting_divergence(self):
        """A policy that lies about its write classes is caught."""

        class Miscounting(NonInclusivePolicy):
            def l2_victim(self, core, line):
                if not line.dirty:
                    return
                # dirty victims miscounted as clean ones
                self.insert_or_update(core, line.addr, dirty=False, category="clean_victim")

        with registry.overridden("non-inclusive", Miscounting):
            trace = generate_trace(9, refs=800)
            with pytest.raises(InvariantViolation):
                run_differential(trace, ("non-inclusive", "exclusive"))


class TestMutationDetection:
    """Reverting the dirty-loss fix must trip the checker."""

    def test_fuzz_catches_reverted_fix(self, buggy_exclusive):
        failures = fuzz(6, ("exclusive",), base_seed=0, coherence_modes=(False,))
        assert failures, "fuzzer missed the re-introduced dirty-loss bug"
        failure = failures[0]
        assert failure.invariant == "dirty-conservation"
        # The shrunk trace is drastically smaller and still reproduces.
        assert 0 < len(failure.trace) <= 20
        with pytest.raises(InvariantViolation) as info:
            run_trace(
                "exclusive",
                failure.trace,
                ncores=failure.case.ncores,
                enable_coherence=failure.case.enable_coherence,
                interval=1,
            )
        assert info.value.invariant == "dirty-conservation"

    def test_repro_snippet_is_valid_python(self, buggy_exclusive):
        failures = fuzz(3, ("exclusive",), base_seed=0, coherence_modes=(False,))
        assert failures
        compile(failures[0].repro_snippet(), "<repro>", "exec")

    def test_run_checks_reports_the_failure(self, buggy_exclusive):
        report = run_checks(("exclusive",), fuzz_rounds=4, refs=600, coherence="off")
        assert not report.ok
        assert any("dirty-conservation" in e.detail for e in report.failures)

    def test_run_checks_clean_after_fix(self):
        report = run_checks(("exclusive",), fuzz_rounds=4, refs=600, coherence="off")
        assert report.ok, [e.detail for e in report.failures]


class TestRunChecks:
    def test_full_suite_all_policies(self):
        report = run_checks(DEFAULT_POLICIES, refs=600, interval=32)
        assert report.ok, [e.detail for e in report.failures]
        names = [e.name for e in report.entries]
        # every default policy x 3 modes + 3 differential passes
        expected = 3 * len(DEFAULT_POLICIES)
        assert len([n for n in names if n.startswith("invariants[")]) == expected
        assert len([n for n in names if n.startswith("differential[")]) == 3

    def test_coherence_mode_filter(self):
        report = run_checks(("lap",), refs=300, coherence="on")
        assert all("coh" in e.name for e in report.entries)
        assert report.ok

    def test_progress_callback(self):
        seen = []
        run_checks(("non-inclusive",), refs=200, coherence="off", progress=seen.append)
        assert any(label.startswith("invariants[") for label in seen)
        assert any(label.startswith("differential[") for label in seen)
