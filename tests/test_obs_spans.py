"""Tests for span tracing (repro.obs.spans)."""

import json
import threading

import pytest

from repro.errors import TelemetryError
from repro.obs.spans import (
    SPANS_ENV,
    SpanRecorder,
    current_recorder,
    install_recorder,
    read_spans,
    recorder_from_env,
    span,
    start_span,
    summarize_spans,
    tracing_enabled,
    uninstall_recorder,
)


@pytest.fixture(autouse=True)
def no_ambient_recorder():
    """Each test starts with tracing off and leaves it off."""
    uninstall_recorder()
    yield
    uninstall_recorder()


class TestDisabled:
    def test_span_is_shared_noop_when_tracing_off(self):
        assert not tracing_enabled()
        a = span("x")
        b = span("y", attr=1)
        assert a is b  # the shared singleton: zero allocation per call
        with a:
            a.set(more=2)
        a.finish()  # all no-ops

    def test_recorder_from_env_respects_unset_var(self, monkeypatch):
        monkeypatch.delenv(SPANS_ENV, raising=False)
        assert recorder_from_env() is None
        assert not tracing_enabled()

    def test_recorder_from_env_installs_when_set(self, monkeypatch):
        monkeypatch.setenv(SPANS_ENV, "1")
        rec = recorder_from_env()
        assert rec is not None
        assert current_recorder() is rec


class TestRecording:
    def test_span_records_wall_cpu_and_status(self):
        rec = SpanRecorder()
        install_recorder(rec)
        with span("simulate", policy="lap"):
            pass
        (s,) = rec.spans()
        assert s["name"] == "simulate"
        assert s["status"] == "ok"
        assert s["attrs"] == {"policy": "lap"}
        assert s["wall_s"] >= 0.0 and s["cpu_s"] >= 0.0
        assert s["parent"] is None

    def test_nesting_sets_parent_ids(self):
        rec = SpanRecorder()
        install_recorder(rec)
        with span("outer") as outer:
            with span("inner"):
                pass
        inner, outer_rec = rec.spans()  # finish order: inner first
        assert inner["name"] == "inner"
        assert inner["parent"] == outer.id
        assert outer_rec["parent"] is None

    def test_exception_marks_span_error(self):
        rec = SpanRecorder()
        install_recorder(rec)
        with pytest.raises(ValueError):
            with span("boom"):
                raise ValueError("x")
        (s,) = rec.spans()
        assert s["status"] == "error"

    def test_explicit_finish_is_idempotent(self):
        rec = SpanRecorder()
        install_recorder(rec)
        handle = start_span("kernel.checkout")
        handle.finish()
        handle.finish()
        assert len(rec) == 1

    def test_set_attaches_mid_span_attributes(self):
        rec = SpanRecorder()
        install_recorder(rec)
        with span("exec.batch", jobs=3) as s:
            s.set(completed=3)
        (record,) = rec.spans()
        assert record["attrs"] == {"jobs": 3, "completed": 3}

    def test_abandoned_child_does_not_misparent_siblings(self):
        # A child finished out of order (or never finished) must not
        # leave later spans claiming it as parent.
        rec = SpanRecorder()
        install_recorder(rec)
        outer = start_span("outer")
        start_span("abandoned")  # never finished
        outer.finish()
        with span("next"):
            pass
        by_name = {s["name"]: s for s in rec.spans()}
        assert by_name["next"]["parent"] != by_name["outer"]["id"]

    def test_threads_keep_separate_parent_stacks(self):
        rec = SpanRecorder()
        install_recorder(rec)
        ready = threading.Event()
        release = threading.Event()

        def worker():
            with span("worker"):
                ready.set()
                release.wait(timeout=10)

        t = threading.Thread(target=worker)
        with span("main"):
            t.start()
            ready.wait(timeout=10)
            release.set()
            t.join(timeout=10)
        by_name = {s["name"]: s for s in rec.spans()}
        assert by_name["worker"]["parent"] is None  # not "main"'s child

    def test_drain_empties_the_recorder(self):
        rec = SpanRecorder()
        install_recorder(rec)
        with span("a"):
            pass
        assert len(rec.drain()) == 1
        assert len(rec) == 0

    def test_install_rejects_non_recorder(self):
        with pytest.raises(TelemetryError):
            install_recorder("nope")


class TestDumpAndRead:
    def test_dump_and_read_round_trip(self, tmp_path):
        rec = SpanRecorder()
        install_recorder(rec)
        with span("simulate", policy="lap"):
            pass
        path = rec.dump(tmp_path / "spans.jsonl")
        spans = read_spans(path)
        assert [s["name"] for s in spans] == ["simulate"]

    def test_dump_to_directory_uses_standard_name(self, tmp_path):
        rec = SpanRecorder()
        install_recorder(rec)
        with span("a"):
            pass
        path = rec.dump(tmp_path)
        assert path == tmp_path / "spans.jsonl"
        assert path.exists()

    def test_dump_serializes_rich_attrs_as_strings(self, tmp_path):
        rec = SpanRecorder()
        install_recorder(rec)
        with span("a", path=tmp_path):  # a pathlib.Path attr
            pass
        dumped = read_spans(rec.dump(tmp_path))
        assert dumped[0]["attrs"]["path"] == str(tmp_path)

    def test_read_rejects_malformed_lines(self, tmp_path):
        bad = tmp_path / "spans.jsonl"
        bad.write_text('{"name": "ok"}\nnot json\n')
        with pytest.raises(TelemetryError, match="malformed"):
            read_spans(bad)

    def test_read_missing_file_raises(self, tmp_path):
        with pytest.raises(TelemetryError):
            read_spans(tmp_path / "absent.jsonl")

    def test_summarize_rolls_up_per_name(self):
        spans = [
            {"name": "a", "wall_s": 1.0, "cpu_s": 0.5},
            {"name": "a", "wall_s": 3.0, "cpu_s": 0.5},
            {"name": "b", "wall_s": 0.25, "cpu_s": 0.25},
        ]
        summary = summarize_spans(spans)
        assert summary["a"]["count"] == 2
        assert summary["a"]["wall_s"] == 4.0
        assert summary["a"]["mean_wall_s"] == 2.0
        assert summary["b"]["count"] == 1


class TestThreading:
    def test_concurrent_spans_all_recorded(self):
        rec = SpanRecorder()
        install_recorder(rec)
        n_threads, per_thread = 8, 50

        def worker():
            for _ in range(per_thread):
                with span("w"):
                    pass

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert len(rec) == n_threads * per_thread
        ids = [s["id"] for s in rec.spans()]
        assert len(set(ids)) == len(ids), "span ids must be unique"


class TestIntegration:
    def test_simulator_emits_simulate_span(self, small_system):
        from repro import make_workload, simulate

        rec = SpanRecorder()
        install_recorder(rec)
        workload = make_workload("mcf", small_system, seed=1)
        simulate(small_system, "lap", workload, refs_per_core=200)
        names = [s["name"] for s in rec.spans()]
        assert "simulate" in names

    def test_kernel_spans_nest_under_simulate(self):
        from repro import make_workload, simulate
        from repro.kernel import numpy_available
        from repro.sim import SystemConfig

        if not numpy_available():
            pytest.skip("numpy-less environment: no batched kernel")
        rec = SpanRecorder()
        install_recorder(rec)
        system = SystemConfig.scaled(tag_backend="soa").probe_free()
        workload = make_workload("WL1", system, seed=0)
        simulate(system, "lap", workload, refs_per_core=400)
        by_name = {s["name"]: s for s in rec.spans()}
        sim_id = by_name["simulate"]["id"]
        for phase in ("kernel.checkout", "kernel.batch_loop", "kernel.checkin"):
            assert phase in by_name
            assert by_name[phase]["parent"] == sim_id

    def test_execute_jobs_dumps_spans_next_to_manifest(self, tmp_path):
        from repro.exec import JobSpec, ResultCache, WorkloadSpec, execute_jobs
        from repro.sim import SystemConfig

        rec = SpanRecorder()
        install_recorder(rec)
        cache = ResultCache(tmp_path / "cache")
        job = JobSpec(
            system=SystemConfig.scaled(ncores=2, llc_kb=32, l2_kb=4),
            workload=WorkloadSpec.duplicate("mcf", ncores=2, seed=0),
            policy="lap",
            refs_per_core=300,
        )
        execute_jobs([job], cache=cache, manifest_dir=cache.root)
        dump = cache.root / "spans.jsonl"
        assert dump.exists()
        names = {s["name"] for s in read_spans(dump)}
        assert {"exec.batch", "exec.job", "simulate"} <= names

    def test_no_dump_when_tracing_disabled(self, tmp_path):
        from repro.exec import JobSpec, ResultCache, WorkloadSpec, execute_jobs
        from repro.sim import SystemConfig

        cache = ResultCache(tmp_path / "cache")
        job = JobSpec(
            system=SystemConfig.scaled(ncores=2, llc_kb=32, l2_kb=4),
            workload=WorkloadSpec.duplicate("mcf", ncores=2, seed=0),
            policy="lap",
            refs_per_core=200,
        )
        execute_jobs([job], cache=cache, manifest_dir=cache.root)
        assert not (cache.root / "spans.jsonl").exists()

    def test_cli_spans_flag_writes_dump(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "trace.jsonl"
        rc = main(["--spans", str(out), "run", "WL1", "lap", "--refs", "200"])
        assert rc == 0
        spans = read_spans(out)
        assert any(s["name"] == "simulate" for s in spans)
        assert not tracing_enabled(), "CLI must uninstall its recorder"
