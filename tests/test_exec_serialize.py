"""Round-trip tests for the repro.exec serialisation layer."""

import json

import pytest

from repro.errors import ExecutionError
from repro.exec import (
    result_from_dict,
    result_to_dict,
    system_from_dict,
    system_to_dict,
)
from repro.sim import SystemConfig, simulate
from repro.sim.runner import run_one, duplicate_builder, multithreaded_builder
from repro.sim.sweeps import RECORD_METRICS


def small_system(**kwargs) -> SystemConfig:
    return SystemConfig.scaled(**{"ncores": 2, "llc_kb": 32, "l2_kb": 4, **kwargs})


@pytest.fixture(scope="module")
def multiprogrammed_result():
    return run_one(small_system(), "lap", duplicate_builder("mcf", ncores=2), 1500)


@pytest.fixture(scope="module")
def multithreaded_result():
    return run_one(
        small_system(), "non-inclusive", multithreaded_builder("canneal", nthreads=2), 1200
    )


class TestResultRoundTrip:
    def test_every_record_metric_bit_identical(self, multiprogrammed_result):
        r = multiprogrammed_result
        restored = result_from_dict(json.loads(json.dumps(result_to_dict(r))))
        for metric in RECORD_METRICS:
            assert getattr(restored, metric) == getattr(r, metric), metric

    def test_full_dict_identity_through_json(self, multiprogrammed_result):
        d = result_to_dict(multiprogrammed_result)
        assert result_to_dict(result_from_dict(json.loads(json.dumps(d)))) == d

    def test_scalar_fields_preserved(self, multiprogrammed_result):
        r = multiprogrammed_result
        restored = result_from_dict(result_to_dict(r))
        assert restored.policy == r.policy
        assert restored.workload == r.workload
        assert restored.system == r.system
        assert restored.refs_per_core == r.refs_per_core
        assert restored.instructions == r.instructions
        assert restored.cycles == r.cycles
        assert restored.core_instructions == r.core_instructions
        assert restored.core_cycles == r.core_cycles
        assert restored.extra == r.extra

    def test_ctc_histogram_keys_restored_as_ints(self, multiprogrammed_result):
        r = multiprogrammed_result
        assert r.loop.ctc_histogram, "fixture should exercise loop blocks"
        restored = result_from_dict(json.loads(json.dumps(result_to_dict(r))))
        assert restored.loop.ctc_histogram == r.loop.ctc_histogram
        assert all(isinstance(k, int) for k in restored.loop.ctc_histogram)

    def test_coherence_round_trip(self, multithreaded_result):
        r = multithreaded_result
        assert r.coherence is not None
        restored = result_from_dict(json.loads(json.dumps(result_to_dict(r))))
        assert restored.coherence == r.coherence
        assert restored.snoop_traffic == r.snoop_traffic

    def test_coherence_none_round_trip(self, multiprogrammed_result):
        assert multiprogrammed_result.coherence is None
        restored = result_from_dict(result_to_dict(multiprogrammed_result))
        assert restored.coherence is None

    def test_methods_on_run_result(self, multiprogrammed_result):
        from repro.sim import RunResult

        d = multiprogrammed_result.to_dict()
        restored = RunResult.from_dict(d)
        assert restored.to_dict() == d

    def test_malformed_dict_rejected(self):
        with pytest.raises(ExecutionError):
            result_from_dict({"policy": "lap"})
        with pytest.raises(ExecutionError):
            result_from_dict("not a dict")


class TestSystemRoundTrip:
    @pytest.mark.parametrize(
        "system",
        [
            small_system(),
            small_system(hybrid=True),
            SystemConfig.table2(),
            small_system(duel_interval=512, label="custom"),
        ],
        ids=["scaled", "hybrid", "table2", "custom"],
    )
    def test_equal_after_json(self, system):
        restored = system_from_dict(json.loads(json.dumps(system_to_dict(system))))
        assert restored == system

    def test_restored_system_simulates_identically(self):
        system = small_system()
        restored = system_from_dict(system_to_dict(system))
        builder = duplicate_builder("lbm", ncores=2)
        a = run_one(system, "exclusive", builder, 800)
        b = run_one(restored, "exclusive", builder, 800)
        assert result_to_dict(a) == result_to_dict(b)

    def test_malformed_dict_rejected(self):
        with pytest.raises(ExecutionError):
            system_from_dict({"label": "x"})
