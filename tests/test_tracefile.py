"""Tests for trace capture/replay (workloads.tracefile)."""

import json
import zipfile

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads import LoopRegion, SyntheticTrace
from repro.workloads import tracefile as tracefile_mod
from repro.workloads.tracefile import (
    ReplayTrace,
    TraceWriter,
    load_trace,
    save_trace,
    trace_info,
    verify_trace,
)


def make_gen(seed=3):
    return SyntheticTrace(
        [(LoopRegion(0, 64 * 64), 1.0)], seed=seed, name="looper", instr_per_ref=5.0
    )


def write_v1(path, addrs, writes, length=None, name="v1trace", instr_per_ref=4.0):
    """A format-v1 archive (single addrs/writes pair, no checksum)."""
    meta = {
        "version": 1,
        "name": name,
        "instr_per_ref": instr_per_ref,
        "length": int(length if length is not None else len(addrs)),
    }
    np.savez(
        path,
        addrs=np.asarray(addrs, dtype=np.uint64),
        writes=np.asarray(writes, dtype=bool),
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
    )
    return path


def drop_member(path, member):
    """Rewrite a zip archive without one member (simulated truncation)."""
    with zipfile.ZipFile(path) as zf:
        names = zf.namelist()
        kept = {n: zf.read(n) for n in names if n != member}
    assert member in names, f"{member} not in {names}"
    with zipfile.ZipFile(path, "w") as zf:
        for n, blob in kept.items():
            zf.writestr(n, blob)


def tamper_chunk(path, member="chunk_0000_addrs.npy"):
    """Flip one address in a chunk without touching lengths or meta."""
    with zipfile.ZipFile(path) as zf:
        members = {n: zf.read(n) for n in zf.namelist()}
    buf = np.frombuffer(members[member], dtype=np.uint8).copy()
    buf[-1] ^= 0xFF  # last byte is array data, well past the npy header
    members[member] = buf.tobytes()
    with zipfile.ZipFile(path, "w") as zf:
        for n, blob in members.items():
            zf.writestr(n, blob)


class _SpyArchive:
    """Wraps the real NpzFile to record whether close() was called."""

    def __init__(self, real):
        self._real = real
        self.closed = False

    def __getitem__(self, key):
        return self._real[key]

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    def close(self):
        self.closed = True
        self._real.close()


@pytest.fixture
def spy_load(monkeypatch):
    """Patch np.load (as tracefile sees it) to hand out spy archives."""
    spies = []
    real_load = np.load

    def _load(path, *args, **kwargs):
        spy = _SpyArchive(real_load(path, *args, **kwargs))
        spies.append(spy)
        return spy

    monkeypatch.setattr(tracefile_mod.np, "load", _load)
    return spies


class TestSaveLoadRoundtrip:
    def test_roundtrip_preserves_refs(self, tmp_path):
        path = save_trace(tmp_path / "t", make_gen(), 500)
        replay = load_trace(path)
        a1, w1 = make_gen().batch(500)
        a2, w2 = replay.batch(500)
        assert (a1 == a2).all() and (w1 == w2).all()

    def test_metadata_preserved(self, tmp_path):
        path = save_trace(tmp_path / "t", make_gen(), 100)
        replay = load_trace(path)
        assert replay.name == "looper"
        assert replay.instr_per_ref == 5.0
        assert len(replay) == 100

    def test_npz_suffix_appended(self, tmp_path):
        path = save_trace(tmp_path / "mytrace", make_gen(), 10)
        assert path.suffix == ".npz"
        assert path.exists()

    def test_load_without_suffix(self, tmp_path):
        save_trace(tmp_path / "t", make_gen(), 10)
        replay = load_trace(tmp_path / "t")
        assert len(replay) == 10

    def test_multi_batch_capture(self, tmp_path):
        path = save_trace(tmp_path / "t", make_gen(), 1000, batch=128)
        assert len(load_trace(path)) == 1000

    def test_zero_length_rejected(self, tmp_path):
        with pytest.raises(WorkloadError):
            save_trace(tmp_path / "t", make_gen(), 0)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(WorkloadError):
            load_trace(tmp_path / "nope.npz")

    def test_corrupt_file_raises(self, tmp_path):
        bad = tmp_path / "bad.npz"
        bad.write_bytes(b"not an npz")
        with pytest.raises(WorkloadError):
            load_trace(bad)


class TestReplayTrace:
    def _replay(self, n=8, loop=True):
        addrs = np.arange(n, dtype=np.uint64) * 64
        writes = np.zeros(n, dtype=bool)
        writes[0] = True
        return ReplayTrace(addrs, writes, "r", 4.0, loop=loop)

    def test_wraps_when_looping(self):
        r = self._replay(4)
        a, w = r.batch(10)
        assert a.tolist() == [0, 64, 128, 192, 0, 64, 128, 192, 0, 64]
        assert w[0] and w[4] and w[8]

    def test_non_loop_exhaustion(self):
        r = self._replay(4, loop=False)
        r.batch(4)
        with pytest.raises(WorkloadError):
            r.batch(1)

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            ReplayTrace(np.array([], dtype=np.uint64), np.array([], dtype=bool), "e", 4.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(WorkloadError):
            ReplayTrace(
                np.zeros(3, dtype=np.uint64), np.zeros(2, dtype=bool), "m", 4.0
            )

    def test_nonpositive_batch_rejected(self):
        with pytest.raises(WorkloadError):
            self._replay().batch(0)


class TestLengthValidation:
    """Regression: load_trace must reject arrays that contradict
    meta["length"] instead of silently replaying a short stream."""

    def test_v1_meta_length_lie_detected(self, tmp_path):
        path = write_v1(
            tmp_path / "lie.npz",
            np.arange(50, dtype=np.uint64) * 64,
            np.zeros(50, dtype=bool),
            length=500,  # meta claims 10x the actual content
        )
        with pytest.raises(WorkloadError, match="truncated trace file"):
            load_trace(path)

    def test_v1_honest_archive_loads(self, tmp_path):
        path = write_v1(
            tmp_path / "ok.npz",
            np.arange(50, dtype=np.uint64) * 64,
            np.zeros(50, dtype=bool),
        )
        replay = load_trace(path)
        assert len(replay) == 50
        assert replay.name == "v1trace"

    def test_v1_flagged_by_verify(self, tmp_path):
        path = write_v1(
            tmp_path / "ok.npz",
            np.arange(50, dtype=np.uint64) * 64,
            np.zeros(50, dtype=bool),
        )
        info = verify_trace(path)
        assert info.version == 1
        assert info.checksum is None

    def test_v2_missing_chunk_detected(self, tmp_path):
        path = save_trace(tmp_path / "t", make_gen(), 600, batch=200)
        drop_member(path, "chunk_0002_addrs.npy")
        with pytest.raises(WorkloadError, match="truncated trace file"):
            load_trace(path)

    def test_v2_chunk_length_sum_mismatch_detected(self, tmp_path):
        import io

        path = save_trace(tmp_path / "t", make_gen(), 400, batch=200)
        # rewrite meta so the declared total contradicts the chunks
        with zipfile.ZipFile(path) as zf:
            members = {n: zf.read(n) for n in zf.namelist()}
        with np.load(path) as archive:
            meta = json.loads(bytes(archive["meta"]).decode())
        meta["length"] = 999
        bio = io.BytesIO()
        np.lib.format.write_array(
            bio,
            np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
            allow_pickle=False,
        )
        members["meta.npy"] = bio.getvalue()
        with zipfile.ZipFile(path, "w") as zf:
            for n, blob in members.items():
                zf.writestr(n, blob)
        with pytest.raises(WorkloadError, match="truncated trace file"):
            load_trace(path)


class TestChecksum:
    def test_tampered_content_caught_by_verify(self, tmp_path):
        path = save_trace(tmp_path / "t", make_gen(), 300)
        tamper_chunk(path)
        with pytest.raises(WorkloadError, match="checksum mismatch"):
            verify_trace(path)

    def test_tampered_content_caught_by_checksum_load(self, tmp_path):
        path = save_trace(tmp_path / "t", make_gen(), 300)
        tamper_chunk(path)
        with pytest.raises(WorkloadError, match="checksum mismatch"):
            load_trace(path, checksum=True)

    def test_clean_archive_passes_checksum(self, tmp_path):
        path = save_trace(tmp_path / "t", make_gen(), 300)
        info = verify_trace(path)
        assert info.checksum is not None
        assert len(load_trace(path, checksum=True)) == 300

    def test_capture_is_byte_deterministic(self, tmp_path):
        """The corpus content-addresses whole files, so identical
        streams must serialise to identical bytes."""
        p1 = save_trace(tmp_path / "a", make_gen(seed=9), 777, batch=100)
        p2 = save_trace(tmp_path / "b", make_gen(seed=9), 777, batch=100)
        assert p1.read_bytes() == p2.read_bytes()

    def test_trace_info_reads_meta_only(self, tmp_path):
        path = save_trace(tmp_path / "t", make_gen(), 450, batch=100)
        info = trace_info(path)
        assert info.length == 450
        assert info.chunks == 5
        assert info.version == 2


class TestHandleLifetime:
    """Regression: load_trace leaked the NpzFile handle (np.load was
    never closed) — both success and failure paths must close it."""

    def test_archive_closed_on_success(self, tmp_path, spy_load):
        path = save_trace(tmp_path / "t", make_gen(), 100)
        load_trace(path)
        assert spy_load and all(s.closed for s in spy_load)

    def test_archive_closed_on_validation_failure(self, tmp_path, spy_load):
        path = write_v1(
            tmp_path / "lie.npz",
            np.arange(10, dtype=np.uint64) * 64,
            np.zeros(10, dtype=bool),
            length=99,
        )
        with pytest.raises(WorkloadError):
            load_trace(path)
        assert spy_load and all(s.closed for s in spy_load)

    def test_archive_closed_by_verify_and_info(self, tmp_path, spy_load):
        path = save_trace(tmp_path / "t", make_gen(), 100)
        verify_trace(path)
        trace_info(path)
        assert len(spy_load) == 2 and all(s.closed for s in spy_load)


class _ShortGen:
    """A generator that returns fewer references than asked."""

    name = "shorty"
    instr_per_ref = 4.0

    def __init__(self, deliver):
        self.deliver = deliver

    def batch(self, n):
        take = min(n, self.deliver)
        self.deliver -= take
        return (
            np.arange(take, dtype=np.uint64) * 64,
            np.zeros(take, dtype=bool),
        )


class TestShortCapture:
    """Regression: save_trace trusted generator.batch(take) to return
    exactly take references; a short generator recorded a lying
    length."""

    def test_short_generator_raises(self, tmp_path):
        with pytest.raises(WorkloadError, match="short capture"):
            save_trace(tmp_path / "t", _ShortGen(100), 500, batch=200)

    def test_no_partial_file_left_behind(self, tmp_path):
        with pytest.raises(WorkloadError):
            save_trace(tmp_path / "t", _ShortGen(100), 500, batch=200)
        assert not (tmp_path / "t.npz").exists()

    def test_writer_short_capture_at_close(self, tmp_path):
        writer = TraceWriter(tmp_path / "t", "w", 4.0, expected_length=100)
        writer.append(np.zeros(10, dtype=np.uint64), np.zeros(10, dtype=bool))
        with pytest.raises(WorkloadError, match="short capture"):
            writer.close()
        assert not (tmp_path / "t.npz").exists()

    def test_writer_context_manager_aborts_on_error(self, tmp_path):
        with pytest.raises(RuntimeError):
            with TraceWriter(tmp_path / "t", "w", 4.0) as writer:
                writer.append(
                    np.zeros(10, dtype=np.uint64), np.zeros(10, dtype=bool)
                )
                raise RuntimeError("boom")
        assert not (tmp_path / "t.npz").exists()


class TestReplayAccounting:
    """Regression: ReplayTrace.batch advanced _consumed before copying,
    so a failed copy corrupted the cursor state."""

    def _replay(self, n=8):
        return ReplayTrace(
            np.arange(n, dtype=np.uint64) * 64,
            np.zeros(n, dtype=bool),
            "r",
            4.0,
        )

    def test_failed_copy_leaves_cursor_unchanged(self):
        r = self._replay(8)
        r.batch(3)
        assert r.consumed == 3
        # Corrupt the backing store so the copy loop blows up mid-batch
        # (a short writes array makes the slice assignment shape-mismatch).
        r._writes = np.zeros(5, dtype=bool)
        with pytest.raises(WorkloadError, match="corrupt trace"):
            r.batch(4)
        assert r.consumed == 3  # accounting not advanced by the failure
        # Restore and confirm the stream resumes exactly where it was.
        r._writes = np.zeros(8, dtype=bool)
        a, _ = r.batch(2)
        assert a.tolist() == [3 * 64, 4 * 64]

    def test_reset_rewinds(self):
        r = self._replay(4)
        first, _ = r.batch(3)
        r.reset()
        assert r.consumed == 0
        again, _ = r.batch(3)
        assert first.tolist() == again.tolist()

    def test_fork_is_independent(self):
        r = self._replay(4)
        r.batch(2)
        fork = r.fork()
        assert fork.consumed == 0
        a, _ = fork.batch(2)
        assert a.tolist() == [0, 64]  # fork starts at the beginning
        assert r.consumed == 2  # parent unaffected by the fork's reads

    def test_consumed_tracks_wrapped_batches(self):
        r = self._replay(4)
        r.batch(10)
        assert r.consumed == 10


class TestReplayInSimulator:
    def test_replayed_trace_drives_simulation(self, tmp_path, small_system):
        from repro import Workload, simulate
        from repro.workloads import build_benchmark

        ctx = small_system.scale_context()
        gens = [
            build_benchmark("mcf", ctx, seed=c, base=c << 40)
            for c in range(small_system.hierarchy.ncores)
        ]
        paths = [save_trace(tmp_path / f"core{i}", g, 2000) for i, g in enumerate(gens)]
        replays = [load_trace(p) for p in paths]
        wl = Workload(
            name="replayed-mcf",
            kind="multiprogrammed",
            generators=replays,
            benchmarks=("mcf",) * len(replays),
        )
        result = simulate(small_system, "lap", wl, refs_per_core=2000)
        assert result.instructions > 0

    def test_replay_matches_live_run(self, tmp_path, small_system):
        """A replayed trace must produce bit-identical simulation stats."""
        from repro import Workload, make_workload, simulate

        live = make_workload("astar", small_system, seed=7)
        captured = make_workload("astar", small_system, seed=7)
        paths = [
            save_trace(tmp_path / f"c{i}", g, 2000)
            for i, g in enumerate(captured.generators)
        ]
        replay_wl = Workload(
            name="astar-replay",
            kind="multiprogrammed",
            generators=[load_trace(p) for p in paths],
            benchmarks=live.benchmarks,
        )
        r_live = simulate(small_system, "exclusive", live, refs_per_core=2000)
        r_replay = simulate(small_system, "exclusive", replay_wl, refs_per_core=2000)
        assert r_live.llc.snapshot() == r_replay.llc.snapshot()
