"""Tests for trace capture/replay (workloads.tracefile)."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads import LoopRegion, SyntheticTrace
from repro.workloads.tracefile import ReplayTrace, load_trace, save_trace


def make_gen(seed=3):
    return SyntheticTrace(
        [(LoopRegion(0, 64 * 64), 1.0)], seed=seed, name="looper", instr_per_ref=5.0
    )


class TestSaveLoadRoundtrip:
    def test_roundtrip_preserves_refs(self, tmp_path):
        path = save_trace(tmp_path / "t", make_gen(), 500)
        replay = load_trace(path)
        a1, w1 = make_gen().batch(500)
        a2, w2 = replay.batch(500)
        assert (a1 == a2).all() and (w1 == w2).all()

    def test_metadata_preserved(self, tmp_path):
        path = save_trace(tmp_path / "t", make_gen(), 100)
        replay = load_trace(path)
        assert replay.name == "looper"
        assert replay.instr_per_ref == 5.0
        assert len(replay) == 100

    def test_npz_suffix_appended(self, tmp_path):
        path = save_trace(tmp_path / "mytrace", make_gen(), 10)
        assert path.suffix == ".npz"
        assert path.exists()

    def test_load_without_suffix(self, tmp_path):
        save_trace(tmp_path / "t", make_gen(), 10)
        replay = load_trace(tmp_path / "t")
        assert len(replay) == 10

    def test_multi_batch_capture(self, tmp_path):
        path = save_trace(tmp_path / "t", make_gen(), 1000, batch=128)
        assert len(load_trace(path)) == 1000

    def test_zero_length_rejected(self, tmp_path):
        with pytest.raises(WorkloadError):
            save_trace(tmp_path / "t", make_gen(), 0)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(WorkloadError):
            load_trace(tmp_path / "nope.npz")

    def test_corrupt_file_raises(self, tmp_path):
        bad = tmp_path / "bad.npz"
        bad.write_bytes(b"not an npz")
        with pytest.raises(WorkloadError):
            load_trace(bad)


class TestReplayTrace:
    def _replay(self, n=8, loop=True):
        addrs = np.arange(n, dtype=np.uint64) * 64
        writes = np.zeros(n, dtype=bool)
        writes[0] = True
        return ReplayTrace(addrs, writes, "r", 4.0, loop=loop)

    def test_wraps_when_looping(self):
        r = self._replay(4)
        a, w = r.batch(10)
        assert a.tolist() == [0, 64, 128, 192, 0, 64, 128, 192, 0, 64]
        assert w[0] and w[4] and w[8]

    def test_non_loop_exhaustion(self):
        r = self._replay(4, loop=False)
        r.batch(4)
        with pytest.raises(WorkloadError):
            r.batch(1)

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            ReplayTrace(np.array([], dtype=np.uint64), np.array([], dtype=bool), "e", 4.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(WorkloadError):
            ReplayTrace(
                np.zeros(3, dtype=np.uint64), np.zeros(2, dtype=bool), "m", 4.0
            )

    def test_nonpositive_batch_rejected(self):
        with pytest.raises(WorkloadError):
            self._replay().batch(0)


class TestReplayInSimulator:
    def test_replayed_trace_drives_simulation(self, tmp_path, small_system):
        from repro import Workload, simulate
        from repro.workloads import build_benchmark

        ctx = small_system.scale_context()
        gens = [
            build_benchmark("mcf", ctx, seed=c, base=c << 40)
            for c in range(small_system.hierarchy.ncores)
        ]
        paths = [save_trace(tmp_path / f"core{i}", g, 2000) for i, g in enumerate(gens)]
        replays = [load_trace(p) for p in paths]
        wl = Workload(
            name="replayed-mcf",
            kind="multiprogrammed",
            generators=replays,
            benchmarks=("mcf",) * len(replays),
        )
        result = simulate(small_system, "lap", wl, refs_per_core=2000)
        assert result.instructions > 0

    def test_replay_matches_live_run(self, tmp_path, small_system):
        """A replayed trace must produce bit-identical simulation stats."""
        from repro import Workload, make_workload, simulate

        live = make_workload("astar", small_system, seed=7)
        captured = make_workload("astar", small_system, seed=7)
        paths = [
            save_trace(tmp_path / f"c{i}", g, 2000)
            for i, g in enumerate(captured.generators)
        ]
        replay_wl = Workload(
            name="astar-replay",
            kind="multiprogrammed",
            generators=[load_trace(p) for p in paths],
            benchmarks=live.benchmarks,
        )
        r_live = simulate(small_system, "exclusive", live, refs_per_core=2000)
        r_replay = simulate(small_system, "exclusive", replay_wl, refs_per_core=2000)
        assert r_live.llc.snapshot() == r_replay.llc.snapshot()
