"""Integration tests asserting the paper's qualitative results.

These are the claims the reproduction must preserve (shape, not
absolute numbers): WL/WH classification, LAP's dominance over both
traditional policies, write-traffic reduction, MPKI behaviour, hybrid
placement gains, and the write/read-ratio scaling trend.
"""

import pytest

from repro import SystemConfig, make_workload, simulate
from repro.energy import SRAM, STT_RAM

REFS = 10_000


def run_all(system, workload_name, policies, refs=REFS):
    out = {}
    for pol in policies:
        wl = make_workload(workload_name, system)
        out[pol] = simulate(system, pol, wl, refs_per_core=refs)
    return out


@pytest.fixture(scope="module")
def stt_system():
    return SystemConfig.scaled()


@pytest.fixture(scope="module")
def wh1_results(stt_system):
    return run_all(
        stt_system, "WH1", ("non-inclusive", "exclusive", "dswitch", "lap")
    )


@pytest.fixture(scope="module")
def wl2_results(stt_system):
    return run_all(
        stt_system, "WL2", ("non-inclusive", "exclusive", "dswitch", "lap")
    )


class TestNoDominantTraditionalPolicy:
    """Section II: neither noni nor ex dominates on STT-RAM."""

    def test_wh_mix_favors_non_inclusion(self, wh1_results):
        assert wh1_results["exclusive"].epi > wh1_results["non-inclusive"].epi

    def test_wl_mix_favors_exclusion(self, wl2_results):
        assert wl2_results["exclusive"].epi < wl2_results["non-inclusive"].epi

    def test_sram_never_punishes_exclusion(self):
        """Fig. 12a: with leakage-dominated SRAM the write-traffic
        penalty of exclusion disappears — exclusion is at worst on par
        with non-inclusion everywhere and clearly better somewhere.

        (The paper shows a uniform ex win; at scaled geometry the
        dynamic share is higher, so we assert parity-or-better.)"""
        system = SystemConfig.scaled(tech=SRAM)
        ratios = {}
        for mix in ("WL2", "WL3", "WH1", "WH5"):
            res = run_all(system, mix, ("non-inclusive", "exclusive"), refs=8000)
            ratios[mix] = res["exclusive"].epi / res["non-inclusive"].epi
        assert all(r <= 1.03 for r in ratios.values()), ratios
        assert min(ratios.values()) < 0.97, ratios

    def test_wl_wh_classification_tracks_write_ratio(self, wh1_results, wl2_results):
        wrel_wh = wh1_results["exclusive"].llc_writes / wh1_results["non-inclusive"].llc_writes
        wrel_wl = wl2_results["exclusive"].llc_writes / wl2_results["non-inclusive"].llc_writes
        assert wrel_wh > 1.0 > wrel_wl


class TestLAPHeadlineClaims:
    """Section VI-B: LAP beats both baselines in energy on both classes."""

    @pytest.mark.parametrize("fixture_name", ["wh1_results", "wl2_results"])
    def test_lap_beats_both_baselines(self, fixture_name, request):
        res = request.getfixturevalue(fixture_name)
        assert res["lap"].epi < res["non-inclusive"].epi
        assert res["lap"].epi < res["exclusive"].epi

    def test_lap_write_reduction(self, wh1_results):
        # paper: -35% vs noni and -29% vs ex on average; require clear
        # double-digit reductions on the loop-heavy mix.
        lap = wh1_results["lap"].llc_writes
        assert lap < 0.8 * wh1_results["non-inclusive"].llc_writes
        assert lap < 0.8 * wh1_results["exclusive"].llc_writes

    def test_lap_mpki_tracks_exclusion_not_noni(self, wh1_results):
        # paper: LAP ~22% fewer misses than noni, within ~1% of ex.
        lap, ex, noni = (
            wh1_results["lap"].mpki,
            wh1_results["exclusive"].mpki,
            wh1_results["non-inclusive"].mpki,
        )
        assert lap < noni
        assert lap < ex * 1.3

    def test_lap_small_worst_case_throughput_loss(self, wh1_results, wl2_results):
        for res in (wh1_results, wl2_results):
            best = max(res["non-inclusive"].throughput, res["exclusive"].throughput)
            assert res["lap"].throughput > best * 0.9

    def test_lap_beats_dswitch(self, wh1_results, wl2_results):
        # Dswitch can only pick the better traditional mode; LAP
        # eliminates both kinds of redundant writes.
        for res in (wh1_results, wl2_results):
            assert res["lap"].epi <= res["dswitch"].epi * 1.02


class TestRedundantWriteElimination:
    def test_lap_eliminates_all_fills(self, wh1_results, wl2_results):
        for res in (wh1_results, wl2_results):
            assert res["lap"].llc.fill_writes == 0

    def test_noni_redundant_fill_fraction_significant_on_wl(self, wl2_results):
        # WL2 contains libquantum + GemsFDTD: many useless fills.
        assert wl2_results["non-inclusive"].redundant_fill_fraction > 0.25

    def test_lap_loop_occupancy_highest(self, wh1_results):
        # Fig. 16: LAP keeps more loop-blocks resident than exclusion.
        assert (
            wh1_results["lap"].llc_loop_occupancy
            >= wh1_results["exclusive"].llc_loop_occupancy
        )


class TestWriteReadRatioScaling:
    def test_savings_grow_with_asymmetry(self):
        savings = []
        for ratio in (2.0, 8.0, 20.0):
            system = SystemConfig.scaled(tech=STT_RAM.with_write_read_ratio(ratio))
            res = run_all(system, "WH1", ("non-inclusive", "lap"), refs=6000)
            savings.append(1 - res["lap"].epi / res["non-inclusive"].epi)
        assert savings[0] < savings[1] < savings[2]

    def test_savings_positive_even_at_2x(self):
        system = SystemConfig.scaled(tech=STT_RAM.with_write_read_ratio(2.0))
        res = run_all(system, "WH1", ("non-inclusive", "lap"), refs=6000)
        assert 1 - res["lap"].epi / res["non-inclusive"].epi > 0


class TestHybridClaims:
    def test_lhybrid_beats_lap_on_hybrid(self):
        system = SystemConfig.scaled(hybrid=True)
        res = run_all(
            system, "WL3", ("non-inclusive", "lap", "lhybrid"), refs=8000
        )
        assert res["lhybrid"].epi < res["lap"].epi
        assert res["lhybrid"].epi < res["non-inclusive"].epi

    def test_lhybrid_reduces_stt_write_share(self):
        system = SystemConfig.scaled(hybrid=True)
        res = run_all(system, "WL3", ("lap", "lhybrid"), refs=8000)
        share = lambda r: r.llc.data_writes_stt / max(1, r.llc.data_writes)
        assert share(res["lhybrid"]) < share(res["lap"])


class TestMultithreadedClaims:
    def test_lap_saves_energy_on_streamcluster(self):
        system = SystemConfig.scaled()
        res = run_all(
            system, "streamcluster", ("non-inclusive", "exclusive", "lap"), refs=6000
        )
        assert res["lap"].total_energy < res["non-inclusive"].total_energy
        assert res["lap"].total_energy < res["exclusive"].total_energy

    def test_snoop_traffic_positive_and_tracks_misses(self):
        system = SystemConfig.scaled()
        res = run_all(system, "canneal", ("non-inclusive", "exclusive"), refs=4000)
        for r in res.values():
            assert r.snoop_traffic > 0
