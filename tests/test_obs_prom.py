"""Tests for Prometheus text exposition (repro.obs.prom)."""

import pytest

from repro.errors import TelemetryError
from repro.obs.prom import (
    CONTENT_TYPE,
    check_exposition,
    render_prometheus,
    sanitize_name,
)
from repro.telemetry.metrics import MetricsRegistry


def populated_registry() -> MetricsRegistry:
    r = MetricsRegistry()
    r.counter("exec.jobs").inc(7)
    r.counter("serve.backpressure").inc()
    r.gauge("serve.queue_depth").set(3)
    r.gauge("serve.inflight").set(1.5)
    h = r.histogram("sim.wall_s")
    for v in (0.0015, 0.0015, 0.04, 7_000_000, 1e12):
        h.observe(v)
    return r


class TestSanitize:
    def test_dots_become_underscores_with_prefix(self):
        assert sanitize_name("serve.job_wall_s") == "repro_serve_job_wall_s"

    def test_custom_prefix(self):
        assert sanitize_name("a.b", prefix="x_") == "x_a_b"

    def test_rejects_empty(self):
        with pytest.raises(TelemetryError):
            sanitize_name("")


class TestRender:
    def test_counters_get_total_suffix(self):
        text = render_prometheus(populated_registry())
        assert "# TYPE repro_exec_jobs_total counter" in text
        assert "repro_exec_jobs_total 7" in text

    def test_gauges_render_plain(self):
        text = render_prometheus(populated_registry())
        assert "# TYPE repro_serve_queue_depth gauge" in text
        assert "repro_serve_queue_depth 3" in text
        assert "repro_serve_inflight 1.5" in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        text = render_prometheus(populated_registry())
        lines = text.splitlines()
        buckets = [l for l in lines if l.startswith("repro_sim_wall_s_bucket")]
        # ladder order, cumulative counts: 2 at 2e-3, +1 at 5e-2 (0.04
        # rounds up to the 5e-2 bound), +1 at 1e7, +Inf = everything.
        assert 'le="0.002"} 2' in buckets[0]
        assert buckets[-1] == 'repro_sim_wall_s_bucket{le="+Inf"} 5'
        counts = [int(l.rsplit(" ", 1)[1]) for l in buckets]
        assert counts == sorted(counts), "bucket series must be cumulative"
        assert "repro_sim_wall_s_count 5" in text
        assert "repro_sim_wall_s_sum" in text

    def test_inf_bucket_equals_count_even_without_overflow(self):
        r = MetricsRegistry()
        r.histogram("h").observe(0.5)
        text = render_prometheus(r)
        assert 'repro_h_bucket{le="+Inf"} 1' in text
        assert "repro_h_count 1" in text

    def test_accepts_snapshot_dict(self):
        snap = populated_registry().snapshot()
        assert render_prometheus(snap) == render_prometheus(populated_registry())

    def test_rejects_other_sources(self):
        with pytest.raises(TelemetryError):
            render_prometheus([1, 2, 3])

    def test_extra_gauges_appended(self):
        text = render_prometheus(
            MetricsRegistry(), extra_gauges={"serve.uptime_s": 12.5}
        )
        assert "repro_serve_uptime_s 12.5" in text

    def test_empty_registry_renders_empty_document(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_every_metric_has_help_and_type(self):
        text = render_prometheus(populated_registry())
        names = {
            line.split()[0]
            for line in text.splitlines()
            if line and not line.startswith("#")
        }
        families = {n.split("{")[0] for n in names}
        for family in families:
            base = family
            for suffix in ("_bucket", "_sum", "_count"):
                if base.endswith(suffix) and f"# TYPE {base}" not in text:
                    base = base[: -len(suffix)]
            assert f"# HELP {base} " in text
            assert f"# TYPE {base} " in text

    def test_content_type_is_prometheus_0_0_4(self):
        assert "version=0.0.4" in CONTENT_TYPE


class TestExpositionFormat:
    """The acceptance check: the document parses under the line grammar."""

    def test_rendered_document_is_clean(self):
        text = render_prometheus(
            populated_registry(),
            extra_gauges={"serve.uptime_s": 3.25, "serve.jobs": 4},
        )
        assert check_exposition(text) == []

    def test_checker_catches_malformed_lines(self):
        problems = check_exposition("9leading_digit 1")
        assert problems, "names cannot start with a digit"
        problems = check_exposition("name_no_value")
        assert problems
        problems = check_exposition('ok{label="x"} not_a_number')
        assert problems

    def test_checker_accepts_labels_nan_and_inf(self):
        doc = (
            "# HELP m h\n"
            "# TYPE m gauge\n"
            'm{le="+Inf"} 4\n'
            "m_nan NaN\n"
            "m_inf +Inf\n"
        )
        assert check_exposition(doc) == []


class TestServeEndpoint:
    """/metrics?format=prom over real TCP (raw http.client: the client
    helper JSON-decodes, and this response is text/plain)."""

    def _fetch(self, port, target):
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        try:
            conn.request("GET", target)
            resp = conn.getresponse()
            return resp.status, resp.getheader("Content-Type"), resp.read()
        finally:
            conn.close()

    def test_prom_format_served_and_parses(self, tmp_path):
        from repro.exec import ResultCache
        from repro.serve import ServeConfig, ServeClient, serve_in_thread
        from repro.telemetry.metrics import MetricsRegistry, set_registry

        previous = set_registry(MetricsRegistry())
        try:
            config = ServeConfig(
                port=0, cache=ResultCache(tmp_path / "cache"),
                heartbeat_interval=None,
            )
            with serve_in_thread(config) as handle:
                from repro.exec import JobSpec, WorkloadSpec
                from repro.sim import SystemConfig

                job = JobSpec(
                    system=SystemConfig.scaled(ncores=2, llc_kb=32, l2_kb=4),
                    workload=WorkloadSpec.duplicate("mcf", ncores=2, seed=0),
                    policy="lap",
                    refs_per_core=300,
                )
                ServeClient(port=handle.port).run(job, timeout=120)
                status, ctype, body = self._fetch(
                    handle.port, "/metrics?format=prom"
                )
            assert status == 200
            assert ctype == CONTENT_TYPE
            text = body.decode("utf-8")
            assert check_exposition(text) == [], check_exposition(text)[:5]
            assert "repro_serve_completed_total 1" in text
            assert "repro_serve_queue_depth 0" in text
            assert "repro_serve_uptime_s" in text
            assert "repro_serve_jobs_done 1" in text
        finally:
            set_registry(previous)

    def test_json_stays_default_and_bad_format_is_400(self, tmp_path):
        import json as _json

        from repro.serve import ServeConfig, serve_in_thread
        from repro.telemetry.metrics import MetricsRegistry, set_registry

        previous = set_registry(MetricsRegistry())
        try:
            config = ServeConfig(port=0, heartbeat_interval=None)
            with serve_in_thread(config) as handle:
                status, ctype, body = self._fetch(handle.port, "/metrics")
                assert status == 200
                assert ctype == "application/json"
                payload = _json.loads(body)
                assert "registry" in payload and "serve" in payload
                status, _, _ = self._fetch(handle.port, "/metrics?format=xml")
                assert status == 400
        finally:
            set_registry(previous)
