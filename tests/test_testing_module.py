"""Tests for repro.testing (the public micro-hierarchy helpers)."""

import pytest

from repro.core import LAPPolicy
from repro.energy import SRAM
from repro.testing import (
    A,
    B,
    BLOCK,
    H,
    build_micro,
    micro_hierarchy_config,
    run_refs,
)


class TestMicroConfig:
    def test_named_blocks_share_the_l2_set(self):
        config = micro_hierarchy_config()
        from repro.hierarchy import CacheHierarchy
        from repro.core.policies import make_policy

        h = CacheHierarchy(config, make_policy("non-inclusive"))
        l2 = h.l2s[0]
        assert {l2.set_index(a) for a in (A, B, H)} == {0}

    def test_defaults(self):
        config = micro_hierarchy_config()
        assert config.l2.assoc == 4
        assert config.l2.size_bytes == 256  # exactly 4 blocks
        assert config.llc.assoc == 16

    def test_overrides(self):
        config = micro_hierarchy_config(
            ncores=2, llc_bytes=2048, llc_assoc=8, tech=SRAM, sram_ways=None
        )
        assert config.ncores == 2
        assert config.llc.size_bytes == 2048
        assert config.llc.tech is SRAM

    def test_block_constants_aligned(self):
        assert A == 0 and B == BLOCK and H == 7 * BLOCK


class TestBuildMicro:
    def test_accepts_policy_name(self):
        h = build_micro("exclusive")
        assert h.policy.name == "exclusive"

    def test_accepts_policy_instance(self):
        pol = LAPPolicy(replacement_mode="loop")
        h = build_micro(pol)
        assert h.policy is pol

    def test_coherence_flag(self):
        assert build_micro("lap", ncores=2, enable_coherence=True).coherence is not None
        assert build_micro("lap").coherence is None

    def test_hybrid_construction(self):
        h = build_micro("lhybrid", sram_ways=4)
        assert h.llc.hybrid


class TestRunRefs:
    def test_drives_accesses(self):
        h = build_micro("non-inclusive")
        run_refs(h, [(A, False), (B, True)])
        assert h.stats.accesses == 2
        assert h.stats.stores == 1

    def test_core_selection(self):
        h = build_micro("non-inclusive", ncores=2)
        run_refs(h, [(A, False)], core=1)
        assert h.l1s[1].peek(A) is not None
        assert h.l1s[0].peek(A) is None
