"""Tests for the deterministic trace fuzzer and its ddmin shrinker."""

import pytest

from repro.validate import (
    FuzzCase,
    fuzz,
    generate_trace,
    run_case,
    shrink_trace,
)


class TestGenerateTrace:
    def test_deterministic_per_seed(self):
        assert generate_trace(7, refs=500) == generate_trace(7, refs=500)
        assert generate_trace(7, refs=500) != generate_trace(8, refs=500)

    def test_shape(self):
        trace = generate_trace(3, refs=400, ncores=2)
        assert len(trace) == 400
        for core, addr, is_write in trace:
            assert core in (0, 1)
            assert addr % 64 == 0
            assert isinstance(is_write, bool)

    def test_single_core_stays_on_core_zero(self):
        assert {ref[0] for ref in generate_trace(1, refs=300, ncores=1)} == {0}

    def test_multicore_actually_hops(self):
        cores = {ref[0] for ref in generate_trace(2, refs=600, ncores=2)}
        assert cores == {0, 1}

    def test_mixes_reads_and_writes(self):
        kinds = {ref[2] for ref in generate_trace(5, refs=600)}
        assert kinds == {True, False}


class TestFuzzCase:
    def test_describe_names_the_setup(self):
        case = FuzzCase(seed=9, policy="lap", ncores=2, enable_coherence=True)
        text = case.describe()
        assert "lap" in text and "seed=9" in text and "coh" in text

    def test_run_case_clean_policy_passes(self):
        run_case(FuzzCase(seed=0, policy="exclusive", refs=400))  # no raise


class TestFuzzClean:
    def test_clean_policies_produce_no_failures(self):
        failures = fuzz(8, ("exclusive", "lap"), base_seed=0)
        assert failures == []

    def test_progress_reports_each_round(self):
        seen = []
        fuzz(
            4,
            ("non-inclusive",),
            coherence_modes=(False,),
            progress=lambda i, case: seen.append((i, case.describe())),
        )
        assert [i for i, _ in seen] == [0, 1, 2, 3]


class TestShrink:
    def test_removes_irrelevant_prefix(self):
        # Only the last three refs matter to this predicate.
        trace = [(0, i * 64, False) for i in range(40)] + [
            (0, 4096, True),
            (0, 4160, False),
            (0, 4096, False),
        ]

        def still_fails(candidate):
            kinds = [(a, w) for (_, a, w) in candidate]
            return (4096, True) in kinds and kinds.count((4096, False)) >= 1

        shrunk = shrink_trace(trace, still_fails)
        assert still_fails(shrunk)
        assert len(shrunk) <= 4

    def test_returns_input_when_nothing_removable(self):
        trace = [(0, 0, True), (0, 64, False)]
        shrunk = shrink_trace(trace, lambda t: len(t) == 2)
        assert shrunk == trace

    def test_respects_run_budget(self):
        calls = []

        def predicate(candidate):
            calls.append(1)
            return True

        shrink_trace([(0, i * 64, False) for i in range(64)], predicate, max_runs=10)
        assert len(calls) <= 10

    def test_result_always_still_fails(self):
        trace = generate_trace(4, refs=200)

        def still_fails(candidate):
            return sum(1 for r in candidate if r[2]) >= 5  # needs 5 writes

        shrunk = shrink_trace(trace, still_fails)
        assert still_fails(shrunk)
        assert len(shrunk) < len(trace)
