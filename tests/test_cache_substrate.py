"""Unit tests for the cache substrate: blocks, sets, Cache operations."""

import pytest

from repro.cache import Cache, CacheBlock, CacheSet, LRUPolicy
from repro.errors import ConfigurationError

BLOCK = 64


class TestCacheBlock:
    def test_starts_invalid(self):
        b = CacheBlock(way=0)
        assert not b.valid and not b.dirty and not b.loop_bit

    def test_fill_sets_metadata(self):
        b = CacheBlock(way=1, tech="stt")
        b.fill(0x12, dirty=True, loop_bit=True, now=7)
        assert b.valid and b.dirty and b.loop_bit
        assert b.tag == 0x12 and b.last_access == 7 and b.tech == "stt"

    def test_reset_clears_everything_but_geometry(self):
        b = CacheBlock(way=3, tech="stt")
        b.fill(0x5, dirty=True, loop_bit=True, now=2)
        b.reset()
        assert not b.valid and not b.dirty and not b.loop_bit
        assert b.way == 3 and b.tech == "stt"


class TestCacheSet:
    def _set(self, ways=4, techs=None):
        return CacheSet(0, ways, techs or ["sram"] * ways)

    def test_find_missing_returns_none(self):
        assert self._set().find(0x1) is None

    def test_install_then_find(self):
        s = self._set()
        s.install(s.blocks[0], 0x1, dirty=False, loop_bit=False, now=1)
        assert s.find(0x1) is s.blocks[0]

    def test_install_replaces_old_tag(self):
        s = self._set()
        s.install(s.blocks[0], 0x1, dirty=False, loop_bit=False, now=1)
        s.install(s.blocks[0], 0x2, dirty=False, loop_bit=False, now=2)
        assert s.find(0x1) is None
        assert s.find(0x2) is s.blocks[0]

    def test_drop_removes_from_map(self):
        s = self._set()
        s.install(s.blocks[1], 0x9, dirty=True, loop_bit=False, now=1)
        s.drop(s.blocks[1])
        assert s.find(0x9) is None and s.occupancy() == 0

    def test_region_blocks_filters_by_tech(self):
        s = self._set(4, ["sram", "sram", "stt", "stt"])
        assert len(s.region_blocks("sram")) == 2
        assert len(s.region_blocks("stt")) == 2
        assert len(s.region_blocks(None)) == 4

    def test_valid_blocks(self):
        s = self._set()
        s.install(s.blocks[2], 0x3, dirty=False, loop_bit=False, now=1)
        assert s.valid_blocks() == [s.blocks[2]]


class TestCacheGeometry:
    def test_derived_sets(self):
        c = Cache("c", 4096, 4, BLOCK)
        assert c.num_sets == 16

    def test_block_align(self):
        c = Cache("c", 4096, 4, BLOCK)
        assert c.block_addr(0x12345) == 0x12345 & ~63

    def test_set_index_and_tag_roundtrip(self):
        c = Cache("c", 4096, 4, BLOCK)
        addr = c.addr_of(5, 0x7)
        assert c.set_index(addr) == 5
        assert c.tag_of(addr) == 0x7

    def test_bank_interleaving(self):
        c = Cache("c", 4096, 4, BLOCK, banks=4)
        banks = {c.bank_of(i * BLOCK) for i in range(8)}
        assert banks == {0, 1, 2, 3}

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(size_bytes=1000, assoc=4),
            dict(size_bytes=4096, assoc=0),
            dict(size_bytes=4096, assoc=4, block_size=100),
            dict(size_bytes=4096, assoc=4, tech="dram"),
            dict(size_bytes=4096, assoc=4, sram_ways=4),
            dict(size_bytes=4096, assoc=4, sram_ways=0),
        ],
    )
    def test_invalid_geometry_rejected(self, kwargs):
        kwargs.setdefault("block_size", BLOCK)
        with pytest.raises(ConfigurationError):
            Cache("bad", **kwargs)

    def test_hybrid_way_partition(self):
        c = Cache("h", 4096, 4, BLOCK, sram_ways=1)
        techs = [b.tech for b in c.sets[0].blocks]
        assert techs == ["sram", "stt", "stt", "stt"]
        assert c.hybrid


class TestCacheOperations:
    def _cache(self, **kw):
        kw.setdefault("tech", "stt")
        return Cache("c", 4096, 4, BLOCK, replacement=LRUPolicy(), **kw)

    def test_lookup_miss_counts(self):
        c = self._cache()
        assert c.lookup(0) is None
        assert c.stats.lookups == 1 and c.stats.misses == 1 and c.stats.hits == 0

    def test_insert_then_hit(self):
        c = self._cache()
        c.insert(0, dirty=False)
        block = c.lookup(0)
        assert block is not None and c.stats.hits == 1
        assert c.stats.data_reads_stt == 1

    def test_store_hit_sets_dirty_and_counts_write(self):
        c = self._cache()
        c.insert(0, dirty=False)
        block = c.lookup(0, is_write=True)
        assert block.dirty
        # one write for the insert, one for the store hit
        assert c.stats.data_writes_stt == 2

    def test_insert_into_free_way_returns_none(self):
        c = self._cache()
        assert c.insert(0, dirty=False) is None

    def test_insert_evicts_lru_when_full(self):
        c = self._cache()
        addrs = [c.addr_of(0, t) for t in range(5)]
        for a in addrs[:4]:
            c.insert(a, dirty=False)
        c.lookup(addrs[1])  # make tag1 recently used; tag0 stays LRU
        evicted = c.insert(addrs[4], dirty=False)
        assert evicted is not None and evicted.addr == addrs[0]
        assert c.stats.evictions == 1

    def test_evicted_line_carries_flags(self):
        c = self._cache()
        a0 = c.addr_of(0, 0)
        c.insert(a0, dirty=True, loop_bit=True)
        for t in range(1, 4):
            c.insert(c.addr_of(0, t), dirty=False)
        evicted = c.insert(c.addr_of(0, 9), dirty=False)
        assert evicted.addr == a0 and evicted.dirty and evicted.loop_bit
        assert c.stats.dirty_evictions == 1

    def test_update_marks_dirty_and_counts(self):
        c = self._cache()
        c.insert(0, dirty=False)
        c.update(c.peek(0), dirty=True)
        assert c.peek(0).dirty
        assert c.stats.data_writes_stt == 2

    def test_update_keeps_dirty_when_writing_clean(self):
        c = self._cache()
        c.insert(0, dirty=True)
        c.update(c.peek(0), dirty=False)
        assert c.peek(0).dirty

    def test_invalidate_returns_snapshot(self):
        c = self._cache()
        c.insert(0, dirty=True)
        line = c.invalidate(0)
        assert line.dirty and line.addr == 0
        assert c.peek(0) is None and c.stats.invalidations == 1

    def test_invalidate_missing_returns_none(self):
        c = self._cache()
        assert c.invalidate(0) is None

    def test_probe_counts_tag_only(self):
        c = self._cache()
        c.insert(0, dirty=False)
        before_reads = c.stats.data_reads_stt
        assert c.probe(0) is not None
        assert c.stats.data_reads_stt == before_reads
        assert c.stats.hits == 0  # probes are not demand hits

    def test_peek_counts_nothing(self):
        c = self._cache()
        c.insert(0, dirty=False)
        probes = c.stats.tag_probes
        c.peek(0)
        assert c.stats.tag_probes == probes

    def test_region_insert_respects_partition(self):
        c = Cache("h", 4096, 4, BLOCK, sram_ways=2)
        for t in range(3):
            c.insert(c.addr_of(0, t), dirty=False, region="sram")
        blocks = [b for b in c.sets[0].blocks if b.valid]
        assert all(b.tech == "sram" for b in blocks)
        # the third SRAM insert evicted one of the two SRAM ways
        assert c.stats.evictions == 1

    def test_region_insert_missing_region_raises(self):
        c = self._cache()  # homogeneous stt: no sram ways
        with pytest.raises(ConfigurationError):
            c.insert(0, dirty=False, region="sram")

    def test_migrate_block_moves_between_regions(self):
        c = Cache("h", 4096, 4, BLOCK, sram_ways=2)
        a = c.addr_of(0, 1)
        c.insert(a, dirty=True, loop_bit=True, region="sram")
        src = c.peek(a)
        dst = next(b for b in c.sets[0].blocks if b.tech == "stt")
        c.migrate_block(c.sets[0], src, dst)
        moved = c.peek(a)
        assert moved is dst and moved.dirty and moved.loop_bit
        assert c.stats.migrations == 1
        assert c.stats.data_reads_sram == 1 and c.stats.data_writes_stt == 1

    def test_migrate_rejects_invalid_source(self):
        c = Cache("h", 4096, 4, BLOCK, sram_ways=2)
        with pytest.raises(ConfigurationError):
            c.migrate_block(c.sets[0], c.sets[0].blocks[0], c.sets[0].blocks[2])

    def test_migrate_rejects_occupied_destination(self):
        c = Cache("h", 4096, 4, BLOCK, sram_ways=2)
        a, b = c.addr_of(0, 1), c.addr_of(0, 2)
        c.insert(a, dirty=False, region="sram")
        c.insert(b, dirty=False, region="stt")
        with pytest.raises(ConfigurationError):
            c.migrate_block(c.sets[0], c.peek(a), c.peek(b))

    def test_occupancy_counts(self):
        c = self._cache()
        for t in range(3):
            c.insert(c.addr_of(2, t), dirty=False)
        assert c.occupancy() == 3

    def test_loop_block_occupancy(self):
        c = self._cache()
        c.insert(c.addr_of(0, 0), dirty=False, loop_bit=True)
        c.insert(c.addr_of(0, 1), dirty=False, loop_bit=False)
        valid, loops = c.loop_block_occupancy()
        assert (valid, loops) == (2, 1)

    def test_resident_addrs_roundtrip(self):
        c = self._cache()
        addrs = {c.addr_of(3, 5), c.addr_of(7, 1)}
        for a in addrs:
            c.insert(a, dirty=False)
        assert set(c.resident_addrs()) == addrs

    def test_reset_stats_preserves_contents(self):
        c = self._cache()
        c.insert(0, dirty=False)
        c.reset_stats()
        assert c.stats.insertions == 0 and c.peek(0) is not None
