"""Tests for per-job profiling, run manifests, and heartbeat progress."""

import json

import pytest

from repro.errors import TelemetryError
from repro.exec import ExecutionOutcome, JobSpec, ResultCache, WorkloadSpec, execute_jobs
from repro.sim import SystemConfig
from repro.sim.sweeps import Sweep
from repro.telemetry import (
    MANIFEST_NAME,
    SOURCE_CACHE,
    SOURCE_POOL,
    SOURCE_SERIAL,
    Heartbeat,
    JobProfile,
    MetricsRegistry,
    RunManifest,
    peak_rss_kb,
    set_registry,
)


def small_system(**kwargs) -> SystemConfig:
    return SystemConfig.scaled(**{"ncores": 2, "llc_kb": 32, "l2_kb": 4, **kwargs})


def make_jobs(n=2, refs=300):
    return [
        JobSpec(
            system=small_system(),
            workload=WorkloadSpec.duplicate("mcf", ncores=2, seed=seed),
            policy="lap",
            refs_per_core=refs,
        )
        for seed in range(n)
    ]


class TestExecutionOutcome:
    def test_outcome_is_still_a_result_list(self):
        outcome = execute_jobs(make_jobs(2))
        assert isinstance(outcome, ExecutionOutcome)
        assert isinstance(outcome, list)
        assert len(outcome) == 2
        assert all(hasattr(r, "epi") for r in outcome)

    def test_serial_profiles_are_populated(self):
        outcome = execute_jobs(make_jobs(2))
        assert len(outcome.profiles) == 2
        for i, profile in enumerate(outcome.profiles):
            assert profile.index == i
            assert profile.source == SOURCE_SERIAL
            assert profile.wall_s > 0
            assert profile.accesses > 0
            assert profile.accesses_per_s > 0
            assert profile.retries == 0
            assert len(profile.key) == 64  # the content address
        assert outcome.cache_hits == 0
        assert outcome.cache_misses == 2
        assert outcome.wall_s > 0

    def test_pooled_profiles_carry_provenance(self):
        outcome = execute_jobs(make_jobs(2), max_workers=2)
        # Pool may fall back to serial in constrained sandboxes; either
        # way every job carries a concrete provenance and wall time.
        assert all(p.source in (SOURCE_POOL, SOURCE_SERIAL) for p in outcome.profiles)
        assert all(p.wall_s > 0 for p in outcome.profiles)
        assert all(p.accesses > 0 for p in outcome.profiles)

    def test_cache_provenance_and_hit_counts(self, tmp_path):
        cache = ResultCache(tmp_path)
        jobs = make_jobs(2)
        cold = execute_jobs(jobs, cache=cache)
        assert cold.cache_hits == 0 and cold.cache_misses == 2

        warm = execute_jobs(jobs, cache=cache)
        assert warm.cache_hits == 2 and warm.cache_misses == 0
        for profile in warm.profiles:
            assert profile.source == SOURCE_CACHE
            assert profile.accesses_per_s == 0.0  # nothing was simulated
        assert [r.to_dict() for r in warm] == [r.to_dict() for r in cold]

    def test_manifest_dir_writes_manifest_json(self, tmp_path):
        outcome = execute_jobs(make_jobs(2), manifest_dir=tmp_path)
        path = tmp_path / MANIFEST_NAME
        assert path.exists()
        loaded = RunManifest.load(tmp_path)
        assert len(loaded.jobs) == 2
        assert all(j.wall_s > 0 for j in loaded.jobs)
        assert loaded.cache_misses == 2
        assert loaded.simulated_accesses == sum(p.accesses for p in outcome.profiles)

    def test_metrics_reported_once_per_batch(self):
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            execute_jobs(make_jobs(2))
        finally:
            set_registry(previous)
        snap = fresh.snapshot()
        assert snap["counters"]["exec.jobs"] == 2
        assert snap["counters"]["exec.cache_misses"] == 2
        assert snap["histograms"]["exec.job_wall_s"]["count"] == 2


class TestJobProfile:
    def test_round_trip(self):
        profile = JobProfile(
            index=3, key="k" * 64, workload="mcf", policy="lap",
            system="base", source=SOURCE_POOL, wall_s=1.5,
            accesses=3000, retries=1, peak_rss_kb=1024,
        )
        assert JobProfile.from_dict(profile.as_dict()) == profile
        assert profile.as_dict()["accesses_per_s"] == 2000.0

    def test_cache_profile_has_zero_throughput(self):
        profile = JobProfile(
            index=0, key="k", workload="w", policy="p", system="s",
            source=SOURCE_CACHE, wall_s=0.5, accesses=100,
        )
        assert profile.accesses_per_s == 0.0

    def test_from_dict_missing_field_raises(self):
        with pytest.raises(TelemetryError, match="policy"):
            JobProfile.from_dict(
                {"index": 0, "key": "k", "workload": "w", "system": "s",
                 "source": "serial"}
            )


class TestRunManifest:
    def manifest(self):
        return RunManifest(
            jobs=[
                JobProfile(index=0, key="a", workload="w", policy="p",
                           system="s", source=SOURCE_CACHE, wall_s=0.01),
                JobProfile(index=1, key="b", workload="w", policy="p",
                           system="s", source=SOURCE_POOL, wall_s=2.0,
                           accesses=5000, retries=1),
            ],
            max_workers=4,
            wall_s=2.5,
        )

    def test_rollups(self):
        m = self.manifest()
        assert m.cache_hits == 1
        assert m.cache_misses == 1
        assert m.total_retries == 1
        assert m.simulated_accesses == 5000
        totals = m.as_dict()["totals"]
        assert totals == {
            "jobs": 2, "cache_hits": 1, "cache_misses": 1,
            "retries": 1, "simulated_accesses": 5000,
        }

    def test_write_and_load_round_trip(self, tmp_path):
        m = self.manifest()
        path = m.write(tmp_path)  # directory target -> manifest.json
        assert path == tmp_path / MANIFEST_NAME
        loaded = RunManifest.load(path)  # file target works too
        assert loaded.as_dict() == m.as_dict()

    def test_load_missing_manifest(self, tmp_path):
        with pytest.raises(TelemetryError, match="no such manifest"):
            RunManifest.load(tmp_path)

    def test_load_rejects_wrong_kind(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text(json.dumps({"kind": "nope"}))
        with pytest.raises(TelemetryError, match="not a repro-manifest"):
            RunManifest.load(tmp_path)

    def test_load_rejects_wrong_schema(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text(
            json.dumps({"kind": "repro-manifest", "schema": 99})
        )
        with pytest.raises(TelemetryError, match="schema 99"):
            RunManifest.load(tmp_path)


class TestSweepManifest:
    def sweep(self):
        return Sweep(
            systems={"base": small_system()},
            workloads={"mcf": WorkloadSpec.duplicate("mcf", ncores=2)},
            policies=("non-inclusive", "lap"),
            refs_per_core=300,
        )

    def test_cached_sweep_writes_manifest_next_to_results(self, tmp_path):
        cache = ResultCache(tmp_path)
        self.sweep().run(cache=cache)
        manifest = RunManifest.load(tmp_path)
        assert len(manifest.jobs) == 2
        assert manifest.cache_misses == 2
        assert all(j.wall_s > 0 for j in manifest.jobs)

        # Warm re-run overwrites the manifest with all-cache provenance.
        self.sweep().run(cache=cache)
        manifest = RunManifest.load(tmp_path)
        assert manifest.cache_hits == 2

    def test_manifest_is_invisible_to_the_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        self.sweep().run(cache=cache)
        assert (tmp_path / MANIFEST_NAME).exists()
        stats = cache.stats()
        assert stats.entries == 2  # manifest.json is not an entry
        removed = cache.clear()
        assert removed == 2
        assert (tmp_path / MANIFEST_NAME).exists()  # clear leaves it alone

    def test_explicit_manifest_dir_without_cache(self, tmp_path):
        self.sweep().run(manifest_dir=tmp_path)
        manifest = RunManifest.load(tmp_path)
        assert len(manifest.jobs) == 2
        assert all(j.source == SOURCE_SERIAL for j in manifest.jobs)

    def test_serial_sweep_without_cache_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        self.sweep().run()
        assert not (tmp_path / MANIFEST_NAME).exists()


class TestHeartbeat:
    def test_interval_none_never_emits(self):
        lines = []
        pulse = Heartbeat(5, None, emit=lines.append)
        pulse.beat(1)
        pulse.final(5)
        assert lines == []

    def test_interval_zero_emits_every_beat(self):
        lines = []
        pulse = Heartbeat(3, 0.0, emit=lines.append)
        pulse.beat(1)
        pulse.beat(2, cached=1)
        pulse.final(3, cached=1)
        assert len(lines) == 3
        assert "1/3 job(s) done" in lines[0]
        assert "1 from cache" in lines[1]
        assert "elapsed" in lines[-1]

    def test_negative_interval_rejected(self):
        with pytest.raises(TelemetryError, match=">= 0"):
            Heartbeat(1, -1.0)

    def test_long_interval_rate_limits(self):
        lines = []
        pulse = Heartbeat(10, 3600.0, emit=lines.append)
        for i in range(10):
            pulse.beat(i + 1)
        assert lines == []  # an hour has not elapsed
        pulse.final(10)
        assert len(lines) == 1  # final always emits

    def test_execute_jobs_heartbeat_plumbing(self):
        lines = []
        execute_jobs(
            make_jobs(2, refs=200),
            heartbeat_interval=0.0,
            heartbeat_emit=lines.append,
        )
        assert lines  # at least the final line
        assert "2/2 job(s) done" in lines[-1]


def test_peak_rss_is_plausible_when_available():
    rss = peak_rss_kb()
    assert rss is None or rss > 1024  # a python process is > 1 MiB
