"""Tests for the parameter-sweep framework (sim.sweeps)."""

import pytest

from repro.errors import AnalysisError
from repro.sim import SystemConfig
from repro.sim.runner import duplicate_builder
from repro.sim.sweeps import (
    Sweep,
    SweepRecord,
    load_csv,
    normalize_records,
    records_to_csv,
)


def small_sweep(policies=("non-inclusive", "lap"), refs=1200):
    system = SystemConfig.scaled(ncores=2, llc_kb=32, l2_kb=4)
    return Sweep(
        systems={"base": system},
        workloads={"mcf": duplicate_builder("mcf", ncores=2)},
        policies=policies,
        refs_per_core=refs,
    )


class TestSweepConstruction:
    def test_size(self):
        s = small_sweep(policies=("a", "b", "c"))
        assert s.size() == 3

    def test_empty_axes_rejected(self):
        with pytest.raises(AnalysisError):
            Sweep(systems={}, workloads={"w": duplicate_builder("mcf")}, policies=("lap",))

    def test_bad_refs_rejected(self):
        with pytest.raises(AnalysisError):
            Sweep(
                systems={"s": SystemConfig.scaled()},
                workloads={"w": duplicate_builder("mcf")},
                policies=("lap",),
                refs_per_core=0,
            )


class TestSweepExecution:
    @pytest.fixture(scope="class")
    def records(self):
        return small_sweep().run()

    def test_one_record_per_cell(self, records):
        assert len(records) == 2
        assert {r.policy for r in records} == {"non-inclusive", "lap"}

    def test_metrics_populated(self, records):
        for r in records:
            assert r.metrics["epi"] > 0
            assert r.metrics["mpki"] > 0

    def test_progress_callback(self):
        seen = []
        small_sweep(policies=("non-inclusive",)).run(progress=seen.append)
        assert len(seen) == 1
        assert isinstance(seen[0], SweepRecord)

    def test_normalize_records(self, records):
        norm = normalize_records(records, "llc_writes")
        cell = norm[("base", "mcf")]
        assert cell["non-inclusive"] == 1.0
        assert 0 < cell["lap"] < 1.5

    def test_normalize_missing_baseline(self, records):
        only_lap = [r for r in records if r.policy == "lap"]
        with pytest.raises(AnalysisError):
            normalize_records(only_lap, "epi")


class TestCSVRoundtrip:
    def test_roundtrip(self, tmp_path):
        records = small_sweep(policies=("non-inclusive",), refs=800).run()
        path = tmp_path / "sweep.csv"
        text = records_to_csv(records, path)
        assert "epi" in text.splitlines()[0]
        loaded = load_csv(path)
        assert len(loaded) == len(records)
        assert loaded[0].policy == records[0].policy
        assert loaded[0].metrics["epi"] == pytest.approx(records[0].metrics["epi"])

    def test_empty_records_rejected(self):
        with pytest.raises(AnalysisError):
            records_to_csv([])

    def test_missing_csv_rejected(self, tmp_path):
        with pytest.raises(AnalysisError):
            load_csv(tmp_path / "none.csv")


class TestLoadCSVHardening:
    HEADER = "system,workload,policy,epi,mpki"
    GOOD = "base,mcf,lap,1.5e-10,12.5"

    def write(self, tmp_path, *lines):
        path = tmp_path / "sweep.csv"
        path.write_text("\n".join((self.HEADER,) + lines) + "\n")
        return path

    def test_empty_metric_value_raises_naming_row(self, tmp_path):
        path = self.write(tmp_path, self.GOOD, "base,mcf,exclusive,,12.5")
        with pytest.raises(AnalysisError) as exc:
            load_csv(path)
        msg = str(exc.value)
        assert ":3:" in msg and "'epi'" in msg and "exclusive" in msg

    def test_short_row_raises_naming_row(self, tmp_path):
        path = self.write(tmp_path, "base,mcf,lap,1.5e-10")
        with pytest.raises(AnalysisError, match="mpki"):
            load_csv(path)

    def test_non_numeric_value_raises_naming_row(self, tmp_path):
        path = self.write(tmp_path, "base,mcf,lap,oops,12.5")
        with pytest.raises(AnalysisError, match="'oops'"):
            load_csv(path)

    def test_missing_meta_column_raises(self, tmp_path):
        path = self.write(tmp_path, ",mcf,lap,1.5e-10,12.5")
        with pytest.raises(AnalysisError, match="'system'"):
            load_csv(path)

    def test_skip_mode_drops_bad_rows(self, tmp_path):
        path = self.write(tmp_path, self.GOOD, "base,mcf,exclusive,,12.5", self.GOOD)
        records = load_csv(path, on_error="skip")
        assert len(records) == 2
        assert all(r.policy == "lap" for r in records)

    def test_unknown_on_error_rejected(self, tmp_path):
        path = self.write(tmp_path, self.GOOD)
        with pytest.raises(AnalysisError, match="on_error"):
            load_csv(path, on_error="ignore")
