"""Property-based tests (hypothesis) on core data structures and the
hierarchy's structural invariants."""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.cache import Cache, LRUPolicy
from repro.core.loop_bits import LoopBlockTracker
from repro.inclusion.dueling import SetDueling
from tests.conftest import build_micro

BLOCK = 64

# A compact address universe that exercises conflicts heavily.
addr_strategy = st.integers(min_value=0, max_value=31).map(lambda i: i * BLOCK)
ref_strategy = st.tuples(addr_strategy, st.booleans())
trace_strategy = st.lists(ref_strategy, min_size=1, max_size=300)

POLICY_NAMES = ["non-inclusive", "exclusive", "inclusive", "lap", "flexclusion", "dswitch"]


class TestCacheProperties:
    @given(ops=st.lists(st.tuples(addr_strategy, st.booleans()), max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_tag_map_consistency(self, ops):
        """After any operation sequence, the tag map and the block array
        agree exactly."""
        cache = Cache("p", 2048, 4, BLOCK, replacement=LRUPolicy())
        for addr, dirty in ops:
            if cache.peek(addr) is None:
                cache.insert(addr, dirty=dirty)
            else:
                cache.lookup(addr, is_write=dirty)
        for cache_set in cache.sets:
            mapped = {id(b) for b in cache_set.tag_map.values()}
            valid = {id(b) for b in cache_set.blocks if b.valid}
            assert mapped == valid
            for tag, block in cache_set.tag_map.items():
                assert block.tag == tag

    @given(addrs=st.lists(addr_strategy, min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, addrs):
        cache = Cache("p", 1024, 2, BLOCK, replacement=LRUPolicy())
        for addr in addrs:
            cache.insert(addr, dirty=False)
        assert cache.occupancy() <= cache.num_sets * cache.assoc
        for cache_set in cache.sets:
            assert cache_set.occupancy() <= cache.assoc

    @given(addrs=st.lists(addr_strategy, min_size=1, max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_inserted_block_is_retrievable(self, addrs):
        cache = Cache("p", 2048, 4, BLOCK, replacement=LRUPolicy())
        for addr in addrs:
            cache.insert(addr, dirty=False)
            assert cache.peek(addr) is not None

    @given(addrs=st.lists(addr_strategy, min_size=5, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_lru_matches_reference_model(self, addrs):
        """The cache's LRU behaviour matches an ordered-list model."""
        cache = Cache("p", 512, 8, BLOCK, replacement=LRUPolicy())  # one set
        model: list = []
        for addr in addrs:
            if addr in model:
                model.remove(addr)
                model.append(addr)
                assert cache.lookup(addr) is not None
            else:
                if len(model) == 8:
                    model.pop(0)
                model.append(addr)
                cache.lookup(addr)  # miss
                cache.insert(addr, dirty=False)
            assert set(cache.resident_addrs()) == set(model)

    @given(
        addrs=st.lists(addr_strategy, min_size=1, max_size=100),
        sram_ways=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=40, deadline=None)
    def test_hybrid_region_inserts_stay_in_region(self, addrs, sram_ways):
        cache = Cache("p", 1024, 4, BLOCK, sram_ways=sram_ways)
        for addr in addrs:
            cache.insert(addr, dirty=False, region="stt")
        for cache_set in cache.sets:
            for block in cache_set.blocks:
                if block.valid:
                    assert block.tech == "stt"


class TestHierarchyProperties:
    @given(trace=trace_strategy, policy=st.sampled_from(POLICY_NAMES))
    @settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_structural_invariants_hold(self, trace, policy):
        h = build_micro(policy, llc_bytes=512, llc_assoc=8)
        for addr, is_write in trace:
            h.access(0, addr, is_write)
        # L1 subset of L2
        assert set(h.l1s[0].resident_addrs()) <= set(h.l2s[0].resident_addrs())
        # stats identities
        s = h.llc.stats
        assert s.hits + s.misses == s.lookups
        assert s.llc_writes == (
            s.fill_writes + s.clean_victim_writes + s.dirty_victim_writes + s.update_writes
        )
        assert h.stats.l1_hits + h.stats.l2_hits + h.stats.llc_demand_accesses == (
            h.stats.accesses
        )
        # inclusive LLC must contain both upper levels
        if policy == "inclusive":
            assert set(h.l2s[0].resident_addrs()) <= set(h.llc.resident_addrs())

    @given(trace=trace_strategy)
    @settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_exclusive_never_duplicates(self, trace):
        h = build_micro("exclusive", llc_bytes=512, llc_assoc=8)
        for addr, is_write in trace:
            h.access(0, addr, is_write)
            dup = set(h.l2s[0].resident_addrs()) & set(h.llc.resident_addrs())
            assert not dup

    @given(trace=trace_strategy)
    @settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_lap_never_fills_and_noni_never_clean_writes(self, trace):
        lap = build_micro("lap", llc_bytes=512, llc_assoc=8)
        noni = build_micro("non-inclusive", llc_bytes=512, llc_assoc=8)
        for addr, is_write in trace:
            lap.access(0, addr, is_write)
            noni.access(0, addr, is_write)
        assert lap.llc.stats.fill_writes == 0
        assert noni.llc.stats.clean_victim_writes == 0

    @given(trace=trace_strategy, seed=st.integers(0, 3))
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_coherent_dirty_blocks_unique(self, trace, seed):
        """At most one core may hold a block dirty at any time."""
        h = build_micro("non-inclusive", ncores=2, enable_coherence=True)
        for i, (addr, is_write) in enumerate(trace):
            h.access((i + seed) % 2, addr, is_write)
            dirty_holders = [
                c
                for c in range(2)
                if (b := h.l2s[c].peek(addr)) is not None and b.dirty
            ]
            assert len(dirty_holders) <= 1


class TestTrackerProperties:
    events = st.lists(
        st.tuples(
            st.sampled_from(["fill_mem", "fill_llc", "dirty", "evict_clean", "evict_dirty"]),
            st.integers(0, 7).map(lambda i: i * BLOCK),
        ),
        max_size=200,
    )

    @given(evs=events)
    @settings(max_examples=60, deadline=None)
    def test_tracker_counters_consistent(self, evs):
        t = LoopBlockTracker()
        for kind, addr in evs:
            if kind == "fill_mem":
                t.on_l2_fill(addr, from_llc=False)
            elif kind == "fill_llc":
                t.on_l2_fill(addr, from_llc=True)
            elif kind == "dirty":
                t.on_dirtied(addr)
            elif kind == "evict_clean":
                t.on_l2_evict(addr, dirty=False)
            else:
                t.on_l2_evict(addr, dirty=True)
        t.finalize()
        s = t.stats
        assert 0 <= s.loop_evictions <= s.l2_evictions
        # every recorded streak is positive and total streak length
        # never exceeds the number of loop evictions
        assert all(k > 0 and v > 0 for k, v in s.ctc_histogram.items())
        total_trips = sum(k * v for k, v in s.ctc_histogram.items())
        assert total_trips <= s.loop_evictions


class TestDuelingProperties:
    @given(
        num_sets=st.sampled_from([1, 2, 8, 32, 128, 1024]),
        events=st.lists(st.tuples(st.integers(0, 1023), st.booleans()), max_size=300),
    )
    @settings(max_examples=50, deadline=None)
    def test_dueling_never_crashes_and_winner_valid(self, num_sets, events):
        d = SetDueling(num_sets=num_sets, interval=16)
        for set_index, is_miss in events:
            idx = set_index % num_sets
            if is_miss:
                d.record_miss(idx)
            else:
                d.record_write(idx)
            d.tick()
            assert d.winner in (0, 1)
            assert d.policy_for(idx) in (0, 1)
