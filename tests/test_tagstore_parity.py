"""Backend parity: the soa tag store must be bit-identical to object.

DESIGN.md §13's switch-over criteria, as executable tests:

1. **Fuzzer traces, the registry's check set, both coherence modes** —
   replaying the same phased trace through ``tag_backend="object"`` and
   ``tag_backend="soa"`` must produce identical hierarchy and LLC stat
   snapshots, with the armed invariant checker silent on both (the
   probe keeps these runs on the generic per-reference path, so this
   exercises the store protocol itself).
2. **Simulator-level RunResult parity** — for the kernel-eligible
   policies, the batched soa kernel, the generic loop over the soa
   store, and the generic loop over the object store must agree on the
   *entire* RunResult (stats, cycles, energy inputs, dueling extras).
"""

from __future__ import annotations

from dataclasses import asdict

import pytest

from repro.arena import registry
from repro.kernel import batched_policy_names, numpy_available
from repro.sim.simulator import Simulator
from repro.sim.system import SystemConfig
from repro.validate import DEFAULT_POLICIES, generate_trace, run_trace
from repro.workloads.mixes import make_table3_mix

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="soa backend requires numpy"
)

#: policies declared batched-kernel-eligible by the registry — derived,
#: so a newly registered BATCHED policy joins the kernel parity matrix
#: automatically.
KERNEL_POLICIES = batched_policy_names()


@pytest.fixture(autouse=True)
def _clear_backend_env(monkeypatch):
    """These tests pin backends explicitly, but ``REPRO_TAG_BACKEND`` in
    the surrounding shell (e.g. CI's soa matrix leg) outranks explicit
    arguments and would silence the object-vs-soa comparison."""
    monkeypatch.delenv("REPRO_TAG_BACKEND", raising=False)


def _snapshots(h):
    return (
        h.stats.snapshot(),
        h.llc.stats.snapshot(),
        [c.stats.snapshot() for c in h.l1s],
        [c.stats.snapshot() for c in h.l2s],
    )


@pytest.mark.parametrize("policy", DEFAULT_POLICIES)
@pytest.mark.parametrize(
    "ncores,coherent", [(1, False), (2, False), (2, True)]
)
def test_fuzz_trace_parity(policy, ncores, coherent):
    seed = DEFAULT_POLICIES.index(policy) * 10 + ncores * 2 + int(coherent)
    trace = generate_trace(seed, refs=500, ncores=ncores)
    # run_trace arms an InvariantProbe: a violation on either backend
    # raises InvariantViolation and fails the test.
    h_obj = run_trace(
        policy, trace, ncores=ncores, enable_coherence=coherent, tag_backend="object"
    )
    h_soa = run_trace(
        policy, trace, ncores=ncores, enable_coherence=coherent, tag_backend="soa"
    )
    assert _snapshots(h_obj) == _snapshots(h_soa)
    if coherent:
        assert h_obj.coherence.stats == h_soa.coherence.stats


def _run(policy, backend, *, kernel=True, refs=3000, workload="WL1"):
    system = SystemConfig.scaled().probe_free().with_tag_backend(backend)
    w = make_table3_mix(workload, system.scale_context(), seed=11)
    sim = Simulator(system, policy, w)
    sim.enable_batch_kernel = kernel
    result = sim.run(refs)
    return sim, result


@pytest.mark.parametrize("policy", KERNEL_POLICIES)
@pytest.mark.parametrize("workload", ("WL1", "WH1"))
def test_runresult_parity_kernel(policy, workload):
    """object-generic == soa-kernel == soa-generic, entire RunResult."""
    sim_obj, r_obj = _run(policy, "object", workload=workload)
    sim_ker, r_ker = _run(policy, "soa", workload=workload)
    _, r_gen = _run(policy, "soa", kernel=False, workload=workload)
    # the kernel must actually have been exercised, not silently skipped
    assert sim_obj.tag_backend == "object"
    assert sim_ker.tag_backend == "soa"
    assert asdict(r_obj) == asdict(r_ker)
    assert asdict(r_obj) == asdict(r_gen)


@pytest.mark.parametrize("policy", registry.names())
def test_runresult_parity_generic(policy):
    """Pinned-soa generic runs match object for EVERY registered policy
    (instrumentation on: the probe bus blocks the batched kernel, so
    both backends run the same generic path over different layouts).
    Parametrized over the registry, so a new policy is covered the
    moment it is registered."""
    hybrid = registry.get(policy).hybrid_only  # Lhybrid family needs SRAM ways
    system_obj = SystemConfig.scaled(hybrid=hybrid).with_tag_backend("object")
    system_soa = SystemConfig.scaled(hybrid=hybrid).with_tag_backend("soa")
    w1 = make_table3_mix("WH2", system_obj.scale_context(), seed=3)
    w2 = make_table3_mix("WH2", system_soa.scale_context(), seed=3)
    r_obj = Simulator(system_obj, policy, w1).run(1500)
    r_soa = Simulator(system_soa, policy, w2).run(1500)
    assert asdict(r_obj) == asdict(r_soa)


def test_auto_backend_engages_kernel():
    """``tag_backend="auto"`` resolves to soa exactly when the batched
    kernel can run, and to object otherwise."""
    probe_free = SystemConfig.scaled().probe_free()
    w = make_table3_mix("WL1", probe_free.scale_context(), seed=1)
    assert Simulator(probe_free, "lap", w).tag_backend == "soa"
    assert Simulator(probe_free, "inclusive", w).tag_backend == "object"
    instrumented = SystemConfig.scaled()
    w = make_table3_mix("WL1", instrumented.scale_context(), seed=1)
    assert Simulator(instrumented, "lap", w).tag_backend == "object"


def test_env_var_pins_backend(monkeypatch):
    monkeypatch.setenv("REPRO_TAG_BACKEND", "object")
    system = SystemConfig.scaled().probe_free()
    w = make_table3_mix("WL1", system.scale_context(), seed=1)
    assert Simulator(system, "lap", w).tag_backend == "object"
    monkeypatch.setenv("REPRO_TAG_BACKEND", "soa")
    w = make_table3_mix("WL1", system.scale_context(), seed=1)
    assert Simulator(system, "inclusive", w).tag_backend == "soa"
