"""Structural smoke tests for every figure-assembly function.

Each paper figure's assembly code runs on a reduced workload subset and
its output structure is checked, so harness regressions are caught in
the fast test-suite rather than only during the long benchmark run.
"""

import pytest

import repro.analysis.figures as F

REFS = 2000


class TestMotivationFigures:
    def test_fig2(self):
        sram, stt = F.fig2_motivation(refs=REFS, benchmarks=("libquantum",))
        assert set(sram) == set(stt) == {"libquantum"}
        assert stt["libquantum"]["ex_epi"] > 0
        assert "rel_writes" in stt["libquantum"]


class TestMixFigures:
    MIXES = ("WL3", "WH5")

    def test_fig12(self):
        sram, stt = F.fig12_noni_vs_ex(refs=REFS, mixes=self.MIXES)
        for rows in (sram, stt):
            assert set(rows) == set(self.MIXES)
        assert 0 < stt["WL3"]["noni_static_share"] < 1

    def test_fig14(self):
        epi, dyn, perf = F.fig14_policy_comparison(
            refs=REFS, mixes=self.MIXES, policies=("non-inclusive", "lap")
        )
        for rows in (epi, dyn, perf):
            assert rows["WL3"]["non-inclusive"] == 1.0
        assert epi["WL3"]["lap"] > 0

    def test_fig16(self):
        rows = F.fig16_loop_occupancy(
            refs=REFS, mixes=("WH5",), policies=("non-inclusive", "lap")
        )
        assert 0 <= rows["WH5"]["lap"] <= 1

    def test_fig18(self):
        rows = F.fig18_mpki(refs=REFS, mixes=("WL3",))
        assert rows["WL3"]["non-inclusive"] == 1.0

    def test_fig19(self):
        rows = F.fig19_lap_variants(refs=REFS, mixes=("WH5",))
        assert {"lap-lru", "lap-loop", "lap"} <= set(rows["WH5"])

    def test_run_cache_reuses_results(self):
        before = len(F._RUN_CACHE)
        F.fig18_mpki(refs=REFS, mixes=("WL3",))
        mid = len(F._RUN_CACHE)
        F.fig18_mpki(refs=REFS, mixes=("WL3",))
        assert len(F._RUN_CACHE) == mid
        assert mid >= before


class TestMultithreadedFigure:
    def test_fig20(self):
        energy, perf, snoop = F.fig20_multithreaded(
            refs=1200,
            benchmarks=("dedup",),
            policies=("non-inclusive", "lap"),
        )
        assert energy["dedup"]["non-inclusive"] == 1.0
        assert perf["dedup"]["lap"] > 0
        assert snoop["dedup"]["lap"] > 0


class TestSensitivityFigures:
    def test_fig21(self):
        rows = F.fig21_capacity_ratio(
            refs=1200, mixes=("WL3",), policies=("non-inclusive", "lap")
        )
        assert set(rows) == {"L2:L3=1:8", "L2:L3=1:4", "L2:L3=1:2", "2x LLC"}

    def test_fig22(self):
        rows = F.fig22_core_count(refs=1200, policies=("non-inclusive", "lap"))
        assert set(rows) == {"4-core", "8-core"}
        assert rows["8-core"]["lap"] > 0


class TestHybridFigures:
    def test_fig24(self):
        rows = F.fig24_hybrid(
            refs=REFS, mixes=("WL3",), policies=("non-inclusive", "lhybrid")
        )
        assert rows["WL3"]["lhybrid"] > 0

    def test_fig25(self):
        rows = F.fig25_lhybrid_stages(
            refs=REFS, mixes=("WL3",), policies=("lap", "lhybrid")
        )
        assert {"lap", "lhybrid"} == set(rows["WL3"])


class TestFig21FixedWorkloads:
    def test_workloads_do_not_rescale_with_swept_llc(self):
        """Fig. 21's sweep must hold workload footprints fixed: the same
        mix built for the 2x-LLC config and the baseline config must be
        identical streams (regions sized from the baseline geometry)."""
        import numpy as np

        from repro.sim import SystemConfig
        from repro.workloads.mixes import make_table3_mix

        base_ctx = SystemConfig.scaled().scale_context()
        wl_a = make_table3_mix("WL3", base_ctx, seed=0)
        wl_b = make_table3_mix("WL3", base_ctx, seed=0)
        a = wl_a.generators[0].batch(500)[0]
        b = wl_b.generators[0].batch(500)[0]
        assert (np.asarray(a) == np.asarray(b)).all()
        # and a context from the 2x system gives a DIFFERENT stream,
        # which is exactly what fig21 must avoid using
        big_ctx = SystemConfig.scaled(llc_kb=256).scale_context()
        wl_c = make_table3_mix("WL3", big_ctx, seed=0)
        c = wl_c.generators[0].batch(500)[0]
        assert (np.asarray(a) != np.asarray(c)).any()
