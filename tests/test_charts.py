"""Tests for the ASCII chart renderers."""

import pytest

from repro.analysis.charts import render_bars, render_grouped_bars, render_scatter
from repro.errors import AnalysisError


class TestBars:
    def test_longest_bar_is_max_value(self):
        out = render_bars("t", {"a": 1.0, "b": 2.0}, width=10)
        lines = out.splitlines()
        bar_a = lines[2].count("█")
        bar_b = lines[3].count("█")
        assert bar_b == 10 and bar_a == 5

    def test_values_printed(self):
        out = render_bars("t", {"a": 0.5}, fmt="{:.2f}")
        assert "0.50" in out

    def test_reference_marker(self):
        out = render_bars("t", {"a": 0.5, "b": 2.0}, reference=1.0)
        assert "reference=1.000" in out
        assert "|" in out.splitlines()[2]  # a's bar stops before the marker

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            render_bars("t", {})

    def test_nonpositive_rejected(self):
        with pytest.raises(AnalysisError):
            render_bars("t", {"a": 0.0})

    def test_partial_cells_render(self):
        out = render_bars("t", {"a": 1.0, "b": 0.55}, width=10)
        assert any(c in out for c in "▏▎▍▌▋▊▉")


class TestGroupedBars:
    def test_one_group_per_row(self):
        out = render_grouped_bars("G", {"WL1": {"x": 1.0}, "WH1": {"x": 1.2}})
        assert "WL1" in out and "WH1" in out

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            render_grouped_bars("G", {})


class TestScatter:
    def test_markers_placed(self):
        out = render_scatter(
            "S", [(0.0, 0.0, "o"), (1.0, 1.0, "+")], width=20, height=8
        )
        assert "o" in out and "+" in out

    def test_extremes_on_grid_corners(self):
        out = render_scatter("S", [(0.0, 0.0, "A"), (2.0, 4.0, "B")], width=20, height=8)
        lines = out.splitlines()
        # B at max y appears on the first grid line, A on the last
        first_grid = lines[2]
        last_grid = lines[2 + 8 - 1]
        assert "B" in first_grid and "A" in last_grid

    def test_axis_labels(self):
        out = render_scatter("S", [(0, 0, "x"), (1, 2, "y")], xlabel="Mrel", ylabel="Wrel")
        assert "Mrel" in out and "Wrel" in out

    def test_degenerate_single_point(self):
        out = render_scatter("S", [(1.0, 1.0, "*")])
        assert "*" in out

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            render_scatter("S", [])
