"""Probe-bus equivalence and hot-path substrate invariants.

The refactor that moved instrumentation out of the hierarchy engine and
into ``repro.instr`` probes promises three things, each pinned here:

1. **Bit-identity**: default-instrumented runs reproduce exactly the
   stats the pre-refactor engine produced (golden file
   ``tests/data/seed_hotpath_golden.json``, captured at the seed).
2. **Equivalence**: an explicitly constructed legacy-equivalent probe
   list behaves identically to ``instrumentation="default"``, and a
   probe-free run keeps every mechanical counter unchanged while the
   probe-owned outputs come back empty.
3. **Substrate invariants**: the incrementally maintained loop-block
   occupancy counter matches a brute-force scan, and the coherence
   controller's sharers map matches the actual L2 contents.
"""

import json
import random
from dataclasses import asdict
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.instr import (
    PROBE_EVENTS,
    LoopProbe,
    OccupancySampler,
    Probe,
    ProbeBus,
    RedundantFillProbe,
    make_probes,
)
from repro.sim.simulator import Simulator
from repro.sim.system import SystemConfig
from repro.testing import build_micro, run_refs
from repro.workloads.mixes import make_multithreaded, make_table3_mix

GOLDEN_PATH = Path(__file__).parent / "data" / "seed_hotpath_golden.json"

MP_POLICIES = ("non-inclusive", "exclusive", "lap")
MT_POLICIES = ("exclusive", "inclusive", "lap")


def _norm(value):
    """JSON round-trip normalisation (histogram keys become strings)."""
    if isinstance(value, dict):
        return {str(k): _norm(v) for k, v in value.items()}
    return value


def _run_mp(policy, system=None, **sim_kwargs):
    system = system if system is not None else SystemConfig.scaled()
    wl = make_table3_mix("WL1", system.scale_context(), seed=7)
    sim = Simulator(system, policy, wl, **sim_kwargs)
    sim.run(5000)
    return sim


def _run_mt(policy, system=None, **sim_kwargs):
    system = system if system is not None else SystemConfig.scaled()
    wl = make_multithreaded("canneal", system.scale_context(), nthreads=4, seed=3)
    sim = Simulator(system, policy, wl, **sim_kwargs)
    sim.run(4000)
    return sim


def _snapshot(sim):
    h = sim.hierarchy
    snap = {
        "hier": asdict(h.stats),
        "llc": asdict(h.llc.stats),
        "l2_0": asdict(h.l2s[0].stats),
        "l1_0": asdict(h.l1s[0].stats),
        "loop": asdict(h.loop_stats()),
        "cycles": h.timing.max_cycles,
    }
    if h.coherence is not None:
        snap["coh"] = asdict(h.coherence.stats)
    return snap


def _assert_matches_golden(snapshot, golden_entry, label):
    for key, want in golden_entry.items():
        got = _norm(snapshot[key])
        if isinstance(want, dict):
            # Goldens may record a key subset; every recorded key must
            # match exactly.
            got = {k: v for k, v in got.items() if k in want}
        assert got == want, f"{label}/{key} diverged from the seed golden"


class TestGoldenBitIdentity:
    """Default-instrumented runs are bit-identical to the seed."""

    @pytest.fixture(scope="class")
    def golden(self):
        return json.loads(GOLDEN_PATH.read_text())

    @pytest.mark.parametrize("policy", MP_POLICIES)
    def test_multiprogrammed_matches_seed(self, golden, policy):
        _assert_matches_golden(_snapshot(_run_mp(policy)), golden[policy], policy)

    @pytest.mark.parametrize("policy", MT_POLICIES)
    def test_multithreaded_matches_seed(self, golden, policy):
        _assert_matches_golden(
            _snapshot(_run_mt(policy)), golden[f"mt-{policy}"], f"mt-{policy}"
        )


class TestProbeEquivalence:
    """Explicit probe lists and probe-free runs behave as specified."""

    def test_explicit_legacy_set_equals_default(self):
        system = SystemConfig.scaled()
        explicit = [
            LoopProbe(),
            RedundantFillProbe(),
            OccupancySampler(system.occupancy_sample_interval),
        ]
        assert _snapshot(_run_mp("lap", probes=explicit)) == _snapshot(_run_mp("lap"))

    @pytest.mark.parametrize("policy", MP_POLICIES)
    def test_probe_free_keeps_mechanical_stats(self, policy):
        default = _snapshot(_run_mp(policy))
        free = _snapshot(_run_mp(policy, system=SystemConfig.scaled().probe_free()))
        # The only probe-written cache stat is the redundant-fill count.
        assert free["llc"].pop("redundant_fills") == 0
        default["llc"].pop("redundant_fills")
        for key in ("hier", "llc", "l2_0", "l1_0", "cycles"):
            assert free[key] == default[key], f"{policy}/{key} changed without probes"
        # Probe-owned outputs come back empty, not absent.
        assert free["loop"]["l2_evictions"] == 0
        assert free["loop"]["ctc_histogram"] == {}

    def test_probe_free_hierarchy_has_no_handlers(self):
        system = SystemConfig.scaled().probe_free()
        sim = Simulator(system, "non-inclusive", make_table3_mix("WL1", system.scale_context(), seed=7))
        h = sim.hierarchy
        assert len(h.probe_bus) == 0
        for event in PROBE_EVENTS:
            assert h.probe_bus.handlers(event) == ()
        assert h.loop_tracker is None

    def test_make_probes_specs(self):
        assert [p.name for p in make_probes("default")] == ["loop", "redundant-fill"]
        assert [p.name for p in make_probes("default", occupancy_interval=64)] == [
            "loop",
            "redundant-fill",
            "occupancy",
        ]
        for spec in ("none", "off", "", "  NONE "):
            assert make_probes(spec) == []
        assert [p.name for p in make_probes("redundant-fill,loop")] == [
            "redundant-fill",
            "loop",
        ]
        with pytest.raises(ConfigurationError):
            make_probes("no-such-probe")
        with pytest.raises(ConfigurationError):
            make_probes("occupancy")  # needs a positive interval

    def test_system_config_probe_helpers(self):
        system = SystemConfig.scaled()
        assert [p.name for p in system.probes()] == ["loop", "redundant-fill", "occupancy"]
        assert system.probe_free().probes() == []
        assert system.probe_free().label == system.label


class TestProbeBusCompilation:
    """The bus only dispatches to genuinely overridden handlers."""

    def test_empty_bus_compiles_empty_tuples(self):
        bus = ProbeBus()
        for event in PROBE_EVENTS:
            assert bus.handlers(event) == ()

    def test_only_overridden_handlers_are_compiled(self):
        class AccessOnly(Probe):
            def on_access(self, core, addr, is_write):
                pass

        probe = AccessOnly()
        bus = ProbeBus([probe])
        assert bus.handlers("access") == (probe.on_access,)
        for event in PROBE_EVENTS:
            if event != "access":
                assert bus.handlers(event) == ()

    def test_dispatch_order_follows_probe_list(self):
        calls = []

        class Tagged(Probe):
            def __init__(self, tag):
                self.tag = tag

            def on_llc_fill(self, addr):
                calls.append(self.tag)

        bus = ProbeBus([Tagged("first"), Tagged("second")])
        for handler in bus.handlers("llc_fill"):
            handler(0)
        assert calls == ["first", "second"]

    def test_find_and_finish(self):
        loop = LoopProbe()
        bus = ProbeBus([RedundantFillProbe(), loop])
        assert bus.find(LoopProbe) is loop
        assert bus.find(OccupancySampler) is None
        bus.finish()  # finalizes the tracker without error
        assert len(bus) == 2


class TestSubstrateInvariants:
    """Incremental counters stay consistent with brute-force scans."""

    def _scan_occupancy(self, cache):
        valid = loops = 0
        for cache_set in cache.sets:
            for block in cache_set.blocks:
                if block.valid:
                    valid += 1
                    if block.loop_bit:
                        loops += 1
        return valid, loops

    @pytest.mark.parametrize("policy", ["lap", "exclusive"])
    def test_incremental_occupancy_matches_scan(self, policy):
        h = build_micro(policy)
        rng = random.Random(11)
        refs = [(rng.randrange(64) * 64, rng.random() < 0.3) for _ in range(2000)]
        run_refs(h, refs)
        assert h.llc.loop_block_occupancy() == self._scan_occupancy(h.llc)
        for level in (h.l1s[0], h.l2s[0]):
            assert level.loop_block_occupancy() == self._scan_occupancy(level)

    def test_occupancy_tracks_direct_loop_bit_writes(self):
        h = build_micro("lap")
        run_refs(h, [(a * 64, False) for a in range(12)])
        llc = h.llc
        block = next(
            b for s in llc.sets for b in s.blocks if b.valid
        )
        before_valid, before_loops = llc.loop_block_occupancy()
        block.set_loop_bit(not block.loop_bit)
        assert llc.loop_block_occupancy() == self._scan_occupancy(llc)
        block.set_loop_bit(not block.loop_bit)
        assert llc.loop_block_occupancy() == (before_valid, before_loops)

    def test_sharers_map_matches_l2_contents(self):
        sim = _run_mt("lap")
        h = sim.hierarchy
        coherence = h.coherence
        # Rebuild the sharers map from the ground truth (the L2 tag
        # arrays) and compare against the incrementally maintained one.
        rebuilt = {}
        for core, l2 in enumerate(h.l2s):
            for cache_set in l2.sets:
                for tag, block in cache_set.tag_map.items():
                    addr = l2.addr_of(cache_set.index, tag)
                    rebuilt[addr] = rebuilt.get(addr, 0) | (1 << core)
        assert coherence._sharers == rebuilt

    def test_shared_by_peers_uses_sharers_map(self):
        h = build_micro("non-inclusive", ncores=2, enable_coherence=True)
        addr = 0
        h.access(0, addr, False)
        assert h.shared_by_peers(1, addr)
        assert not h.shared_by_peers(0, addr)
        h.access(1, addr, False)
        assert h.shared_by_peers(0, addr)
