"""Tests for the flight recorder (repro.telemetry.trace)."""

import gzip
import json

import pytest

from repro.errors import TelemetryError
from repro.instr.probe import PROBE_EVENTS
from repro.telemetry import (
    EVENT_FIELDS,
    EVENT_GROUPS,
    EVENT_TYPES,
    TraceProbe,
    TraceReader,
    read_events,
    record_simulation,
    resolve_events,
)


def drive(probe: TraceProbe) -> None:
    """A tiny hand-rolled event stream exercising several event types."""
    probe.on_access(0, 64, False)
    probe.on_llc_fill(64)
    probe.on_access(1, 128, True)
    probe.on_dirtied(128)
    probe.on_llc_fill(128)
    probe.on_demand_hit(64)
    probe.on_occupancy_sample(2, 1)


class TestResolveEvents:
    def test_none_and_all_select_everything(self):
        assert resolve_events(None) == tuple(PROBE_EVENTS)
        assert resolve_events("all") == tuple(PROBE_EVENTS)
        assert resolve_events("") == tuple(PROBE_EVENTS)

    def test_groups_and_names_mix(self):
        events = resolve_events("llc,access")
        assert "access" in events
        assert set(EVENT_GROUPS["llc"]) <= set(events)
        assert "l2_fill" not in events

    def test_iterable_spec(self):
        assert resolve_events(["llc_fill", "access"]) == ("access", "llc_fill")

    def test_order_follows_bus_regardless_of_spelling_order(self):
        assert resolve_events("llc_fill,access") == ("access", "llc_fill")

    def test_unknown_name_raises(self):
        with pytest.raises(TelemetryError, match="warp_drive"):
            resolve_events("warp_drive")


class TestRoundTrip:
    def test_plain_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TraceProbe(path, meta={"policy": "lap"}) as probe:
            drive(probe)
        assert probe.recorded == 7

        reader = TraceReader(path)
        assert reader.meta == {"policy": "lap"}
        assert reader.events == tuple(PROBE_EVENTS)
        events = list(reader)
        assert len(events) == 7
        assert type(events[0]).__name__ == "AccessEvent"
        assert events[0] == EVENT_TYPES["access"](0, 0, 64, False)
        assert events[1] == EVENT_TYPES["llc_fill"](1, 64)
        assert [e.seq for e in events] == list(range(7))
        last = events[-1]
        assert (last.valid, last.loops) == (2, 1)

    def test_gzip_round_trip_and_magic_detection(self, tmp_path):
        path = tmp_path / "t.jsonl.gz"
        with TraceProbe(path) as probe:
            drive(probe)
        assert path.read_bytes()[:2] == b"\x1f\x8b"
        assert len(read_events(path)) == 7

        # The reader sniffs gzip by magic bytes, not by suffix.
        renamed = tmp_path / "no-suffix.jsonl"
        renamed.write_bytes(path.read_bytes())
        assert read_events(renamed) == read_events(path)

    def test_event_filter_records_subset(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TraceProbe(path, events="llc_fill") as probe:
            drive(probe)
        events = read_events(path)
        assert [type(e).__name__ for e in events] == ["LlcFillEvent", "LlcFillEvent"]
        # Filtered traces get their own dense sequence numbers.
        assert [e.seq for e in events] == [0, 1]
        assert TraceReader(path).events == ("llc_fill",)

    def test_small_buffer_flushes_incrementally(self, tmp_path):
        path = tmp_path / "t.jsonl"
        probe = TraceProbe(path, buffer_events=2)
        drive(probe)
        # 7 events with a 2-event buffer: at least 6 already on disk,
        # but no footer yet -> the reader refuses the prefix.
        assert len(path.read_text().splitlines()) >= 7  # header + 6 events
        with pytest.raises(TelemetryError, match="truncated"):
            read_events(path)
        probe.finish()
        assert len(read_events(path)) == 7

    def test_finish_is_idempotent(self, tmp_path):
        path = tmp_path / "t.jsonl"
        probe = TraceProbe(path)
        drive(probe)
        probe.finish()
        probe.finish()  # no-op, no error
        assert len(read_events(path)) == 7

    def test_rejects_nonpositive_buffer(self, tmp_path):
        with pytest.raises(TelemetryError, match="buffer_events"):
            TraceProbe(tmp_path / "t.jsonl", buffer_events=0)

    def test_unwritable_path_raises(self, tmp_path):
        with pytest.raises(TelemetryError, match="cannot open"):
            TraceProbe(tmp_path / "missing-dir" / "t.jsonl")


class TestReaderValidation:
    def write_trace(self, tmp_path, lines, name="t.jsonl"):
        header = {"kind": "repro-trace", "schema": 1,
                  "events": list(PROBE_EVENTS), "meta": {}}
        path = tmp_path / name
        path.write_text("\n".join([json.dumps(header)] + lines) + "\n")
        return path

    def test_missing_file(self, tmp_path):
        with pytest.raises(TelemetryError, match="no such trace"):
            TraceReader(tmp_path / "absent.jsonl")

    def test_non_json_header(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("not json\n")
        with pytest.raises(TelemetryError, match="JSON trace header"):
            TraceReader(path)

    def test_wrong_kind(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(json.dumps({"kind": "something-else", "schema": 1}) + "\n")
        with pytest.raises(TelemetryError, match="not a repro-trace"):
            TraceReader(path)

    def test_wrong_schema_version(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(json.dumps({"kind": "repro-trace", "schema": 99}) + "\n")
        with pytest.raises(TelemetryError, match="schema 99"):
            TraceReader(path)

    def test_truncated_file_no_footer(self, tmp_path):
        path = self.write_trace(tmp_path, [json.dumps([0, "llc_fill", 64])])
        with pytest.raises(TelemetryError, match="truncated"):
            read_events(path)

    def test_truncation_detected_after_real_recording(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TraceProbe(path) as probe:
            drive(probe)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")  # drop the footer
        with pytest.raises(TelemetryError, match="no end-of-trace marker"):
            read_events(path)

    def test_footer_count_mismatch(self, tmp_path):
        path = self.write_trace(
            tmp_path, [json.dumps([0, "llc_fill", 64]), json.dumps(["end", 5])]
        )
        with pytest.raises(TelemetryError, match="footer declares 5"):
            read_events(path)

    def test_unknown_event_type_named_in_error(self, tmp_path):
        path = self.write_trace(
            tmp_path, [json.dumps([0, "warp_drive", 1]), json.dumps(["end", 1])]
        )
        with pytest.raises(TelemetryError, match="unknown event type 'warp_drive'"):
            read_events(path)

    def test_wrong_arg_count(self, tmp_path):
        path = self.write_trace(
            tmp_path, [json.dumps([0, "l2_fill", 64]), json.dumps(["end", 1])]
        )
        with pytest.raises(TelemetryError, match="expected 2"):
            read_events(path)

    def test_malformed_event_line(self, tmp_path):
        path = self.write_trace(tmp_path, ['{"half": ', json.dumps(["end", 0])])
        with pytest.raises(TelemetryError, match="malformed trace line"):
            read_events(path)

    def test_non_array_event_line(self, tmp_path):
        path = self.write_trace(tmp_path, ['{"seq": 0}', json.dumps(["end", 0])])
        with pytest.raises(TelemetryError, match=r"\[seq, event"):
            read_events(path)

    def test_truncated_gzip_stream(self, tmp_path):
        path = tmp_path / "t.jsonl.gz"
        with TraceProbe(path) as probe:
            for i in range(500):
                probe.on_llc_fill(i * 64)
        raw = path.read_bytes()
        clipped = tmp_path / "clipped.jsonl.gz"
        clipped.write_bytes(raw[: int(len(raw) * 0.6)])  # cut mid-stream
        with pytest.raises(TelemetryError):
            read_events(clipped)

    def test_header_and_fields_cover_every_bus_event(self):
        assert set(EVENT_FIELDS) == set(PROBE_EVENTS)
        assert set(EVENT_TYPES) == set(PROBE_EVENTS)
        for name, fields in EVENT_FIELDS.items():
            assert EVENT_TYPES[name]._fields == ("seq",) + fields


class TestRecordSimulation:
    def test_recorded_run_is_bit_identical(self, tmp_path, small_system):
        from repro import make_workload, simulate

        path = tmp_path / "run.jsonl.gz"
        recorded = record_simulation(
            path, small_system, "lap", "mcf", refs_per_core=300, seed=2
        )
        workload = make_workload("mcf", small_system, seed=2)
        plain = simulate(small_system, "lap", workload, refs_per_core=300)
        assert recorded.to_dict() == plain.to_dict()

        reader = TraceReader(path)
        assert reader.meta["policy"] == "lap"
        assert reader.meta["workload"] == "mcf"
        assert reader.meta["seed"] == 2
        events = list(reader)
        accesses = sum(1 for e in events if type(e).__name__ == "AccessEvent")
        assert accesses == plain.hier.accesses

    def test_event_filter_passthrough(self, tmp_path, small_system):
        path = tmp_path / "run.jsonl"
        record_simulation(
            path, small_system, "non-inclusive", "mcf",
            refs_per_core=200, events="llc_fill",
        )
        names = {type(e).__name__ for e in read_events(path)}
        assert names == {"LlcFillEvent"}


def test_gzip_writes_are_actually_compressed(tmp_path):
    plain, packed = tmp_path / "t.jsonl", tmp_path / "t.jsonl.gz"
    for target in (plain, packed):
        with TraceProbe(target) as probe:
            for i in range(2000):
                probe.on_llc_fill(i * 64)
    assert packed.stat().st_size < plain.stat().st_size / 4
    with gzip.open(packed, "rt") as fh:
        assert json.loads(fh.readline())["kind"] == "repro-trace"
