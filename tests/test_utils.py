"""Unit tests for repro.utils."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.utils import (
    align_down,
    chunked,
    clamp,
    fmt_bytes,
    geometric_mean,
    ilog2,
    is_pow2,
    mean,
    require_nonnegative,
    require_positive,
    require_pow2,
)


class TestPow2:
    @pytest.mark.parametrize("value", [1, 2, 4, 64, 1 << 20])
    def test_is_pow2_true(self, value):
        assert is_pow2(value)

    @pytest.mark.parametrize("value", [0, -1, 3, 6, 100, (1 << 20) + 1])
    def test_is_pow2_false(self, value):
        assert not is_pow2(value)

    @pytest.mark.parametrize("value,expected", [(1, 0), (2, 1), (64, 6), (1 << 16, 16)])
    def test_ilog2(self, value, expected):
        assert ilog2(value) == expected

    @pytest.mark.parametrize("value", [0, 3, -4])
    def test_ilog2_rejects_non_pow2(self, value):
        with pytest.raises(ConfigurationError):
            ilog2(value)

    def test_require_pow2_passes_through(self):
        assert require_pow2(128, "x") == 128

    def test_require_pow2_names_field(self):
        with pytest.raises(ConfigurationError, match="llc_size"):
            require_pow2(100, "llc_size")


class TestValidators:
    def test_require_positive_ok(self):
        assert require_positive(0.5, "x") == 0.5

    @pytest.mark.parametrize("value", [0, -1, -0.001])
    def test_require_positive_rejects(self, value):
        with pytest.raises(ConfigurationError):
            require_positive(value, "x")

    def test_require_nonnegative_accepts_zero(self):
        assert require_nonnegative(0, "x") == 0

    def test_require_nonnegative_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            require_nonnegative(-1, "x")


class TestAlignAndClamp:
    @pytest.mark.parametrize(
        "addr,gran,expected", [(0, 64, 0), (63, 64, 0), (64, 64, 64), (130, 64, 128)]
    )
    def test_align_down(self, addr, gran, expected):
        assert align_down(addr, gran) == expected

    def test_clamp_inside(self):
        assert clamp(0.5, 0.0, 1.0) == 0.5

    def test_clamp_edges(self):
        assert clamp(-1, 0.0, 1.0) == 0.0
        assert clamp(2, 0.0, 1.0) == 1.0


class TestMeans:
    def test_geometric_mean_basic(self):
        assert math.isclose(geometric_mean([1, 4]), 2.0)

    def test_geometric_mean_single(self):
        assert math.isclose(geometric_mean([7.0]), 7.0)

    def test_geometric_mean_empty_raises(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_mean_basic(self):
        assert mean([1, 2, 3]) == 2

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])


class TestChunked:
    def test_even_chunks(self):
        assert list(chunked([1, 2, 3, 4], 2)) == [[1, 2], [3, 4]]

    def test_ragged_tail(self):
        assert list(chunked([1, 2, 3], 2)) == [[1, 2], [3]]

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            list(chunked([1], 0))


class TestFmtBytes:
    @pytest.mark.parametrize(
        "n,expected",
        [(64, "64B"), (2048, "2KB"), (8 * 1024 * 1024, "8MB"), (1536, "1.5KB")],
    )
    def test_formatting(self, n, expected):
        assert fmt_bytes(n) == expected
