"""Tests for repro.validate.invariants: the InvariantProbe catalog.

Each invariant gets three kinds of coverage: it *passes* on healthy
runs, it *skips* where it does not apply, and it *fires* when the state
is corrupted behind the engine's back (or, for the headline
dirty-conservation law, when the historical exclusive hit-invalidation
bug is re-introduced via a policy subclass).
"""

import pytest

from repro.errors import InvariantViolation
from repro.inclusion.base import LLCAccess
from repro.inclusion.traditional import ExclusivePolicy
from repro.validate import (
    InvariantProbe,
    check_coherence,
    check_dirty_conservation,
    check_exclusion,
    check_inclusion,
    check_l1_inclusion,
    check_no_fill,
    check_write_ledger,
    run_trace,
    violation,
)
from tests.conftest import A, B, C, D, E, F, G, H, build_micro, run_refs


def reads(*addrs):
    return [(a, False) for a in addrs]


def writes(*addrs):
    return [(a, True) for a in addrs]


def probed(policy, enable_coherence=False, interval=0, **kwargs):
    """A micro hierarchy with an armed InvariantProbe attached."""
    h = build_micro(policy, enable_coherence=enable_coherence, **kwargs)
    probe = InvariantProbe(interval=interval)
    h.attach_probe(probe)
    return h, probe


class BuggyExclusivePolicy(ExclusivePolicy):
    """The pre-fix exclusive policy: hit-invalidation drops the dirty
    bit, so the LLC copy's writeback obligation vanishes."""

    def llc_access(self, core, addr, is_write):
        block = self._llc_lookup(core, addr)
        if block is None:
            return LLCAccess(hit=False, tech=self.llc.tech)
        tech = block.tech
        if not self.h.shared_by_peers(core, addr):
            self.llc.discard(addr)
            self.llc.stats.hit_invalidations += 1
            self.h.note_llc_evict(addr)
        return LLCAccess(hit=True, tech=tech)


class TestViolationFactory:
    def test_tags_the_invariant(self):
        exc = violation("no-fill", "boom")
        assert isinstance(exc, InvariantViolation)
        assert exc.invariant == "no-fill"
        assert "no-fill: boom" in str(exc)


class TestApplicability:
    def test_inclusion_skips_non_back_invalidating(self):
        h, _ = probed("non-inclusive")
        assert check_inclusion(h) is False

    def test_exclusion_only_pure_exclusive_single_core(self):
        assert check_exclusion(probed("exclusive")[0]) is True
        assert check_exclusion(probed("exclusive", ncores=2)[0]) is False
        assert check_exclusion(probed("flexclusion")[0]) is False
        assert check_exclusion(probed("lap")[0]) is False

    def test_no_fill_skips_fillers_and_switchers(self):
        assert check_no_fill(probed("exclusive")[0]) is True
        assert check_no_fill(probed("lap")[0]) is True
        assert check_no_fill(probed("non-inclusive")[0]) is False
        assert check_no_fill(probed("dswitch")[0]) is False

    def test_coherence_skips_incoherent_runs(self):
        assert check_coherence(probed("lap")[0]) is False
        assert check_coherence(probed("lap", enable_coherence=True, ncores=2)[0]) is True


class TestHealthyRunsPass:
    @pytest.mark.parametrize(
        "policy",
        ["inclusive", "non-inclusive", "exclusive", "flexclusion", "dswitch", "lap"],
    )
    def test_micro_trace_clean(self, policy):
        h, probe = probed(policy)
        run_refs(h, writes(A, B) + reads(C, D, E, F, G, H) + writes(A) + reads(B, C))
        probe.check_now()  # no raise
        assert probe.counts["write-ledger"] == 1
        assert probe.counts["l1-inclusion"] == 1

    def test_interval_checking_via_bus(self):
        h, probe = probed("exclusive", interval=2)
        run_refs(h, reads(A, B, C, D, E, F))
        # six retired refs, interval 2 -> three mid-run passes
        assert probe.counts["exclusion"] == 3

    def test_finish_runs_a_final_pass(self):
        h, probe = probed("lap", interval=0)
        run_refs(h, writes(A) + reads(B, C))
        assert probe.counts["no-fill"] == 0
        h.finish()
        assert probe.counts["no-fill"] == 1


class TestCorruptionFires:
    def test_inclusion_violation(self):
        h, _ = probed("inclusive")
        run_refs(h, reads(A, B))
        h.llc.discard(A)  # break strict inclusion behind the policy
        with pytest.raises(InvariantViolation, match="inclusion"):
            check_inclusion(h)

    def test_exclusion_violation(self):
        h, _ = probed("exclusive")
        run_refs(h, reads(A))
        h.llc.insert(A)  # plant a duplicate of the L2-resident line
        with pytest.raises(InvariantViolation, match="exclusion"):
            check_exclusion(h)

    def test_l1_inclusion_violation(self):
        h, _ = probed("non-inclusive")
        run_refs(h, reads(A))
        h.l2s[0].discard(A)  # L1 still holds A
        with pytest.raises(InvariantViolation, match="l1-inclusion"):
            check_l1_inclusion(h)

    def test_no_fill_violation(self):
        h, _ = probed("exclusive")
        run_refs(h, reads(A))
        h.llc.stats.fill_writes = 1
        with pytest.raises(InvariantViolation, match="no-fill"):
            check_no_fill(h)

    def test_write_ledger_violation(self):
        h, _ = probed("non-inclusive")
        run_refs(h, reads(A))
        h.stats.mem_writes += 1  # a memory write from thin air
        with pytest.raises(InvariantViolation, match="write-ledger"):
            check_write_ledger(h)

    def test_coherence_sharers_drift(self):
        h, _ = probed("non-inclusive", enable_coherence=True, ncores=2)
        run_refs(h, reads(A, B))
        h.coherence.on_l2_drop(0, A)  # desync the map from the tags
        with pytest.raises(InvariantViolation, match="sharers map drift"):
            check_coherence(h)

    def test_coherence_dirty_state_mismatch(self):
        h, _ = probed("non-inclusive", enable_coherence=True, ncores=2)
        run_refs(h, writes(A))
        h.l2s[0].peek(A).dirty = False  # dirty bit contradicts state M
        with pytest.raises(InvariantViolation, match="state=M"):
            check_coherence(h)

    def test_dirty_conservation_violation(self):
        h, _ = probed("non-inclusive")
        run_refs(h, writes(A))
        h.l2s[0].peek(A).dirty = False  # silently lose the dirty bit
        with pytest.raises(InvariantViolation, match="dirty-conservation"):
            check_dirty_conservation(h, {A})


class TestHeadlineBugDetection:
    """The dirty-loss bug class the subsystem exists to keep fixed."""

    def test_buggy_exclusive_caught_deterministically(self):
        trace = [(0, A, True)] + [(0, x, False) for x in (B, C, D, E)] + [(0, A, False)]
        with pytest.raises(InvariantViolation) as info:
            run_trace(BuggyExclusivePolicy(), trace, interval=1)
        assert info.value.invariant == "dirty-conservation"

    def test_fixed_exclusive_passes_same_trace(self):
        trace = [(0, A, True)] + [(0, x, False) for x in (B, C, D, E)] + [(0, A, False)]
        h = run_trace("exclusive", trace, interval=1)
        assert h.l2s[0].peek(A).dirty

    def test_writeback_retires_the_obligation(self):
        """Once the dirty line's data reaches memory, the conservation
        set drains — the probe does not cry wolf after legal evictions."""
        h, probe = probed("exclusive", interval=1)
        run_refs(h, writes(A) + reads(B, C, D, E))
        run_refs(h, reads(A))
        run_refs(h, reads(*[i * 64 for i in range(8, 32)]))  # push A to memory
        assert h.stats.mem_writes == 1
        assert A not in probe.outstanding
        probe.check_now()

    def test_writeback_keeps_obligation_while_dirty_copy_remains(self):
        """A memory writeback of the LLC copy must not absolve a dirty
        L2 copy of the same address."""
        h, probe = probed("non-inclusive", interval=1)
        run_refs(h, writes(A) + reads(B, C, D, E))  # dirty A lands in LLC
        run_refs(h, writes(A))  # refill + re-dirty the L2 copy: both dirty
        # Flood the LLC while touching A between misses so the L2 keeps
        # A hot: the LLC evicts its dirty duplicate (memory writeback)
        # while the L2 copy still owes memory.
        flood = []
        for i in range(8, 28):
            flood += [(A, False), (i * 64, False)]
        run_refs(h, flood)
        assert h.llc.peek(A) is None and h.l2s[0].peek(A).dirty
        assert h.stats.mem_writes >= 1
        assert A in probe.outstanding  # the L2 copy still owes memory
        probe.check_now()
