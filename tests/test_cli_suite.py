"""Tests for the suite and corpus CLI commands."""

import json

import pytest

from repro.cli import main
from repro.workloads import TraceCorpus
from repro.workloads.corpus import ENV_CORPUS_DIR
from repro.workloads.tracefile import save_trace

SMALL = ["--ncores", "2", "--llc-kb", "32", "--l2-kb", "4", "--refs", "1000"]


def make_gen(name="cli-gen"):
    from repro.workloads import LoopRegion, SyntheticTrace

    return SyntheticTrace(
        [(LoopRegion(0, 64 * 64), 1.0)], seed=5, name=name, instr_per_ref=4.0
    )


class TestSuiteList:
    def test_lists_builtin_sets(self, capsys):
        assert main(["suite", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("paper", "int", "fp", "parsec", "corpus"):
            assert name in out


class TestSuiteRun:
    def test_run_prints_geomean_summary(self, capsys):
        assert main([
            "suite", "run", "loop", "--policies", "non-inclusive,lap", *SMALL,
        ]) == 0
        out = capsys.readouterr().out
        assert "geomean ratios" in out
        assert "non-inclusive" in out and "lap" in out

    def test_unknown_set_exits_2_with_suggestion(self, capsys):
        assert main(["suite", "run", "papr", *SMALL]) == 2
        err = capsys.readouterr().err
        assert "did you mean 'paper'" in err

    def test_json_output_and_warm_cache(self, capsys, tmp_path):
        argv = [
            "--cache-dir", str(tmp_path / "cache"),
            "suite", "run", "loop",
            "--policies", "non-inclusive,lap", "--json", *SMALL,
        ]
        assert main(argv) == 0
        cold = json.loads(capsys.readouterr().out)
        assert cold["cache_hits"] == 0 and cold["simulated"] > 0
        assert main(argv) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["simulated"] == 0
        assert warm["cache_hits"] == cold["simulated"]
        assert warm["geomean"] == cold["geomean"]

    def test_failures_exit_1_but_suite_completes(self, capsys, monkeypatch,
                                                 tmp_path):
        # a corpus trace set where one object is broken mid-run
        corpus = TraceCorpus(tmp_path / "corpus", create=True)
        good = corpus.capture(make_gen("good"), 2048, name="good")
        bad = corpus.capture(make_gen("bad"), 2048, name="bad")
        corpus.object_path(bad.digest).write_bytes(b"garbage")
        assert main([
            "suite", "run", "corpus", "--corpus", str(corpus.root),
            "--policies", "lap", *SMALL,
        ]) == 1
        captured = capsys.readouterr()
        assert "FAILED bad" in captured.out
        assert "good" in captured.out  # the healthy trace still ran
        assert good.digest  # silence unused warning

    def test_csv_and_result_file_outputs(self, tmp_path, capsys):
        out_csv = tmp_path / "suite.csv"
        results = tmp_path / "results"
        assert main([
            "suite", "run", "loop", "--policies", "non-inclusive,lap",
            "--output", str(out_csv), "--result-file", str(results), *SMALL,
        ]) == 0
        assert out_csv.exists()
        header = out_csv.read_text().splitlines()[0]
        assert header.startswith("system,workload,policy")
        assert (results / "suite_geomean.txt").exists()


class TestCorpusCommands:
    def test_add_list_verify_flow(self, tmp_path, capsys):
        trace = save_trace(tmp_path / "t", make_gen(), 1500)
        corpus_dir = str(tmp_path / "corpus")
        assert main(["corpus", "add", str(trace), "--dir", corpus_dir]) == 0
        assert main(["corpus", "list", "--dir", corpus_dir]) == 0
        out = capsys.readouterr().out
        assert "cli-gen" in out and "1500" in out
        assert main(["corpus", "verify", "--dir", corpus_dir]) == 0
        assert "verify clean" in capsys.readouterr().out

    def test_verify_catches_truncation(self, tmp_path, capsys):
        corpus = TraceCorpus(tmp_path / "corpus", create=True)
        entry = corpus.capture(make_gen(), 2048, name="trunc")
        obj = corpus.object_path(entry.digest)
        data = obj.read_bytes()
        obj.write_bytes(data[: len(data) // 2])
        assert main(["corpus", "verify", "--dir", str(corpus.root)]) == 1
        assert "trunc" in capsys.readouterr().err

    def test_capture_command(self, tmp_path, capsys):
        corpus_dir = str(tmp_path / "corpus")
        assert main([
            "corpus", "capture", "bzip2", "--dir", corpus_dir, *SMALL,
        ]) == 0
        corpus = TraceCorpus(corpus_dir)
        assert len(corpus) == 2  # one stream per core
        assert corpus.verify() == []

    def test_no_corpus_dir_is_an_error(self, monkeypatch, capsys):
        monkeypatch.delenv(ENV_CORPUS_DIR, raising=False)
        assert main(["corpus", "list"]) == 2
        assert "no trace corpus" in capsys.readouterr().err

    def test_env_var_channel(self, tmp_path, monkeypatch, capsys):
        corpus = TraceCorpus(tmp_path / "corpus", create=True)
        corpus.capture(make_gen(), 1024, name="via-env")
        monkeypatch.setenv(ENV_CORPUS_DIR, str(corpus.root))
        assert main(["corpus", "list"]) == 0
        assert "via-env" in capsys.readouterr().out


class TestFixtureCorpus:
    """The committed fixture corpus (tests/data/corpus) must verify —
    CI runs `repro corpus verify` against it."""

    def test_fixture_corpus_verifies(self, capsys):
        import pathlib

        fixture = pathlib.Path(__file__).parent / "data" / "corpus"
        assert fixture.exists(), "fixture corpus missing"
        assert main(["corpus", "verify", "--dir", str(fixture)]) == 0

    def test_fixture_corpus_replays(self):
        import pathlib

        fixture = pathlib.Path(__file__).parent / "data" / "corpus"
        corpus = TraceCorpus(fixture)
        assert len(corpus) >= 1
        for entry in corpus.entries():
            replay = corpus.load(entry.digest, checksum=True)
            assert len(replay) == entry.length
