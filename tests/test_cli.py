"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import FIGURES, build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        for cmd in ("list", "run", "compare", "characterize", "figure"):
            args = {
                "list": [cmd],
                "run": [cmd, "WH1", "lap"],
                "compare": [cmd, "WH1"],
                "characterize": [cmd],
                "figure": [cmd, "fig14"],
            }[cmd]
            parsed = parser.parse_args(args)
            assert parsed.command == cmd

    def test_figure_map_covers_every_figure(self):
        import repro.analysis.figures as F

        for fig, fn_name in FIGURES.items():
            assert hasattr(F, fn_name), fig


class TestListCommand:
    def test_lists_policies_and_workloads(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "lap" in out and "WH1" in out and "streamcluster" in out
        assert "stt" in out


class TestRunCommand:
    def test_run_prints_metrics(self, capsys):
        code = main(["run", "mcf", "lap", "--refs", "1500", "--ncores", "2",
                     "--llc-kb", "32", "--l2-kb", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "epi" in out and "mpki" in out

    def test_run_json_output(self, capsys):
        code = main(["run", "mcf", "lap", "--refs", "1000", "--ncores", "2",
                     "--llc-kb", "32", "--l2-kb", "4", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["policy"] == "lap"
        assert payload["epi"] > 0

    def test_unknown_workload_fails_cleanly(self, capsys):
        assert main(["run", "gcc", "lap", "--refs", "100"]) == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_policy_fails_cleanly(self, capsys):
        assert main(["run", "mcf", "magic", "--refs", "100"]) == 2

    def test_ratio_flag_on_sram_rejected(self, capsys):
        assert main(["run", "mcf", "lap", "--tech", "sram", "--ratio", "8"]) == 2

    def test_ratio_flag_scales_stt(self, capsys):
        code = main(["run", "mcf", "lap", "--refs", "1000", "--ncores", "2",
                     "--llc-kb", "32", "--l2-kb", "4", "--ratio", "10", "--json"])
        assert code == 0

    def test_hybrid_flag(self, capsys):
        code = main(["run", "mcf", "lhybrid", "--refs", "1000", "--ncores", "2",
                     "--llc-kb", "32", "--l2-kb", "4", "--hybrid", "--json"])
        assert code == 0


class TestCompareCommand:
    def test_compare_normalises_to_first_policy(self, capsys):
        code = main(["compare", "omnetpp", "--refs", "1500", "--ncores", "2",
                     "--llc-kb", "32", "--l2-kb", "4",
                     "--policies", "non-inclusive,lap"])
        assert code == 0
        out = capsys.readouterr().out
        assert "non-inclusive" in out and "lap" in out
        assert "1.000" in out  # the baseline row


class TestCharacterizeCommand:
    def test_characterize_named_benchmarks(self, capsys):
        code = main(["characterize", "libquantum", "--refs", "1500",
                     "--ncores", "2", "--llc-kb", "32", "--l2-kb", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "libquantum" in out and ("WL" in out or "WH" in out)


class TestFigureCommand:
    def test_figure_runs(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_REFS", "1500")
        code = main(["figure", "fig17", "--refs", "1500"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fig17" in out

    def test_unknown_figure_fails_cleanly(self, capsys):
        assert main(["figure", "fig99"]) == 2


class TestCheckCommand:
    def test_check_passes_on_healthy_tree(self, capsys):
        code = main(["check", "--policy", "lap", "--refs", "300",
                     "--coherence", "off", "--quiet"])
        assert code == 0
        out = capsys.readouterr().out
        assert "invariants[lap" in out and "passed" in out

    def test_check_with_fuzz_rounds(self, capsys):
        code = main(["check", "--policy", "exclusive", "--refs", "300",
                     "--fuzz", "2", "--coherence", "off", "--quiet"])
        assert code == 0
        assert "fuzz" in capsys.readouterr().out

    def test_check_multiple_policies(self, capsys):
        code = main(["check", "--policy", "exclusive", "--policy", "lap",
                     "--refs", "300", "--coherence", "off", "--quiet"])
        assert code == 0
        out = capsys.readouterr().out
        assert "invariants[exclusive" in out and "invariants[lap" in out

    def test_check_registered_in_parser(self):
        parsed = build_parser().parse_args(["check", "--fuzz", "5"])
        assert parsed.command == "check" and parsed.fuzz == 5
