"""Concurrent-writer safety of the result cache (satellite of the
serve PR): many independent ``ResultCache`` instances — the in-process
stand-in for many processes, since instances share no state, only the
directory — hammer one cache dir while evictions race, and two real
processes share one dir with exactly one simulation between them."""

import json
import subprocess
import sys
import threading
from pathlib import Path

from repro.exec import JobSpec, ResultCache, WorkloadSpec, execute_jobs
from repro.sim import SystemConfig


def spec(seed=0, refs=400) -> JobSpec:
    return JobSpec(
        system=SystemConfig.scaled(ncores=2, llc_kb=32, l2_kb=4),
        workload=WorkloadSpec.duplicate("mcf", ncores=2, seed=seed),
        policy="lap",
        refs_per_core=refs,
    )


class TestConcurrentWriters:
    def test_same_key_hammered_by_many_writers(self, tmp_path):
        """Concurrent stores of one key must never interleave bytes:
        readers see either a miss or the complete, correct entry."""
        job = spec()
        result = job.run()
        expected = result.to_dict()
        failures = []
        rounds = 30

        def writer():
            cache = ResultCache(tmp_path)  # own instance, shared dir
            try:
                for _ in range(rounds):
                    cache.put(job, result)
            except Exception as exc:
                failures.append(exc)

        def reader():
            cache = ResultCache(tmp_path)
            try:
                for _ in range(rounds * 2):
                    hit = cache.get(job)
                    if hit is not None and hit.to_dict() != expected:
                        failures.append(AssertionError("torn cache entry"))
            except Exception as exc:
                failures.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        threads += [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not failures
        assert ResultCache(tmp_path).get(job).to_dict() == expected

    def test_racing_eviction_mid_read_is_a_miss_not_a_crash(self, tmp_path):
        """Writers under a tiny size cap evict each other's entries
        while readers and stat-takers walk the directory."""
        jobs = [spec(seed=s) for s in range(4)]
        results = {j.key(): j.run() for j in jobs}
        entry_bytes = len(json.dumps({"result": results[jobs[0].key()].to_dict()}))
        failures = []

        def churner(offset):
            # Cap fits roughly two entries: every put risks evicting a
            # file another thread is mid-way through reading/statting.
            cache = ResultCache(tmp_path, max_bytes=2 * entry_bytes)
            try:
                for n in range(40):
                    job = jobs[(offset + n) % len(jobs)]
                    cache.put(job, results[job.key()])
                    hit = cache.get(jobs[(offset + n + 1) % len(jobs)])
                    if hit is not None:
                        assert hit.to_dict() == results[
                            jobs[(offset + n + 1) % len(jobs)].key()
                        ].to_dict()
                    cache.stats()  # walks the dir while others unlink
            except Exception as exc:
                failures.append(exc)

        threads = [threading.Thread(target=churner, args=(n,)) for n in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not failures

    def test_put_leaves_no_temp_droppings(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = spec()
        cache.put(job, job.run())
        leftovers = [p for p in Path(tmp_path).iterdir()
                     if p.suffix != ".json"]
        assert leftovers == []


class TestTwoProcessesOneCacheDir:
    def test_identical_specs_across_processes_simulate_once(self, tmp_path):
        """The serve deployment model: independent processes (server +
        CLI) share one cache dir; the second submission of an identical
        spec must be a pure cache hit — zero simulations — and return
        the byte-identical result."""
        script = r"""
import json, sys
sys.path.insert(0, {src!r})
from repro.exec import ResultCache, execute_jobs
from repro.exec.jobs import JobSpec
job = JobSpec.from_dict(json.loads({job_json!r}))
outcome = execute_jobs([job], cache=ResultCache({cache_dir!r}))
print(json.dumps({{
    "hits": outcome.cache_hits,
    "misses": outcome.cache_misses,
    "result": outcome[0].to_dict(),
}}))
"""
        job = spec()
        src = str(Path(__file__).parent.parent / "src")
        code = script.format(
            src=src, job_json=job.canonical_json(), cache_dir=str(tmp_path)
        )

        def run_process():
            proc = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True, text=True, timeout=300,
            )
            assert proc.returncode == 0, proc.stderr
            return json.loads(proc.stdout)

        first = run_process()
        second = run_process()
        assert (first["hits"], first["misses"]) == (0, 1), \
            "first process simulates (pool metrics: one miss)"
        assert (second["hits"], second["misses"]) == (1, 0), \
            "second process must not simulate at all"
        assert second["result"] == first["result"]
        # and both agree with an in-process run
        assert execute_jobs([job])[0].to_dict() == first["result"]
