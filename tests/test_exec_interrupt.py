"""Graceful-shutdown semantics of execute_jobs (satellite of the serve
PR): SIGINT/SIGTERM mid-batch yields a partial ExecutionOutcome with
completed work cached and manifest-logged, not a raw traceback."""

import os
import signal

import pytest

from repro.exec import JobSpec, ResultCache, WorkloadSpec, execute_jobs
from repro.sim import SystemConfig
from repro.telemetry.profiling import RunManifest


def jobs(n=3, refs=400):
    return [
        JobSpec(
            system=SystemConfig.scaled(ncores=2, llc_kb=32, l2_kb=4),
            workload=WorkloadSpec.duplicate("mcf", ncores=2, seed=seed),
            policy="lap",
            refs_per_core=refs,
        )
        for seed in range(n)
    ]


def interrupt_on_call(monkeypatch, n_before_interrupt, exc=KeyboardInterrupt):
    """Let ``n_before_interrupt`` jobs run, then raise in the next one."""
    calls = {"n": 0}
    real_run = JobSpec.run

    def run(self):
        calls["n"] += 1
        if calls["n"] > n_before_interrupt:
            raise exc
        return real_run(self)

    monkeypatch.setattr(JobSpec, "run", run)
    return calls


class TestGracefulInterrupt:
    def test_partial_outcome_instead_of_traceback(self, monkeypatch):
        batch = jobs(3)
        interrupt_on_call(monkeypatch, 1)
        outcome = execute_jobs(batch)  # must NOT raise
        assert outcome.interrupted
        assert outcome.total_jobs == 3
        assert len(outcome) == 1
        assert len(outcome.profiles) == 1
        assert outcome[0].epi > 0

    def test_completed_jobs_are_cached_and_manifested(self, monkeypatch, tmp_path):
        batch = jobs(3)
        cache = ResultCache(tmp_path / "cache")
        interrupt_on_call(monkeypatch, 2)
        outcome = execute_jobs(batch, cache=cache, manifest_dir=tmp_path)
        assert outcome.interrupted and len(outcome) == 2
        # the two finished jobs are in the shared cache...
        monkeypatch.undo()
        assert cache.get(batch[0]) is not None
        assert cache.get(batch[1]) is not None
        assert cache.get(batch[2]) is None
        # ...and the manifest records exactly the completed jobs
        manifest = RunManifest.load(tmp_path)
        assert len(manifest.jobs) == 2

    def test_interrupted_results_match_uninterrupted_prefix(self, monkeypatch):
        batch = jobs(3)
        clean = execute_jobs(batch)
        interrupt_on_call(monkeypatch, 2)
        partial = execute_jobs(batch)
        assert partial.interrupted
        assert [r.to_dict() for r in partial] == [r.to_dict() for r in clean[:2]]

    def test_sigterm_is_bridged_to_graceful_shutdown(self, monkeypatch):
        """A supervisor's SIGTERM mid-batch behaves exactly like Ctrl-C:
        partial outcome, no process death."""
        if not hasattr(signal, "SIGTERM") or os.name == "nt":
            pytest.skip("POSIX-only")
        calls = {"n": 0}
        real_run = JobSpec.run

        def run(self):
            calls["n"] += 1
            if calls["n"] == 2:
                os.kill(os.getpid(), signal.SIGTERM)
                # give the signal time to be delivered at a bytecode
                # boundary inside this (interruptible) loop
                for _ in range(10_000_000):
                    pass
                pytest.fail("SIGTERM was not bridged to KeyboardInterrupt")
            return real_run(self)

        monkeypatch.setattr(JobSpec, "run", run)
        outcome = execute_jobs(jobs(3))
        assert outcome.interrupted
        assert len(outcome) == 1

    def test_clean_run_is_unflagged(self):
        outcome = execute_jobs(jobs(2))
        assert not outcome.interrupted
        assert outcome.total_jobs == len(outcome) == 2

    def test_interrupt_counted_in_metrics(self, monkeypatch):
        from repro.telemetry.metrics import MetricsRegistry, set_registry

        previous = set_registry(MetricsRegistry())
        try:
            interrupt_on_call(monkeypatch, 1)
            execute_jobs(jobs(2))
            from repro.telemetry.metrics import get_registry

            assert get_registry().counter("exec.interrupted").value == 1
        finally:
            set_registry(previous)
