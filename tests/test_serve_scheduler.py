"""Tests for the multi-tenant job scheduler (repro.serve.scheduler)."""

import pytest

from repro.errors import ServeError
from repro.exec import JobSpec, WorkloadSpec
from repro.serve import FairScheduler, JobRecord
from repro.sim import SystemConfig


def spec(seed=0) -> JobSpec:
    return JobSpec(
        system=SystemConfig.scaled(ncores=2, llc_kb=32, l2_kb=4),
        workload=WorkloadSpec.duplicate("mcf", ncores=2, seed=seed),
        policy="lap",
        refs_per_core=400,
    )


def record(client: str, seed: int) -> JobRecord:
    s = spec(seed)
    return JobRecord(id=s.key(), spec=s, client=client)


class TestFairness:
    def test_single_client_is_fifo(self):
        sched = FairScheduler()
        records = [record("a", seed) for seed in range(5)]
        for r in records:
            assert sched.enqueue(r)
        assert [sched.pop() for _ in range(5)] == records
        assert sched.pop() is None

    def test_greedy_client_interleaves_with_light_client(self):
        """A queues 6 jobs, B queues 2: service order must round-robin
        (A B A B A A A A), not drain A first."""
        sched = FairScheduler()
        for seed in range(6):
            sched.enqueue(record("greedy", seed))
        for seed in range(2):
            sched.enqueue(record("light", 100 + seed))
        order = []
        while True:
            r = sched.pop()
            if r is None:
                break
            order.append(r.client)
        assert order == ["greedy", "light", "greedy", "light",
                         "greedy", "greedy", "greedy", "greedy"]

    def test_late_joiner_waits_at_most_one_slot(self):
        sched = FairScheduler()
        for seed in range(4):
            sched.enqueue(record("a", seed))
        assert sched.pop().client == "a"
        sched.enqueue(record("b", 50))  # joins mid-drain
        # "a" keeps the head slot it held while alone, then rotates
        # behind "b": a new client is served within one slot, and from
        # there on the two strictly alternate.
        assert [sched.pop().client for _ in range(4)] == ["a", "b", "a", "a"]

    def test_three_clients_round_robin(self):
        sched = FairScheduler()
        for n, client in enumerate(("a", "b", "c")):
            for seed in range(2):
                sched.enqueue(record(client, 10 * n + seed))
        order = [sched.pop().client for _ in range(6)]
        assert order == ["a", "b", "c", "a", "b", "c"]


class TestCapacity:
    def test_enqueue_refuses_beyond_limit(self):
        sched = FairScheduler(queue_limit=3)
        assert all(sched.enqueue(record("a", seed)) for seed in range(3))
        assert sched.room() == 0
        assert not sched.enqueue(record("b", 99)), "full queue sheds load"
        assert sched.depth() == 3

    def test_pop_frees_room(self):
        sched = FairScheduler(queue_limit=2)
        sched.enqueue(record("a", 0))
        sched.enqueue(record("a", 1))
        assert not sched.enqueue(record("a", 2))
        assert sched.pop() is not None
        assert sched.room() == 1
        assert sched.enqueue(record("a", 2))

    def test_depths_by_client(self):
        sched = FairScheduler()
        sched.enqueue(record("a", 0))
        sched.enqueue(record("a", 1))
        sched.enqueue(record("b", 2))
        assert sched.depths_by_client() == {"a": 2, "b": 1}
        assert sched.depth() == 3

    def test_invalid_limit_rejected(self):
        with pytest.raises(ServeError):
            FairScheduler(queue_limit=0)
