"""Smoke tests: every example script runs end-to-end and prints its
report. Examples are part of the public deliverable, so they are
exercised with reduced reference counts."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def run_example(monkeypatch, name, argv):
    monkeypatch.setattr(sys, "argv", [f"{name}.py", *argv])
    load_example(name).main()


class TestExamples:
    def test_quickstart(self, monkeypatch, capsys):
        run_example(monkeypatch, "quickstart", ["2500"])
        out = capsys.readouterr().out
        assert "LAP saves" in out
        assert "non-inclusive" in out and "lap" in out

    def test_workload_characterization(self, monkeypatch, capsys):
        run_example(monkeypatch, "workload_characterization", ["1200"])
        out = capsys.readouterr().out
        assert "omnetpp" in out and "libquantum" in out
        assert "WL" in out and "WH" in out

    def test_hybrid_llc(self, monkeypatch, capsys):
        run_example(monkeypatch, "hybrid_llc", ["WL3", "2500"])
        out = capsys.readouterr().out
        assert "Lhybrid" in out and "STT write share" in out

    def test_technology_sweep(self, monkeypatch, capsys):
        run_example(monkeypatch, "technology_sweep", ["1200"])
        out = capsys.readouterr().out
        assert "write/read ratio" in out
        assert "EPI saving" in out

    def test_multithreaded_coherence(self, monkeypatch, capsys):
        run_example(monkeypatch, "multithreaded_coherence", ["dedup", "1500"])
        out = capsys.readouterr().out
        assert "snoop traffic" in out and "dedup" in out

    def test_multithreaded_rejects_unknown(self, monkeypatch):
        with pytest.raises(SystemExit):
            run_example(monkeypatch, "multithreaded_coherence", ["nosuch", "100"])

    def test_all_examples_have_docstrings(self):
        for path in EXAMPLES_DIR.glob("*.py"):
            module = load_example(path.stem)
            assert module.__doc__ and len(module.__doc__) > 80, path.name

    def test_extensions_demo(self, monkeypatch, capsys):
        run_example(monkeypatch, "extensions_demo", ["2000"])
        out = capsys.readouterr().out
        assert "identical = True" in out
        assert "lap+dwb" in out

    def test_arena_demo(self, monkeypatch, capsys):
        run_example(monkeypatch, "arena_demo", ["WL2", "1500"])
        out = capsys.readouterr().out
        assert "arena grid" in out
        assert "reuse-detector" in out and "rd-copyback" in out
        assert "ways dark" in out

    def test_suite_demo(self, monkeypatch, capsys, tmp_path):
        run_example(monkeypatch, "suite_demo", ["loop", "1500", str(tmp_path)])
        out = capsys.readouterr().out
        assert "geomean ratios" in out
        assert "0 simulated" in out  # the cache-warm rerun
        assert "corpus verifies clean" in out
        assert (tmp_path / "results" / "suite_geomean.txt").exists()
