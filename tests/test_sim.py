"""Tests for SystemConfig, Simulator, runner, and RunResult."""

import pytest

from repro import SystemConfig, make_workload, simulate
from repro.energy import SRAM, STT_RAM
from repro.errors import SimulationError, WorkloadError
from repro.sim.runner import (
    benchmarks_builder,
    duplicate_builder,
    mix_builder,
    multithreaded_builder,
    normalized,
    run_matrix,
    run_one,
    run_policies,
)
from repro.sim.simulator import Simulator


class TestSystemConfig:
    def test_scaled_geometry(self):
        s = SystemConfig.scaled()
        assert s.hierarchy.llc.size_bytes == 128 * 1024
        assert s.leakage_compensation > 1

    def test_table2_uses_raw_leakage(self):
        s = SystemConfig.table2()
        assert s.leakage_compensation == 1.0
        assert s.hierarchy.llc.size_bytes == 8 * 1024 * 1024

    def test_scale_context_matches_hierarchy(self):
        s = SystemConfig.scaled()
        ctx = s.scale_context()
        assert ctx.l2_bytes == s.hierarchy.l2.size_bytes
        assert ctx.llc_bytes == s.hierarchy.llc.size_bytes

    def test_energy_model_homogeneous_stt(self):
        s = SystemConfig.scaled()
        m = s.energy_model()
        assert m.stt_bytes == s.hierarchy.llc.size_bytes
        assert m.sram_bytes == 0

    def test_energy_model_hybrid_split(self):
        s = SystemConfig.scaled(hybrid=True)
        m = s.energy_model()
        assert m.sram_bytes == s.hierarchy.llc.size_bytes // 4
        assert m.stt_bytes == 3 * s.hierarchy.llc.size_bytes // 4

    def test_with_tech_swaps_llc(self):
        s = SystemConfig.scaled().with_tech(STT_RAM.with_write_read_ratio(12))
        assert s.hierarchy.llc.tech.write_read_ratio == pytest.approx(12)

    def test_sram_system(self):
        s = SystemConfig.scaled(tech=SRAM)
        m = s.energy_model()
        assert m.stt_bytes == 0 and m.sram_bytes == s.hierarchy.llc.size_bytes


class TestSimulator:
    def test_core_count_mismatch_rejected(self, small_system):
        wl = make_workload("mcf", small_system)
        bigger = SystemConfig.scaled(ncores=4)
        with pytest.raises(SimulationError):
            Simulator(bigger, "lap", wl)

    def test_zero_refs_rejected(self, small_system):
        wl = make_workload("mcf", small_system)
        with pytest.raises(SimulationError):
            Simulator(small_system, "lap", wl).run(0)

    def test_policy_instance_accepted(self, small_system):
        from repro.core import LAPPolicy

        wl = make_workload("mcf", small_system)
        r = Simulator(small_system, LAPPolicy(), wl).run(500)
        assert r.policy == "lap"

    def test_deterministic_runs(self, small_system):
        r1 = simulate(small_system, "lap", make_workload("astar", small_system), 2000)
        r2 = simulate(small_system, "lap", make_workload("astar", small_system), 2000)
        assert r1.epi == r2.epi
        assert r1.llc.snapshot() == r2.llc.snapshot()

    def test_instructions_scale_with_instr_per_ref(self, small_system):
        wl = make_workload("mcf", small_system)
        ipr = wl.generators[0].instr_per_ref
        r = simulate(small_system, "non-inclusive", wl, 1000)
        assert r.instructions == int(1000 * ipr * small_system.hierarchy.ncores)

    def test_cycles_positive_and_bounded(self, small_system):
        r = simulate(small_system, "non-inclusive", make_workload("mcf", small_system), 1000)
        assert r.cycles > 0
        worst = r.instructions * (1 + small_system.hierarchy.mem_latency)
        assert r.cycles < worst

    def test_unknown_workload_raises(self, small_system):
        with pytest.raises(WorkloadError):
            make_workload("gcc", small_system)


class TestRunResult:
    @pytest.fixture
    def result(self, small_system):
        return simulate(
            small_system, "non-inclusive", make_workload("astar", small_system), 2500
        )

    def test_mpki_consistent(self, result):
        assert result.mpki == pytest.approx(
            result.llc_misses / (result.instructions / 1000)
        )

    def test_throughput_is_sum_of_ipcs(self, result):
        ipcs = [
            i / c for i, c in zip(result.core_instructions, result.core_cycles)
        ]
        assert result.throughput == pytest.approx(sum(ipcs))

    def test_write_breakdown_sums_to_total(self, result):
        assert sum(result.write_breakdown().values()) == result.llc_writes

    def test_summary_keys(self, result):
        s = result.summary()
        assert {"epi", "mpki", "throughput", "llc_writes"} <= set(s)

    def test_hit_accounting_identity(self, result):
        s = result.llc
        assert s.hits + s.misses == s.lookups


class TestRunner:
    def test_run_policies_same_trace(self, small_system):
        res = run_policies(
            small_system,
            ("non-inclusive", "exclusive"),
            duplicate_builder("astar", ncores=2),
            refs_per_core=1500,
        )
        # identical traces: L2-side behaviour must match exactly. The
        # clean/dirty victim *split* is policy-dependent — exclusive
        # fills inherit the dirty bit of hit-invalidated LLC copies, so
        # it re-evicts some lines dirty that non-inclusion (which keeps
        # the dirty copy in the LLC) re-evicts clean — but the victim
        # stream itself is identical.
        noni, ex = res["non-inclusive"], res["exclusive"]
        assert noni.hier.accesses == ex.hier.accesses
        assert noni.hier.l2_hits == ex.hier.l2_hits
        assert (
            noni.hier.l2_clean_victims + noni.hier.l2_dirty_victims
            == ex.hier.l2_clean_victims + ex.hier.l2_dirty_victims
        )
        assert ex.hier.l2_dirty_victims >= noni.hier.l2_dirty_victims

    def test_normalized_metric(self, small_system):
        res = run_policies(
            small_system,
            ("non-inclusive", "lap"),
            duplicate_builder("omnetpp", ncores=2),
            refs_per_core=2500,
        )
        norm = normalized(res, "llc_writes")
        assert norm["non-inclusive"] == 1.0
        assert norm["lap"] < 1.0

    def test_run_matrix_shape(self, small_system):
        out = run_matrix(
            small_system,
            ("non-inclusive",),
            {"a": duplicate_builder("mcf", ncores=2), "b": duplicate_builder("lbm", ncores=2)},
            refs_per_core=600,
        )
        assert set(out) == {"a", "b"}
        assert set(out["a"]) == {"non-inclusive"}

    def test_multithreaded_builder(self, small_system):
        r = run_one(
            small_system, "lap", multithreaded_builder("dedup", nthreads=2), 800
        )
        assert r.snoop_traffic > 0

    def test_benchmarks_builder_names(self, small_system):
        r = run_one(
            small_system, "lap", benchmarks_builder(["mcf", "lbm"]), 500
        )
        assert r.workload == "mcf+lbm"

    def test_mix_builder_requires_four_cores(self):
        system = SystemConfig.scaled()  # 4 cores
        r = run_one(system, "non-inclusive", mix_builder("WH1"), 400)
        assert r.workload == "WH1"
