"""The policy arena: registry semantics, the cross-paper rivals, and
the coverage guarantees the registry is supposed to enforce.

The last class is the point of the refactor: every registered policy
is pushed through the armed invariant checker and the differential
harness *by parametrizing over the registry itself*, so registering a
policy without that coverage is impossible — the tests pick it up on
the next run. A doc-sync test holds DESIGN.md §15 to the same
standard: every entry must be documented with its source paper.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.arena import registry
from repro.arena.registry import BATCHED, PolicyEntry
from repro.arena.reuse_detector import ReuseDetectorPolicy
from repro.arena.rd_copyback import RDCopybackPolicy
from repro.arena.ways_off import WaysOffPolicy
from repro.core.policies import (
    HOMOGENEOUS_POLICIES,
    HYBRID_POLICIES,
    LAP_VARIANTS,
    make_policy,
)
from repro.errors import ConfigurationError, ExecutionError
from repro.inclusion.traditional import NonInclusivePolicy
from repro.kernel.batch import kernel_mode
from repro.testing import A, B, C, D, E, F, G, H, build_micro, run_refs
from repro.validate import DEFAULT_POLICIES, generate_trace, run_differential, run_trace

NEW_RIVALS = ("reuse-detector", "rd-copyback", "ways-off")


def reads(*addrs):
    return [(a, False) for a in addrs]


def writes(*addrs):
    return [(a, True) for a in addrs]


class TestRegistry:
    def test_aliases_resolve(self):
        assert registry.canonical("noni") == "non-inclusive"
        assert registry.canonical("ex") == "exclusive"
        assert isinstance(registry.make("noni"), NonInclusivePolicy)

    def test_unknown_name_lists_and_suggests(self):
        with pytest.raises(ConfigurationError) as info:
            make_policy("exclusiv")
        msg = str(info.value)
        assert "valid policies:" in msg
        assert "did you mean 'exclusive'?" in msg
        # every canonical name is in the list
        for name in registry.names():
            assert name in msg

    def test_suggest_handles_hopeless_input(self):
        assert registry.suggest("zzzzzzzzzz") is None
        msg = str(registry.unknown_policy("zzzzzzzzzz"))
        assert "did you mean" not in msg

    def test_duplicate_registration_rejected(self):
        clash = registry.entries()[0]
        with pytest.raises(ConfigurationError, match="registered twice"):
            registry.register(clash)
        # alias collisions are caught before any state is mutated
        with pytest.raises(ConfigurationError, match="registered twice"):
            registry.register(
                PolicyEntry(
                    name="fresh-name",
                    factory="repro.inclusion.traditional:NonInclusivePolicy",
                    summary="s",
                    paper="p",
                    anchor="a",
                    rules="r",
                    aliases=("noni",),
                )
            )
        assert "fresh-name" not in registry.names()

    def test_defaults_merge_under_caller_kwargs(self):
        assert registry.make("lap-lru").replacement_mode == "lru"
        assert registry.make("lap-lru", replacement_mode="loop").replacement_mode == "loop"

    def test_overridden_restores(self):
        class Sub(NonInclusivePolicy):
            pass

        with registry.overridden("non-inclusive", Sub):
            assert type(registry.make("non-inclusive")) is Sub
        assert type(registry.make("non-inclusive")) is NonInclusivePolicy

    def test_validate_names_rewraps(self):
        with pytest.raises(ExecutionError):
            registry.validate_names(("lappy",), error=ExecutionError)
        assert registry.validate_names(("noni", "lap")) == ("non-inclusive", "lap")


class TestCatalog:
    def test_curated_sets(self):
        assert len(registry.names()) >= 18
        check = registry.check_names()
        assert check == DEFAULT_POLICIES
        assert len(check) >= 10
        for name in NEW_RIVALS:
            assert name in check
        # the acceptance criterion: the arena grid covers >= 10 policies
        assert len(registry.arena_names()) >= 10
        assert "lhybrid" in registry.arena_names(hybrid=True)
        assert "lhybrid" not in registry.arena_names(hybrid=False)

    def test_every_entry_is_paper_anchored(self):
        for e in registry.entries():
            assert e.paper and e.anchor and e.rules and e.summary, e.name

    def test_paper_tuples_are_registered(self):
        for name in (*HOMOGENEOUS_POLICIES, *LAP_VARIANTS, *HYBRID_POLICIES):
            assert registry.canonical(name) == name

    def test_kernel_declarations_match_ground_truth(self):
        """The registry *declares* kernel eligibility; kernel_mode's
        exact-type dispatch is the ground truth. They must agree for
        every registered policy."""
        for e in registry.entries():
            declared = e.kernel == BATCHED
            actual = kernel_mode(registry.make(e.name)) is not None
            assert declared == actual, f"{e.name}: declared {e.kernel}, kernel_mode disagrees"

    def test_design_section15_documents_every_entry(self):
        """Doc-sync: DESIGN.md §15 must catalog every registered policy
        with its source paper."""
        text = (pathlib.Path(__file__).parent.parent / "DESIGN.md").read_text()
        section = text.split("## 15. Policy arena")[1]
        for e in registry.entries():
            assert f"`{e.name}`" in section, f"{e.name} missing from DESIGN.md §15"
            citation = e.paper.split(" via ")[0]
            assert citation in section, f"{e.name}: paper {citation!r} not in §15"

    def test_jobspec_admission_canonicalises(self):
        from repro.exec.jobs import JobSpec, WorkloadSpec
        from repro.sim import SystemConfig

        system = SystemConfig.scaled()
        w = WorkloadSpec.mix("WL1")
        via_alias = JobSpec(system=system, workload=w, policy="noni", refs_per_core=100)
        assert via_alias.policy == "non-inclusive"
        canonical = JobSpec(
            system=system, workload=w, policy="non-inclusive", refs_per_core=100
        )
        assert via_alias.key() == canonical.key()
        with pytest.raises(ExecutionError, match="valid policies"):
            JobSpec(system=system, workload=w, policy="lappy", refs_per_core=100)


class TestReuseDetector:
    def test_first_miss_bypasses_second_fills(self):
        policy = ReuseDetectorPolicy(detector_entries=8)
        h = build_micro(policy)
        run_refs(h, reads(A))
        assert h.llc.peek(A) is None  # bypassed, only tracked
        assert policy.reuse_bypasses == 1
        run_refs(h, reads(B, C, D, E))  # evict A from the 4-way L2
        run_refs(h, reads(A))  # second LLC miss while tracked: reuse
        assert h.llc.peek(A) is not None
        assert policy.reuse_fills == 1

    def test_detector_capacity_forgets_old_tags(self):
        policy = ReuseDetectorPolicy(detector_entries=2)
        h = build_micro(policy)
        run_refs(h, reads(A, B, C, D, E))  # A long evicted from the FIFO
        run_refs(h, reads(A))
        assert h.llc.peek(A) is None  # forgotten: bypassed again
        assert policy.reuse_fills == 0

    def test_dirty_victims_always_insert(self):
        h = build_micro(ReuseDetectorPolicy())
        run_refs(h, writes(A) + reads(B, C, D, E))
        assert h.llc.peek(A) is not None and h.llc.peek(A).dirty
        assert h.llc.stats.clean_victim_writes == 0

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            ReuseDetectorPolicy(detector_entries=0)


class TestRDCopyback:
    def test_reused_clean_victim_copies_back(self):
        policy = RDCopybackPolicy()
        h = build_micro(policy)
        run_refs(h, reads(A, B, C, D, E))  # A's L2 eviction, then...
        run_refs(h, reads(A))  # ...a short-distance LLC re-access of A
        run_refs(h, reads(F, G, H, B))  # evict A clean from L2 again
        assert h.llc.peek(A) is not None
        assert policy.copybacks >= 1

    def test_unmeasured_block_is_dropped(self):
        policy = RDCopybackPolicy()
        h = build_micro(policy)
        run_refs(h, reads(A, B, C, D, E))  # A evicted clean, seen once
        assert h.llc.peek(A) is None  # no measured reuse distance: drop
        assert policy.copyback_drops >= 1
        assert h.llc.stats.fill_writes == 0  # and it never fills

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            RDCopybackPolicy(window=0)


class TestWaysOff:
    def test_victims_confined_to_active_ways(self):
        policy = WaysOffPolicy(off_fraction=0.5)
        h = build_micro(policy)  # 16-way single-set LLC: 8 active
        distinct = [i * 64 for i in range(32)]
        run_refs(h, reads(*distinct))
        valid = [b for b in h.llc.sets[0].blocks if b.valid]
        assert len(valid) <= 8
        stats = policy.extra_stats()
        assert stats["llc_ways_off"] == 8 and stats["llc_ways_total"] == 16
        assert stats["llc_active_fraction"] == 0.5

    def test_rejects_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            WaysOffPolicy(off_fraction=1.0)
        with pytest.raises(ConfigurationError):
            WaysOffPolicy(off_fraction=-0.1)

    def test_static_energy_scales_with_active_fraction(self):
        from repro import make_workload, simulate
        from repro.sim import SystemConfig

        system = SystemConfig.scaled()
        r_base = simulate(
            system, "non-inclusive", make_workload("WL1", system, seed=2), refs_per_core=600
        )
        r_off = simulate(
            system, "ways-off", make_workload("WL1", system, seed=2), refs_per_core=600
        )
        assert r_off.extra["llc_active_fraction"] == 0.5
        assert r_off.extra["llc_static_saved_j"] > 0
        # same trace, fewer powered ways: static energy per cycle halves
        assert (r_off.energy.static_j / r_off.cycles) < 0.6 * (
            r_base.energy.static_j / r_base.cycles
        )


class TestEveryPolicyIsCovered:
    """Registering a policy buys it this coverage automatically; a
    policy whose flags lie about its write classes fails here."""

    @pytest.mark.parametrize("name", registry.names())
    def test_invariants_hold(self, name):
        trace = generate_trace(13, refs=500, ncores=2)
        run_trace(name, trace, ncores=2, interval=16)  # armed checker

    @pytest.mark.parametrize("name", registry.names())
    def test_differential_identities_vs_baseline(self, name):
        trace = generate_trace(17, refs=500, ncores=1)
        policies = ("non-inclusive", name) if name != "non-inclusive" else (name,)
        report = run_differential(trace, policies, interval=32)
        assert "write-class laws" in " | ".join(report.identities)
