"""Micro-trace tests of the traditional inclusion properties.

These reproduce the paper's worked examples: Fig. 3 (redundant clean
insertions in exclusive LLCs) and Fig. 5 (redundant data fills in
non-inclusive LLCs), plus the basic Fig. 1 data flows.
"""

import pytest

from tests.conftest import A, B, C, D, E, F, G, H, build_micro, run_refs


def reads(*addrs):
    return [(a, False) for a in addrs]


def writes(*addrs):
    return [(a, True) for a in addrs]


class TestNonInclusiveFlow:
    def test_miss_fills_llc(self):
        h = build_micro("non-inclusive")
        run_refs(h, reads(A))
        assert h.llc.peek(A) is not None
        assert h.llc.stats.fill_writes == 1

    def test_hit_keeps_copy(self):
        h = build_micro("non-inclusive")
        run_refs(h, reads(A, E, F, G, H))  # A evicted from L2 eventually
        run_refs(h, reads(A))  # LLC hit
        assert h.llc.peek(A) is not None
        assert h.llc.stats.hit_invalidations == 0

    def test_clean_victim_silently_dropped(self):
        h = build_micro("non-inclusive")
        run_refs(h, reads(A, B, C, D, E, F, G, H))
        assert h.llc.stats.clean_victim_writes == 0

    def test_dirty_victim_updates_existing_copy(self):
        h = build_micro("non-inclusive")
        run_refs(h, writes(A) + reads(B, C, D, E, F, G, H))
        assert h.llc.stats.update_writes == 1
        assert h.llc.peek(A).dirty

    def test_fig5_redundant_data_fill(self):
        """Fig. 5: fills of blocks modified before LLC reuse are redundant."""
        h = build_micro("non-inclusive")
        run_refs(h, reads(A, B, C))  # data-fill A, B, C
        run_refs(h, writes(B, C))  # B and C modified in upper levels
        run_refs(h, reads(E, F, G, H))  # evict them all
        assert h.llc.stats.fill_writes == 7  # A,B,C + E,F,G,H
        assert h.llc.stats.update_writes == 2  # dirty B, C merge into LLC
        assert h.llc.stats.redundant_fills == 2  # exactly B and C

    def test_demand_hit_clears_redundancy(self):
        h = build_micro("non-inclusive")
        run_refs(h, reads(A, E, F, G, H))  # A filled, then evicted from L2
        run_refs(h, reads(A))  # LLC demand hit: the fill was useful
        run_refs(h, writes(A) + reads(E, F, G, H))
        assert h.llc.stats.redundant_fills == 0


class TestExclusiveFlow:
    def test_miss_does_not_fill_llc(self):
        h = build_micro("exclusive")
        run_refs(h, reads(A))
        assert h.llc.peek(A) is None
        assert h.llc.stats.fill_writes == 0

    def test_hit_invalidates_copy(self):
        h = build_micro("exclusive")
        run_refs(h, reads(A, B, C, D, E, F, G, H))  # A..D evicted into LLC
        assert h.llc.peek(A) is not None
        run_refs(h, reads(A))  # LLC hit moves the block up
        assert h.llc.peek(A) is None
        assert h.llc.stats.hit_invalidations == 1

    def test_clean_and_dirty_victims_inserted(self):
        h = build_micro("exclusive")
        run_refs(h, reads(A, B) + writes(C, D) + reads(E, F, G, H))
        assert h.llc.stats.clean_victim_writes == 2
        assert h.llc.stats.dirty_victim_writes == 2

    def test_fig3_redundant_clean_insertion(self):
        """Fig. 3: loop-blocks A and C are re-inserted by the exclusive
        LLC while the non-inclusive LLC writes only the dirty B and D."""
        trace_phase12 = reads(A) + reads(B) + writes(C, D) + reads(E, F, G, H)
        trace_phase345 = reads(A, B, C, D) + writes(B, D) + reads(E, F, G, H)

        ex = build_micro("exclusive")
        run_refs(ex, trace_phase12)
        before = ex.llc.stats.llc_writes
        run_refs(ex, trace_phase345)
        ex_second_round = ex.llc.stats.llc_writes - before

        noni = build_micro("non-inclusive")
        run_refs(noni, trace_phase12)
        before = noni.llc.stats.llc_writes
        run_refs(noni, trace_phase345)
        noni_second_round = noni.llc.stats.llc_writes - before

        # Exclusive re-inserts all four victims (A..D) plus the four
        # clean E..H victims displaced by the re-reads; non-inclusive
        # writes only the dirty B and D.
        assert ex_second_round - noni_second_round >= 2
        assert noni_second_round == 2

    def test_hit_invalidation_preserves_dirty_data(self):
        """Regression: a dirty LLC copy invalidated on a hit hands its
        writeback obligation up into the L2 fill. It used to be dropped
        — the line re-filled clean and the deferred memory write
        silently vanished."""
        h = build_micro("exclusive")
        run_refs(h, writes(A) + reads(B, C, D, E))  # dirty A evicted to LLC
        assert h.llc.peek(A).dirty
        run_refs(h, reads(A))  # hit-invalidation moves A (and its dirt) up
        assert h.llc.peek(A) is None
        assert h.l2s[0].peek(A).dirty

    def test_dirty_round_trip_reaches_memory(self):
        """Regression companion: after the hit-invalidation round trip,
        the dirty line's eventual LLC eviction must write memory exactly
        once (no loss, no double count)."""
        h = build_micro("exclusive")
        run_refs(h, writes(A) + reads(B, C, D, E))  # A dirty in the LLC
        run_refs(h, reads(A))  # round trip: dirt moves back into L2
        # Flood with 24 fresh blocks: A is re-evicted dirty into the
        # LLC, then pushed out of the 16-way LLC to memory.
        flood = reads(*[i * 64 for i in range(8, 32)])
        run_refs(h, flood)
        assert h.l2s[0].peek(A) is None and h.llc.peek(A) is None
        assert h.stats.mem_writes == 1

    def test_no_duplicates_invariant(self):
        h = build_micro("exclusive")
        import itertools

        pattern = list(itertools.islice(itertools.cycle([A, B, C, D, E, F, G, H]), 64))
        run_refs(h, [(a, i % 3 == 0) for i, a in enumerate(pattern)])
        for core in range(1):
            l2_addrs = set(h.l2s[core].resident_addrs())
            llc_addrs = set(h.llc.resident_addrs())
            assert not (l2_addrs & llc_addrs), "exclusive LLC holds a duplicate"


class TestInclusiveFlow:
    def test_llc_superset_of_l2(self):
        h = build_micro("inclusive")
        run_refs(h, reads(A, B, C, D))
        l2 = set(h.l2s[0].resident_addrs())
        llc = set(h.llc.resident_addrs())
        assert l2 <= llc

    def test_back_invalidation_on_llc_eviction(self):
        # LLC with 2 ways in one set forces quick LLC evictions.
        h = build_micro("inclusive", llc_bytes=128, llc_assoc=2)
        run_refs(h, reads(A, B, C))  # C's fill evicts A or B from LLC
        l2 = set(h.l2s[0].resident_addrs())
        llc = set(h.llc.resident_addrs())
        assert l2 <= llc, "inclusion violated after back-invalidation"

    def test_back_invalidated_dirty_data_reaches_memory(self):
        h = build_micro("inclusive", llc_bytes=128, llc_assoc=2)
        run_refs(h, writes(A) + reads(B, C, D, E))
        assert h.stats.mem_writes >= 1


class TestVictimCascade:
    def test_llc_dirty_eviction_writes_memory(self):
        h = build_micro("non-inclusive", llc_bytes=128, llc_assoc=2)
        run_refs(h, writes(A) + reads(B, C, D, E, F, G, H))
        assert h.stats.mem_writes >= 1

    def test_mem_reads_counted_on_misses(self):
        h = build_micro("non-inclusive")
        run_refs(h, reads(A, B, C))
        assert h.stats.mem_reads == 3

    def test_l2_victim_classification(self):
        h = build_micro("non-inclusive")
        run_refs(h, reads(A) + writes(B) + reads(C, D, E, F, G, H))
        assert h.stats.l2_dirty_victims == 1
        assert h.stats.l2_clean_victims >= 3
