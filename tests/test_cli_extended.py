"""Tests for the report/validate/sweep CLI commands."""

import pathlib

import pytest

from repro.cli import main


class TestSweepCommand:
    def test_sweep_stdout_csv(self, capsys):
        code = main([
            "sweep", "--workloads", "mcf", "--policies", "non-inclusive,lap",
            "--refs", "800", "--ncores", "2", "--llc-kb", "32", "--l2-kb", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        header, *rows = [l for l in out.splitlines() if l]
        assert header.startswith("system,workload,policy,epi")
        assert len(rows) == 2

    def test_sweep_csv_file(self, capsys, tmp_path):
        out_file = tmp_path / "sweep.csv"
        code = main([
            "sweep", "--workloads", "mcf", "--policies", "lap",
            "--refs", "600", "--ncores", "2", "--llc-kb", "32", "--l2-kb", "4",
            "--output", str(out_file),
        ])
        assert code == 0
        assert out_file.exists()
        assert "lap" in out_file.read_text()

    def test_sweep_mix_and_parsec_resolution(self, capsys):
        code = main([
            "sweep", "--workloads", "dedup", "--policies", "lap",
            "--refs", "500", "--ncores", "2", "--llc-kb", "32", "--l2-kb", "4",
        ])
        assert code == 0
        assert "dedup" in capsys.readouterr().out

    def test_sweep_unknown_workload_fails(self, capsys):
        assert main(["sweep", "--workloads", "gcc", "--refs", "100"]) == 2


class TestReportCommand:
    def test_report_from_results_dir(self, capsys, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig18_mpki.txt").write_text("MPKI TABLE")
        code = main(["report", "--results-dir", str(results)])
        assert code == 0
        out = capsys.readouterr().out
        assert "MPKI TABLE" in out
        assert "**Paper:**" in out

    def test_report_to_file(self, capsys, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        target = tmp_path / "EXP.md"
        code = main([
            "report", "--results-dir", str(results), "--output", str(target)
        ])
        assert code == 0
        assert target.exists()

    def test_report_missing_dir_fails(self, capsys, tmp_path):
        assert main(["report", "--results-dir", str(tmp_path / "none")]) == 2


class TestValidateCommand:
    def test_validate_runs_and_passes(self, capsys):
        code = main([
            "validate-workloads", "--refs", "3000",
        ])
        out = capsys.readouterr().out
        assert "libquantum" in out
        assert code == 0, out


class TestExecOptions:
    SWEEP = ["sweep", "--workloads", "mcf", "--policies", "non-inclusive,lap",
             "--refs", "600", "--ncores", "2", "--llc-kb", "32", "--l2-kb", "4"]

    def test_parallel_sweep_matches_serial(self, capsys):
        assert main(self.SWEEP) == 0
        serial = capsys.readouterr().out
        assert main(["--jobs", "2"] + self.SWEEP) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_cache_dir_round_trip(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        assert main(["--cache-dir", cache_dir] + self.SWEEP) == 0
        cold = capsys.readouterr()
        assert main(["--cache-dir", cache_dir] + self.SWEEP) == 0
        warm = capsys.readouterr()
        assert warm.out == cold.out

        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        stats = capsys.readouterr().out
        assert "entries" in stats and cache_dir in stats

        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "removed 2" in capsys.readouterr().out

    def test_cache_env_var(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        assert main(["cache", "stats"]) == 0
        assert "envcache" in capsys.readouterr().out

    def test_cache_without_dir_fails(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert main(["cache", "stats"]) == 2
        assert "no result cache" in capsys.readouterr().err

    def test_active_cache_restored_after_command(self, monkeypatch, tmp_path):
        from repro.exec import get_active_cache

        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert get_active_cache() is None
        assert main(["cache", "stats", "--cache-dir", str(tmp_path / "c")]) == 0
        assert get_active_cache() is None
