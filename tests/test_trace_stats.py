"""Tests for the trace-statistics analyzer (workloads.stats)."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads import (
    LoopRegion,
    RandomRegion,
    ScaleContext,
    StreamRegion,
    SyntheticTrace,
    build_benchmark,
)
from repro.workloads.stats import TraceStats, compare_footprints, measure_trace
from repro.workloads.trace import FixedTrace, MemRef

CTX = ScaleContext(l1_bytes=2048, l2_bytes=8192, llc_bytes=131072)


def trace_of(addrs, writes=None):
    writes = writes or [False] * len(addrs)
    return FixedTrace([MemRef(a, w) for a, w in zip(addrs, writes)])


class TestMeasureTrace:
    def test_footprint_counts_distinct_blocks(self):
        t = trace_of([0, 64, 128, 0, 64])
        s = measure_trace(t, 5)
        assert s.footprint_blocks == 3

    def test_write_ratio(self):
        t = trace_of([0, 64, 128, 192], writes=[True, False, True, False])
        s = measure_trace(t, 4)
        assert s.write_ratio == 0.5

    def test_cold_fraction(self):
        t = trace_of([0, 64, 0, 64])
        s = measure_trace(t, 4)
        assert s.cold_fraction == 0.5

    def test_reuse_distance_immediate(self):
        # 0, 0 -> distance 0 (no other block in between)
        s = measure_trace(trace_of([0, 0]), 2)
        assert s.reuse_distances.tolist() == [0]

    def test_reuse_distance_counts_distinct_intervening(self):
        # 0, 64, 128, 64, 0: reuse of 64 has distance 1 (128);
        # reuse of 0 has distance 2 (64, 128).
        s = measure_trace(trace_of([0, 64, 128, 64, 0]), 5)
        assert sorted(s.reuse_distances.tolist()) == [1, 2]

    def test_repeated_touches_do_not_inflate_distance(self):
        # 0, 64, 64, 64, 0: only ONE distinct block between the 0s.
        s = measure_trace(trace_of([0, 64, 64, 64, 0]), 5)
        assert s.reuse_distances.tolist()[-1] == 1

    def test_loop_region_distance_equals_working_set(self):
        ws_blocks = 32
        gen = SyntheticTrace([(LoopRegion(0, ws_blocks * 64), 1.0)], seed=0)
        s = measure_trace(gen, ws_blocks * 4)
        warm = s.reuse_distances
        assert (warm == ws_blocks - 1).all()
        # an LRU cache of ws_blocks hits everything warm...
        assert s.reuse_cdf_at(ws_blocks) == 1.0
        # ...and one of ws_blocks-1 hits nothing
        assert s.reuse_cdf_at(ws_blocks - 1) == 0.0

    def test_stream_region_never_reuses(self):
        gen = SyntheticTrace([(StreamRegion(0, 10_000 * 64), 1.0)], seed=0)
        s = measure_trace(gen, 2000)
        assert len(s.reuse_distances) == 0
        assert s.cold_fraction == 1.0
        assert s.median_reuse_distance() is None

    def test_random_region_footprint_bounded(self):
        gen = SyntheticTrace([(RandomRegion(0, 64 * 64), 1.0)], seed=0)
        s = measure_trace(gen, 2000)
        assert s.footprint_blocks <= 64
        assert s.footprint_bytes() <= 64 * 64

    def test_batched_measurement_matches_unbatched(self):
        # Materialise one stream so both measurements see identical refs
        # (region RNG consumption depends on batch splits).
        source = SyntheticTrace([(RandomRegion(0, 128 * 64), 1.0)], seed=5)
        addrs, writes = source.batch(1000)
        refs = [MemRef(int(a), bool(w)) for a, w in zip(addrs, writes)]
        s1 = measure_trace(FixedTrace(list(refs)), 1000, batch=64)
        s2 = measure_trace(FixedTrace(list(refs)), 1000, batch=1000)
        assert s1.footprint_blocks == s2.footprint_blocks
        assert (s1.reuse_distances == s2.reuse_distances).all()

    def test_zero_window_rejected(self):
        with pytest.raises(WorkloadError):
            measure_trace(trace_of([0]), 0)


class TestBenchmarkProfiles:
    """The synthetic benchmarks' trace statistics must support their
    cache-level behaviours."""

    def test_loop_benchmark_reuses_beyond_l2(self):
        gen = build_benchmark("omnetpp", CTX, seed=1)
        s = measure_trace(gen, 8000)
        l2_blocks = CTX.l2_bytes // 64
        llc_blocks = CTX.llc_bytes // 64
        # much of omnetpp's reuse falls between L2 and LLC capacity
        between = ((s.reuse_distances >= l2_blocks) & (s.reuse_distances < llc_blocks)).mean()
        assert between > 0.2

    def test_streaming_benchmark_mostly_cold(self):
        gen = build_benchmark("lbm", CTX, seed=1)
        s = measure_trace(gen, 8000)
        hot = build_benchmark("dealII", CTX, seed=1)
        s_hot = measure_trace(hot, 8000)
        assert s.cold_fraction > s_hot.cold_fraction

    def test_write_ratios_ordered(self):
        ratios = {}
        for bench in ("bwaves", "zeusmp"):
            gen = build_benchmark(bench, CTX, seed=1)
            ratios[bench] = measure_trace(gen, 6000).write_ratio
        assert ratios["zeusmp"] > ratios["bwaves"]

    def test_compare_footprints_shape(self):
        gens = {
            "a": build_benchmark("mcf", CTX, seed=1),
            "b": build_benchmark("dealII", CTX, seed=1),
        }
        out = compare_footprints(gens, 3000)
        assert set(out) == {"a", "b"}
        assert out["a"].footprint_blocks > out["b"].footprint_blocks
