"""Tests for the content-addressed result cache (repro.exec.cache)."""

import json

import pytest

from repro.errors import ExecutionError
from repro.exec import (
    JobSpec,
    ResultCache,
    WorkloadSpec,
    cache_from_env,
    get_active_cache,
    set_active_cache,
)
from repro.sim import SystemConfig
from repro.sim.runner import duplicate_builder, run_one
from repro.sim.simulator import Simulator
from repro.sim.sweeps import Sweep


def small_system(**kwargs) -> SystemConfig:
    return SystemConfig.scaled(**{"ncores": 2, "llc_kb": 32, "l2_kb": 4, **kwargs})


def job(policy="lap", seed=0, refs=800, **sys_kwargs) -> JobSpec:
    return JobSpec(
        system=small_system(**sys_kwargs),
        workload=WorkloadSpec.duplicate("mcf", ncores=2, seed=seed),
        policy=policy,
        refs_per_core=refs,
    )


@pytest.fixture(autouse=True)
def no_active_cache():
    """Keep the process-wide cache pristine around every test."""
    previous = set_active_cache(None)
    yield
    set_active_cache(previous)


class TestJobKeys:
    def test_key_is_stable(self):
        assert job().key() == job().key()

    def test_key_depends_on_every_axis(self):
        base = job().key()
        assert job(policy="exclusive").key() != base
        assert job(seed=1).key() != base
        assert job(refs=900).key() != base
        assert job(llc_kb=64).key() != base

    def test_canonical_json_is_deterministic(self):
        assert job().canonical_json() == job().canonical_json()
        # sorted keys, no whitespace: a canonical encoding
        text = job().canonical_json()
        assert " " not in text
        assert json.loads(text)["policy"] == "lap"

    def test_job_dict_round_trip(self):
        j = job()
        assert JobSpec.from_dict(j.to_dict()).key() == j.key()

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ExecutionError):
            job(refs=0)
        with pytest.raises(ExecutionError):
            JobSpec(system=small_system(), workload="mcf", policy="lap", refs_per_core=10)
        with pytest.raises(ExecutionError):
            JobSpec(
                system=small_system(),
                workload=WorkloadSpec.duplicate("mcf"),
                policy="",
                refs_per_core=10,
            )


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        j = job()
        assert cache.get(j) is None
        result = j.run()
        cache.put(j, result)
        hit = cache.get(j)
        assert hit is not None
        assert hit.to_dict() == result.to_dict()
        s = cache.stats()
        assert (s.hits, s.misses, s.puts, s.entries) == (1, 1, 1, 1)

    def test_corrupt_entry_is_purged_and_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        j = job()
        cache.put(j, j.run())
        path = cache.root / f"{j.key()}.json"
        path.write_text("{not json")
        assert cache.get(j) is None
        assert not path.exists()

    def test_schema_mismatch_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        j = job()
        cache.put(j, j.run())
        path = cache.root / f"{j.key()}.json"
        payload = json.loads(path.read_text())
        payload["schema"] = -1
        path.write_text(json.dumps(payload))
        assert cache.get(j) is None

    def test_size_cap_evicts_oldest(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=1)  # everything overflows
        first, second = job(seed=0), job(seed=1)
        cache.put(first, first.run())
        cache.put(second, second.run())
        # the older entry was evicted to make room; the newest survives
        assert cache.evictions >= 1
        assert cache.get(second) is not None
        assert cache.get(first) is None

    def test_clear_removes_everything(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(job(), job().run())
        assert cache.clear() == 1
        assert cache.stats().entries == 0

    def test_bad_max_bytes_rejected(self, tmp_path):
        with pytest.raises(ExecutionError):
            ResultCache(tmp_path, max_bytes=0)

    def test_cache_from_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert cache_from_env() is None
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
        cache = cache_from_env()
        assert cache is not None and cache.root == tmp_path / "c"


class TestWarmSweepRunsNothing:
    def sweep(self) -> Sweep:
        return Sweep(
            systems={
                "base": small_system(),
                "big": small_system(llc_kb=64, label="big"),
            },
            workloads={
                "mcf": duplicate_builder("mcf", ncores=2),
                "lbm": duplicate_builder("lbm", ncores=2),
            },
            policies=("non-inclusive", "exclusive", "lap"),
            refs_per_core=600,
        )

    def test_warm_cache_performs_zero_simulations(self, tmp_path, monkeypatch):
        calls = {"n": 0}
        real_run = Simulator.run

        def counting_run(self, *args, **kwargs):
            calls["n"] += 1
            return real_run(self, *args, **kwargs)

        monkeypatch.setattr(Simulator, "run", counting_run)
        cache = ResultCache(tmp_path)
        sweep = self.sweep()
        cold = sweep.run(cache=cache)
        assert calls["n"] == sweep.size() == 12
        warm = sweep.run(cache=cache)
        assert calls["n"] == 12, "warm run must not simulate anything"
        assert warm == cold
        s = cache.stats()
        assert s.hits == 12 and s.puts == 12

    def test_active_cache_short_circuits_run_one(self, tmp_path, monkeypatch):
        calls = {"n": 0}
        real_run = Simulator.run

        def counting_run(self, *args, **kwargs):
            calls["n"] += 1
            return real_run(self, *args, **kwargs)

        monkeypatch.setattr(Simulator, "run", counting_run)
        set_active_cache(ResultCache(tmp_path))
        system = small_system()
        builder = duplicate_builder("mcf", ncores=2)
        a = run_one(system, "lap", builder, 600)
        assert calls["n"] == 1
        b = run_one(system, "lap", builder, 600)
        assert calls["n"] == 1, "second identical run must be a cache hit"
        assert a.to_dict() == b.to_dict()
        assert get_active_cache().hits == 1

    def test_policy_kwargs_bypass_the_cache(self, tmp_path, monkeypatch):
        calls = {"n": 0}
        real_run = Simulator.run

        def counting_run(self, *args, **kwargs):
            calls["n"] += 1
            return real_run(self, *args, **kwargs)

        monkeypatch.setattr(Simulator, "run", counting_run)
        set_active_cache(ResultCache(tmp_path))
        system = small_system()
        builder = duplicate_builder("mcf", ncores=2)
        run_one(system, "lap", builder, 600, duel_interval=256)
        run_one(system, "lap", builder, 600, duel_interval=256)
        assert calls["n"] == 2, "kwarg-customised runs are not content-addressed"
