"""Tests for technology parameters and the EPI energy model."""

import math

import pytest

from repro.cache.stats import CacheStats
from repro.energy import (
    L3_TAG,
    MB,
    PUBLISHED_CONFIGS,
    RAW_TABLE1,
    SRAM,
    STT_RAM,
    LLCEnergyModel,
    technology_by_name,
)
from repro.errors import ConfigurationError


class TestTechnologyParams:
    def test_table1_sram_values(self):
        assert SRAM.read_energy_nj == 0.072
        assert SRAM.write_energy_nj == 0.056
        assert SRAM.leakage_mw_per_mb == pytest.approx(50.736 / 2)

    def test_table1_stt_values(self):
        assert STT_RAM.read_energy_nj == 0.133
        assert STT_RAM.write_energy_nj == 0.436
        assert STT_RAM.leakage_mw_per_mb == pytest.approx(7.108 / 2)

    def test_stt_write_read_asymmetry(self):
        assert STT_RAM.write_read_ratio == pytest.approx(0.436 / 0.133)
        assert SRAM.write_read_ratio < 1.0

    def test_stt_density_advantage(self):
        # Table I: 3x higher density (lower area per MB).
        assert SRAM.area_mm2_per_mb / STT_RAM.area_mm2_per_mb > 2.5

    def test_stt_leakage_advantage(self):
        # Table I: ~7x less leakage.
        assert SRAM.leakage_mw_per_mb / STT_RAM.leakage_mw_per_mb > 6

    def test_ratio_scaling_fixes_read_and_leakage(self):
        scaled = STT_RAM.with_write_read_ratio(8.0)
        assert scaled.read_energy_nj == STT_RAM.read_energy_nj
        assert scaled.leakage_mw_per_mb == STT_RAM.leakage_mw_per_mb
        assert scaled.write_read_ratio == pytest.approx(8.0)

    def test_ratio_scaling_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            STT_RAM.with_write_read_ratio(0)

    def test_lookup_by_name(self):
        assert technology_by_name("sram") is SRAM
        assert technology_by_name("stt") is STT_RAM
        with pytest.raises(ConfigurationError):
            technology_by_name("pcm")

    def test_raw_table1_complete(self):
        for tech in ("sram", "stt"):
            assert set(RAW_TABLE1[tech]) == {
                "area_mm2",
                "read_latency_ns",
                "write_latency_ns",
                "read_energy_nj",
                "write_energy_nj",
                "leakage_mw",
            }

    def test_published_configs_materialize(self):
        for cfg in PUBLISHED_CONFIGS:
            tech = cfg.technology()
            assert tech.write_read_ratio == pytest.approx(cfg.write_read_ratio)
            assert tech.write_latency_cycles >= tech.read_latency_cycles

    def test_published_config_ratios_span_figure_axis(self):
        ratios = [c.write_read_ratio for c in PUBLISHED_CONFIGS]
        assert min(ratios) < 3 and max(ratios) > 20


class TestEnergyModel:
    def _stats(self, reads_stt=0, writes_stt=0, reads_sram=0, writes_sram=0, probes=0):
        s = CacheStats()
        s.data_reads_stt = reads_stt
        s.data_writes_stt = writes_stt
        s.data_reads_sram = reads_sram
        s.data_writes_sram = writes_sram
        s.tag_probes = probes
        return s

    def test_dynamic_energy_exact(self):
        model = LLCEnergyModel(0, MB, leakage_compensation=1.0)
        r = model.compute(self._stats(reads_stt=10, writes_stt=5), cycles=0, instructions=1)
        assert r.dynamic_read_j == pytest.approx(10 * 0.133e-9)
        assert r.dynamic_write_j == pytest.approx(5 * 0.436e-9)

    def test_tag_energy_counted(self):
        model = LLCEnergyModel(0, MB, leakage_compensation=1.0)
        r = model.compute(self._stats(probes=100), cycles=0, instructions=1)
        assert r.tag_dynamic_j == pytest.approx(100 * 0.015e-9)

    def test_leakage_scales_with_time(self):
        model = LLCEnergyModel(0, MB, leakage_compensation=1.0)
        r1 = model.compute(self._stats(), cycles=3_000_000, instructions=1)
        r2 = model.compute(self._stats(), cycles=6_000_000, instructions=1)
        assert r2.static_j == pytest.approx(2 * r1.static_j)

    def test_leakage_includes_tags(self):
        model = LLCEnergyModel(0, MB, leakage_compensation=1.0)
        expected_w = (STT_RAM.leakage_mw_per_mb + L3_TAG.leakage_mw_per_mb) * 1e-3
        assert model.leakage_watts() == pytest.approx(expected_w)

    def test_hybrid_leakage_mixes_regions(self):
        model = LLCEnergyModel(MB, 3 * MB, leakage_compensation=1.0)
        expected_w = (
            SRAM.leakage_mw_per_mb * 1
            + STT_RAM.leakage_mw_per_mb * 3
            + L3_TAG.leakage_mw_per_mb * 4
        ) * 1e-3
        assert model.leakage_watts() == pytest.approx(expected_w)

    def test_hybrid_dynamic_split_by_region(self):
        model = LLCEnergyModel(MB, MB, leakage_compensation=1.0)
        r = model.compute(
            self._stats(writes_stt=10, writes_sram=10), cycles=0, instructions=1
        )
        assert r.dynamic_write_j == pytest.approx(10 * 0.436e-9 + 10 * 0.056e-9)

    def test_epi_divides_by_instructions(self):
        model = LLCEnergyModel(0, MB, leakage_compensation=1.0)
        r = model.compute(self._stats(writes_stt=1000), cycles=0, instructions=2000)
        assert r.epi == pytest.approx(r.total_j / 2000)

    def test_epi_rejects_zero_instructions(self):
        model = LLCEnergyModel(0, MB)
        r = model.compute(self._stats(), cycles=10, instructions=0)
        with pytest.raises(ConfigurationError):
            _ = r.epi

    def test_static_share_bounds(self):
        model = LLCEnergyModel(0, MB)
        r = model.compute(self._stats(writes_stt=50), cycles=100000, instructions=10)
        assert 0.0 < r.static_share < 1.0

    def test_homogeneous_constructor_sram(self):
        model = LLCEnergyModel.homogeneous(SRAM, MB)
        assert model.sram_bytes == MB and model.stt_bytes == 0

    def test_homogeneous_constructor_scaled_stt(self):
        scaled = STT_RAM.with_write_read_ratio(10)
        model = LLCEnergyModel.homogeneous(scaled, MB)
        assert model.stt_bytes == MB and model.stt is scaled

    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            LLCEnergyModel(0, 0)

    def test_compensation_multiplies_leakage_only(self):
        m1 = LLCEnergyModel(0, MB, leakage_compensation=1.0)
        m2 = LLCEnergyModel(0, MB, leakage_compensation=8.0)
        s = self._stats(writes_stt=3)
        r1 = m1.compute(s, cycles=1000, instructions=1)
        r2 = m2.compute(s, cycles=1000, instructions=1)
        assert r2.static_j == pytest.approx(8 * r1.static_j)
        assert r2.dynamic_j == pytest.approx(r1.dynamic_j)

    def test_write_read_ratio_sweep_monotone_dynamic(self):
        s = self._stats(reads_stt=100, writes_stt=100)
        energies = []
        for ratio in (2, 4, 8, 16):
            model = LLCEnergyModel.homogeneous(STT_RAM.with_write_read_ratio(ratio), MB)
            energies.append(model.compute(s, cycles=0, instructions=1).dynamic_j)
        assert energies == sorted(energies)
        assert energies[0] < energies[-1]


class TestIsoArea:
    def test_density_ratio_matches_table1(self):
        from repro.energy import MB, iso_area_capacity

        stt_bytes = iso_area_capacity(8 * MB)
        # Table I densities: 1.65 vs 0.62 mm2 per 2MB -> ~2.66x capacity
        assert stt_bytes / (8 * MB) == pytest.approx(1.65 / 0.62, rel=1e-6)

    def test_paper_iso_area_point_magnitude(self):
        from repro.energy import MB, iso_area_capacity

        stt_mb = iso_area_capacity(8 * MB) / MB
        # the paper evaluates a 24MB iso-area STT LLC; Table I's raw
        # densities support ~21MB — same regime
        assert 18 < stt_mb < 26

    def test_rejects_nonpositive(self):
        from repro.energy import iso_area_capacity

        with pytest.raises(ConfigurationError):
            iso_area_capacity(0)

    def test_pow2_floor(self):
        from repro.energy import pow2_floor

        assert pow2_floor(24) == 16
        assert pow2_floor(16) == 16
        assert pow2_floor(1) == 1
        with pytest.raises(ConfigurationError):
            pow2_floor(0)
