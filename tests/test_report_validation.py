"""Tests for the experiment-report assembler and workload validation."""

import pytest

from repro.analysis.report import (
    EXPERIMENT_INDEX,
    assemble_report,
    missing_results,
)
from repro.errors import AnalysisError
from repro.workloads.validation import (
    TraitReport,
    measure_benchmark,
    validate_all,
    violations,
)


class TestReportAssembly:
    def test_index_covers_every_paper_artifact(self):
        ids = {e.experiment_id for e in EXPERIMENT_INDEX}
        for table in ("Table I", "Table II", "Table III", "Table IV"):
            assert table in ids
        for fig in (2, 4, 6, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25):
            assert f"Fig. {fig}" in ids

    def test_index_entries_unique(self):
        files = [e.result_file for e in EXPERIMENT_INDEX]
        assert len(files) == len(set(files))

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(AnalysisError):
            assemble_report(tmp_path / "nope")

    def test_partial_results_marked(self, tmp_path):
        (tmp_path / "fig18_mpki.txt").write_text("mpki table here")
        report = assemble_report(tmp_path)
        assert "mpki table here" in report
        assert "Not yet regenerated" in report

    def test_paper_claims_always_present(self, tmp_path):
        report = assemble_report(tmp_path_with_nothing(tmp_path))
        assert report.count("**Paper:**") == len(EXPERIMENT_INDEX)

    def test_missing_results_listing(self, tmp_path):
        (tmp_path / "fig18_mpki.txt").write_text("x")
        missing = missing_results(tmp_path)
        assert "fig18_mpki" not in missing
        assert "fig14_policy_comparison" in missing

    def test_preamble_included(self, tmp_path):
        report = assemble_report(tmp_path_with_nothing(tmp_path), preamble="HELLO")
        assert "HELLO" in report


def tmp_path_with_nothing(tmp_path):
    tmp_path.mkdir(exist_ok=True)
    return tmp_path


class TestWorkloadValidation:
    @pytest.fixture(scope="class")
    def reports(self):
        from repro.sim import SystemConfig

        system = SystemConfig.scaled()
        return validate_all(system, refs=4000)

    def test_every_benchmark_measured(self, reports):
        assert len(reports) == 13

    def test_no_trait_violations(self, reports):
        assert violations(reports) == {}

    def test_report_fields_sane(self, reports):
        for r in reports.values():
            assert 0 <= r.loop_fraction <= 1
            assert 0 <= r.redundant_fill_fraction <= 1
            assert r.mrel > 0 and r.wrel > 0

    def test_loop_heavy_benchmarks_measure_loopy(self, reports):
        assert reports["omnetpp"].loop_fraction > reports["lbm"].loop_fraction

    def test_single_measurement(self):
        report = measure_benchmark("libquantum", refs=3000)
        assert isinstance(report, TraitReport)
        assert report.redundant_fill_fraction > 0.5
        assert report.ok

    def test_violation_detection_mechanism(self):
        # Construct a report with a violation directly and check `ok`.
        bad = TraitReport(
            benchmark="x",
            loop_fraction=0.0,
            redundant_fill_fraction=0.0,
            mrel=1.0,
            wrel=1.0,
            declared_traits=frozenset(),
            violations=("declared loop-heavy but measured loop fraction 0.00",),
        )
        assert not bad.ok
        assert violations({"x": bad}) == {"x": bad.violations}


class TestIndexHarnessConsistency:
    """Every harness benchmark's emitted artefact must be indexed in the
    experiment record, and every indexed artefact must have a producer."""

    def _emitted_names(self):
        import pathlib
        import re

        bench_dir = pathlib.Path(__file__).parent.parent / "benchmarks"
        names = set()
        for path in bench_dir.glob("test_*.py"):
            names |= set(re.findall(r'emit\(\s*"([a-z0-9_]+)"', path.read_text()))
        return names

    def test_every_emitted_artifact_is_indexed(self):
        indexed = {e.result_file for e in EXPERIMENT_INDEX}
        missing = self._emitted_names() - indexed
        assert not missing, f"benchmarks emit unindexed artefacts: {missing}"

    def test_every_indexed_artifact_has_a_producer(self):
        emitted = self._emitted_names()
        orphans = {e.result_file for e in EXPERIMENT_INDEX} - emitted
        assert not orphans, f"index entries without benchmarks: {orphans}"
