"""Tests for the benchmark-suite layer (repro.suite)."""

import pytest

from repro.errors import AnalysisError, WorkloadError
from repro.exec.cache import ResultCache
from repro.suite import (
    BenchmarkSet,
    corpus_set,
    get_set,
    resolve,
    result_text,
    run_suite,
    set_names,
    sets,
    suite_records,
    write_result_file,
)
from repro.suite.registry import SPEC_FP, SPEC_INT
from repro.workloads import TABLE3_ORDER, TraceCorpus, benchmark_names
from repro.workloads.spec import build_benchmark


class TestRegistry:
    def test_paper_set_is_table3(self):
        assert get_set("paper").members == TABLE3_ORDER

    def test_aliases_resolve(self):
        assert get_set("table3") is get_set("paper")
        assert get_set("specint") is get_set("int")
        assert get_set("all") is get_set("spec")

    def test_int_fp_partition_the_thirteen(self):
        assert not set(SPEC_INT) & set(SPEC_FP)
        assert set(SPEC_INT) | set(SPEC_FP) == set(benchmark_names())

    def test_every_builtin_is_wellformed(self):
        for bset in sets():
            assert bset.members
            assert len(bset.member_labels()) == len(bset.members)

    def test_unknown_set_suggests_nearest(self):
        with pytest.raises(WorkloadError, match="did you mean 'paper'"):
            get_set("papr")

    def test_unknown_set_lists_valid_names(self):
        with pytest.raises(WorkloadError, match="valid sets"):
            get_set("definitely-not-a-set")

    def test_set_names_covers_builtins(self):
        names = set_names()
        for expected in ("paper", "spec", "int", "fp", "parsec"):
            assert expected in names

    def test_empty_set_rejected(self):
        with pytest.raises(WorkloadError):
            BenchmarkSet(name="empty", description="", members=())

    def test_label_member_mismatch_rejected(self):
        with pytest.raises(WorkloadError):
            BenchmarkSet(
                name="bad", description="", members=("a", "b"), labels=("only",)
            )

    def test_corpus_pseudo_set_needs_corpus(self):
        with pytest.raises(WorkloadError, match="REPRO_CORPUS_DIR"):
            resolve("corpus", corpus=None)


class TestRunSuite:
    def _tiny(self, *members, labels=None):
        return BenchmarkSet(
            name="tiny", description="test set", members=members, labels=labels
        )

    def test_run_produces_geomean_summary(self, small_system, tmp_path):
        report = run_suite(
            self._tiny("bzip2", "astar"),
            small_system,
            policies=("non-inclusive", "lap"),
            refs_per_core=1500,
        )
        assert report.ok
        summary = report.geomean_summary()
        assert summary["non-inclusive"]["epi"] == pytest.approx(1.0)
        assert 0 < summary["lap"]["epi"] < 2.0

    def test_error_surfacing_keeps_suite_alive(self, small_system):
        report = run_suite(
            self._tiny("bzip2", "no-such-benchmark"),
            small_system,
            policies=("lap",),
            refs_per_core=1000,
        )
        assert not report.ok
        assert len(report.failures) == 1
        assert report.failures[0].benchmark == "no-such-benchmark"
        assert "unknown benchmark" in report.failures[0].error
        assert len(report.succeeded) == 1  # bzip2 still ran

    def test_cache_warm_rerun_simulates_nothing(self, small_system, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        kwargs = dict(
            policies=("non-inclusive", "lap"), refs_per_core=1000, cache=cache
        )
        cold = run_suite(self._tiny("bzip2", "mcf"), small_system, **kwargs)
        assert cold.cache_hits == 0 and cold.simulated == 4
        warm = run_suite(self._tiny("bzip2", "mcf"), small_system, **kwargs)
        assert warm.cache_hits == 4 and warm.simulated == 0
        # identical results either way
        assert (
            warm.outcomes[0].results["lap"].llc_writes
            == cold.outcomes[0].results["lap"].llc_writes
        )
        assert (tmp_path / "cache" / "manifest.json").exists()

    def test_invalid_policy_rejected_up_front(self, small_system):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="unknown policy"):
            run_suite(
                self._tiny("bzip2"), small_system, policies=("not-a-policy",)
            )

    def test_no_policies_rejected(self, small_system):
        with pytest.raises(AnalysisError):
            run_suite(self._tiny("bzip2"), small_system, policies=())

    def test_all_failed_geomean_raises(self, small_system):
        report = run_suite(
            self._tiny("nope1", "nope2"), small_system, policies=("lap",)
        )
        with pytest.raises(AnalysisError):
            report.geomean_summary()

    def test_unknown_set_name_from_runner(self, small_system):
        with pytest.raises(WorkloadError, match="valid sets"):
            run_suite("no-such-set", small_system)


class TestTraceSuite:
    @pytest.fixture
    def stocked_corpus(self, tmp_path, small_system):
        corpus = TraceCorpus(tmp_path / "corpus", create=True)
        ctx = small_system.scale_context()
        for bench in ("bzip2", "mcf"):
            corpus.capture(
                build_benchmark(bench, ctx, seed=1), 2048, name=bench
            )
        return corpus

    def test_corpus_set_runs_through_exec(self, small_system, stocked_corpus):
        report = run_suite(
            "corpus",
            small_system,
            policies=("non-inclusive", "lap"),
            refs_per_core=1024,
            corpus=stocked_corpus,
        )
        assert report.ok
        assert [o.benchmark for o in report.outcomes] == ["bzip2", "mcf"]

    def test_corpus_set_cache_keys_by_digest(
        self, small_system, stocked_corpus, tmp_path
    ):
        cache = ResultCache(tmp_path / "cache")
        kwargs = dict(policies=("lap",), refs_per_core=1024, cache=cache)
        cold = run_suite(
            corpus_set(stocked_corpus), small_system,
            corpus=stocked_corpus, **kwargs,
        )
        warm = run_suite(
            corpus_set(stocked_corpus), small_system,
            corpus=stocked_corpus, **kwargs,
        )
        assert cold.simulated == 2
        assert warm.cache_hits == 2 and warm.simulated == 0

    def test_corpus_set_labels_are_names(self, stocked_corpus):
        cs = corpus_set(stocked_corpus)
        assert cs.member_labels() == ("bzip2", "mcf")
        assert all(len(m) == 64 for m in cs.members)  # digests underneath


class TestReporting:
    @pytest.fixture
    def report(self, small_system):
        return run_suite(
            BenchmarkSet(
                name="tiny", description="", members=("bzip2", "nope")
            ),
            small_system,
            policies=("non-inclusive", "lap"),
            refs_per_core=1000,
        )

    def test_result_text_includes_summary_and_failures(self, report):
        text = result_text(report)
        assert "geomean ratios" in text
        assert "FAILED nope" in text
        assert "job(s)" in text

    def test_suite_records_skip_failures(self, report):
        records = suite_records(report)
        assert len(records) == 2  # bzip2 x two policies
        assert {r.policy for r in records} == {"non-inclusive", "lap"}
        assert all(r.workload == "bzip2" for r in records)

    def test_write_result_file(self, report, tmp_path):
        path = write_result_file(report, tmp_path / "results")
        assert path.name == "suite_geomean.txt"
        assert "geomean ratios" in path.read_text()
