"""Tests for the run ledger (repro.obs.ledger)."""

import json
import shutil

import pytest

from repro.errors import TelemetryError
from repro.obs.ledger import LEDGER_KIND, LEDGER_SCHEMA, LedgerRow, RunLedger, scan_dirs
from repro.obs.spans import SpanRecorder, install_recorder, uninstall_recorder


@pytest.fixture(scope="module")
def sweep_dir(tmp_path_factory):
    """A real tiny sweep: 2 workloads x 2 policies into one cache dir,
    with spans.jsonl and a metrics snapshot alongside the manifest."""
    from repro.exec import JobSpec, ResultCache, WorkloadSpec, execute_jobs
    from repro.sim import SystemConfig
    from repro.telemetry.metrics import MetricsRegistry, set_registry

    root = tmp_path_factory.mktemp("sweep")
    cache = ResultCache(root)
    previous_registry = set_registry(MetricsRegistry())
    install_recorder(SpanRecorder())
    try:
        system = SystemConfig.scaled(ncores=2, llc_kb=32, l2_kb=4)
        jobs = [
            JobSpec(
                system=system,
                workload=WorkloadSpec.duplicate(bench, ncores=2, seed=0),
                policy=policy,
                refs_per_core=300,
            )
            for bench in ("mcf", "libquantum")
            for policy in ("non-inclusive", "lap")
        ]
        execute_jobs(jobs, cache=cache, manifest_dir=root)
        from repro.telemetry.metrics import get_registry

        (root / "metrics.json").write_text(
            json.dumps(get_registry().snapshot())
        )
    finally:
        uninstall_recorder()
        set_registry(previous_registry)
    return root


class TestScan:
    def test_rows_merge_manifest_and_entries(self, sweep_dir):
        ledger = scan_dirs([sweep_dir])
        assert len(ledger.rows) == 4
        assert ledger.manifests == 1
        assert ledger.problems == []
        for row in ledger.rows:
            assert len(row.key) == 64
            assert row.workload != "?"
            assert row.policy in ("non-inclusive", "lap")
            assert row.source in ("pool", "serial", "cache"), row.source
            assert row.refs_per_core == 300
            assert row.has_result
            assert row.wall_s > 0

    def test_rows_carry_result_metrics_and_hit_rate(self, sweep_dir):
        ledger = scan_dirs([sweep_dir])
        for row in ledger.rows:
            assert "epi" in row.metrics
            assert "mpki" in row.metrics
            assert 0.0 < row.metrics["llc_hit_rate"] <= 1.0

    def test_backend_provenance_from_job_spec(self, sweep_dir):
        ledger = scan_dirs([sweep_dir])
        backends = {row.backend for row in ledger.rows}
        assert backends <= {"auto", "object", "soa"}
        assert "?" not in backends

    def test_spans_and_metrics_snapshots_collected(self, sweep_dir):
        ledger = scan_dirs([sweep_dir])
        assert {s["name"] for s in ledger.spans} >= {"exec.batch", "simulate"}
        assert len(ledger.metrics_snapshots) == 1
        snap = ledger.metrics_snapshots[0]["snapshot"]
        assert "counters" in snap

    def test_rows_sorted_by_workload_policy_key(self, sweep_dir):
        ledger = scan_dirs([sweep_dir])
        keys = [(r.workload, r.policy, r.key) for r in ledger.rows]
        assert keys == sorted(keys)

    def test_missing_dir_raises(self, tmp_path):
        with pytest.raises(TelemetryError, match="no such result-cache"):
            scan_dirs([tmp_path / "nope"])

    def test_corrupt_entry_downgrades_to_problem(self, sweep_dir, tmp_path):
        work = tmp_path / "copy"
        shutil.copytree(sweep_dir, work)
        (work / ("ab" * 32 + ".json")).write_text("{not json")
        ledger = scan_dirs([work])
        assert len(ledger.rows) == 4, "corrupt entry must not become a row"
        assert any("unreadable cache entry" in p for p in ledger.problems)

    def test_manifest_only_row_when_entry_missing(self, sweep_dir, tmp_path):
        work = tmp_path / "copy"
        shutil.copytree(sweep_dir, work)
        victim = sorted(
            p for p in work.glob("*.json")
            if len(p.stem) == 64
        )[0]
        victim.unlink()
        ledger = scan_dirs([work])
        assert len(ledger.rows) == 4, "the manifest still claims the job"
        partial = [r for r in ledger.rows if not r.has_result]
        assert len(partial) == 1
        assert partial[0].key == victim.stem

    def test_entry_without_manifest_is_disk_sourced(self, sweep_dir, tmp_path):
        work = tmp_path / "copy"
        shutil.copytree(sweep_dir, work)
        (work / "manifest.json").unlink()
        ledger = scan_dirs([work])
        assert len(ledger.rows) == 4
        assert ledger.manifests == 0
        assert all(r.source == "disk" for r in ledger.rows)
        assert all(r.has_result for r in ledger.rows)

    def test_multi_dir_merge(self, sweep_dir, tmp_path):
        second = tmp_path / "second"
        shutil.copytree(sweep_dir, second)
        ledger = scan_dirs([sweep_dir, second])
        # Same content-addressed keys in both dirs: rows merge by key.
        assert len(ledger.rows) == 4
        assert len(ledger.dirs) == 2
        assert ledger.manifests == 2
        # Spans and snapshots accumulate per dir scanned.
        single = scan_dirs([sweep_dir])
        assert len(ledger.spans) == 2 * len(single.spans)
        assert len(ledger.metrics_snapshots) == 2


class TestRollups:
    def test_grid_is_workload_by_policy(self, sweep_dir):
        ledger = scan_dirs([sweep_dir])
        grid = ledger.grid("epi")
        assert sorted(grid) == ledger.workloads()
        for policies in grid.values():
            assert sorted(policies) == ["lap", "non-inclusive"]
            assert all(v > 0 for v in policies.values())

    def test_grid_unknown_metric_is_empty(self, sweep_dir):
        assert scan_dirs([sweep_dir]).grid("no_such_metric") == {}

    def test_counting_rollups(self, sweep_dir):
        ledger = scan_dirs([sweep_dir])
        assert sum(ledger.by_source().values()) == 4
        assert sum(ledger.by_backend().values()) == 4
        assert ledger.total_retries() == 0
        assert ledger.total_wall_s() > 0
        share = ledger.cache_hit_share()
        assert share is not None and 0.0 <= share <= 1.0

    def test_cache_hit_share_none_when_empty(self):
        assert RunLedger().cache_hit_share() is None

    def test_simulated_accesses_excludes_cache_and_disk(self):
        ledger = RunLedger(rows=[
            LedgerRow(key="a" * 64, source="pool", accesses=100),
            LedgerRow(key="b" * 64, source="cache", accesses=100),
            LedgerRow(key="c" * 64, source="disk", accesses=100),
        ])
        assert ledger.simulated_accesses() == 100


class TestSerialization:
    def test_to_json_round_trip(self, sweep_dir):
        ledger = scan_dirs([sweep_dir])
        doc = json.loads(ledger.to_json())
        assert doc["kind"] == LEDGER_KIND
        assert doc["schema"] == LEDGER_SCHEMA
        assert doc["totals"]["rows"] == 4
        assert doc["totals"]["by_source"] == ledger.by_source()
        assert len(doc["rows"]) == 4
        assert all("metrics" in r for r in doc["rows"])

    def test_as_dict_is_json_safe(self, sweep_dir):
        json.dumps(scan_dirs([sweep_dir]).as_dict())
