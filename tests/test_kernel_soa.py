"""Unit tests for the kernel layer: backend resolution, the SoA store's
view protocol, vectorized queries, and the checkout/checkin contract."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.kernel import (
    ENV_VAR,
    TAG_BACKENDS,
    make_tag_store,
    numpy_available,
    resolve_backend,
)

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="soa backend requires numpy"
)


# ----------------------------------------------------------------------
# backend resolution
# ----------------------------------------------------------------------
def test_resolve_backend_explicit_and_default(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    assert resolve_backend("object") == "object"
    assert resolve_backend(None) == "object"


def test_resolve_backend_env_override(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "object")
    assert resolve_backend(None) == "object"
    # explicit argument beats the environment
    if numpy_available():
        assert resolve_backend("soa") == "soa"


def test_resolve_backend_rejects_unknown():
    with pytest.raises(ConfigurationError, match="unknown tag backend"):
        resolve_backend("columnar")


def test_make_tag_store_kinds():
    store = make_tag_store("object", 4, 2, ("sram", "sram"))
    assert store.kind == "object"
    assert not store.supports_batch
    assert len(store.sets) == 4
    if numpy_available():
        store = make_tag_store("soa", 4, 2, ("sram", "sram"))
        assert store.kind == "soa"
        assert store.supports_batch


def test_backends_tuple_is_the_contract():
    assert TAG_BACKENDS == ("object", "soa")


# ----------------------------------------------------------------------
# SoA block-view protocol
# ----------------------------------------------------------------------
@requires_numpy
def test_block_view_fields_round_trip():
    store = make_tag_store("soa", 2, 2, ("stt", "stt"))
    blk = store.sets[1].blocks[0]
    blk.tag = 0x2A
    blk.valid = True
    blk.dirty = True
    blk.last_access = 7
    blk.insert_seq = 7
    # plain Python scalars, backed by the matrices
    assert blk.tag == 0x2A and isinstance(blk.tag, int)
    assert blk.valid is True and blk.dirty is True
    assert int(store.tag[1, 0]) == 0x2A
    assert bool(store.valid[1, 0])
    blk.valid = False
    assert not bool(store.valid[1, 0])


@requires_numpy
def test_set_loop_bit_keeps_counter_exact():
    store = make_tag_store("soa", 1, 2, ("stt", "stt"))
    cset = store.sets[0]
    blk = cset.blocks[0]
    blk.valid = True
    assert cset.loop_count == 0
    blk.set_loop_bit(True)
    assert cset.loop_count == 1
    blk.set_loop_bit(True)  # idempotent
    assert cset.loop_count == 1
    blk.set_loop_bit(False)
    assert cset.loop_count == 0


# ----------------------------------------------------------------------
# vectorized queries
# ----------------------------------------------------------------------
@requires_numpy
def test_find_ways_matches_linear_search():
    import numpy as np

    store = make_tag_store("soa", 4, 2, ("stt", "stt"))
    store.tag[0] = (5, 9)
    store.valid[0] = (True, True)
    store.tag[2] = (5, -1)
    store.valid[2] = (True, False)
    ways = store.find_ways(np.array([0, 0, 2, 2, 3]), np.array([9, 7, 5, 9, 5]))
    # set 2 way 1 holds tag -1 invalid; set 3 is empty
    assert ways.tolist() == [1, -1, 0, -1, -1]


@requires_numpy
def test_lru_victims_prefers_invalid_then_oldest():
    import numpy as np

    store = make_tag_store("soa", 3, 2, ("stt", "stt"))
    # set 0: way 1 invalid -> first invalid wins
    store.valid[0] = (True, False)
    store.last_access[0] = (10, 99)
    # set 1: all valid -> oldest stamp
    store.valid[1] = (True, True)
    store.last_access[1] = (10, 3)
    # set 2: tie -> lowest way (first-win, matching LRUPolicy)
    store.valid[2] = (True, True)
    store.last_access[2] = (4, 4)
    assert store.lru_victims(np.array([0, 1, 2])).tolist() == [1, 1, 0]


@requires_numpy
def test_loop_block_occupancy_counts_valid_loop_blocks():
    store = make_tag_store("soa", 2, 2, ("stt", "stt"))
    store.valid[0] = (True, True)
    store.loop_bit[0] = (True, False)
    store.loop_bit[1] = (True, True)  # invalid: must not count
    assert store.loop_block_occupancy() == (2, 1)
    assert store.occupancy() == 2


# ----------------------------------------------------------------------
# checkout / checkin and the kernel's flat maps
# ----------------------------------------------------------------------
@requires_numpy
def test_checkout_checkin_round_trip():
    store = make_tag_store("soa", 2, 2, ("stt", "sram"))
    cset = store.sets[1]
    blk = cset.blocks[1]
    blk.tag = 3
    blk.valid = True
    blk.dirty = True
    blk.last_access = 5
    blk.insert_seq = 4
    cset.tag_map[3] = blk
    blk.set_loop_bit(True)

    state = store.checkout()
    assert state["tag"][3] == 3  # slot = set*assoc + way = 3
    assert state["maps"][1] == {3: 3}
    assert state["loop_counts"] == [0, 1]

    # mutate through the flat lists, as the batch kernel does
    state["dirty"][3] = False
    state["last"][3] = 9
    store.checkin(state)
    assert blk.dirty is False
    assert blk.last_access == 9
    assert cset.tag_map == {3: blk}
    assert cset.loop_count == 1


def test_flat_map_round_trip():
    from repro.kernel.batch import _blk_shadow, _flatten_maps, _unflatten_maps

    idx_bits, num_sets = 2, 4
    per_set = [{}, {5: 1}, {7: 2, 1: 3}, {}]
    flat = _flatten_maps(per_set, idx_bits)
    assert flat == {(5 << 2) | 1: 1, (7 << 2) | 2: 2, (1 << 2) | 2: 3}
    assert _unflatten_maps(flat, num_sets, num_sets - 1, idx_bits) == per_set
    shadow = _blk_shadow(flat, 8)
    for blk_no, slot in flat.items():
        assert shadow[slot] == blk_no


def test_kernel_mode_exact_policy_types():
    from repro.core.policies import make_policy
    from repro.kernel.batch import MODE_EX, MODE_LAP, MODE_NONI, kernel_mode

    assert kernel_mode(make_policy("non-inclusive")) == MODE_NONI
    assert kernel_mode(make_policy("exclusive")) == MODE_EX
    assert kernel_mode(make_policy("lap")) == MODE_LAP
    assert kernel_mode(make_policy("lap-lru")) == MODE_LAP
    # srrip baseline has no kernel flow; subclasses/others fall back
    assert kernel_mode(make_policy("lap-rrip")) is None
    assert kernel_mode(make_policy("inclusive")) is None
    assert kernel_mode(make_policy("flexclusion")) is None
    assert kernel_mode(make_policy("lhybrid")) is None
