"""Tests for the loop-block / CTC instrumentation (Fig. 4 substrate)."""

from repro.core import LoopBlockTracker
from tests.conftest import A, B, C, D, E, F, G, H, build_micro, run_refs


def reads(*addrs):
    return [(a, False) for a in addrs]


def writes(*addrs):
    return [(a, True) for a in addrs]


class TestTrackerUnit:
    def test_memory_fill_clean_evict_is_not_a_clean_trip(self):
        t = LoopBlockTracker()
        t.on_l2_fill(A, from_llc=False)
        t.on_l2_evict(A, dirty=False)
        assert t.stats.loop_evictions == 0
        assert t.stats.l2_evictions == 1

    def test_llc_fill_clean_evict_is_a_clean_trip(self):
        t = LoopBlockTracker()
        t.on_l2_fill(A, from_llc=True)
        t.on_l2_evict(A, dirty=False)
        assert t.stats.loop_evictions == 1

    def test_dirty_eviction_finalizes_streak(self):
        t = LoopBlockTracker()
        for _ in range(3):
            t.on_l2_fill(A, from_llc=True)
            t.on_l2_evict(A, dirty=False)
        t.on_l2_fill(A, from_llc=True)
        t.on_l2_evict(A, dirty=True)
        assert t.stats.ctc_histogram == {3: 1}

    def test_store_finalizes_streak(self):
        t = LoopBlockTracker()
        t.on_l2_fill(A, from_llc=True)
        t.on_l2_evict(A, dirty=False)
        t.on_l2_fill(A, from_llc=True)
        t.on_dirtied(A)
        assert t.stats.ctc_histogram == {1: 1}

    def test_finalize_flushes_open_streaks(self):
        t = LoopBlockTracker()
        for addr in (A, B):
            t.on_l2_fill(addr, from_llc=True)
            t.on_l2_evict(addr, dirty=False)
        t.finalize()
        assert t.stats.ctc_histogram == {1: 2}

    def test_ctc_buckets_match_paper_bins(self):
        t = LoopBlockTracker()
        for streak_len in (1, 2, 4, 5, 9):
            addr = streak_len * 64
            for _ in range(streak_len):
                t.on_l2_fill(addr, from_llc=True)
                t.on_l2_evict(addr, dirty=False)
            t.on_dirtied(addr)
        buckets = t.stats.ctc_buckets()
        assert buckets == {"ctc=1": 1, "1<ctc<5": 2, "ctc>=5": 2}

    def test_ctc_fractions_sum_to_one(self):
        t = LoopBlockTracker()
        for _ in range(4):
            t.on_l2_fill(A, from_llc=True)
            t.on_l2_evict(A, dirty=False)
        t.finalize()
        fractions = t.ctc_fractions()
        assert abs(sum(fractions.values()) - 1.0) < 1e-12

    def test_fraction_zero_when_no_evictions(self):
        assert LoopBlockTracker().loop_block_fraction == 0.0

    def test_occupancy_sampling(self):
        t = LoopBlockTracker()
        t.sample_llc_occupancy(10, 4)
        t.sample_llc_occupancy(10, 6)
        assert t.stats.llc_loop_samples == 20
        assert t.stats.llc_loop_blocks == 10


class TestTrackerInHierarchy:
    def test_loop_workload_registers_clean_trips(self):
        h = build_micro("lap")
        # A..D loop between L2 and LLC three times.
        run_refs(h, reads(A, B, C, D, E, F, G, H))
        for _ in range(3):
            run_refs(h, reads(A, B, C, D))
            run_refs(h, reads(E, F, G, H))
        h.finish()
        assert h.loop_tracker.stats.loop_evictions >= 8

    def test_streaming_workload_has_no_clean_trips(self):
        h = build_micro("non-inclusive")
        addrs = [i * 64 for i in range(40)]  # one-shot stream
        run_refs(h, reads(*addrs))
        h.finish()
        assert h.loop_tracker.stats.loop_evictions == 0

    def test_write_heavy_workload_finalizes_as_dirty(self):
        h = build_micro("non-inclusive")
        run_refs(h, reads(A, B, C, D))
        run_refs(h, reads(E, F, G, H))
        run_refs(h, writes(A, B, C, D))  # brought back dirty
        run_refs(h, reads(E, F, G, H))
        h.finish()
        assert h.loop_tracker.stats.loop_evictions == 0

    def test_loop_fraction_between_zero_and_one(self, small_system):
        from repro import make_workload, simulate

        wl = make_workload("xalancbmk", small_system)
        r = simulate(small_system, "non-inclusive", wl, refs_per_core=5000)
        assert 0.0 <= r.loop_block_fraction <= 1.0

    def test_loop_heavy_beats_streaming_fraction(self, small_system):
        from repro import make_workload, simulate

        frac = {}
        for bench in ("omnetpp", "lbm"):
            wl = make_workload(bench, small_system)
            frac[bench] = simulate(
                small_system, "non-inclusive", wl, refs_per_core=6000
            ).loop_block_fraction
        assert frac["omnetpp"] > frac["lbm"] + 0.2
