"""Unit tests for the set-dueling controller."""

import pytest

from repro.errors import ConfigurationError
from repro.inclusion.dueling import (
    ROLE_FOLLOWER,
    ROLE_LEADER_A,
    ROLE_LEADER_B,
    SetDueling,
    fewer_misses_wins,
)


class TestRoles:
    def test_leader_density_is_one_per_period(self):
        d = SetDueling(num_sets=128, period=64, interval=10)
        roles = [d.role(i) for i in range(128)]
        assert roles.count(ROLE_LEADER_A) == 2
        assert roles.count(ROLE_LEADER_B) == 2
        assert roles.count(ROLE_FOLLOWER) == 124

    def test_leader_positions(self):
        d = SetDueling(num_sets=128, period=64, interval=10)
        assert d.role(0) == ROLE_LEADER_A
        assert d.role(64) == ROLE_LEADER_A
        assert d.role(32) == ROLE_LEADER_B
        assert d.role(96) == ROLE_LEADER_B

    def test_period_shrinks_for_small_caches(self):
        d = SetDueling(num_sets=8, period=64, interval=10)
        assert d.role(0) == ROLE_LEADER_A
        assert d.role(4) == ROLE_LEADER_B

    def test_single_set_degenerates_to_follower(self):
        d = SetDueling(num_sets=1, period=64, interval=10)
        assert d.degenerate
        assert d.role(0) == ROLE_FOLLOWER
        assert not d.tick()

    def test_rejects_bad_interval(self):
        with pytest.raises(ConfigurationError):
            SetDueling(num_sets=64, period=64, interval=0)


class TestDecisions:
    def test_followers_track_winner(self):
        d = SetDueling(num_sets=128, period=64, interval=4)
        assert d.policy_for(1) == ROLE_LEADER_A  # initial winner
        # leader A misses a lot
        for _ in range(5):
            d.record_miss(0)
        for _ in range(4):
            d.tick()
        assert d.winner == ROLE_LEADER_B
        assert d.policy_for(1) == ROLE_LEADER_B

    def test_leaders_never_follow(self):
        d = SetDueling(num_sets=128, period=64, interval=4)
        for _ in range(5):
            d.record_miss(0)
        for _ in range(4):
            d.tick()
        assert d.policy_for(0) == ROLE_LEADER_A
        assert d.policy_for(32) == ROLE_LEADER_B

    def test_ties_prefer_leader_a(self):
        assert fewer_misses_wins(3, 0, 3, 0) == ROLE_LEADER_A

    def test_interval_counters_reset(self):
        d = SetDueling(num_sets=128, period=64, interval=2)
        d.record_miss(0)
        d.tick()
        d.tick()  # decision taken
        assert d.stats.leader_a_misses == 0
        assert d.stats.intervals == 1

    def test_follower_misses_ignored(self):
        d = SetDueling(num_sets=128, period=64, interval=100)
        d.record_miss(1)  # follower set
        assert d.stats.leader_a_misses == 0
        assert d.stats.leader_b_misses == 0

    def test_write_counters_feed_decision(self):
        calls = {}

        def spy(miss_a, write_a, miss_b, write_b):
            calls["args"] = (miss_a, write_a, miss_b, write_b)
            return ROLE_LEADER_B

        d = SetDueling(num_sets=128, period=64, interval=1, winner_fn=spy)
        d.record_write(0)
        d.record_write(32)
        d.record_write(32)
        d.record_miss(32)
        d.tick()
        assert calls["args"] == (0, 1, 1, 2)
        assert d.winner == ROLE_LEADER_B

    def test_decision_counts_accumulate(self):
        d = SetDueling(num_sets=128, period=64, interval=1)
        for _ in range(3):
            d.tick()
        assert d.stats.decisions_a == 3
        assert d.stats.decisions_b == 0
