"""Cross-cutting integration checks: result extras, hybrid accounting,
full-scale Table II energy, and instruction/cycle consistency."""

import pytest

from repro import SystemConfig, make_workload, simulate
from repro.energy import MB


class TestResultExtras:
    def test_dueling_policies_report_decisions(self, small_system):
        wl = make_workload("omnetpp", small_system)
        r = simulate(small_system, "lap", wl, refs_per_core=3000)
        assert "duel_decisions_a" in r.extra
        assert r.extra["duel_decisions_a"] + r.extra["duel_decisions_b"] > 0

    def test_traditional_policies_have_no_duel_extras(self, small_system):
        wl = make_workload("mcf", small_system)
        r = simulate(small_system, "non-inclusive", wl, refs_per_core=1000)
        assert "duel_decisions_a" not in r.extra

    def test_lhybrid_reports_winv_redirects(self, small_hybrid_system):
        wl = make_workload("GemsFDTD", small_hybrid_system)
        r = simulate(small_hybrid_system, "lhybrid", wl, refs_per_core=4000)
        assert "winv_redirects" in r.extra


class TestHybridAccounting:
    @pytest.fixture(scope="class")
    def hybrid_run(self):
        system = SystemConfig.scaled(ncores=2, llc_kb=32, l2_kb=4, hybrid=True)
        wl = make_workload("GemsFDTD", system)
        return simulate(system, "lhybrid", wl, refs_per_core=5000)

    def test_region_writes_partition_total(self, hybrid_run):
        s = hybrid_run.llc
        assert s.data_writes == s.data_writes_sram + s.data_writes_stt
        assert s.data_reads == s.data_reads_sram + s.data_reads_stt

    def test_both_regions_active(self, hybrid_run):
        s = hybrid_run.llc
        assert s.data_writes_sram > 0
        # migrations or loop insertions touch the STT region too
        assert s.data_writes_stt + s.migrations >= 0

    def test_energy_uses_both_region_models(self, hybrid_run):
        assert hybrid_run.energy.dynamic_write_j > 0
        assert hybrid_run.energy.static_j > 0


class TestFullScaleTable2:
    def test_leakage_matches_paper_values(self):
        """Full-scale 8MB STT LLC: leakage = 28.41mW data + 17.73mW tag."""
        system = SystemConfig.table2()
        model = system.energy_model()
        # 28.41mW is Table II's rounded figure for 8MB derived from
        # Table I's 7.108mW per 2MB bank; allow the rounding slack.
        assert model.leakage_watts() == pytest.approx((28.41 + 17.73) * 1e-3, rel=1e-3)
        assert model.capacity_bytes == 8 * MB

    def test_full_scale_simulation_runs(self):
        """A short full-geometry run completes and produces sane stats.

        (The real Table II evaluation needs billions of references; this
        guards that nothing in the stack assumes the scaled geometry.)
        """
        system = SystemConfig.table2()
        wl = make_workload("libquantum", system)
        r = simulate(system, "lap", wl, refs_per_core=4000)
        assert r.llc.fill_writes == 0
        assert r.instructions > 0
        assert r.hier.accesses == 4000 * 4

    def test_hybrid_table2_partition(self):
        system = SystemConfig.table2(hybrid=True)
        model = system.energy_model()
        assert model.sram_bytes == 2 * MB
        assert model.stt_bytes == 6 * MB


class TestAccountingIdentities:
    @pytest.fixture(scope="class")
    def run(self):
        system = SystemConfig.scaled(ncores=2, llc_kb=32, l2_kb=4)
        wl = make_workload("WH1".replace("WH1", "omnetpp"), system)
        return simulate(system, "lap", wl, refs_per_core=5000)

    def test_level_hits_partition_accesses(self, run):
        h = run.hier
        assert h.l1_hits + h.l2_hits + h.llc_demand_accesses == h.accesses

    def test_llc_demand_hits_bounded(self, run):
        assert 0 <= run.hier.llc_demand_hits <= run.hier.llc_demand_accesses

    def test_victim_partition(self, run):
        h = run.hier
        total_victims = h.l2_clean_victims + h.l2_dirty_victims
        # every L2 insertion beyond capacity produced exactly one victim
        assert total_victims <= h.llc_demand_accesses

    def test_memory_reads_equal_unsupplied_misses(self, run):
        # no coherence in multiprogrammed runs: every LLC miss goes to
        # memory
        assert run.hier.mem_reads == run.llc_misses

    def test_cycles_exceed_instruction_minimum(self, run):
        assert run.cycles >= max(run.core_instructions)
