"""CLI tests for the telemetry surface: trace commands, cache --json,
the global --metrics flag, and sweep manifests."""

import json

import pytest

from repro.cli import main
from repro.telemetry import MANIFEST_NAME, RunManifest

SMALL = ["--refs", "250", "--ncores", "2", "--llc-kb", "32", "--l2-kb", "4"]


def record(tmp_path, name, policy, seed="5"):
    out = tmp_path / name
    code = main(["trace", "record", "mcf", policy, "--out", str(out),
                 "--seed", seed, *SMALL])
    assert code == 0
    return out


class TestTraceRecord:
    def test_record_writes_a_readable_trace(self, tmp_path, capsys):
        out = record(tmp_path, "t.jsonl.gz", "lap")
        assert out.exists()
        assert "recorded" in capsys.readouterr().out

    def test_record_with_event_filter(self, tmp_path, capsys):
        out = tmp_path / "t.jsonl"
        code = main(["trace", "record", "mcf", "non-inclusive",
                     "--out", str(out), "--events", "llc_fill", *SMALL])
        assert code == 0
        from repro.telemetry import read_events

        names = {type(e).__name__ for e in read_events(out)}
        assert names == {"LlcFillEvent"}

    def test_bad_event_filter_fails_cleanly(self, tmp_path, capsys):
        code = main(["trace", "record", "mcf", "lap",
                     "--out", str(tmp_path / "t.jsonl"),
                     "--events", "warp_drive", *SMALL])
        assert code == 2
        assert "warp_drive" in capsys.readouterr().err


class TestTraceSummarize:
    def test_table_output(self, tmp_path, capsys):
        out = record(tmp_path, "t.jsonl.gz", "lap")
        capsys.readouterr()
        assert main(["trace", "summarize", str(out)]) == 0
        text = capsys.readouterr().out
        assert "access" in text and "lap" in text

    def test_json_output(self, tmp_path, capsys):
        out = record(tmp_path, "t.jsonl.gz", "lap")
        capsys.readouterr()
        assert main(["trace", "summarize", str(out), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total"] > 0
        assert payload["by_event"]["access"] > 0
        assert payload["meta"]["policy"] == "lap"

    def test_missing_trace_fails_cleanly(self, tmp_path, capsys):
        assert main(["trace", "summarize", str(tmp_path / "nope.jsonl")]) == 2
        assert "no such trace" in capsys.readouterr().err


class TestTraceDiff:
    def test_identical_runs_report_zero_divergence(self, tmp_path, capsys):
        a = record(tmp_path, "a.jsonl.gz", "non-inclusive")
        b = record(tmp_path, "b.jsonl.gz", "non-inclusive")
        capsys.readouterr()
        assert main(["trace", "diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "streams are identical: zero divergence" in out

    def test_policy_diff_reports_first_divergence_and_deltas(self, tmp_path, capsys):
        a = record(tmp_path, "a.jsonl.gz", "non-inclusive")
        b = record(tmp_path, "b.jsonl.gz", "lap")
        capsys.readouterr()
        assert main(["trace", "diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "first divergence at event #" in out
        assert "delta" in out and "llc_fill" in out
        assert "non-inclusive" in out and "lap" in out

    def test_json_diff(self, tmp_path, capsys):
        a = record(tmp_path, "a.jsonl.gz", "non-inclusive")
        b = record(tmp_path, "b.jsonl.gz", "lap")
        capsys.readouterr()
        assert main(["trace", "diff", str(a), str(b), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["identical"] is False
        assert payload["divergence"]["index"] >= 0
        assert payload["deltas"]["access"] == 0
        assert payload["counts"]["llc_fill"][1] == 0  # LAP never fills


class TestCacheStatsJson:
    def test_json_stats(self, tmp_path, capsys):
        code = main(["--cache-dir", str(tmp_path), "cache", "stats", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["directory"] == str(tmp_path)
        assert payload["entries"] == 0

    def test_json_stats_counts_entries(self, tmp_path, capsys):
        main(["--cache-dir", str(tmp_path), "sweep", "--workloads", "mcf",
              "--policies", "lap", "--heartbeat", "0", *SMALL])
        capsys.readouterr()
        code = main(["--cache-dir", str(tmp_path), "cache", "stats", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] == 1


class TestMetricsFlag:
    def test_metrics_snapshot_written_after_command(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        code = main(["--metrics", str(metrics), "run", "mcf", "lap", *SMALL])
        assert code == 0
        payload = json.loads(metrics.read_text())
        assert payload["counters"]["sim.runs"] >= 1
        assert payload["counters"]["hierarchy.accesses"] >= 1
        assert "metrics snapshot written" in capsys.readouterr().err


class TestSweepManifest:
    def test_cached_sweep_writes_manifest(self, tmp_path, capsys):
        code = main(["--cache-dir", str(tmp_path), "sweep",
                     "--workloads", "mcf", "--policies", "non-inclusive,lap",
                     "--heartbeat", "0", *SMALL])
        assert code == 0
        err = capsys.readouterr().err
        assert "run manifest written" in err
        manifest = RunManifest.load(tmp_path / MANIFEST_NAME)
        assert len(manifest.jobs) == 2
        assert manifest.cache_misses == 2
        assert all(j.wall_s > 0 for j in manifest.jobs)

    def test_warm_rerun_flips_to_cache_hits(self, tmp_path):
        args = ["--cache-dir", str(tmp_path), "sweep", "--workloads", "mcf",
                "--policies", "lap", "--heartbeat", "0", *SMALL]
        assert main(args) == 0
        assert main(args) == 0
        manifest = RunManifest.load(tmp_path)
        assert manifest.cache_hits == 1
        assert manifest.cache_misses == 0
