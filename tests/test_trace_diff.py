"""Tests for trace summaries and lockstep trace diffing."""

import json

import pytest

from repro.telemetry import (
    TraceProbe,
    diff_traces,
    record_simulation,
    summarize_trace,
)


def write_trace(path, events, meta=None):
    """Record a hand-rolled stream of (event, args) pairs."""
    probe = TraceProbe(path, meta=meta or {})
    for name, args in events:
        getattr(probe, f"on_{name}")(*args)
    probe.finish()
    return path


STREAM = [
    ("access", (0, 64, False)),
    ("llc_fill", (64,)),
    ("access", (0, 128, True)),
    ("dirtied", (128,)),
    ("demand_hit", (64,)),
]


class TestSummarize:
    def test_counts_per_event_type(self, tmp_path):
        path = write_trace(tmp_path / "t.jsonl", STREAM, meta={"policy": "lap"})
        summary = summarize_trace(path)
        assert summary.total == 5
        assert summary.by_event == {
            "access": 2, "llc_fill": 1, "demand_hit": 1, "dirtied": 1,
        }
        assert summary.meta["policy"] == "lap"
        assert json.dumps(summary.as_dict())  # JSON-safe


class TestDiffIdentical:
    def test_identical_streams_zero_divergence(self, tmp_path):
        left = write_trace(tmp_path / "a.jsonl", STREAM)
        right = write_trace(tmp_path / "b.jsonl", STREAM)
        diff = diff_traces(left, right)
        assert diff.identical
        assert diff.divergence is None
        assert all(d == 0 for d in diff.deltas().values())
        assert diff.counts["access"] == (2, 2)
        assert diff.as_dict()["identical"] is True
        assert diff.as_dict()["divergence"] is None

    def test_sequence_numbers_are_not_compared(self, tmp_path):
        # Two recordings of the same underlying events whose seq fields
        # differ (e.g. different filters were active) still diff clean.
        left = write_trace(tmp_path / "a.jsonl", STREAM)
        right = tmp_path / "b.jsonl"
        lines = left.read_text().splitlines()
        shifted = []
        for line in lines[1:-1]:
            record = json.loads(line)
            record[0] += 1000  # recorder-local sequence offset
            shifted.append(json.dumps(record))
        right.write_text("\n".join([lines[0]] + shifted + [lines[-1]]) + "\n")
        diff = diff_traces(left, right)
        assert diff.identical


class TestDiffDivergence:
    def test_first_value_divergence_is_located(self, tmp_path):
        altered = list(STREAM)
        altered[3] = ("dirtied", (192,))  # same type, different address
        left = write_trace(tmp_path / "a.jsonl", STREAM)
        right = write_trace(tmp_path / "b.jsonl", altered)
        diff = diff_traces(left, right)
        assert not diff.identical
        assert diff.divergence.index == 3
        text = diff.divergence.describe()
        assert "DirtiedEvent" in text and "event #3" in text
        # Counts still cover both whole runs: same types either side.
        assert diff.deltas() == {k: 0 for k in diff.deltas()}

    def test_type_divergence(self, tmp_path):
        altered = list(STREAM)
        altered[1] = ("clean_insert", (64,))
        left = write_trace(tmp_path / "a.jsonl", STREAM)
        right = write_trace(tmp_path / "b.jsonl", altered)
        diff = diff_traces(left, right)
        assert diff.divergence.index == 1
        assert type(diff.divergence.left).__name__ == "LlcFillEvent"
        assert type(diff.divergence.right).__name__ == "CleanInsertEvent"
        assert diff.deltas()["llc_fill"] == -1
        assert diff.deltas()["clean_insert"] == 1

    def test_length_divergence_when_one_stream_ends(self, tmp_path):
        left = write_trace(tmp_path / "a.jsonl", STREAM)
        right = write_trace(tmp_path / "b.jsonl", STREAM + [("llc_evict", (64,))])
        diff = diff_traces(left, right)
        assert diff.divergence.index == len(STREAM)
        assert diff.divergence.left is None
        assert type(diff.divergence.right).__name__ == "LlcEvictEvent"
        assert "<stream ended>" in diff.divergence.describe()
        assert diff.deltas()["llc_evict"] == 1

    def test_counts_continue_past_divergence(self, tmp_path):
        # Diverge at index 0 but keep counting: deltas describe whole runs.
        left = write_trace(tmp_path / "a.jsonl", [("llc_fill", (64,))] + STREAM)
        right = write_trace(tmp_path / "b.jsonl", STREAM)
        diff = diff_traces(left, right)
        assert diff.divergence.index == 0
        assert diff.counts["access"] == (2, 2)
        assert diff.deltas()["llc_fill"] == -1

    def test_as_dict_serialises_divergence(self, tmp_path):
        altered = list(STREAM)
        altered[0] = ("access", (1, 64, False))
        left = write_trace(tmp_path / "a.jsonl", STREAM)
        right = write_trace(tmp_path / "b.jsonl", altered)
        payload = diff_traces(left, right).as_dict()
        assert payload["identical"] is False
        assert payload["divergence"]["index"] == 0
        assert payload["divergence"]["left"]["type"] == "AccessEvent"
        assert payload["divergence"]["right"]["core"] == 1
        assert json.dumps(payload)  # JSON-safe


class TestPolicyDiff:
    """The acceptance scenario: same (workload, seed), different policies."""

    @pytest.fixture
    def traces(self, tmp_path, small_system):
        paths = {}
        for name, policy in (
            ("noni", "non-inclusive"),
            ("lap", "lap"),
            ("noni2", "non-inclusive"),
        ):
            paths[name] = tmp_path / f"{name}.jsonl.gz"
            record_simulation(
                paths[name], small_system, policy, "mcf",
                refs_per_core=250, seed=5,
            )
        return paths

    def test_same_policy_twice_is_identical(self, traces):
        diff = diff_traces(traces["noni"], traces["noni2"])
        assert diff.identical
        assert all(d == 0 for d in diff.deltas().values())

    def test_different_policies_diverge_with_paper_shaped_deltas(self, traces):
        diff = diff_traces(traces["noni"], traces["lap"])
        assert not diff.identical
        assert diff.divergence.index >= 0
        deltas = diff.deltas()
        # Both policies see the identical reference stream...
        assert deltas["access"] == 0
        # ...but LAP never data-fills the LLC on a miss.
        noni_fills, lap_fills = diff.counts["llc_fill"]
        assert noni_fills > 0 and lap_fills == 0
