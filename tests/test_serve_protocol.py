"""Tests for the serve wire protocol (repro.serve.protocol)."""

import json

import pytest

from repro.errors import ServeError
from repro.exec import JobSpec, WorkloadSpec
from repro.serve import is_job_id, parse_submission, submission_body
from repro.sim import SystemConfig


def spec(seed=0, policy="lap") -> JobSpec:
    return JobSpec(
        system=SystemConfig.scaled(ncores=2, llc_kb=32, l2_kb=4),
        workload=WorkloadSpec.duplicate("mcf", ncores=2, seed=seed),
        policy=policy,
        refs_per_core=400,
    )


def encode(payload) -> bytes:
    return json.dumps(payload).encode("utf-8")


class TestParseSubmission:
    def test_single_job_round_trip(self):
        body = encode(submission_body([spec()], client="alice"))
        client, specs = parse_submission(body)
        assert client == "alice"
        assert specs == [spec()]

    def test_batch_round_trip_preserves_order(self):
        originals = [spec(seed=s) for s in range(3)]
        client, specs = parse_submission(encode(submission_body(originals)))
        assert specs == originals

    def test_submission_key_matches_cache_key(self):
        """The wire round trip must not perturb the content address —
        dedup and cache hits both hang off this identity."""
        original = spec()
        _, [parsed] = parse_submission(encode(submission_body([original])))
        assert parsed.key() == original.key()

    def test_default_client(self):
        _, body = "x", submission_body([spec()])
        del body["client"]
        client, _ = parse_submission(encode(body))
        assert client == "anonymous"

    @pytest.mark.parametrize("body", [
        b"not json",
        b"[1,2,3]",
        b'{"client": "a"}',                      # no job at all
        b'{"client": "", "job": {}}',            # empty client
        b'{"client": "a", "jobs": []}',          # empty batch
        b'{"client": "a", "jobs": [42]}',        # non-object job
        b'{"client": "a", "job": {"policy": "lap"}}',  # malformed spec
    ])
    def test_malformed_submissions_raise(self, body):
        with pytest.raises(ServeError) as err:
            parse_submission(body)
        assert err.value.status == 400

    def test_job_and_jobs_together_rejected(self):
        payload = {"client": "a", "job": spec().to_dict(),
                   "jobs": [spec().to_dict()]}
        with pytest.raises(ServeError, match="pick one"):
            parse_submission(encode(payload))


class TestJobIds:
    def test_real_key_is_a_job_id(self):
        assert is_job_id(spec().key())

    @pytest.mark.parametrize("bad", [
        "", "abc", "x" * 64, spec().key().upper(), spec().key() + "a", None, 42,
    ])
    def test_rejects_malformed_ids(self, bad):
        assert not is_job_id(bad)
