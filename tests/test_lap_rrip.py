"""Tests for LAP over an SRRIP baseline and the LLC touch-policy hook."""

import pytest

from repro.core import LAPPolicy
from repro.errors import ConfigurationError
from tests.conftest import A, B, C, D, E, F, G, H, build_micro, run_refs


def reads(*addrs):
    return [(a, False) for a in addrs]


class TestLapRRIPConstruction:
    def test_registry_name(self):
        from repro.core.policies import make_policy

        assert make_policy("lap-rrip").name == "lap@srrip"

    def test_invalid_baseline_rejected(self):
        with pytest.raises(ConfigurationError):
            LAPPolicy(baseline="fifo")

    def test_baseline_objects(self):
        pol = LAPPolicy(baseline="srrip")
        assert pol._lru.name == "srrip"
        assert "srrip" in pol._loop_aware.name

    def test_lru_default_unchanged(self):
        pol = LAPPolicy()
        assert pol._lru.name == "lru"
        assert pol.name == "lap"


class TestTouchPolicyHook:
    def test_llc_routes_touches_through_policy(self):
        h = build_micro(LAPPolicy(baseline="srrip", replacement_mode="loop"))
        assert h.llc.touch_policy is not None
        # Put A into the LLC, then hit it: SRRIP must promote RRPV to 0.
        run_refs(h, reads(A, B, C, D, E, F, G, H))
        block = h.llc.peek(A)
        block.rrpv = 3
        run_refs(h, reads(A))
        assert h.llc.peek(A).rrpv == 0

    def test_private_caches_keep_default_lru(self):
        h = build_micro("lap-rrip")
        assert h.l1s[0].touch_policy is None
        assert h.l2s[0].touch_policy is None

    def test_data_flow_identical_to_lru_lap(self):
        """The inclusion *data flow* is replacement-agnostic: write
        categories match across baselines on a short trace (where both
        replacement schemes pick the same victims in a half-empty set)."""
        trace = reads(A, B, C, D, E, F, G, H)
        h_lru = build_micro("lap")
        h_rrip = build_micro("lap-rrip")
        run_refs(h_lru, trace)
        run_refs(h_rrip, trace)
        assert h_lru.llc.stats.fill_writes == h_rrip.llc.stats.fill_writes == 0
        assert (
            h_lru.llc.stats.clean_victim_writes
            == h_rrip.llc.stats.clean_victim_writes
        )


class TestLapRRIPEndToEnd:
    def test_saves_energy_like_lru_variant(self, small_system):
        from repro import make_workload, simulate

        res = {}
        for pol in ("non-inclusive", "lap", "lap-rrip"):
            wl = make_workload("omnetpp", small_system)
            res[pol] = simulate(small_system, pol, wl, refs_per_core=6000)
        base = res["non-inclusive"].epi
        assert res["lap-rrip"].epi < base
        # the two baselines should land in the same ballpark
        assert res["lap-rrip"].epi == pytest.approx(res["lap"].epi, rel=0.25)

    def test_no_fills_regardless_of_baseline(self, small_system):
        from repro import make_workload, simulate

        wl = make_workload("mcf", small_system)
        r = simulate(small_system, "lap-rrip", wl, refs_per_core=4000)
        assert r.llc.fill_writes == 0
