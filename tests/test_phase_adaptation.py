"""Phase-change adaptation: dynamic policies must actually switch.

The selling point of FLEXclusion/Dswitch is reacting to program phases;
these tests build two-phase workloads (a loop-block phase followed by a
streaming read-modify-write phase) and verify the dueling controllers
switch modes, and that LAP's replacement dueling reacts too.
"""

import pytest

from repro import SystemConfig, Workload
from repro.inclusion.switching import MODE_EX, MODE_NONI
from repro.sim.simulator import Simulator
from repro.workloads import ConcatTrace, LoopRegion, StreamRegion, SyntheticTrace


def two_phase_generator(ctx, seed, base, phase_len):
    """Loop-heavy phase (favours non-inclusion) then RMW streaming
    (favours exclusion), repeating."""
    loop_phase = SyntheticTrace(
        [(LoopRegion(base, ctx.region_size(3.0), ctx.block_size), 1.0)],
        seed=seed,
        name="loopphase",
    )
    stream_phase = SyntheticTrace(
        [(StreamRegion(base + (1 << 36), ctx.llc_bytes * 16, ctx.block_size,
                       rw_pair=True), 1.0)],
        seed=seed + 1,
        name="streamphase",
    )
    return ConcatTrace([(loop_phase, phase_len), (stream_phase, phase_len)])


def build_two_phase_workload(system, phase_len=6000):
    ctx = system.scale_context()
    gens = [
        two_phase_generator(ctx, seed=10 + c, base=c * ctx.core_span, phase_len=phase_len)
        for c in range(system.hierarchy.ncores)
    ]
    return Workload(
        name="two-phase",
        kind="multiprogrammed",
        generators=gens,
        benchmarks=("two-phase",) * system.hierarchy.ncores,
    )


class TestDswitchPhaseAdaptation:
    def test_switches_in_both_directions(self):
        system = SystemConfig.scaled(duel_interval=768)
        wl = build_two_phase_workload(system)
        sim = Simulator(system, "dswitch", wl)
        sim.run(24_000)
        d = sim.policy.dueling
        assert d.stats.decisions_a > 0, "never chose non-inclusion"
        assert d.stats.decisions_b > 0, "never chose exclusion"

    def test_adapted_policy_beats_worst_static(self):
        system = SystemConfig.scaled(duel_interval=768)
        results = {}
        for policy in ("non-inclusive", "exclusive", "dswitch"):
            wl = build_two_phase_workload(system)
            results[policy] = Simulator(system, policy, wl).run(24_000)
        worst = max(results["non-inclusive"].epi, results["exclusive"].epi)
        assert results["dswitch"].epi < worst

    def test_mode_for_reflects_winner(self):
        system = SystemConfig.scaled(duel_interval=768)
        wl = build_two_phase_workload(system)
        sim = Simulator(system, "dswitch", wl)
        sim.run(3_000)
        pol = sim.policy
        follower_set_addr = 3 * 64  # set 3 is a follower under period 64
        assert pol.mode_for(follower_set_addr) == pol.dueling.winner


class TestLAPPhaseAdaptation:
    def test_lap_replacement_duel_takes_decisions(self):
        system = SystemConfig.scaled(duel_interval=768)
        wl = build_two_phase_workload(system)
        sim = Simulator(system, "lap", wl)
        r = sim.run(18_000)
        assert r.extra["duel_decisions_a"] + r.extra["duel_decisions_b"] >= 5

    def test_lap_still_beats_static_policies_across_phases(self):
        system = SystemConfig.scaled(duel_interval=768)
        results = {}
        for policy in ("non-inclusive", "exclusive", "lap"):
            wl = build_two_phase_workload(system)
            results[policy] = Simulator(system, policy, wl).run(18_000)
        assert results["lap"].epi < results["non-inclusive"].epi
        assert results["lap"].epi < results["exclusive"].epi
