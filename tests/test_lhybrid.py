"""Tests for Lhybrid: hybrid placement stages (Fig. 11) and ablations."""

import pytest

from repro.core import LhybridPolicy
from repro.errors import ConfigurationError
from tests.conftest import A, B, C, D, E, F, G, H, build_micro, run_refs


def reads(*addrs):
    return [(a, False) for a in addrs]


def writes(*addrs):
    return [(a, True) for a in addrs]


def build_hybrid(policy="lhybrid", **kw):
    kw.setdefault("llc_bytes", 1024)
    kw.setdefault("llc_assoc", 16)
    kw.setdefault("sram_ways", 4)
    return build_micro(policy, **kw)


class TestConstruction:
    def test_requires_hybrid_llc(self):
        with pytest.raises(ConfigurationError):
            build_micro("lhybrid")  # homogeneous LLC

    def test_stage_names(self):
        assert LhybridPolicy().name == "lhybrid"
        assert LhybridPolicy(winv=True, loop_stt=False, nloop_sram=False).name == "lap+winv"
        assert LhybridPolicy(winv=False, loop_stt=True, nloop_sram=False).name == "lap+loopstt"
        assert (
            LhybridPolicy(winv=False, loop_stt=False, nloop_sram=True).name
            == "lap+nloopsram"
        )
        assert LhybridPolicy(False, False, False).name == "lap(hybrid)"


class TestPlacement:
    def test_insertions_prefer_sram(self):
        h = build_hybrid()
        run_refs(h, reads(A, B, C, D, E, F, G, H))  # A..D victims into LLC
        placed = [h.llc.peek(x) for x in (A, B, C, D)]
        assert all(b is not None and b.tech == "sram" for b in placed)

    def test_sram_overflow_evicts_lru_when_no_loop_blocks(self):
        h = build_hybrid()
        # 5 clean non-loop victims into a 4-way SRAM region: LRU evicted,
        # nothing migrates to STT (no loop-blocks anywhere).
        addrs = [i * 64 for i in range(9)]
        run_refs(h, reads(*addrs))
        stt_blocks = [b for b in h.llc.sets[0].blocks if b.tech == "stt" and b.valid]
        assert not stt_blocks
        assert h.llc.stats.migrations == 0

    def test_incoming_loop_block_goes_straight_to_stt(self):
        """An incoming loop-block is its own MRU-loop-block: Fig. 11b's
        migration degenerates to a direct STT-RAM insertion."""
        h = build_hybrid()
        h.policy._place_and_insert(0, A, dirty=False, loop_bit=True, category="clean_victim")
        a_block = h.llc.peek(A)
        assert a_block is not None and a_block.tech == "stt" and a_block.loop_bit
        assert h.llc.stats.migrations == 0

    def test_loop_block_migrates_to_stt_under_pressure(self):
        """Fig. 11b: a full SRAM region makes room by migrating its MRU
        loop-block into STT-RAM."""
        h = build_hybrid()
        pol = h.policy
        # A enters SRAM as a non-loop block and is later confirmed to be
        # a loop-block via a clean trip (Fig. 10b tag update).
        pol._place_and_insert(0, A, dirty=False, loop_bit=False, category="clean_victim")
        assert h.llc.peek(A).tech == "sram"
        h.llc.peek(A).loop_bit = True
        for addr in (B, C, D, E):  # fill the remaining 3 SRAM ways + 1
            pol._place_and_insert(0, addr, dirty=True, loop_bit=False, category="dirty_victim")
        a_block = h.llc.peek(A)
        assert a_block is not None and a_block.tech == "stt" and a_block.loop_bit
        assert h.llc.stats.migrations == 1
        # the non-loop blocks all stayed in SRAM
        assert all(h.llc.peek(x).tech == "sram" for x in (B, C, D, E))

    def test_winv_redirects_dirty_hit_to_sram(self):
        h = build_hybrid()
        extras = [(i + 8) * 64 for i in range(8)]
        # Put A in STT as a loop-block (reuse migration scenario).
        run_refs(h, reads(A, B, C, D))
        run_refs(h, writes(E, F, G, H))
        run_refs(h, reads(A))
        run_refs(h, writes(*extras[:4]))
        run_refs(h, writes(*extras[4:]))
        assert h.llc.peek(A).tech == "stt"
        # Now dirty A and evict it: the STT copy must be invalidated and
        # the dirty data written to SRAM (Fig. 11a).
        run_refs(h, writes(A))
        run_refs(h, reads(*[(i + 20) * 64 for i in range(4)]))
        a_block = h.llc.peek(A)
        assert a_block is not None and a_block.tech == "sram" and a_block.dirty
        assert h.policy.winv_redirects >= 1

    def test_loopstt_routes_loop_insertions_to_stt(self):
        h = build_hybrid("lap+loopstt")
        h.policy._place_and_insert(0, A, dirty=False, loop_bit=True, category="clean_victim")
        assert h.llc.peek(A).tech == "stt"

    def test_without_winv_dirty_hit_updates_stt_in_place(self):
        h = build_hybrid("lap+loopstt")
        # Plant A in STT (a loop-block insertion), then dirty it in L2
        # and evict it: without Winv the STT copy is updated in place.
        h.policy._place_and_insert(0, A, dirty=False, loop_bit=True, category="clean_victim")
        assert h.llc.peek(A).tech == "stt"
        stt_writes_before = h.llc.stats.data_writes_stt
        run_refs(h, writes(A))  # LLC hit (kept), dirtied in L2
        run_refs(h, reads(E, F, G, H))  # evict dirty A
        a_block = h.llc.peek(A)
        assert a_block is not None and a_block.tech == "stt" and a_block.dirty
        assert h.llc.stats.data_writes_stt > stt_writes_before

    def test_nloopsram_stage_places_non_loop_in_sram(self):
        h = build_hybrid("lap+nloopsram")
        run_refs(h, reads(A, B, C, D, E, F, G, H))
        placed = [h.llc.peek(x) for x in (A, B, C, D)]
        assert all(b is not None and b.tech == "sram" for b in placed)

    def test_plain_lap_on_hybrid_is_tech_agnostic(self):
        h = build_hybrid("lap")
        addrs = [i * 64 for i in range(12)]
        run_refs(h, reads(*addrs))
        techs = {b.tech for b in h.llc.sets[0].blocks if b.valid}
        assert techs == {"sram", "stt"}


class TestLhybridEndToEnd:
    def test_lhybrid_shifts_writes_to_sram(self, small_hybrid_system):
        from repro import make_workload, simulate

        res = {}
        for pol in ("lap", "lhybrid"):
            wl = make_workload("GemsFDTD", small_hybrid_system)
            res[pol] = simulate(small_hybrid_system, pol, wl, refs_per_core=8000)
        lap_stt_share = res["lap"].llc.data_writes_stt / max(1, res["lap"].llc.data_writes)
        lh_stt_share = res["lhybrid"].llc.data_writes_stt / max(
            1, res["lhybrid"].llc.data_writes
        )
        assert lh_stt_share < lap_stt_share

    def test_lhybrid_saves_energy_on_write_heavy_mix(self, small_hybrid_system):
        from repro import make_workload, simulate

        res = {}
        for pol in ("non-inclusive", "lhybrid"):
            wl = make_workload("GemsFDTD", small_hybrid_system)
            res[pol] = simulate(small_hybrid_system, pol, wl, refs_per_core=8000)
        assert res["lhybrid"].epi < res["non-inclusive"].epi
