"""Tests of the LAP policy: the Fig. 8 data flow, Fig. 10 loop-bit
lifecycle, and the selective clean-writeback that defines the paper's
contribution."""

import pytest

from repro.core import LAPPolicy
from repro.errors import ConfigurationError
from tests.conftest import A, B, C, D, E, F, G, H, build_micro, run_refs


def reads(*addrs):
    return [(a, False) for a in addrs]


def writes(*addrs):
    return [(a, True) for a in addrs]


class TestLAPDataFlow:
    def test_no_fill_on_llc_miss(self):
        h = build_micro("lap")
        run_refs(h, reads(A))
        assert h.llc.peek(A) is None
        assert h.llc.stats.fill_writes == 0

    def test_no_invalidation_on_llc_hit(self):
        h = build_micro("lap")
        run_refs(h, reads(A, B, C, D, E, F, G, H))  # A..D inserted as victims
        assert h.llc.peek(A) is not None
        run_refs(h, reads(A))
        assert h.llc.peek(A) is not None, "LAP must keep the copy on hits"
        assert h.llc.stats.hit_invalidations == 0

    def test_clean_victim_without_duplicate_is_inserted(self):
        h = build_micro("lap")
        run_refs(h, reads(A, B, C, D, E, F, G, H))
        assert h.llc.stats.clean_victim_writes == 4  # A..D

    def test_clean_victim_with_duplicate_writes_nothing(self):
        h = build_micro("lap")
        run_refs(h, reads(A, B, C, D, E, F, G, H))  # A..D in LLC
        writes_before = h.llc.stats.llc_writes
        data_writes_before = h.llc.stats.data_writes
        # Travel A..D up (LLC hits) and evict them clean again.
        run_refs(h, reads(A, B, C, D, E, F, G, H))
        # E..H were dropped clean with no duplicate -> inserted; A..D had
        # duplicates -> zero data writes for them.
        assert h.llc.stats.llc_writes - writes_before == 4  # only E..H
        assert h.llc.stats.data_writes - data_writes_before == 4

    def test_dirty_victim_updates_duplicate(self):
        h = build_micro("lap")
        run_refs(h, reads(A, B, C, D, E, F, G, H))  # A in LLC
        run_refs(h, writes(A))  # bring up and dirty it
        run_refs(h, reads(E, F, G, H))  # evict dirty A
        assert h.llc.stats.update_writes == 1
        assert h.llc.peek(A).dirty

    def test_dirty_victim_without_duplicate_inserted(self):
        h = build_micro("lap")
        run_refs(h, writes(A) + reads(B, C, D, E, F, G, H))
        assert h.llc.stats.dirty_victim_writes == 1

    def test_llc_writes_reduce_to_exclusive_cleans_plus_dirty(self):
        """Section III-A: LAP writes = non-duplicate clean victims +
        dirty victims; never any data fill."""
        h = build_micro("lap")
        import itertools

        pattern = list(itertools.islice(itertools.cycle([A, B, C, D, E, F, G, H]), 96))
        run_refs(h, [(a, i % 5 == 0) for i, a in enumerate(pattern)])
        s = h.llc.stats
        assert s.fill_writes == 0
        assert s.llc_writes == (
            s.clean_victim_writes + s.dirty_victim_writes + s.update_writes
        )


class TestLoopBitLifecycle:
    def test_fill_from_memory_clears_loop_bit(self):
        h = build_micro("lap")
        run_refs(h, reads(A))
        assert h.l2s[0].peek(A).loop_bit is False

    def test_llc_hit_sets_loop_bit_on_l2_copy(self):
        h = build_micro("lap")
        run_refs(h, reads(A, B, C, D, E, F, G, H))  # A makes it to the LLC
        run_refs(h, reads(A))  # LLC hit
        assert h.l2s[0].peek(A).loop_bit is True

    def test_store_clears_loop_bit(self):
        h = build_micro("lap")
        run_refs(h, reads(A, B, C, D, E, F, G, H))
        run_refs(h, reads(A))  # loop-bit set
        run_refs(h, writes(A))
        assert h.l2s[0].peek(A).loop_bit is False

    def test_clean_trip_updates_llc_loop_bit(self):
        """Fig. 10b: a clean victim with a duplicate refreshes the
        loop-bit stored in the LLC tag array."""
        h = build_micro("lap")
        run_refs(h, reads(A, B, C, D, E, F, G, H))
        assert h.llc.peek(A).loop_bit is False  # first insertion: untested block
        run_refs(h, reads(A))  # hit: L2 copy predicted loop
        run_refs(h, reads(E, F, G, H))  # clean eviction completes the trip
        assert h.llc.peek(A).loop_bit is True

    def test_dirty_trip_clears_llc_loop_bit(self):
        h = build_micro("lap")
        run_refs(h, reads(A, B, C, D, E, F, G, H))
        run_refs(h, reads(A))
        run_refs(h, writes(A))
        run_refs(h, reads(E, F, G, H))
        assert h.llc.peek(A).loop_bit is False


class TestLAPReplacementVariants:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            LAPPolicy(replacement_mode="rrip")

    def test_variant_names(self):
        assert LAPPolicy().name == "lap"
        assert LAPPolicy(replacement_mode="lru").name == "lap-lru"
        assert LAPPolicy(replacement_mode="loop").name == "lap-loop"

    @staticmethod
    def _loop_block_scenario(policy_name):
        """Make A the only loop-block in a 4-way LLC set, then pressure
        the set with six dirty (non-loop) victims."""
        h = build_micro(policy_name, llc_bytes=256, llc_assoc=4)
        extras = [(i + 8) * 64 for i in range(10)]
        run_refs(h, reads(A, B, C, D))
        run_refs(h, writes(E, F, G, H))  # evict A..D clean into the LLC
        run_refs(h, reads(A))  # LLC hit: A's L2 copy predicted loop
        run_refs(h, writes(*extras[:4]))  # A travels back clean: loop-bit 1
        assert h.llc.peek(A) is not None and h.llc.peek(A).loop_bit
        run_refs(h, writes(*extras[4:]))  # 6 more dirty non-loop victims
        return h

    def test_lap_loop_protects_loop_blocks(self):
        h = self._loop_block_scenario("lap-loop")
        assert h.llc.peek(A) is not None, "loop-block should be protected"

    def test_lap_lru_evicts_by_recency_only(self):
        h = self._loop_block_scenario("lap-lru")
        # under plain LRU the old loop-block A is displaced by pressure
        assert h.llc.peek(A) is None

    def test_duel_mode_builds_controller(self):
        h = build_micro("lap")
        assert h.policy.dueling is not None

    def test_forced_modes_have_no_controller(self):
        h = build_micro("lap-lru")
        assert h.policy.dueling is None


class TestLAPOnSmallSystem:
    def test_writes_never_exceed_noni_or_ex(self, small_system):
        """LAP's write traffic must undercut both baselines (Fig. 15)."""
        from repro import make_workload, simulate

        results = {}
        for pol in ("non-inclusive", "exclusive", "lap"):
            wl = make_workload("omnetpp", small_system)
            results[pol] = simulate(small_system, pol, wl, refs_per_core=6000)
        assert results["lap"].llc_writes < results["non-inclusive"].llc_writes
        assert results["lap"].llc_writes < results["exclusive"].llc_writes

    def test_mpki_close_to_exclusive(self, small_system):
        from repro import make_workload, simulate

        results = {}
        for pol in ("non-inclusive", "exclusive", "lap"):
            wl = make_workload("omnetpp", small_system)
            results[pol] = simulate(small_system, pol, wl, refs_per_core=6000)
        assert results["lap"].mpki < results["non-inclusive"].mpki
        assert results["lap"].mpki < results["exclusive"].mpki * 1.25
