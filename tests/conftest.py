"""Shared fixtures: tiny deterministic systems for fast tests.

The micro-hierarchy helpers live in :mod:`repro.testing` (they are part
of the public API, reused by the benchmark harness); this conftest
re-exports them so test modules can import everything from one place.
"""

from __future__ import annotations

import pytest

from repro.cache import Cache, LRUPolicy
from repro.sim import SystemConfig
from repro.testing import (  # noqa: F401  (re-exported for test modules)
    A,
    B,
    BLOCK,
    C,
    D,
    E,
    F,
    G,
    H,
    build_micro,
    micro_hierarchy_config,
    run_refs,
)


@pytest.fixture
def micro_config():
    return micro_hierarchy_config()


@pytest.fixture
def small_system() -> SystemConfig:
    """A very small but complete system for integration tests."""
    return SystemConfig.scaled(ncores=2, llc_kb=32, l2_kb=4, duel_interval=512)


@pytest.fixture
def small_hybrid_system() -> SystemConfig:
    return SystemConfig.scaled(ncores=2, llc_kb=32, l2_kb=4, hybrid=True, duel_interval=512)


@pytest.fixture
def tiny_cache() -> Cache:
    """64-block, 4-way cache with LRU for substrate tests."""
    return Cache("tiny", 4096, 4, BLOCK, replacement=LRUPolicy(), tech="sram")


def addr_of(cache: Cache, set_index: int, tag: int) -> int:
    """Address that maps to (set_index, tag) in ``cache``."""
    return cache.addr_of(set_index, tag)
