"""Tests for the parallel execution engine (repro.exec.pool)."""

import pytest

from repro.errors import AnalysisError, ExecutionError, SimulationError
from repro.exec import JobSpec, WorkloadSpec, execute_jobs
from repro.sim import SystemConfig
from repro.sim.runner import duplicate_builder, mix_builder
from repro.sim.sweeps import Sweep


def small_system(**kwargs) -> SystemConfig:
    return SystemConfig.scaled(**{"ncores": 2, "llc_kb": 32, "l2_kb": 4, **kwargs})


def small_grid(refs=600) -> Sweep:
    """The satellite's 2-system x 2-workload x 2-policy determinism grid."""
    return Sweep(
        systems={
            "base": small_system(),
            "big": small_system(llc_kb=64, label="big"),
        },
        workloads={
            "mcf": duplicate_builder("mcf", ncores=2),
            "lbm": duplicate_builder("lbm", ncores=2, seed=3),
        },
        policies=("non-inclusive", "lap"),
        refs_per_core=refs,
    )


class TestDeterminism:
    def test_parallel_records_equal_serial(self):
        sweep = small_grid()
        serial = sweep.run()
        parallel = sweep.run(max_workers=4)
        assert len(serial) == sweep.size() == 8
        # same order, same labels, bit-identical metric values
        assert parallel == serial

    def test_progress_fires_in_serial_order(self):
        sweep = small_grid(refs=400)
        expected = sweep.run()
        seen = []
        sweep.run(progress=seen.append, max_workers=4)
        assert seen == expected


class TestExecuteJobs:
    def jobs(self, n=3):
        return [
            JobSpec(
                system=small_system(),
                workload=WorkloadSpec.duplicate("mcf", ncores=2, seed=seed),
                policy="lap",
                refs_per_core=400,
            )
            for seed in range(n)
        ]

    def test_results_in_input_order(self):
        jobs = self.jobs()
        serial = execute_jobs(jobs, max_workers=1)
        parallel = execute_jobs(jobs, max_workers=3)
        assert [r.to_dict() for r in serial] == [r.to_dict() for r in parallel]
        assert [r.workload for r in serial] == [j.workload.label for j in jobs]

    def test_rejects_non_jobs(self):
        with pytest.raises(ExecutionError):
            execute_jobs(["not a job"])
        with pytest.raises(ExecutionError):
            execute_jobs(self.jobs(1), retries=-1)

    def test_transient_failure_retried_once(self, monkeypatch):
        calls = {"n": 0}
        real_run = JobSpec.run

        def flaky_run(self):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("simulated transient worker failure")
            return real_run(self)

        monkeypatch.setattr(JobSpec, "run", flaky_run)
        [result] = execute_jobs(self.jobs(1))
        assert calls["n"] == 2
        assert result.epi > 0

    def test_persistent_failure_raises_execution_error(self, monkeypatch):
        def broken_run(self):
            raise RuntimeError("always broken")

        monkeypatch.setattr(JobSpec, "run", broken_run)
        with pytest.raises(ExecutionError, match="after 2 attempts"):
            execute_jobs(self.jobs(1))

    def test_library_errors_propagate_without_retry(self, monkeypatch):
        calls = {"n": 0}

        def doomed_run(self):
            calls["n"] += 1
            raise SimulationError("deterministic failure")

        monkeypatch.setattr(JobSpec, "run", doomed_run)
        with pytest.raises(SimulationError):
            execute_jobs(self.jobs(1))
        assert calls["n"] == 1, "ReproErrors are permanent: no retry"


class TestSweepSpecRequirement:
    def test_closure_builders_rejected_in_parallel_mode(self):
        closure = lambda ctx: duplicate_builder("mcf", ncores=2).build(ctx)  # noqa: E731
        sweep = Sweep(
            systems={"base": small_system()},
            workloads={"mcf": closure},
            policies=("lap",),
            refs_per_core=400,
        )
        with pytest.raises(ExecutionError, match="WorkloadSpec"):
            sweep.run(max_workers=2)
        # ... but the serial path still accepts arbitrary callables
        assert len(sweep.run()) == 1


class TestBuilderSpecs:
    def test_builders_are_picklable_specs(self):
        import pickle

        for spec in (
            duplicate_builder("mcf", ncores=2),
            mix_builder("WH1", seed=2),
        ):
            assert isinstance(spec, WorkloadSpec)
            assert pickle.loads(pickle.dumps(spec)) == spec

    def test_spec_is_a_workload_builder(self):
        system = small_system()
        wl = duplicate_builder("mcf", ncores=2)(system.scale_context())
        assert wl.ncores == 2
        assert wl.name == "mcfx2"

    def test_normalized_raises_analysis_error(self):
        from repro.sim.runner import normalized, run_policies

        results = run_policies(
            small_system(), ("non-inclusive", "lap"), duplicate_builder("mcf", ncores=2), 400
        )
        norm = normalized(results, "llc_writes")
        assert norm["non-inclusive"] == 1.0
        with pytest.raises(AnalysisError, match="missing"):
            normalized(results, "epi", baseline="nonexistent")
        with pytest.raises(AnalysisError, match="zero"):
            normalized(results, "snoop_traffic")  # zero for multiprogrammed
