"""Tests for the MOESI snooping coherence layer (Fig. 20 substrate)."""

import pytest

from repro.cache.block import (
    STATE_EXCLUSIVE,
    STATE_MODIFIED,
    STATE_OWNED,
    STATE_SHARED,
)
from tests.conftest import A, B, C, D, E, F, G, H, build_micro


def build_mp(policy="non-inclusive", ncores=2, **kw):
    kw.setdefault("llc_bytes", 1024)
    return build_micro(policy, ncores=ncores, enable_coherence=True, **kw)


class TestStates:
    def test_first_reader_gets_exclusive(self):
        h = build_mp()
        h.access(0, A, False)
        assert h.l2s[0].peek(A).state == STATE_EXCLUSIVE

    def test_second_reader_gets_shared_and_downgrades(self):
        h = build_mp()
        h.access(0, A, False)
        h.access(1, A, False)
        assert h.l2s[1].peek(A).state == STATE_SHARED
        assert h.l2s[0].peek(A).state == STATE_SHARED

    def test_writer_gets_modified(self):
        h = build_mp()
        h.access(0, A, True)
        assert h.l2s[0].peek(A).state == STATE_MODIFIED

    def test_write_invalidates_peers(self):
        h = build_mp()
        h.access(0, A, False)
        h.access(1, A, False)
        h.access(0, A, True)
        assert h.l2s[1].peek(A) is None
        assert h.l2s[0].peek(A).state == STATE_MODIFIED
        assert h.coherence.stats.invalidation_messages >= 1

    def test_reader_downgrades_modified_owner_to_owned(self):
        h = build_mp("exclusive")  # LLC miss path exercises snooping
        h.access(0, A, True)  # core 0 has M
        h.access(1, A, False)  # core 1 reads: c2c supply
        assert h.l2s[0].peek(A).state == STATE_OWNED
        assert h.l2s[1].peek(A).state == STATE_SHARED
        assert h.coherence.stats.cache_to_cache == 1

    def test_upgrade_counts(self):
        h = build_mp()
        h.access(0, A, False)
        h.access(1, A, False)
        before = h.coherence.stats.upgrades
        h.access(0, A, True)  # S -> M upgrade
        assert h.coherence.stats.upgrades == before + 1


class TestNoStaleLLCInvariant:
    def test_store_invalidates_llc_duplicate(self):
        h = build_mp("non-inclusive")
        h.access(0, A, False)  # miss fills the LLC
        assert h.llc.peek(A) is not None
        h.access(0, A, True)  # store: the LLC copy is now stale
        assert h.llc.peek(A) is None

    def test_invariant_holds_under_random_traffic(self):
        import random

        rng = random.Random(42)
        h = build_mp("non-inclusive", ncores=2)
        addrs = [i * 64 for i in range(12)]
        for _ in range(400):
            h.access(rng.randrange(2), rng.choice(addrs), rng.random() < 0.3)
        for core in range(2):
            for addr in addrs:
                block = h.l2s[core].peek(addr)
                if block is not None and block.dirty:
                    assert h.llc.peek(addr) is None, (
                        f"LLC holds a stale copy of {addr:#x} while core "
                        f"{core} has it dirty"
                    )


class TestSnoopAccounting:
    def test_llc_hit_read_needs_no_broadcast(self):
        h = build_mp("non-inclusive")
        h.access(0, A, False)  # miss: one broadcast
        before = h.coherence.stats.snoop_broadcasts
        h.access(0, E, False)
        h.access(0, F, False)
        h.access(0, G, False)
        h.access(0, H, False)  # evict A from L2
        broadcasts_evictions = h.coherence.stats.snoop_broadcasts - before
        before = h.coherence.stats.snoop_broadcasts
        h.access(0, A, False)  # LLC hit: no snoop needed
        assert h.coherence.stats.snoop_broadcasts == before

    def test_llc_miss_broadcasts(self):
        h = build_mp("exclusive")
        before = h.coherence.stats.snoop_broadcasts
        h.access(0, A, False)  # exclusive LLC: miss -> snoop
        assert h.coherence.stats.snoop_broadcasts == before + 1

    def test_c2c_supply_avoids_memory(self):
        h = build_mp("exclusive")
        h.access(0, A, False)
        mem_before = h.stats.mem_reads
        h.access(1, A, False)  # supplied by core 0's L2
        assert h.stats.mem_reads == mem_before

    def test_peer_invalidation_back_invalidates_l1(self):
        h = build_mp()
        h.access(0, A, False)
        assert h.l1s[0].peek(A) is not None
        h.access(1, A, True)
        assert h.l1s[0].peek(A) is None
        assert h.l2s[0].peek(A) is None


class TestSharedExclusiveRelaxation:
    def test_exclusive_keeps_shared_lines_on_hit(self):
        h = build_mp("exclusive")
        # Core 1 reads A and keeps it; core 0 evicts its copy into LLC.
        h.access(0, A, False)
        h.access(1, A, False)
        for x in (E, F, G, H):
            h.access(0, x, False)  # core 0 evicts A (clean) -> into LLC
        assert h.llc.peek(A) is not None
        h.access(0, A, False)  # LLC hit while core 1 still holds A
        assert h.llc.peek(A) is not None, "shared line must stay resident"

    def test_exclusive_invalidates_unshared_lines_on_hit(self):
        h = build_mp("exclusive", ncores=2)
        h.access(0, A, False)
        for x in (E, F, G, H):
            h.access(0, x, False)
        assert h.llc.peek(A) is not None
        h.access(0, A, False)  # nobody else holds A
        assert h.llc.peek(A) is None


class TestMultithreadedIntegration:
    def test_simulator_enables_coherence_for_threads(self, small_system):
        from repro import make_workload
        from repro.sim.simulator import Simulator

        wl = make_workload("streamcluster", small_system)
        sim = Simulator(small_system, "lap", wl)
        assert sim.hierarchy.coherence is not None
        result = sim.run(1500)
        assert result.snoop_traffic > 0

    def test_simulator_skips_coherence_for_multiprogrammed(self, small_system):
        from repro import make_workload
        from repro.sim.simulator import Simulator

        wl = make_workload("mcf", small_system)
        sim = Simulator(small_system, "lap", wl)
        assert sim.hierarchy.coherence is None
