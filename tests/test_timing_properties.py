"""Property-based tests for the timing and energy models."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.cache.stats import CacheStats
from repro.energy import MB, STT_RAM, LLCEnergyModel
from repro.hierarchy import TimingModel, scaled_config


def make_timing():
    return TimingModel(scaled_config())


event_strategy = st.lists(
    st.tuples(
        st.sampled_from(["instr", "l2", "llc_r", "llc_w", "mem"]),
        st.integers(0, 3),  # core
        st.integers(0, 3),  # bank
    ),
    max_size=200,
)


class TestTimingProperties:
    @given(events=event_strategy)
    @settings(max_examples=60, deadline=None)
    def test_clocks_monotone_and_nonnegative(self, events):
        t = make_timing()
        previous = list(t.core_cycles)
        for kind, core, bank in events:
            if kind == "instr":
                t.advance_instructions(core, 5)
            elif kind == "l2":
                t.l2_hit(core)
            elif kind == "llc_r":
                t.llc_read(core, bank)
            elif kind == "llc_w":
                t.llc_write(core, bank)
            else:
                t.memory_access(core)
            for c in range(4):
                assert t.core_cycles[c] >= previous[c] >= 0
            previous = list(t.core_cycles)

    @given(events=event_strategy)
    @settings(max_examples=40, deadline=None)
    def test_bank_horizons_never_regress(self, events):
        t = make_timing()
        prev = list(t.banks.busy_until)
        for kind, core, bank in events:
            if kind == "llc_r":
                t.llc_read(core, bank)
            elif kind == "llc_w":
                t.llc_write(core, bank)
            else:
                t.advance_instructions(core, 1)
            for b in range(len(prev)):
                assert t.banks.busy_until[b] >= prev[b]
            prev = list(t.banks.busy_until)

    @given(reads=st.integers(0, 50), core=st.integers(0, 3))
    @settings(max_examples=30, deadline=None)
    def test_reads_accumulate_latency_linearly_without_contention(self, reads, core):
        t = make_timing()
        for i in range(reads):
            t.advance_instructions(core, 1000)  # let banks drain
            t.llc_read(core, bank=i % 4)
        expected_min = reads * (t.l2_latency + t.llc_read_latency)
        stall_total = t.core_cycles[core] - (1000 * reads)
        assert stall_total >= expected_min - 1e-9


class TestEnergyProperties:
    @given(
        reads=st.integers(0, 10_000),
        writes=st.integers(0, 10_000),
        cycles=st.integers(0, 10_000_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_energy_nonnegative_and_additive(self, reads, writes, cycles):
        model = LLCEnergyModel(0, MB, leakage_compensation=1.0)
        s = CacheStats()
        s.data_reads_stt = reads
        s.data_writes_stt = writes
        r = model.compute(s, cycles=cycles, instructions=max(1, reads + writes))
        assert r.total_j >= 0
        assert r.total_j == pytest.approx(
            r.static_j + r.dynamic_read_j + r.dynamic_write_j + r.tag_dynamic_j
        )

    @given(writes=st.integers(1, 10_000), factor=st.integers(2, 8))
    @settings(max_examples=40, deadline=None)
    def test_dynamic_energy_linear_in_writes(self, writes, factor):
        model = LLCEnergyModel(0, MB, leakage_compensation=1.0)

        def energy(n):
            s = CacheStats()
            s.data_writes_stt = n
            return model.compute(s, cycles=0, instructions=1).dynamic_write_j

        assert energy(writes * factor) == pytest.approx(energy(writes) * factor)

    @given(ratio=st.floats(0.5, 40, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_ratio_scaling_exact(self, ratio):
        scaled = STT_RAM.with_write_read_ratio(ratio)
        assert scaled.write_energy_nj == pytest.approx(
            STT_RAM.read_energy_nj * ratio
        )
