"""Tests for the analysis layer: metrics, tables, figure assembly."""

import pytest

from repro import SystemConfig, make_workload, simulate
from repro.analysis import (
    average_over,
    borderline_slope,
    classify_wl_wh,
    epi_saving,
    favors_exclusion,
    relative,
    render_mapping_table,
    render_table,
    summarize_columns,
)
from repro.errors import AnalysisError


class TestTables:
    def test_render_table_basic(self):
        out = render_table("T", ["a", "b"], [[1, 2.5], ["x", 0.001]])
        assert "T" in out and "a" in out and "2.500" in out

    def test_render_table_row_mismatch(self):
        with pytest.raises(AnalysisError):
            render_table("T", ["a"], [[1, 2]])

    def test_render_mapping_table(self):
        out = render_mapping_table("M", {"w1": {"x": 1.0}, "w2": {"x": 2.0}})
        assert "w1" in out and "w2" in out and "x" in out

    def test_render_mapping_empty_raises(self):
        with pytest.raises(AnalysisError):
            render_mapping_table("M", {})

    def test_summarize_columns_average(self):
        avg = summarize_columns({"a": {"x": 1.0, "y": 4.0}, "b": {"x": 3.0}})
        assert avg["x"] == 2.0 and avg["y"] == 4.0

    def test_scientific_formatting(self):
        out = render_table("T", ["v"], [[1.2e-10]])
        assert "e-10" in out


class TestMetricHelpers:
    @pytest.fixture(scope="class")
    def runs(self):
        system = SystemConfig.scaled(ncores=2, llc_kb=32, l2_kb=4)
        out = {}
        for pol in ("non-inclusive", "exclusive"):
            wl = make_workload("omnetpp", system)
            out[pol] = simulate(system, pol, wl, refs_per_core=4000)
        return out

    def test_epi_saving_sign(self, runs):
        saving = epi_saving(runs["exclusive"], runs["non-inclusive"])
        assert saving < 0  # omnetpp: exclusion is worse

    def test_relative_ratio(self, runs):
        wrel = relative(runs["exclusive"], runs["non-inclusive"], "llc_writes")
        assert wrel > 1.0

    def test_classify_wh(self, runs):
        assert classify_wl_wh(runs["non-inclusive"], runs["exclusive"]) == "WH"

    def test_favors_exclusion_false_for_loops(self, runs):
        assert not favors_exclusion(runs["non-inclusive"], runs["exclusive"])

    def test_borderline_slope_negative(self):
        # Synthetic Fig. 13 cloud: high Wrel disfavours exclusion.
        points = [
            (0.4, 1.5, True),
            (0.7, 1.1, True),
            (0.95, 0.85, True),
            (0.5, 2.4, False),
            (0.75, 2.0, False),
            (1.0, 1.6, False),
        ]
        slope = borderline_slope(points)
        assert slope < 0

    def test_borderline_needs_both_classes(self):
        with pytest.raises(AnalysisError):
            borderline_slope([(1.0, 1.0, True)])

    def test_average_over_subset(self):
        rows = {"WL1": {"x": 1.0}, "WL2": {"x": 3.0}, "WH1": {"x": 9.0}}
        assert average_over(rows, ["WL1", "WL2"])["x"] == 2.0

    def test_average_over_missing_raises(self):
        with pytest.raises(AnalysisError):
            average_over({"a": {"x": 1}}, ["zzz"])


class TestFigureAssembly:
    """Smoke tests of the per-figure functions on tiny runs."""

    def test_fig4_structure(self):
        from repro.analysis.figures import fig4_loop_blocks

        rows = fig4_loop_blocks(refs=2500, benchmarks=("omnetpp", "lbm"))
        assert set(rows) == {"omnetpp", "lbm"}
        for cols in rows.values():
            assert 0 <= cols["loop_fraction"] <= 1

    def test_fig13_structure(self):
        from repro.analysis.figures import fig13_scatter

        rows = fig13_scatter(refs=2500, mixes=("WL2", "WH1"))
        for cols in rows.values():
            assert cols["Mrel"] > 0 and cols["Wrel"] > 0
            assert cols["favors_exclusion"] in (0.0, 1.0)

    def test_fig15_rows_contain_classes(self):
        from repro.analysis.figures import fig15_write_breakdown

        rows = fig15_write_breakdown(refs=2500, mixes=("WH1",))
        assert "WH1/lap" in rows
        lap = rows["WH1/lap"]
        assert lap["fill"] == 0.0  # LAP never fills
        assert lap["total"] == pytest.approx(
            lap["fill"] + lap["l2_dirty"] + lap["l2_clean"]
        )

    def test_table_rows_static(self):
        from repro.analysis.figures import (
            table1_rows,
            table2_rows,
            table3_rows,
            table4_rows,
        )

        assert len(table1_rows()) == 6
        assert len(table3_rows()) == 10
        assert any("lap" == r[0] for r in table4_rows())
        rows = table2_rows(SystemConfig.scaled())
        assert any("cores" in str(r[0]) for r in rows)

    def test_fig23_curve_monotone_shape(self):
        from repro.analysis.figures import fig23_energy_ratio

        curve, published = fig23_energy_ratio(
            refs=2500, ratios=(2, 10), mixes=("WH1",), include_published=False
        )
        assert len(curve) == 2 and not published
        low = curve["ratio=2"]["epi_saving"]
        high = curve["ratio=10"]["epi_saving"]
        assert high > low
