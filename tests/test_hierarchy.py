"""Tests for hierarchy mechanics: configs, L1⊆L2, store propagation,
timing, and instrumentation plumbing."""

import pytest

from repro.energy import SRAM, STT_RAM
from repro.errors import ConfigurationError, SimulationError
from repro.hierarchy import (
    HierarchyConfig,
    LevelConfig,
    LLCLevelConfig,
    TimingModel,
    scaled_config,
    table2_config,
)
from repro.hierarchy.timing import BankModel
from tests.conftest import A, B, C, D, E, F, G, H, build_micro, run_refs


def reads(*addrs):
    return [(a, False) for a in addrs]


def writes(*addrs):
    return [(a, True) for a in addrs]


class TestConfigs:
    def test_table2_matches_paper(self):
        cfg = table2_config()
        assert cfg.ncores == 4
        assert cfg.l1.size_bytes == 32 * 1024
        assert cfg.l2.size_bytes == 512 * 1024
        assert cfg.llc.size_bytes == 8 * 1024 * 1024
        assert cfg.llc.assoc == 16 and cfg.llc.banks == 4

    def test_table2_hybrid_partition(self):
        cfg = table2_config(hybrid=True)
        assert cfg.llc.sram_ways == 4
        assert cfg.llc.sram_bytes == 2 * 1024 * 1024
        assert cfg.llc.stt_bytes == 6 * 1024 * 1024

    def test_scaled_preserves_l2_l3_ratio(self):
        cfg = scaled_config()
        assert cfg.ncores * cfg.l2.size_bytes * 4 == cfg.llc.size_bytes

    def test_scaled_capacity_knobs(self):
        cfg = scaled_config(l2_kb=16, llc_kb=256)
        assert cfg.l2.size_bytes == 16 * 1024
        assert cfg.llc.size_bytes == 256 * 1024

    def test_with_llc_replaces_fields(self):
        cfg = scaled_config()
        scaled = cfg.with_llc(tech=SRAM)
        assert scaled.llc.tech is SRAM
        assert cfg.llc.tech is STT_RAM

    def test_invalid_ncores_rejected(self):
        with pytest.raises(ConfigurationError):
            HierarchyConfig(
                ncores=0,
                block_size=64,
                l1=LevelConfig(1024, 4, 1),
                l2=LevelConfig(4096, 8, 2),
                llc=LLCLevelConfig(65536, 16, 4, STT_RAM),
            )

    def test_homogeneous_sram_llc_bytes(self):
        cfg = scaled_config(tech=SRAM)
        assert cfg.llc.sram_bytes == cfg.llc.size_bytes
        assert cfg.llc.stt_bytes == 0


class TestL1L2Mechanics:
    def test_l1_inclusion_within_core(self):
        h = build_micro("non-inclusive")
        import itertools

        pattern = list(itertools.islice(itertools.cycle([A, B, C, D, E, F]), 60))
        run_refs(h, [(a, i % 4 == 0) for i, a in enumerate(pattern)])
        l1 = set(h.l1s[0].resident_addrs())
        l2 = set(h.l2s[0].resident_addrs())
        assert l1 <= l2, "L1 must stay a subset of its L2"

    def test_store_propagates_dirty_to_l2(self):
        h = build_micro("non-inclusive")
        run_refs(h, writes(A))
        assert h.l2s[0].peek(A).dirty

    def test_store_to_l1_hit_also_dirties_l2(self):
        h = build_micro("non-inclusive")
        run_refs(h, reads(A))  # A in L1 and L2, clean
        assert not h.l2s[0].peek(A).dirty
        run_refs(h, writes(A))  # L1 hit
        assert h.l2s[0].peek(A).dirty

    def test_l1_hit_counts(self):
        h = build_micro("non-inclusive")
        run_refs(h, reads(A, A, A))
        assert h.stats.l1_hits == 2

    def test_l2_hit_counts(self):
        h = build_micro("non-inclusive", l1_bytes=64)
        run_refs(h, reads(A, B))  # B evicts A from the 1-block L1
        run_refs(h, reads(A))  # L1 miss, L2 hit
        assert h.stats.l2_hits == 1

    def test_accesses_and_stores_counted(self):
        h = build_micro("non-inclusive")
        run_refs(h, reads(A, B) + writes(C))
        assert h.stats.accesses == 3
        assert h.stats.stores == 1


class TestBankModel:
    def test_no_stall_when_free(self):
        b = BankModel(2)
        assert b.access(0, now=10.0, service=5.0, is_write=False) == 0.0
        assert b.busy_until[0] == 15.0

    def test_stall_when_busy(self):
        b = BankModel(1)
        b.access(0, now=0.0, service=10.0, is_write=True)
        stall = b.access(0, now=4.0, service=2.0, is_write=False)
        assert stall == 6.0
        assert b.read_stall_cycles == 6.0

    def test_banks_independent(self):
        b = BankModel(2)
        b.access(0, now=0.0, service=100.0, is_write=True)
        assert b.access(1, now=0.0, service=5.0, is_write=False) == 0.0


class TestTimingModel:
    def _model(self):
        return TimingModel(scaled_config())

    def test_l2_hit_advances_clock(self):
        t = self._model()
        t.l2_hit(0)
        assert t.core_cycles[0] == t.l2_latency

    def test_memory_access_derated_by_mlp(self):
        t = self._model()
        stall = t.memory_access(0)
        full = t.l2_latency + t.llc_read_latency + t.mem_latency
        assert stall == pytest.approx(full * t.mlp_exposure)

    def test_stt_write_occupies_bank_longer_than_sram(self):
        t = self._model()
        t.llc_write(0, bank=0, tech="stt")
        stt_busy = t.banks.busy_until[0]
        t2 = self._model()
        t2.llc_write(0, bank=0, tech="sram")
        assert stt_busy > t2.banks.busy_until[0]

    def test_write_backpressure_stalls_reads(self):
        t = self._model()
        t.llc_write(0, bank=0, tech="stt")
        stall = t.llc_read(0, bank=0, tech="stt")
        assert stall > t.l2_latency + t.llc_read_latency

    def test_max_cycles_is_slowest_core(self):
        t = self._model()
        t.advance_instructions(0, 100)
        t.advance_instructions(1, 250)
        assert t.max_cycles == 250

    def test_reset_clears_state(self):
        t = self._model()
        t.advance_instructions(0, 10)
        t.llc_write(0, 0, "stt")
        t.reset()
        assert t.max_cycles == 0
        assert all(b == 0 for b in t.banks.busy_until)


class TestInstrumentationPlumbing:
    def test_occupancy_sampling_interval(self):
        from repro.hierarchy import CacheHierarchy
        from repro.core.policies import make_policy
        from tests.conftest import micro_hierarchy_config

        h = CacheHierarchy(
            micro_hierarchy_config(),
            make_policy("non-inclusive"),
            occupancy_sample_interval=4,
        )
        run_refs(h, reads(A, B, C, D, E, F, G, H))
        assert h.loop_tracker.stats.llc_loop_samples > 0

    def test_finish_flushes_tracker(self):
        h = build_micro("lap")
        run_refs(h, reads(A, B, C, D, E, F, G, H))
        run_refs(h, reads(A, B, C, D))
        run_refs(h, reads(E, F, G, H))
        h.finish()
        assert sum(h.loop_tracker.stats.ctc_histogram.values()) > 0

    def test_finish_is_idempotent(self):
        """Regression: a second finish() (tests, belt-and-braces callers
        like record_simulation) used to re-report the run's totals into
        the metrics registry, double-counting every hierarchy.* metric."""
        from repro.telemetry.metrics import get_registry

        h = build_micro("non-inclusive")
        run_refs(h, reads(A, B, C))
        registry = get_registry()
        h.finish()
        runs = registry.counter("hierarchy.runs").value
        accesses = registry.counter("hierarchy.accesses").value
        h.finish()
        assert registry.counter("hierarchy.runs").value == runs
        assert registry.counter("hierarchy.accesses").value == accesses

    def test_store_without_l2_copy_is_an_error(self):
        h = build_micro("non-inclusive")
        run_refs(h, reads(A))
        h.l2s[0].invalidate(A)  # break the invariant deliberately
        h.l1s[0].peek(A).dirty = False  # keep L1 copy clean
        with pytest.raises(SimulationError):
            h.access(0, A, True)
