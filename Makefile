# Developer conveniences. Everything also works as plain commands —
# the targets only pin flags and paths.

PYTHON ?= python
PYTHONPATH := src

.PHONY: test check bench bench-figures lint trace-demo serve-demo arena-demo suite-demo report

test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

# Invariant checks over every policy (DESIGN.md §11) plus 200 rounds of
# seeded trace fuzzing — deterministic, ~3s.
check:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro check --fuzz 200

# Hot-path throughput per tag-store backend; appends one timestamped
# entry to BENCH_hotpath.json (DESIGN.md §13).
bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro bench

# The HTML fleet dashboard (DESIGN.md §14) over a result-cache dir:
# runs a tiny traced sweep into CACHE_DIR when it is empty, then
# renders policy grids, span hot spots, provenance, and the bench
# trend into report.html. Override CACHE_DIR/REPORT to point elsewhere.
CACHE_DIR ?= .repro-cache
REPORT ?= report.html
report:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro --cache-dir $(CACHE_DIR) \
		--spans $(CACHE_DIR)/spans.jsonl sweep \
		--workloads WL1,WH1 --policies non-inclusive,lap --refs 2000
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro report \
		--cache-dir $(CACHE_DIR) --out $(REPORT) --check-refs 500
	@echo "dashboard: $(REPORT)"

# Regenerate every table & figure artefact via the pytest benchmarks.
bench-figures:
	cd benchmarks && PYTHONPATH=../$(PYTHONPATH) $(PYTHON) -m pytest -q --benchmark-only

# Record + diff a tiny LAP-vs-non-inclusive pair with the flight
# recorder (writes the trace_demo experiment artefact).
trace-demo:
	cd benchmarks && PYTHONPATH=../$(PYTHONPATH) $(PYTHON) -m pytest -q --benchmark-only test_trace_demo.py
	@cat benchmarks/results/trace_demo.txt

# Fuzz the cross-paper rivals through the invariant suite, then run
# the arena-grid walkthrough (DESIGN.md §15).
arena-demo:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro check --fuzz 50 \
		--policy reuse-detector --policy rd-copyback --policy ways-off
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) examples/arena_demo.py WL2 4000

# Benchmark suites + trace corpus walkthrough (DESIGN.md §16): run a
# named set cold then cache-warm (asserting the rerun simulates
# nothing), capture traces into a content-addressed corpus, verify it,
# and replay it as a suite. Also verifies the committed fixture corpus.
suite-demo:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) examples/suite_demo.py loop 3000
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro corpus verify --dir tests/data/corpus

# Boot the simulation service, submit one Fig. 14 cell twice (same
# server, then a restarted server on the shared cache dir) and assert
# the second and third submissions never simulate (DESIGN.md §12).
serve-demo:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) examples/serve_demo.py

# `ruff` is an optional dependency (`pip install -e '.[lint]'`); the
# target degrades to a notice where it is unavailable so `make lint`
# is safe in minimal containers.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	elif $(PYTHON) -c "import ruff" >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; skipping (pip install -e '.[lint]' to enable)"; \
	fi
