"""Instrumentation probes: pluggable observers of hierarchy mechanics.

The hierarchy engine dispatches a fixed vocabulary of events (see
:data:`~repro.instr.probe.PROBE_EVENTS`) to a precompiled list of
enabled probes; an empty probe list means the hot path pays only a
truthiness check per event site. The paper's always-on instrumentation
(loop tracking, redundant-fill detection, occupancy sampling) ships as
the ``"default"`` probe set, and new instrumentation plugs in without
touching the access path.
"""

from .probe import PROBE_EVENTS, Probe, ProbeBus
from .probes import (
    PROBE_FACTORIES,
    LoopProbe,
    OccupancySampler,
    RedundantFillProbe,
    make_probes,
    probe_names,
)

__all__ = [
    "PROBE_EVENTS",
    "Probe",
    "ProbeBus",
    "LoopProbe",
    "RedundantFillProbe",
    "OccupancySampler",
    "PROBE_FACTORIES",
    "make_probes",
    "probe_names",
]
