"""The probe observer protocol and its compiled dispatch bus.

The hierarchy engine (:mod:`repro.hierarchy.hierarchy`) models cache
*mechanics*: inclusion dispatch, L1⊆L2 maintenance, writebacks and
timing. Everything the paper's figures *measure on the side* — the
loop-block tracker (Fig. 4), redundant-fill detection (Figs. 5/6/17),
LLC occupancy sampling (Fig. 16) — is an *observer* of that mechanics
stream, and lives here as a :class:`Probe`.

A probe subscribes to events by overriding the matching ``on_*`` method;
:class:`ProbeBus` compiles, per event, the tuple of bound handlers of
probes that actually override it. The hierarchy caches those tuples and
guards every dispatch with a truthiness check, so a run with no probes
(or no subscriber for an event) pays a single attribute load and branch
per event site — no calls, no allocation.

Event vocabulary (one dispatch site each in the hierarchy):

========================  ====================================================
``access``                one memory reference retired (any level)
``l2_fill``               a line was filled into an L2 (``from_llc``: LLC hit)
``l2_victim``             a line left an L2 (eviction, back- or peer-invalidation)
``llc_fill``              an LLC data-fill from memory (non-inclusive flows)
``llc_evict``             a line left the LLC (eviction or invalidation)
``demand_hit``            an LLC demand lookup hit
``dirtied``               an L2-resident block went clean→dirty (first store)
``clean_insert``          a clean L2 victim's data was written into the LLC
``dirty_victim``          a dirty L2 victim's data reached the LLC copy
``mem_writeback``         dirty data for an address reached main memory
``occupancy_sample``      a periodic (valid, loop) LLC occupancy sample
========================  ====================================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hierarchy.hierarchy import CacheHierarchy

#: Every event the bus can dispatch, in documentation order. The bus
#: derives handler names mechanically (``on_<event>``).
PROBE_EVENTS: Tuple[str, ...] = (
    "access",
    "l2_fill",
    "l2_victim",
    "llc_fill",
    "llc_evict",
    "demand_hit",
    "dirtied",
    "clean_insert",
    "dirty_victim",
    "mem_writeback",
    "occupancy_sample",
)


class Probe:
    """Base observer: every handler is a no-op.

    Subclasses override only the events they need; the bus detects
    overrides by comparing against these base methods, so an inherited
    no-op costs nothing at runtime.
    """

    #: registry name (used by :func:`repro.instr.probes.make_probes`)
    name = "probe"

    def bind(self, hierarchy: "CacheHierarchy") -> None:
        """Attach to a hierarchy before the run starts (optional)."""

    # ---- event handlers (signatures are the dispatch contract) -------
    def on_access(self, core: int, addr: int, is_write: bool) -> None:
        """One memory reference finished processing."""

    def on_l2_fill(self, addr: int, from_llc: bool) -> None:
        """A line was installed into an L2."""

    def on_l2_victim(self, addr: int, dirty: bool) -> None:
        """A line left an L2 (eviction or invalidation)."""

    def on_llc_fill(self, addr: int) -> None:
        """An LLC data-fill from memory happened."""

    def on_llc_evict(self, addr: int) -> None:
        """A line left the LLC."""

    def on_demand_hit(self, addr: int) -> None:
        """An LLC demand access hit."""

    def on_dirtied(self, addr: int) -> None:
        """An L2 block transitioned clean→dirty."""

    def on_clean_insert(self, addr: int) -> None:
        """A clean victim's data was written into the LLC."""

    def on_dirty_victim(self, addr: int) -> None:
        """A dirty victim's data reached the LLC copy."""

    def on_mem_writeback(self, addr: int) -> None:
        """Dirty data for ``addr`` was written back to main memory
        (an LLC dirty eviction, or a back-invalidated dirty L2 drop)."""

    def on_occupancy_sample(self, valid: int, loops: int) -> None:
        """A periodic LLC occupancy sample was taken."""

    def finish(self) -> None:
        """End-of-run flush (histograms, open streaks)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


Handler = Callable[..., None]


class ProbeBus:
    """Compiled dispatch over an ordered probe list.

    Dispatch order within one event follows the probe list order, which
    is how cross-probe protocols (the occupancy sampler feeding the
    loop tracker) stay deterministic.
    """

    def __init__(self, probes: Sequence[Probe] = ()) -> None:
        self.probes: Tuple[Probe, ...] = tuple(probes)
        self._compiled: dict[str, Tuple[Handler, ...]] = {}
        self.recompile()

    def recompile(self) -> None:
        """Rebuild the per-event handler tuples (after probe changes).

        A probe that overrides no ``on_*`` method would silently
        subscribe to nothing — almost always a typo'd handler name
        (``on_llc_evicted`` instead of ``on_llc_evict``) — so it is
        rejected with a :class:`ValueError` naming the class instead of
        being dropped on the floor.
        """
        for probe in self.probes:
            if not any(
                getattr(type(probe), f"on_{event}") is not getattr(Probe, f"on_{event}")
                for event in PROBE_EVENTS
            ):
                raise ValueError(
                    f"{type(probe).__name__} overrides no on_* handler, so it "
                    f"would observe nothing; override at least one of "
                    f"{', '.join('on_' + e for e in PROBE_EVENTS)} "
                    f"(check for misspelled handler names)"
                )
        self._compiled = {
            event: tuple(
                getattr(probe, f"on_{event}")
                for probe in self.probes
                if getattr(type(probe), f"on_{event}") is not getattr(Probe, f"on_{event}")
            )
            for event in PROBE_EVENTS
        }

    def bind(self, hierarchy: "CacheHierarchy") -> None:
        """Bind every probe to the hierarchy."""
        for probe in self.probes:
            probe.bind(hierarchy)

    def handlers(self, event: str) -> Tuple[Handler, ...]:
        """The compiled handler tuple for ``event`` (possibly empty)."""
        if event not in self._compiled:  # pragma: no cover - programming error
            raise KeyError(f"unknown probe event {event!r}; known: {PROBE_EVENTS}")
        return self._compiled[event]

    def find(self, probe_type: type) -> Probe | None:
        """First probe that is an instance of ``probe_type``, or None."""
        for probe in self.probes:
            if isinstance(probe, probe_type):
                return probe
        return None

    def finish(self) -> None:
        """Run every probe's end-of-run hook, in order."""
        for probe in self.probes:
            probe.finish()

    def __len__(self) -> int:
        return len(self.probes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProbeBus({', '.join(p.name for p in self.probes) or 'empty'})"
