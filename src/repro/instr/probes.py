"""Standard probes: the paper's always-on instrumentation, as plug-ins.

These reimplement — bit-for-bit — the three instrumentation mechanisms
that used to be hard-wired into the hierarchy engine:

- :class:`LoopProbe` owns the :class:`~repro.core.loop_bits.
  LoopBlockTracker` (Fig. 4 loop-block fractions, CTC histogram,
  Fig. 16 re-insertions and occupancy shares);
- :class:`RedundantFillProbe` owns the fresh-fill set behind the
  redundant-LLC-fill counters (Figs. 5/6/17);
- :class:`OccupancySampler` takes the periodic (valid, loop) LLC
  occupancy sample and re-emits it as the ``occupancy_sample`` event so
  any probe (the loop tracker, by default) can accumulate it.

``make_probes`` turns a :class:`~repro.sim.system.SystemConfig`-level
instrumentation spec — ``"default"``, ``"none"``, or a comma-separated
list of registry names — into a concrete probe list.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Set

from ..core.loop_bits import LoopBlockTracker
from ..errors import ConfigurationError
from .probe import Probe

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hierarchy.hierarchy import CacheHierarchy


class LoopProbe(Probe):
    """Loop-block instrumentation (Figs. 4 and 16) as a probe.

    Wraps a :class:`LoopBlockTracker` so its measurement semantics (and
    every existing consumer of ``tracker.stats``) stay unchanged.
    """

    name = "loop"

    def __init__(self, tracker: LoopBlockTracker | None = None) -> None:
        self.tracker = tracker if tracker is not None else LoopBlockTracker()

    def on_l2_fill(self, addr: int, from_llc: bool) -> None:
        self.tracker.on_l2_fill(addr, from_llc)

    def on_l2_victim(self, addr: int, dirty: bool) -> None:
        self.tracker.on_l2_evict(addr, dirty)

    def on_dirtied(self, addr: int) -> None:
        self.tracker.on_dirtied(addr)

    def on_clean_insert(self, addr: int) -> None:
        self.tracker.on_clean_insert(addr)

    def on_occupancy_sample(self, valid: int, loops: int) -> None:
        self.tracker.sample_llc_occupancy(valid, loops)

    def finish(self) -> None:
        self.tracker.finalize()


class RedundantFillProbe(Probe):
    """Fresh-fill bookkeeping behind ``redundant_fills`` (Fig. 5).

    An LLC data-fill is *fresh* until a demand hit consumes it; a dirty
    victim overwriting a still-fresh fill proves the fill redundant and
    bumps the LLC's ``redundant_fills`` counter.
    """

    name = "redundant-fill"

    def __init__(self) -> None:
        self._fresh: Set[int] = set()
        self._llc_stats = None

    def bind(self, hierarchy: "CacheHierarchy") -> None:
        self._llc_stats = hierarchy.llc.stats

    def on_llc_fill(self, addr: int) -> None:
        self._fresh.add(addr)

    def on_demand_hit(self, addr: int) -> None:
        self._fresh.discard(addr)

    def on_dirty_victim(self, addr: int) -> None:
        fresh = self._fresh
        if addr in fresh:
            self._llc_stats.redundant_fills += 1
            fresh.discard(addr)

    def on_llc_evict(self, addr: int) -> None:
        self._fresh.discard(addr)


class OccupancySampler(Probe):
    """Periodic LLC occupancy sampling (Fig. 16's x-axis).

    Every ``interval`` accesses, reads the LLC's incrementally
    maintained (valid, loop) occupancy counters and re-emits them as an
    ``occupancy_sample`` event via the hierarchy, so downstream probes
    (the loop tracker) accumulate the shares.
    """

    name = "occupancy"

    def __init__(self, interval: int) -> None:
        if interval <= 0:
            raise ConfigurationError(
                f"OccupancySampler interval must be positive, got {interval}"
            )
        self.interval = interval
        self._since = 0
        self._h: "CacheHierarchy" | None = None

    def bind(self, hierarchy: "CacheHierarchy") -> None:
        self._h = hierarchy

    def on_access(self, core: int, addr: int, is_write: bool) -> None:
        self._since += 1
        if self._since >= self.interval:
            self._since = 0
            h = self._h
            valid, loops = h.llc.loop_block_occupancy()
            h.emit_occupancy_sample(valid, loops)


# ----------------------------------------------------------------------
# registry / spec parsing
# ----------------------------------------------------------------------
#: Probe factories by registry name. Factories receive the occupancy
#: sampling interval (most ignore it).
PROBE_FACTORIES: Dict[str, Callable[[int], Probe]] = {
    "loop": lambda interval: LoopProbe(),
    "redundant-fill": lambda interval: RedundantFillProbe(),
    "occupancy": lambda interval: OccupancySampler(interval),
}

#: Spec aliases meaning "no instrumentation at all".
_NONE_SPECS = frozenset({"none", "off", ""})


def probe_names() -> List[str]:
    """Registered probe names (stable order)."""
    return sorted(PROBE_FACTORIES)


def make_probes(spec: str, *, occupancy_interval: int = 0) -> List[Probe]:
    """Build a probe list from an instrumentation spec string.

    ``"default"`` (the legacy-equivalent set) yields the loop tracker,
    the redundant-fill detector, and — when ``occupancy_interval`` is
    positive — the occupancy sampler, reproducing exactly the
    instrumentation that used to be hard-wired into the hierarchy.
    ``"none"``/``"off"``/``""`` yields the empty list (zero per-access
    instrumentation overhead). Anything else is a comma-separated list
    of registry names, applied in the given order.
    """
    spec = spec.strip().lower()
    if spec == "default":
        probes: List[Probe] = [LoopProbe(), RedundantFillProbe()]
        if occupancy_interval > 0:
            probes.append(OccupancySampler(occupancy_interval))
        return probes
    if spec in _NONE_SPECS:
        return []
    probes = []
    for raw in spec.split(","):
        name = raw.strip()
        if not name:
            continue
        factory = PROBE_FACTORIES.get(name)
        if factory is None:
            raise ConfigurationError(
                f"unknown probe {name!r}; known: {probe_names()} "
                f"(or 'default' / 'none')"
            )
        if name == "occupancy" and occupancy_interval <= 0:
            raise ConfigurationError(
                "the 'occupancy' probe needs a positive occupancy_sample_interval"
            )
        probes.append(factory(occupancy_interval))
    return probes
