"""Small shared helpers: power-of-two math, validation, formatting.

These utilities are deliberately dependency-free so every subpackage can
import them without cycles.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .errors import ConfigurationError


def is_pow2(value: int) -> bool:
    """Return True if ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def ilog2(value: int) -> int:
    """Integer log2 of a power of two.

    Raises :class:`ConfigurationError` when ``value`` is not a positive
    power of two, because every caller uses this for address-bit
    slicing where a non-power-of-two geometry is a configuration bug.
    """
    if not is_pow2(value):
        raise ConfigurationError(f"expected a positive power of two, got {value!r}")
    return value.bit_length() - 1


def require_pow2(value: int, name: str) -> int:
    """Validate that a named configuration field is a power of two."""
    if not is_pow2(value):
        raise ConfigurationError(f"{name} must be a positive power of two, got {value!r}")
    return value


def require_positive(value: float, name: str) -> float:
    """Validate that a named configuration field is strictly positive."""
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value!r}")
    return value


def require_nonnegative(value: float, name: str) -> float:
    """Validate that a named configuration field is >= 0."""
    if value < 0:
        raise ConfigurationError(f"{name} must be non-negative, got {value!r}")
    return value


def align_down(addr: int, granularity: int) -> int:
    """Align ``addr`` down to a power-of-two ``granularity``."""
    return addr & ~(granularity - 1)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (used for normalised metrics)."""
    if not values:
        raise ValueError("geometric_mean of an empty sequence")
    product_log = 0.0
    import math

    for v in values:
        if v <= 0:
            raise ValueError(f"geometric_mean requires positive values, got {v!r}")
        product_log += math.log(v)
    return math.exp(product_log / len(values))


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input instead of returning NaN."""
    if not values:
        raise ValueError("mean of an empty sequence")
    return sum(values) / len(values)


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into [low, high]."""
    return max(low, min(high, value))


def chunked(seq: Sequence, size: int) -> Iterable[Sequence]:
    """Yield successive ``size``-length chunks of ``seq``."""
    if size <= 0:
        raise ValueError(f"chunk size must be positive, got {size!r}")
    for start in range(0, len(seq), size):
        yield seq[start : start + size]


def fmt_bytes(num_bytes: int) -> str:
    """Human-readable byte count (binary units), e.g. ``8.0MB``."""
    value = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB"):
        if value < 1024 or unit == "GB":
            if unit == "B":
                return f"{int(value)}{unit}"
            return f"{value:.1f}{unit}".replace(".0", "")
        value /= 1024
    raise AssertionError("unreachable")
