"""Set-dueling controller (Qureshi et al., ISCA 2007).

Used twice in the reproduction, exactly as in the paper:

- LAP duels its loop-block-aware replacement policy against plain LRU
  (Section III-B: 1/64 of sets lead each policy, miss counters compared
  periodically, followers adopt the winner);
- the dynamic inclusion switchers (FLEXclusion, Dswitch) duel the
  non-inclusive mode against the exclusive mode, with policy-specific
  decision functions.

The controller is policy-agnostic: it assigns leader roles by set
index, accumulates per-leader miss/write counters, and applies an
injected comparison when the decision interval elapses.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..cache.stats import DuelingStats
from ..errors import ConfigurationError

ROLE_LEADER_A = 0
ROLE_LEADER_B = 1
ROLE_FOLLOWER = None

# winner_fn(miss_a, write_a, miss_b, write_b) -> 0 or 1
WinnerFn = Callable[[int, int, int, int], int]


def fewer_misses_wins(miss_a: int, write_a: int, miss_b: int, write_b: int) -> int:
    """The paper's LAP decision: the leader with fewer misses wins."""
    return ROLE_LEADER_A if miss_a <= miss_b else ROLE_LEADER_B


class SetDueling:
    """Leader-set sampling with periodic winner selection.

    Parameters
    ----------
    num_sets:
        Sets in the cache being sampled.
    period:
        One leader of each kind per ``period`` sets (paper: 64, i.e.
        1/64 of sets lead policy A and another 1/64 lead policy B).
    interval:
        Decision cadence in sampled-cache accesses — the scaled stand-in
        for the paper's "every 10M cycles".
    initial_winner:
        Which leader the followers start from.
    """

    def __init__(
        self,
        num_sets: int,
        period: int = 64,
        interval: int = 4096,
        winner_fn: WinnerFn = fewer_misses_wins,
        initial_winner: int = ROLE_LEADER_A,
    ) -> None:
        if num_sets < 1:
            raise ConfigurationError(f"set dueling needs >= 1 set, got {num_sets}")
        if interval <= 0:
            raise ConfigurationError(f"decision interval must be positive, got {interval}")
        # Shrink the period when the cache has too few sets for the
        # requested sampling density, keeping at least one leader each.
        # A single-set cache cannot duel at all: it degenerates to the
        # initial winner with every set a follower.
        self.period = min(period, num_sets)
        self.degenerate = self.period < 2
        self.num_sets = num_sets
        self.interval = interval
        self.winner_fn = winner_fn
        self.winner = initial_winner
        self.stats = DuelingStats()
        self._accesses = 0
        self._write_a = 0
        self._write_b = 0
        self._offset_b = self.period // 2

    def role(self, set_index: int) -> Optional[int]:
        """Leader role of a set (A, B, or follower)."""
        if self.degenerate:
            return ROLE_FOLLOWER
        mod = set_index % self.period
        if mod == 0:
            return ROLE_LEADER_A
        if mod == self._offset_b:
            return ROLE_LEADER_B
        return ROLE_FOLLOWER

    def policy_for(self, set_index: int) -> int:
        """Which policy (A=0 / B=1) governs this set right now."""
        role = self.role(set_index)
        return self.winner if role is ROLE_FOLLOWER else role

    def record_miss(self, set_index: int) -> None:
        """Account a miss in a leader set (followers are ignored)."""
        role = self.role(set_index)
        if role is ROLE_LEADER_A:
            self.stats.leader_a_misses += 1
        elif role is ROLE_LEADER_B:
            self.stats.leader_b_misses += 1

    def record_write(self, set_index: int) -> None:
        """Account an LLC write in a leader set (Dswitch input)."""
        role = self.role(set_index)
        if role is ROLE_LEADER_A:
            self._write_a += 1
        elif role is ROLE_LEADER_B:
            self._write_b += 1

    def tick(self) -> bool:
        """Advance the access counter; decide when the interval elapses.

        Returns True when a decision was (re)taken this tick.
        """
        if self.degenerate:
            return False
        self._accesses += 1
        if self._accesses < self.interval:
            return False
        self._accesses = 0
        self.winner = self.winner_fn(
            self.stats.leader_a_misses,
            self._write_a,
            self.stats.leader_b_misses,
            self._write_b,
        )
        if self.winner == ROLE_LEADER_A:
            self.stats.decisions_a += 1
        else:
            self.stats.decisions_b += 1
        self.stats.intervals += 1
        # Decay counters by half instead of resetting them: leader sets
        # are a 1/64 sample, so a scaled simulation sees only a handful
        # of leader events per interval and a hard reset makes decisions
        # noise-driven. The exponential moving sum keeps the decision
        # responsive to phase changes while averaging out sampling noise.
        self.stats.leader_a_misses //= 2
        self.stats.leader_b_misses //= 2
        self._write_a //= 2
        self._write_b //= 2
        return True
