"""Dynamic inclusion-switching baselines: FLEXclusion and Dswitch.

Both policies dynamically select between the non-inclusive and the
exclusive data flow using set-dueling (leader sets permanently run one
mode each; follower sets adopt the current winner). They differ only in
the decision function:

- **FLEXclusion** (Sim et al., ISCA 2012) is performance/bandwidth
  oriented: it picks exclusion when the sampled capacity benefit is
  real (exclusive leaders miss measurably less), and otherwise falls
  back to non-inclusion to save on-chip bandwidth. It is deliberately
  blind to write energy — the paper's point is that this SRAM-era
  objective misfires on asymmetric LLCs.
- **Dswitch** (Cheng et al., PSU CSE16-004) additionally weighs the
  write traffic each mode generates, approximating the energy cost of
  a mode as ``writes + miss_weight * misses`` and picking the cheaper
  mode.
"""

from __future__ import annotations

from ..cache import EvictedLine
from .base import InclusionPolicy, LLCAccess
from .dueling import ROLE_LEADER_A, ROLE_LEADER_B, SetDueling

MODE_NONI = ROLE_LEADER_A  # leader-A sets run the non-inclusive flow
MODE_EX = ROLE_LEADER_B  # leader-B sets run the exclusive flow


class SwitchingPolicy(InclusionPolicy):
    """Shared machinery for noni↔ex set-dueling switchers."""

    name = "switching"

    def __init__(self, duel_period: int = 64, duel_interval: int = 4096) -> None:
        super().__init__()
        self._duel_period = duel_period
        self._duel_interval = duel_interval
        self.dueling: SetDueling | None = None

    def bind(self, hierarchy) -> None:
        super().bind(hierarchy)
        self.dueling = SetDueling(
            num_sets=self.llc.num_sets,
            period=self._duel_period,
            interval=self._duel_interval,
            winner_fn=self._decide,
            initial_winner=MODE_NONI,
        )

    # decision function: overridden per policy -------------------------
    def _decide(self, miss_noni: int, write_noni: int, miss_ex: int, write_ex: int) -> int:
        raise NotImplementedError

    def mode_for(self, addr: int) -> int:
        """The inclusion mode governing the set that ``addr`` maps to."""
        return self.dueling.policy_for(self.llc.set_index(addr))

    @property
    def current_mode(self) -> int:
        """The follower sets' current mode (for tests/introspection)."""
        return self.dueling.winner

    def _record_duel_miss(self, addr: int) -> None:
        self.dueling.record_miss(self.llc.set_index(addr))

    def _record_duel_write(self, addr: int) -> None:
        self.dueling.record_write(self.llc.set_index(addr))

    # the switched data flow -------------------------------------------
    def llc_access(self, core: int, addr: int, is_write: bool) -> LLCAccess:
        self.dueling.tick()
        mode = self.mode_for(addr)
        block = self._llc_lookup(core, addr)
        if block is not None:
            tech = block.tech
            dirty = False
            if mode == MODE_EX and not self.h.shared_by_peers(core, addr):
                # As in the exclusive policy: a discarded dirty copy's
                # writeback obligation moves up into the L2 fill.
                dirty = block.dirty
                self.llc.discard(addr)
                self.llc.stats.hit_invalidations += 1
                self.h.note_llc_evict(addr)
            return LLCAccess(hit=True, tech=tech, dirty=dirty)
        if mode == MODE_NONI:
            self.insert_or_update(core, addr, dirty=False, category="fill")
        return LLCAccess(hit=False, tech=self.llc.tech)

    def l2_victim(self, core: int, line: EvictedLine) -> None:
        mode = self.mode_for(line.addr)
        if line.dirty:
            self.insert_or_update(core, line.addr, dirty=True, category="dirty_victim")
        elif mode == MODE_EX:
            self.insert_or_update(
                core, line.addr, dirty=False, loop_bit=line.loop_bit, category="clean_victim"
            )
        # clean victim in noni mode: silently dropped


class FLEXclusionPolicy(SwitchingPolicy):
    """Capacity/bandwidth-driven switching (write-energy blind)."""

    name = "flexclusion"

    def __init__(
        self,
        duel_period: int = 64,
        duel_interval: int = 4096,
        capacity_tolerance: float = 0.98,
    ) -> None:
        super().__init__(duel_period, duel_interval)
        self.capacity_tolerance = capacity_tolerance

    def _decide(self, miss_noni: int, write_noni: int, miss_ex: int, write_ex: int) -> int:
        # Exclusion wins only when its sampled miss count is genuinely
        # lower (capacity demand); ties favour non-inclusion, which
        # consumes less on-chip bandwidth (no clean-victim traffic).
        if miss_ex < miss_noni * self.capacity_tolerance:
            return MODE_EX
        return MODE_NONI


class DswitchPolicy(SwitchingPolicy):
    """Write-aware switching: picks the mode with the lower estimated
    energy ``writes + miss_weight * misses`` (misses proxy both the
    data-fill energy a miss triggers elsewhere and the leakage cost of
    running longer)."""

    name = "dswitch"

    def __init__(
        self,
        duel_period: int = 64,
        duel_interval: int = 4096,
        miss_weight: float = 0.6,
    ) -> None:
        super().__init__(duel_period, duel_interval)
        self.miss_weight = miss_weight

    def _decide(self, miss_noni: int, write_noni: int, miss_ex: int, write_ex: int) -> int:
        score_noni = write_noni + self.miss_weight * miss_noni
        score_ex = write_ex + self.miss_weight * miss_ex
        return MODE_NONI if score_noni <= score_ex else MODE_EX
