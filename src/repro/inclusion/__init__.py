"""Inclusion-property framework and traditional/dynamic baselines."""

from .base import InclusionPolicy, LLCAccess
from .dueling import ROLE_FOLLOWER, ROLE_LEADER_A, ROLE_LEADER_B, SetDueling, fewer_misses_wins
from .switching import MODE_EX, MODE_NONI, DswitchPolicy, FLEXclusionPolicy, SwitchingPolicy
from .traditional import ExclusivePolicy, InclusivePolicy, NonInclusivePolicy

__all__ = [
    "InclusionPolicy",
    "LLCAccess",
    "NonInclusivePolicy",
    "ExclusivePolicy",
    "InclusivePolicy",
    "SwitchingPolicy",
    "FLEXclusionPolicy",
    "DswitchPolicy",
    "MODE_NONI",
    "MODE_EX",
    "SetDueling",
    "fewer_misses_wins",
    "ROLE_LEADER_A",
    "ROLE_LEADER_B",
    "ROLE_FOLLOWER",
]
