"""Traditional inclusion properties: inclusive, non-inclusive, exclusive.

These implement the three data flows of the paper's Fig. 1:

- **inclusive** — LLC misses fill the LLC, LLC evictions back-invalidate
  upper levels, clean victims are dropped. (Provided for completeness;
  the paper's evaluation focuses on the next two, because strict
  inclusion cannot bypass redundant writes at all.)
- **non-inclusive** — LLC misses fill the LLC, no back-invalidation,
  clean victims are dropped, dirty victims update/insert. LLC writes =
  data fills + dirty victims.
- **exclusive** — LLC misses do *not* fill the LLC, LLC hits invalidate
  the LLC copy, every L2 victim (clean or dirty) is inserted. LLC
  writes = clean victims + dirty victims.
"""

from __future__ import annotations

from ..cache import EvictedLine
from .base import InclusionPolicy, LLCAccess


class NonInclusivePolicy(InclusionPolicy):
    """The paper's baseline (``noni``)."""

    name = "non-inclusive"
    invalidate_on_hit = False
    fill_on_miss = True
    clean_writeback = False
    back_invalidates = False

    def llc_access(self, core: int, addr: int, is_write: bool) -> LLCAccess:
        block = self._llc_lookup(core, addr)
        if block is not None:
            return LLCAccess(hit=True, tech=block.tech)
        # Miss: the line is brought from memory into BOTH L2 and L3
        # (Fig. 1b) — the LLC data-fill that Section II-C2 shows can be
        # redundant.
        self.insert_or_update(core, addr, dirty=False, category="fill")
        return LLCAccess(hit=False, tech=self.llc.tech)

    def l2_victim(self, core: int, line: EvictedLine) -> None:
        if not line.dirty:
            return  # clean victims are silently dropped (duplicate kept)
        self.insert_or_update(core, line.addr, dirty=True, category="dirty_victim")


class ExclusivePolicy(InclusionPolicy):
    """Exclusive LLC (``ex``): upper levels and LLC hold disjoint data."""

    name = "exclusive"
    invalidate_on_hit = True
    fill_on_miss = False
    clean_writeback = True
    back_invalidates = False

    def llc_access(self, core: int, addr: int, is_write: bool) -> LLCAccess:
        block = self._llc_lookup(core, addr)
        if block is None:
            return LLCAccess(hit=False, tech=self.llc.tech)
        tech = block.tech
        # Invalidate on hit for larger effective capacity (Fig. 1c) —
        # except for lines other cores still hold, which stay resident
        # so shared readers are not forced through snoops. A dirty copy
        # hands its writeback obligation up with the data: the L2 fill
        # inherits the dirty bit, otherwise the deferred memory write
        # would silently vanish with the invalidated line.
        dirty = False
        if not self.h.shared_by_peers(core, addr):
            dirty = block.dirty
            self.llc.discard(addr)
            self.llc.stats.hit_invalidations += 1
            self.h.note_llc_evict(addr)
        return LLCAccess(hit=True, tech=tech, dirty=dirty)

    def l2_victim(self, core: int, line: EvictedLine) -> None:
        category = "dirty_victim" if line.dirty else "clean_victim"
        self.insert_or_update(
            core, line.addr, dirty=line.dirty, loop_bit=line.loop_bit, category=category
        )


class InclusivePolicy(InclusionPolicy):
    """Strictly inclusive LLC with back-invalidation (Fig. 1a)."""

    name = "inclusive"
    invalidate_on_hit = False
    fill_on_miss = True
    clean_writeback = False
    back_invalidates = True

    def llc_access(self, core: int, addr: int, is_write: bool) -> LLCAccess:
        block = self._llc_lookup(core, addr)
        if block is not None:
            return LLCAccess(hit=True, tech=block.tech)
        self.insert_or_update(core, addr, dirty=False, category="fill")
        return LLCAccess(hit=False, tech=self.llc.tech)

    def l2_victim(self, core: int, line: EvictedLine) -> None:
        if not line.dirty:
            return
        self.insert_or_update(core, line.addr, dirty=True, category="dirty_victim")
