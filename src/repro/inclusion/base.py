"""The inclusion-policy interface.

An :class:`InclusionPolicy` owns every decision about the L2↔LLC
boundary (Fig. 8 of the paper):

- what happens on an LLC **hit** (keep the copy, or invalidate it as
  exclusive caches do);
- what happens on an LLC **miss** (fill the LLC as non-inclusive caches
  do, or bypass it);
- what happens to an **L2 victim** (drop clean victims, insert them,
  or insert only non-duplicates);
- which **replacement policy** governs each LLC set (LAP's set-dueling
  hooks in here);
- where a block is **placed** inside a hybrid LLC.

The hierarchy engine (:mod:`repro.hierarchy.hierarchy`) drives the
per-level mechanics and calls into the bound policy at these decision
points, so policies stay small and the data-flow differences between
them are exactly the paper's Fig. 8 table.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, NamedTuple, Optional

from ..cache import Cache, CacheBlock, EvictedLine
from ..cache.replacement import ReplacementPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hierarchy.hierarchy import CacheHierarchy


class LLCAccess(NamedTuple):
    """Outcome of one LLC demand access.

    ``hit``: whether the LLC supplied the line; ``tech``: technology
    region that serviced the read (for timing), or the LLC's default
    when missing. ``dirty``: the supplied line carried dirty data whose
    only copy now moves up with it — set by hit-invalidating policies
    (exclusive, switching in exclusive mode) when they discard a dirty
    LLC copy, so the hierarchy fills the L2 dirty and the writeback
    obligation survives the move instead of vanishing with the LLC
    line.
    """

    hit: bool
    tech: str
    dirty: bool = False


class InclusionPolicy:
    """Base class for all inclusion properties (Table IV)."""

    name = "base"
    #: whether this policy keeps the LLC copy on an LLC hit
    invalidate_on_hit = False
    #: whether this policy fills the LLC on an LLC miss
    fill_on_miss = False
    #: whether clean L2 victims are written to the LLC
    clean_writeback = False
    #: whether LLC evictions back-invalidate the upper levels (strictly
    #: inclusive policies). Part of the policy interface: the hierarchy
    #: engine consults it on every LLC eviction.
    back_invalidates: bool = False

    def __init__(self) -> None:
        self.h: "CacheHierarchy" | None = None
        self.llc: Cache | None = None
        # Class-level override detection: policies that never choose a
        # per-set replacement keep the fast path (no set_index slicing,
        # no indirection) on every insert and LLC hit.
        self._replacement_override = (
            type(self).replacement_for is not InclusionPolicy.replacement_for
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def bind(self, hierarchy: "CacheHierarchy") -> None:
        """Attach the policy to a hierarchy (called once by the engine)."""
        self.h = hierarchy
        self.llc = hierarchy.llc
        # Route hit-path recency/RRPV updates through the policy's
        # per-set replacement choice (set-dueling correctness for
        # non-LRU baselines). Policies that never override the choice
        # leave ``touch_policy`` unset so LLC hits skip the indirection.
        if self._replacement_override:
            self.llc.touch_policy = self.replacement_for

    # ------------------------------------------------------------------
    # decision points (overridden by concrete policies)
    # ------------------------------------------------------------------
    def llc_access(self, core: int, addr: int, is_write: bool) -> LLCAccess:
        """Demand access from an L2 miss. Must be overridden."""
        raise NotImplementedError

    def l2_victim(self, core: int, line: EvictedLine) -> None:
        """Handle a victim evicted by an L2. Must be overridden."""
        raise NotImplementedError

    def l2_fill_loop_bit(self, llc_hit: bool) -> bool:
        """Loop-bit value for a block newly filled into L2.

        Only LAP uses loop-bits; the default keeps them clear.
        """
        return False

    def on_l2_dirtied(self, block: CacheBlock) -> None:
        """An L2-resident block transitioned clean→dirty (store)."""
        block.set_loop_bit(False)

    def replacement_for(self, set_index: int) -> Optional[ReplacementPolicy]:
        """Replacement policy for inserts into an LLC set.

        ``None`` means the LLC's default. LAP overrides this with its
        set-dueling choice.
        """
        return None

    def end_of_run(self) -> None:
        """Flush any policy-internal accounting at simulation end."""

    def extra_stats(self) -> dict:
        """Policy-specific counters merged into ``RunResult.extra``.

        Override to surface mechanism-level accounting (bypass counts,
        copy-back decisions, gated ways, ...) without every consumer
        having to know the policy's attributes.
        """
        return {}

    # ------------------------------------------------------------------
    # shared mechanics
    # ------------------------------------------------------------------
    def _llc_lookup(self, core: int, addr: int) -> Optional[CacheBlock]:
        """Demand lookup with timing and hierarchy bookkeeping.

        Demand reads of the LLC are always *reads* regardless of the
        requesting instruction: stores dirty the line in L2, not in the
        LLC.
        """
        llc = self.llc
        block = llc.lookup(addr, False)
        if block is None:
            self._record_duel_miss(addr)
            return None
        self.h.timing.llc_read(core, llc.bank_of(addr), block.tech)
        self.h.note_demand_hit(addr)
        return block

    def _record_duel_miss(self, addr: int) -> None:
        """Hook for dueling controllers; default: none."""

    def insert_or_update(
        self,
        core: int,
        addr: int,
        *,
        dirty: bool,
        loop_bit: bool = False,
        category: str,
    ) -> None:
        """Write a line into the LLC, merging with an existing copy.

        ``category`` names the Fig. 15 write class: ``"fill"``,
        ``"clean_victim"``, or ``"dirty_victim"``. If the line is
        already present (possible for non-inclusive fills racing with
        victims, and transiently across dynamic-mode switches) the copy
        is updated in place: dirty victims are counted as
        ``update_writes`` and clean writes keep their requested class —
        a merged fill stays a ``fill_write`` (it is memory data, not a
        victim; miscounting it as a clean victim would corrupt the
        Fig. 15 breakdown across Dswitch/FLEXclusion mode flips).
        """
        llc = self.llc
        stats = llc.stats
        existing = llc.peek(addr)
        if existing is not None:
            llc.update(existing, dirty)
            existing.set_loop_bit(loop_bit)
            if dirty:
                stats.update_writes += 1
                self.h.note_dirty_victim(addr)
            elif category == "fill":
                stats.fill_writes += 1
                self.h.note_fill(addr)
            else:
                stats.clean_victim_writes += 1
                self.h.note_clean_insert(addr)
            self.h.charge_llc_write(core, addr, existing.tech)
            self._record_duel_write(addr)
            return
        self._place_and_insert(core, addr, dirty=dirty, loop_bit=loop_bit, category=category)

    def _place_and_insert(
        self,
        core: int,
        addr: int,
        *,
        dirty: bool,
        loop_bit: bool,
        category: str,
    ) -> None:
        """Insert a new line; hybrid-aware policies override placement."""
        llc = self.llc
        policy = (
            self.replacement_for(llc.set_index(addr)) if self._replacement_override else None
        )
        evicted = llc.insert(addr, dirty, loop_bit, None, policy)
        self._finish_insert(core, addr, evicted, dirty=dirty, category=category)

    def _finish_insert(
        self,
        core: int,
        addr: int,
        evicted: Optional[EvictedLine],
        *,
        dirty: bool,
        category: str,
    ) -> None:
        """Common post-insert accounting: categories, timing, victims."""
        llc = self.llc
        stats = llc.stats
        if category == "fill":
            stats.fill_writes += 1
            self.h.note_fill(addr)
        elif category == "clean_victim":
            stats.clean_victim_writes += 1
            self.h.note_clean_insert(addr)
        elif category == "dirty_victim":
            stats.dirty_victim_writes += 1
            self.h.note_dirty_victim(addr)
        else:  # pragma: no cover - programming error
            raise ValueError(f"unknown LLC write category {category!r}")
        if llc.hybrid:
            # Only hybrid LLCs vary technology per way; peek to find
            # which region the line landed in.
            inserted = llc.peek(addr)
            tech = inserted.tech if inserted is not None else llc.tech
        else:
            tech = llc.tech
        self.h.charge_llc_write(core, addr, tech)
        self._record_duel_write(addr)
        if evicted is not None:
            self.h.on_llc_eviction(evicted)

    def _record_duel_write(self, addr: int) -> None:
        """Hook for write-aware dueling controllers; default: none."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"
