"""The ``repro check`` orchestrator.

Runs the full validation suite and folds the outcome into one
:class:`CheckReport`:

1. **invariant stage** — every requested policy replays a deterministic
   phased trace (coherence off on 1 and 2 cores, coherence on with 2
   cores) under an armed :class:`~repro.validate.invariants.InvariantProbe`;
2. **differential stage** — one shared trace across *all* requested
   policies, asserting the cross-policy accounting laws
   (:mod:`repro.validate.differential`), in both coherence modes;
3. **fuzz stage** (optional) — ``--fuzz N`` randomized cases with
   automatic shrinking (:mod:`repro.validate.fuzz`).

Failures never abort the suite: each stage entry records ok/FAIL so one
run reports every broken invariant, and shrunk fuzz counterexamples
ship a paste-able reproduction snippet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..errors import InvariantViolation
from .differential import DEFAULT_POLICIES, run_differential, run_trace
from .fuzz import FuzzFailure, fuzz, generate_trace


@dataclass
class CheckEntry:
    """One suite item: what ran, whether it held, and a short detail."""

    name: str
    ok: bool
    detail: str = ""

    @property
    def status(self) -> str:
        return "ok" if self.ok else "FAIL"


@dataclass
class CheckReport:
    """Aggregated outcome of one ``repro check`` run."""

    entries: List[CheckEntry] = field(default_factory=list)
    fuzz_failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(e.ok for e in self.entries)

    @property
    def failures(self) -> List[CheckEntry]:
        return [e for e in self.entries if not e.ok]

    def as_rows(self) -> List[list]:
        return [[e.name, e.status, e.detail] for e in self.entries]


def _modes(coherence: str) -> List[Tuple[bool, int]]:
    """(enable_coherence, ncores) combinations for ``--coherence``."""
    modes: List[Tuple[bool, int]] = []
    if coherence in ("both", "off"):
        modes += [(False, 1), (False, 2)]
    if coherence in ("both", "on"):
        modes += [(True, 2)]
    return modes


def run_checks(
    policies: Sequence[str] = DEFAULT_POLICIES,
    *,
    fuzz_rounds: int = 0,
    refs: int = 2000,
    seed: int = 0,
    coherence: str = "both",
    interval: int = 64,
    progress: Optional[Callable[[str], None]] = None,
    tag_backend: Optional[str] = None,
) -> CheckReport:
    """Run the full validation suite; see the module docstring.

    ``tag_backend`` pins every stage's tag-store layout (``"object"``
    or ``"soa"``); ``None`` defers to the ``REPRO_TAG_BACKEND``
    environment override and then the object default.
    """
    report = CheckReport()
    say = progress or (lambda _msg: None)
    modes = _modes(coherence)

    # ---- stage 1: per-policy invariant runs --------------------------
    for policy in policies:
        for coherent, ncores in modes:
            label = (
                f"invariants[{policy}, {'coh' if coherent else 'nocoh'}, "
                f"ncores={ncores}]"
            )
            say(label)
            trace = generate_trace(seed, refs, ncores)
            try:
                h = run_trace(
                    policy,
                    trace,
                    ncores=ncores,
                    enable_coherence=coherent,
                    interval=interval,
                    tag_backend=tag_backend,
                )
            except InvariantViolation as exc:
                report.entries.append(CheckEntry(label, False, str(exc)))
                continue
            probe = h.probe_bus.probes[0]
            ran = sum(1 for count in probe.counts.values() if count)
            report.entries.append(
                CheckEntry(label, True, f"{ran} invariant(s) exercised over {refs} refs")
            )

    # ---- stage 2: differential pass ----------------------------------
    for coherent, ncores in modes:
        label = f"differential[{'coh' if coherent else 'nocoh'}, ncores={ncores}]"
        say(label)
        trace = generate_trace(seed + 1, refs, ncores)
        try:
            diff = run_differential(
                trace,
                policies,
                ncores=ncores,
                enable_coherence=coherent,
                interval=interval,
                tag_backend=tag_backend,
            )
        except InvariantViolation as exc:
            report.entries.append(CheckEntry(label, False, str(exc)))
            continue
        report.entries.append(
            CheckEntry(
                label,
                True,
                f"{len(diff.identities)} cross-policy identity group(s) over "
                f"{len(policies)} policies",
            )
        )

    # ---- stage 3: fuzzing --------------------------------------------
    if fuzz_rounds > 0:
        say(f"fuzz[{fuzz_rounds} rounds]")
        coherence_modes: Tuple[bool, ...]
        if coherence == "on":
            coherence_modes = (True,)
        elif coherence == "off":
            coherence_modes = (False,)
        else:
            coherence_modes = (False, True)
        failures = fuzz(
            fuzz_rounds,
            policies,
            base_seed=seed,
            coherence_modes=coherence_modes,
            tag_backend=tag_backend,
        )
        report.fuzz_failures = failures
        if failures:
            for failure in failures:
                report.entries.append(
                    CheckEntry(
                        f"fuzz[{failure.case.describe()}]",
                        False,
                        f"{failure.message} "
                        f"(shrunk to {len(failure.trace)} refs)",
                    )
                )
        else:
            report.entries.append(
                CheckEntry(
                    f"fuzz[{fuzz_rounds} rounds]",
                    True,
                    f"no violations across {len(policies)} policies",
                )
            )
    return report
