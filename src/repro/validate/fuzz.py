"""Seeded trace fuzzer with failure shrinking for the invariant checker.

The invariant catalog is only as strong as the states it visits. The
micro-trace tests walk the paper's worked examples; this fuzzer walks
everything else: phased random traces (loop sweeps, hot sets, strides,
write bursts — the access shapes the synthetic workloads are built
from) replayed through a deliberately tiny hierarchy so every ref
lands in a handful of sets and eviction/invalidation paths fire
constantly.

Everything derives from an integer seed via ``random.Random``, so a
failure report is a complete reproduction recipe. When a case fails,
:func:`shrink_trace` reduces it ddmin-style — drop exponentially
shrinking chunks while the *same* invariant keeps failing — which
typically turns a few-hundred-reference trace into the handful of
refs a regression test wants.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Sequence, Tuple

from ..errors import InvariantViolation
from .differential import DEFAULT_POLICIES, Ref, run_trace

BLOCK = 64

#: phase kinds the generator mixes; weights favour looping/hot shapes
#: because those exercise the clean-trip (loop-block) machinery.
_PHASES = ("loop", "loop", "hot", "random", "stride", "writeburst")


@dataclass(frozen=True)
class FuzzCase:
    """One deterministic fuzzing unit: a seed plus the run shape."""

    seed: int
    policy: str
    ncores: int = 1
    enable_coherence: bool = False
    refs: int = 600
    interval: int = 32

    def describe(self) -> str:
        coh = "coh" if self.enable_coherence else "nocoh"
        return (
            f"seed={self.seed} policy={self.policy} ncores={self.ncores} "
            f"{coh} refs={self.refs}"
        )


def generate_trace(
    seed: int, refs: int = 600, ncores: int = 1, block: int = BLOCK
) -> List[Ref]:
    """Deterministic phased trace of ``(core, addr, is_write)`` triples.

    Addresses are drawn from a footprint of 8–64 blocks (the micro
    hierarchy holds 4 L2 + 16 LLC blocks, so most footprints thrash),
    sliced into phases of 20–120 refs, each phase one access shape.
    Multicore traces share the footprint across cores — with coherence
    on, that drives invalidations, upgrades and peer supplies.
    """
    rng = random.Random(seed)
    footprint = rng.choice((8, 16, 32, 64))
    addrs = [i * block for i in range(footprint)]
    trace: List[Ref] = []
    while len(trace) < refs:
        kind = rng.choice(_PHASES)
        length = rng.randint(20, 120)
        core = rng.randrange(ncores)
        if kind == "loop":
            # Repeated sequential sweeps over a window: loop-blocks.
            base = rng.randrange(footprint)
            window = [addrs[(base + i) % footprint] for i in range(rng.randint(3, 10))]
            write_p = 0.05
            picks = [window[i % len(window)] for i in range(length)]
        elif kind == "hot":
            hot = rng.sample(addrs, k=min(4, footprint))
            write_p = 0.3
            picks = [rng.choice(hot) for _ in range(length)]
        elif kind == "stride":
            base, step = rng.randrange(footprint), rng.choice((1, 2, 3, 5))
            write_p = 0.15
            picks = [addrs[(base + i * step) % footprint] for i in range(length)]
        elif kind == "writeburst":
            burst = rng.sample(addrs, k=min(3, footprint))
            write_p = 0.9
            picks = [rng.choice(burst) for _ in range(length)]
        else:  # random
            write_p = 0.25
            picks = [rng.choice(addrs) for _ in range(length)]
        for addr in picks:
            # Occasionally hop cores mid-phase so lines genuinely
            # interleave rather than migrating wholesale.
            if ncores > 1 and rng.random() < 0.1:
                core = rng.randrange(ncores)
            trace.append((core, addr, rng.random() < write_p))
    return trace[:refs]


def run_case(
    case: FuzzCase,
    trace: Optional[Sequence[Ref]] = None,
    tag_backend: Optional[str] = None,
) -> None:
    """Replay one case (its generated trace unless ``trace`` is given);
    raises :class:`InvariantViolation` on failure."""
    if trace is None:
        trace = generate_trace(case.seed, case.refs, case.ncores)
    run_trace(
        case.policy,
        trace,
        ncores=case.ncores,
        enable_coherence=case.enable_coherence,
        interval=case.interval,
        tag_backend=tag_backend,
    )


def shrink_trace(
    trace: Sequence[Ref],
    still_fails: Callable[[Sequence[Ref]], bool],
    max_runs: int = 400,
) -> List[Ref]:
    """ddmin-style reduction: greedily drop chunks while ``still_fails``.

    Starts with half-trace chunks and halves the chunk size whenever a
    full sweep removes nothing, down to single references. ``max_runs``
    bounds the predicate budget so pathological cases stay fast.
    """
    current = list(trace)
    chunk = max(1, len(current) // 2)
    runs = 0
    while chunk >= 1 and runs < max_runs:
        removed_any = False
        start = 0
        while start < len(current) and runs < max_runs:
            candidate = current[:start] + current[start + chunk:]
            if not candidate:
                break
            runs += 1
            if still_fails(candidate):
                current = candidate
                removed_any = True
                # re-test the same offset: the next chunk slid into it
            else:
                start += chunk
        if not removed_any:
            if chunk == 1:
                break
            chunk = max(1, chunk // 2)
    return current


@dataclass
class FuzzFailure:
    """One shrunk counterexample, self-contained enough to paste into
    a regression test."""

    case: FuzzCase
    invariant: str
    message: str
    trace: List[Ref] = field(default_factory=list)

    def repro_snippet(self) -> str:
        """Executable reproduction for bug reports / regression tests."""
        return (
            "from repro.validate import run_trace\n"
            f"trace = {self.trace!r}\n"
            f"run_trace({self.case.policy!r}, trace, ncores={self.case.ncores}, "
            f"enable_coherence={self.case.enable_coherence}, interval=1)"
        )


def _failure_for(
    case: FuzzCase, trace: Sequence[Ref], tag_backend: Optional[str] = None
) -> Optional[InvariantViolation]:
    try:
        run_case(case, trace, tag_backend=tag_backend)
    except InvariantViolation as exc:
        return exc
    return None


def fuzz(
    rounds: int,
    policies: Sequence[str] = DEFAULT_POLICIES,
    *,
    base_seed: int = 0,
    coherence_modes: Tuple[bool, ...] = (False, True),
    refs: int = 600,
    progress: Optional[Callable[[int, FuzzCase], None]] = None,
    shrink: bool = True,
    tag_backend: Optional[str] = None,
) -> List[FuzzFailure]:
    """Run ``rounds`` fuzz cases round-robin over policies × coherence.

    Case ``i`` uses seed ``base_seed + i`` on ``policies[i % len]``,
    alternating coherence modes (coherent cases run two cores, the
    smallest configuration where sharing exists). Returns the list of
    shrunk failures — empty means every case held.
    """
    failures: List[FuzzFailure] = []
    for i in range(rounds):
        policy = policies[i % len(policies)]
        coherent = coherence_modes[(i // len(policies)) % len(coherence_modes)]
        ncores = 2 if coherent or (i % 5 == 4) else 1
        case = FuzzCase(
            seed=base_seed + i,
            policy=policy,
            ncores=ncores,
            enable_coherence=coherent,
            refs=refs,
        )
        if progress is not None:
            progress(i, case)
        trace = generate_trace(case.seed, case.refs, case.ncores)
        exc = _failure_for(case, trace, tag_backend)
        if exc is None:
            continue
        invariant = getattr(exc, "invariant", "unknown")
        shrunk = list(trace)
        if shrink:
            tight = replace(case, interval=1)

            def same_failure(candidate: Sequence[Ref]) -> bool:
                again = _failure_for(tight, candidate, tag_backend)
                return again is not None and getattr(again, "invariant", None) == invariant

            if same_failure(trace):
                shrunk = shrink_trace(trace, same_failure)
        failures.append(FuzzFailure(case, invariant, str(exc), shrunk))
    return failures
