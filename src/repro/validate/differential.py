"""Differential harness: one trace, every policy, cross-policy laws.

Single-policy invariants (``invariants.py``) catch state corruption;
this harness catches *accounting* divergence between policies that the
paper's comparisons rely on. Because the L2 front-end is policy-blind
— every policy fills the L2 on an L2 miss, and L2 replacement never
consults the LLC — a bit-identical trace must produce bit-identical
L2-side behaviour under every non-back-invalidating policy. The LLC
side then obeys per-policy write-class laws (Fig. 15): non-inclusion
writes fills + dirty victims, exclusion writes clean + dirty victims,
LAP writes only non-duplicate clean victims + dirty victims.

Cross-policy identities checked (coherence off; coherent runs check
the per-policy subset only, since snoop supplies depend on LLC hits):

- retired references and stores are equal everywhere (harness sanity);
- L1/L2 hits, LLC demand accesses, and the L2 victim stream's totals
  are equal across all non-back-invalidating policies;
- ``mem_reads`` equals LLC demand misses per policy (no silent DRAM
  traffic);
- the write ledger balances per policy (``mem_writes`` = LLC dirty
  evictions + back-invalidation writebacks);
- write-class laws: fill-free policies report zero ``fill_writes``,
  drop-clean policies report zero ``clean_victim_writes``.

Every run carries an :class:`~repro.validate.invariants.InvariantProbe`,
so the differential pass also exercises the single-policy catalog —
including dirty-data conservation at end of run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..arena import registry
from ..core.lhybrid import LhybridPolicy
from ..core.policies import make_policy
from ..hierarchy import CacheHierarchy
from ..inclusion.base import InclusionPolicy
from ..inclusion.switching import SwitchingPolicy
from ..testing import micro_hierarchy_config
from .invariants import InvariantProbe, violation

#: the evaluated-policy set ``repro check`` covers by default, derived
#: from the registry's ``check_default`` declarations: the paper's
#: Table IV policies, strict inclusion (Fig. 1a), and the arena rivals.
DEFAULT_POLICIES: Tuple[str, ...] = registry.check_names()

#: (core, addr, is_write) — the trace triple both harnesses replay.
Ref = Tuple[int, int, bool]


def run_trace(
    policy: Union[str, InclusionPolicy],
    trace: Iterable[Ref],
    *,
    ncores: int = 1,
    enable_coherence: bool = False,
    interval: int = 64,
    sram_ways: Optional[int] = None,
    tag_backend: Optional[str] = None,
    **config_kwargs,
) -> CacheHierarchy:
    """Replay ``trace`` under ``policy`` with the invariant probe armed.

    Builds a micro hierarchy (see :mod:`repro.testing`), attaches an
    :class:`InvariantProbe` checking every ``interval`` references, and
    finishes the run (which runs one final check pass). Lhybrid-family
    policies get a hybrid LLC automatically (4 SRAM ways) when
    ``sram_ways`` is not given. ``tag_backend`` pins the tag-store
    layout (default: the ``REPRO_TAG_BACKEND`` environment override,
    then ``"object"``) — the probe keeps every run on the generic
    access path, so this exercises the backend's store protocol, not
    the batched kernel. Raises
    :class:`~repro.errors.InvariantViolation` on the first failure.
    """
    if isinstance(policy, str):
        policy = make_policy(policy)
    if sram_ways is None and isinstance(policy, LhybridPolicy):
        sram_ways = 4
    config = micro_hierarchy_config(ncores=ncores, sram_ways=sram_ways, **config_kwargs)
    probe = InvariantProbe(interval=interval)
    h = CacheHierarchy(
        config,
        policy,
        enable_coherence=enable_coherence,
        probes=(probe,),
        tag_backend=tag_backend,
    )
    for core, addr, is_write in trace:
        h.access(core, addr, is_write)
    h.finish()
    return h


@dataclass
class DifferentialReport:
    """Outcome of one differential pass: per-policy stats + the laws
    that were checked (all passed — failures raise instead)."""

    policies: Tuple[str, ...]
    enable_coherence: bool
    identities: List[str] = field(default_factory=list)
    hier: Dict[str, dict] = field(default_factory=dict)
    llc: Dict[str, dict] = field(default_factory=dict)

    def as_rows(self) -> List[list]:
        """Stat table rows (policy, accesses, llc_writes, mem_writes)."""
        return [
            [
                name,
                self.hier[name]["llc_demand_accesses"],
                self.llc[name]["fill_writes"],
                self.llc[name]["clean_victim_writes"],
                self.llc[name]["dirty_victim_writes"] + self.llc[name]["update_writes"],
                self.hier[name]["mem_writes"],
            ]
            for name in self.policies
        ]


def _check_equal(metric: str, values: Dict[str, int], identities: List[str]) -> None:
    """All policies must report the same value for ``metric``."""
    distinct = set(values.values())
    if len(distinct) > 1:
        detail = ", ".join(f"{name}={value}" for name, value in sorted(values.items()))
        raise violation(
            "differential",
            f"{metric} must be trace-determined, not policy-determined: {detail}",
        )
    identities.append(f"{metric} equal across {{{', '.join(sorted(values))}}}")


def run_differential(
    trace: Sequence[Ref],
    policies: Sequence[str] = DEFAULT_POLICIES,
    *,
    ncores: int = 1,
    enable_coherence: bool = False,
    interval: int = 64,
    sram_ways: Optional[int] = None,
    tag_backend: Optional[str] = None,
    **config_kwargs,
) -> DifferentialReport:
    """Run ``trace`` under every policy and assert the cross-policy laws.

    All policies share one geometry, so when the set includes a hybrid-
    only policy (lhybrid family) the whole pass runs on a hybrid LLC —
    legal for every policy, and the paper's Fig. 24 setting.
    """
    wants_hybrid = sram_ways is not None or any(
        isinstance(make_policy(name), LhybridPolicy) for name in policies
    )
    if wants_hybrid and sram_ways is None:
        sram_ways = 4
    report = DifferentialReport(tuple(policies), enable_coherence)
    runs: Dict[str, CacheHierarchy] = {}
    for name in policies:
        runs[name] = run_trace(
            name,
            trace,
            ncores=ncores,
            enable_coherence=enable_coherence,
            interval=interval,
            sram_ways=sram_ways,
            tag_backend=tag_backend,
            **config_kwargs,
        )
        report.hier[name] = runs[name].stats.snapshot()
        report.llc[name] = runs[name].llc.stats.snapshot()

    identities = report.identities
    hier = report.hier

    # Trace-determined totals: equal across *all* policies.
    for metric in ("accesses", "stores"):
        _check_equal(metric, {n: hier[n][metric] for n in policies}, identities)

    # L2-side behaviour: equal across non-back-invalidating policies
    # when no coherence protocol reshapes private-cache contents.
    if not enable_coherence:
        front = [n for n in policies if not runs[n].policy.back_invalidates]
        if len(front) > 1:
            for metric in ("l1_hits", "l2_hits", "llc_demand_accesses"):
                _check_equal(metric, {n: hier[n][metric] for n in front}, identities)
            _check_equal(
                "l2_victims",
                {n: hier[n]["l2_clean_victims"] + hier[n]["l2_dirty_victims"] for n in front},
                identities,
            )

    for name in policies:
        h = runs[name]
        stats = h.stats
        llc = h.llc.stats
        if not enable_coherence:
            # Without peer supplies, every LLC demand miss reads memory.
            misses = stats.llc_demand_accesses - stats.llc_demand_hits
            if stats.mem_reads != misses:
                raise violation(
                    "differential",
                    f"{name}: mem_reads={stats.mem_reads} but LLC demand "
                    f"misses={misses}",
                )
        expected = llc.dirty_evictions + stats.mem_writes_backinval
        if stats.mem_writes != expected:
            raise violation(
                "differential",
                f"{name}: mem_writes={stats.mem_writes} != LLC dirty "
                f"evictions {llc.dirty_evictions} + backinval "
                f"{stats.mem_writes_backinval}",
            )
        policy = h.policy
        if not policy.fill_on_miss and not isinstance(policy, SwitchingPolicy):
            if llc.fill_writes:
                raise violation(
                    "differential",
                    f"{name}: fill-free policy reported {llc.fill_writes} "
                    f"fill_writes",
                )
        if not policy.clean_writeback and not isinstance(policy, SwitchingPolicy):
            if llc.clean_victim_writes:
                raise violation(
                    "differential",
                    f"{name}: drop-clean policy reported "
                    f"{llc.clean_victim_writes} clean_victim_writes",
                )
    identities.append(
        "per-policy: mem_reads=LLC misses (coherence off), write ledger "
        "balanced, Fig. 15 write-class laws"
    )
    return report
