"""repro.validate: machine-checked invariants for the simulator.

Three layers, one purpose — make silent state corruption loud:

- :mod:`~repro.validate.invariants` — an
  :class:`~repro.validate.invariants.InvariantProbe` riding the probe
  bus, re-checking per-policy structural guarantees (inclusion,
  exclusion, no-fill, the write ledger, coherence bookkeeping, and
  dirty-data conservation) against the live tag arrays;
- :mod:`~repro.validate.differential` — one trace replayed under every
  policy, asserting the cross-policy accounting laws the paper's
  comparisons assume;
- :mod:`~repro.validate.fuzz` — a seeded deterministic trace fuzzer
  with ddmin-style failure shrinking.

``repro check [--fuzz N]`` (see :mod:`repro.cli`) drives all three via
:func:`~repro.validate.runner.run_checks`.
"""

from .differential import (
    DEFAULT_POLICIES,
    DifferentialReport,
    run_differential,
    run_trace,
)
from .fuzz import FuzzCase, FuzzFailure, fuzz, generate_trace, run_case, shrink_trace
from .invariants import (
    INVARIANTS,
    InvariantProbe,
    check_coherence,
    check_dirty_conservation,
    check_exclusion,
    check_inclusion,
    check_l1_inclusion,
    check_no_fill,
    check_write_ledger,
    violation,
)
from .runner import CheckEntry, CheckReport, run_checks

__all__ = [
    "DEFAULT_POLICIES",
    "INVARIANTS",
    "CheckEntry",
    "CheckReport",
    "DifferentialReport",
    "FuzzCase",
    "FuzzFailure",
    "InvariantProbe",
    "check_coherence",
    "check_dirty_conservation",
    "check_exclusion",
    "check_inclusion",
    "check_l1_inclusion",
    "check_no_fill",
    "check_write_ledger",
    "fuzz",
    "generate_trace",
    "run_case",
    "run_checks",
    "run_differential",
    "run_trace",
    "shrink_trace",
    "violation",
]
