"""Machine-checked invariants over live hierarchy state.

Every inclusion property in the paper comes with structural guarantees
— things that must hold of the tag arrays at any access boundary, no
matter the trace. The headline example is the dirty-data conservation
law that the exclusive hit-invalidation bug violated: once a store
dirties a block, that block's writeback obligation must survive every
subsequent move (L2 victim → LLC copy, LLC hit-invalidation → L2 fill,
LLC eviction → memory) until a memory write retires it. A policy that
drops it anywhere silently undercounts ``mem_writes`` and corrupts the
energy model.

:class:`InvariantProbe` rides the probe bus (:mod:`repro.instr`) and
re-checks the catalog below every ``interval`` retired references plus
once at ``finish()``. Checks run *between* accesses only — mid-access
transients (a fill racing its store propagation) are deliberately
invisible, matching the bus contract that ``access`` fires after the
reference fully retires.

Invariant catalog (see DESIGN.md §11 for the paper anchors):

``l1-inclusion``
    L1 ⊆ L2 within each core (hierarchy mechanics, all policies).
``inclusion``
    strictly inclusive policies: every L2-resident line is LLC-resident.
    Under coherence, dirty (M/O) L2 lines are exempt — the first store
    discards the stale LLC duplicate by design.
``exclusion``
    exclusive policy, single core: L2 and LLC contents are disjoint.
    Multicore exclusion is deliberately relaxed (peer-shared lines stay
    resident; a peer's victim may duplicate another L2's line), so the
    checker skips it there and relies on ``coherence`` instead.
``no-fill``
    policies without LLC data-fills (exclusive, LAP, Lhybrid):
    ``fill_writes`` stays zero for the whole run.
``write-ledger``
    every policy: ``mem_writes`` equals the LLC's dirty evictions plus
    the back-invalidation writebacks — no memory write appears from or
    vanishes into thin air.
``coherence``
    coherent runs: the O(1) sharers map matches the L2 tag arrays; at
    most one M/O owner per line; an M owner implies no LLC copy; dirty
    L2 lines are exactly the M/O ones.
``dirty-conservation``
    every address dirtied since the probe attached is still resident
    dirty somewhere (some L2, or the LLC) unless a memory writeback
    retired its obligation. This is the invariant that catches the
    dirty-loss bug class.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Set

from ..cache.block import (
    STATE_EXCLUSIVE,
    STATE_MODIFIED,
    STATE_OWNED,
    STATE_SHARED,
)
from ..errors import InvariantViolation
from ..inclusion.switching import SwitchingPolicy
from ..inclusion.traditional import ExclusivePolicy
from ..instr import Probe

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hierarchy.hierarchy import CacheHierarchy

#: catalog order, used for reporting
INVARIANTS = (
    "l1-inclusion",
    "inclusion",
    "exclusion",
    "no-fill",
    "write-ledger",
    "coherence",
    "dirty-conservation",
)


def violation(invariant: str, message: str) -> InvariantViolation:
    """Build an :class:`InvariantViolation` tagged with its invariant.

    The ``invariant`` attribute lets the fuzzer's shrinker confirm that
    a reduced trace still fails for the *same* reason, not a new one.
    """
    exc = InvariantViolation(f"{invariant}: {message}")
    exc.invariant = invariant
    return exc


def _dirty_resident(h: "CacheHierarchy", addr: int) -> bool:
    """Whether any cache still holds ``addr`` dirty (L2s or LLC)."""
    for l2 in h.l2s:
        block = l2.peek(addr)
        if block is not None and block.dirty:
            return True
    block = h.llc.peek(addr)
    return block is not None and block.dirty


# ----------------------------------------------------------------------
# the checks — each returns True when it applied, False when skipped,
# and raises InvariantViolation when the hierarchy state disproves it
# ----------------------------------------------------------------------
def check_l1_inclusion(h: "CacheHierarchy") -> bool:
    """L1 ⊆ L2 within every core (all policies)."""
    for core, (l1, l2) in enumerate(zip(h.l1s, h.l2s)):
        for addr in l1.resident_addrs():
            if l2.peek(addr) is None:
                raise violation(
                    "l1-inclusion",
                    f"L1-{core} holds {addr:#x} with no L2 copy "
                    f"(policy={h.policy.name}, after {h.stats.accesses} accesses)",
                )
    return True


def check_inclusion(h: "CacheHierarchy") -> bool:
    """Strict inclusion: L2-resident ⇒ LLC-resident (back-invalidating
    policies). Coherent dirty lines are exempt — the first store to a
    clean block discards the now-stale LLC duplicate (no-stale-LLC)."""
    if not h.policy.back_invalidates:
        return False
    coherent = h.coherence is not None
    for core, l2 in enumerate(h.l2s):
        for addr in l2.resident_addrs():
            if coherent and l2.peek(addr).dirty:
                continue
            if h.llc.peek(addr) is None:
                raise violation(
                    "inclusion",
                    f"L2-{core} holds {addr:#x} but the LLC does not "
                    f"(policy={h.policy.name}, after {h.stats.accesses} accesses)",
                )
    return True


def check_exclusion(h: "CacheHierarchy") -> bool:
    """Exclusion disjointness: L2 and LLC never both hold a line.

    Exact only for the pure exclusive policy on one core. Switching
    policies legally carry duplicates across mode flips, and multicore
    exclusive runs keep peer-shared lines resident and may re-insert a
    victim another L2 still holds — those configurations are covered
    indirectly by the coherence and conservation checks instead.
    """
    if not isinstance(h.policy, ExclusivePolicy) or h.config.ncores != 1:
        return False
    llc = h.llc
    for addr in h.l2s[0].resident_addrs():
        if llc.peek(addr) is not None:
            raise violation(
                "exclusion",
                f"L2 and LLC both hold {addr:#x} under the exclusive "
                f"policy (after {h.stats.accesses} accesses)",
            )
    return True


def check_no_fill(h: "CacheHierarchy") -> bool:
    """LAP's (and exclusion's) no-fill guarantee: LLC misses never
    write data into the LLC, so ``fill_writes`` stays zero. Switching
    policies are skipped: their class flags describe neither mode."""
    if h.policy.fill_on_miss or isinstance(h.policy, SwitchingPolicy):
        return False
    fills = h.llc.stats.fill_writes
    if fills:
        raise violation(
            "no-fill",
            f"policy {h.policy.name} performed {fills} LLC data-fill(s) "
            f"but guarantees none (after {h.stats.accesses} accesses)",
        )
    return True


def check_write_ledger(h: "CacheHierarchy") -> bool:
    """Memory-write bookkeeping balances for every policy:
    ``mem_writes == LLC dirty_evictions + mem_writes_backinval``."""
    expected = h.llc.stats.dirty_evictions + h.stats.mem_writes_backinval
    if h.stats.mem_writes != expected:
        raise violation(
            "write-ledger",
            f"mem_writes={h.stats.mem_writes} but LLC dirty_evictions="
            f"{h.llc.stats.dirty_evictions} + backinval="
            f"{h.stats.mem_writes_backinval} = {expected} "
            f"(policy={h.policy.name}, after {h.stats.accesses} accesses)",
        )
    return True


def check_coherence(h: "CacheHierarchy") -> bool:
    """MOESI bookkeeping matches the tag arrays (coherent runs).

    - the incremental sharers bitmask map equals one rebuilt from the
      L2 tag arrays;
    - every valid L2 block carries a real MOESI state, and dirty blocks
      are exactly the M/O ones;
    - a line has at most one M/O owner;
    - an **M** owner implies no LLC copy (no-stale-LLC). An **O** owner
      may coexist with an LLC copy: a reader's fill snapshots the
      owner's data at supply time, and any later store upgrades through
      ``on_store`` which discards the duplicate.
    """
    coherence = h.coherence
    if coherence is None:
        return False
    accesses = h.stats.accesses
    rebuilt: Dict[int, int] = {}
    owners: Dict[int, int] = {}
    for core, l2 in enumerate(h.l2s):
        for addr in l2.resident_addrs():
            rebuilt[addr] = rebuilt.get(addr, 0) | (1 << core)
            block = l2.peek(addr)
            state = block.state
            if state not in (STATE_MODIFIED, STATE_OWNED, STATE_EXCLUSIVE, STATE_SHARED):
                raise violation(
                    "coherence",
                    f"L2-{core} block {addr:#x} has state {state!r}; valid "
                    f"coherent blocks must be M/O/E/S (after {accesses} accesses)",
                )
            dirty_state = state in (STATE_MODIFIED, STATE_OWNED)
            if block.dirty != dirty_state:
                raise violation(
                    "coherence",
                    f"L2-{core} block {addr:#x} dirty={block.dirty} but "
                    f"state={state} (after {accesses} accesses)",
                )
            if dirty_state:
                if addr in owners:
                    raise violation(
                        "coherence",
                        f"{addr:#x} has two dirty owners: cores "
                        f"{owners[addr]} and {core} (after {accesses} accesses)",
                    )
                owners[addr] = core
                if state == STATE_MODIFIED and h.llc.peek(addr) is not None:
                    raise violation(
                        "coherence",
                        f"core {core} holds {addr:#x} Modified while the LLC "
                        f"keeps a stale copy (after {accesses} accesses)",
                    )
    recorded = coherence.sharers_snapshot()
    if recorded != rebuilt:
        drifted = sorted(
            addr
            for addr in set(recorded) | set(rebuilt)
            if recorded.get(addr, 0) != rebuilt.get(addr, 0)
        )
        sample = drifted[0]
        raise violation(
            "coherence",
            f"sharers map drift at {sample:#x}: recorded mask "
            f"{recorded.get(sample, 0):#b}, tag arrays say "
            f"{rebuilt.get(sample, 0):#b} "
            f"({len(drifted)} drifted line(s), after {accesses} accesses)",
        )
    return True


def check_dirty_conservation(h: "CacheHierarchy", outstanding: Set[int]) -> bool:
    """Dirty data never vanishes: every address dirtied since the probe
    attached is still resident dirty somewhere, or its writeback reached
    memory (which removed it from ``outstanding``)."""
    for addr in outstanding:
        if not _dirty_resident(h, addr):
            raise violation(
                "dirty-conservation",
                f"{addr:#x} was dirtied but is no longer resident dirty "
                f"anywhere and no memory writeback retired it "
                f"(policy={h.policy.name}, after {h.stats.accesses} accesses)",
            )
    return True


class InvariantProbe(Probe):
    """Probe-bus observer that re-checks the invariant catalog.

    Attach it like any probe (``probes=(InvariantProbe(),)`` at build
    time, or :meth:`CacheHierarchy.attach_probe` mid-run). Checks fire
    every ``interval`` retired references and once at ``finish()``; an
    ``interval`` of 0 checks only at ``finish()``. ``counts`` records
    how many times each catalog entry actually ran, so harnesses can
    prove a run exercised (rather than skipped) an invariant.
    """

    name = "invariants"

    def __init__(self, interval: int = 256) -> None:
        self.interval = interval
        self.h: "CacheHierarchy" | None = None
        self.counts: Dict[str, int] = {inv: 0 for inv in INVARIANTS}
        self._outstanding: Set[int] = set()
        self._seen = 0

    def bind(self, hierarchy: "CacheHierarchy") -> None:
        self.h = hierarchy

    # ---- event handlers ----------------------------------------------
    def on_access(self, core: int, addr: int, is_write: bool) -> None:
        self._seen += 1
        if self.interval and self._seen % self.interval == 0:
            self.check_now()

    def on_dirtied(self, addr: int) -> None:
        self._outstanding.add(addr)

    def on_mem_writeback(self, addr: int) -> None:
        # A memory write retires the obligation only when no dirty copy
        # remains resident (the same address can be dirty in an L2 *and*
        # in the LLC; writing one back must not absolve the other).
        if not _dirty_resident(self.h, addr):
            self._outstanding.discard(addr)

    def finish(self) -> None:
        self.check_now()

    # ---- the check pass ----------------------------------------------
    def check_now(self) -> None:
        """Run every applicable catalog check against live state."""
        h = self.h
        counts = self.counts
        if check_l1_inclusion(h):
            counts["l1-inclusion"] += 1
        if check_inclusion(h):
            counts["inclusion"] += 1
        if check_exclusion(h):
            counts["exclusion"] += 1
        if check_no_fill(h):
            counts["no-fill"] += 1
        if check_write_ledger(h):
            counts["write-ledger"] += 1
        if check_coherence(h):
            counts["coherence"] += 1
        if check_dirty_conservation(h, self._outstanding):
            counts["dirty-conservation"] += 1

    @property
    def outstanding(self) -> Set[int]:
        """Addresses with an unretired writeback obligation (copy)."""
        return set(self._outstanding)
