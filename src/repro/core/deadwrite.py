"""Dead-write bypass — the orthogonal write filter of Section VII.

The paper cites DASCA (Ahn et al., HPCA 2014) as an *orthogonal*
technique: predict which writes install blocks that will never be read
from the LLC ("dead writes") and bypass them. "Their deadblock
bypassing technique is orthogonal to our selective inclusion policies
and can be combined with our approaches to further reduce the dynamic
energy consumption." This module implements that combination.

The predictor is a compact sampling scheme (we have no program
counters in a trace-driven model, so it is indexed by an address-region
hash): a table of saturating counters records whether clean blocks
inserted from each region were re-read before eviction. Clean victims
from regions that historically produce dead insertions are dropped
instead of written. Dirty victims are never bypassed (they would lose
data), matching DASCA's "writeback dead writes" restriction in spirit
while staying write-back-safe.

``DeadWriteBypassLAP`` layers the filter on LAP's selective clean
writeback; ``DeadWriteBypassExclusive`` layers it on a plain exclusive
LLC (a DASCA-like baseline).
"""

from __future__ import annotations

from typing import List

from ..cache import EvictedLine
from ..errors import ConfigurationError
from ..inclusion.traditional import ExclusivePolicy
from .lap import LAPPolicy

# Region granularity for the predictor hash: 4KB pages group blocks
# with similar behaviour without tracking every line.
PAGE_SHIFT = 12


class DeadWritePredictor:
    """Saturating-counter table predicting dead clean insertions.

    Counters live in ``[0, max_level]``; a region whose counter falls
    to zero is predicted dead (bypass). Training:

    - an inserted clean block evicted *without reuse* decrements its
      region (the write was dead);
    - a reused one increments it (the write was useful).

    Counters start at ``initial`` so cold regions are *not* bypassed —
    the filter must earn its bypasses.
    """

    def __init__(
        self,
        table_size: int = 1024,
        max_level: int = 3,
        initial: int = 2,
    ) -> None:
        if table_size <= 0 or table_size & (table_size - 1):
            raise ConfigurationError(
                f"predictor table size must be a power of two, got {table_size}"
            )
        if not 0 < initial <= max_level:
            raise ConfigurationError(
                f"initial counter {initial} must lie in (0, {max_level}]"
            )
        self.table_size = table_size
        self.max_level = max_level
        self._mask = table_size - 1
        self._counters: List[int] = [initial] * table_size
        self.bypassed = 0
        self.trained_dead = 0
        self.trained_live = 0

    def _index(self, addr: int) -> int:
        page = addr >> PAGE_SHIFT
        # xor-fold the page number so strided regions spread out
        return (page ^ (page >> 10)) & self._mask

    def predicts_dead(self, addr: int) -> bool:
        """True when clean insertions from this region look dead."""
        return self._counters[self._index(addr)] == 0

    def train(self, addr: int, reused: bool) -> None:
        """Feed back the observed fate of an inserted clean block."""
        idx = self._index(addr)
        if reused:
            self.trained_live += 1
            if self._counters[idx] < self.max_level:
                self._counters[idx] += 1
        else:
            self.trained_dead += 1
            if self._counters[idx] > 0:
                self._counters[idx] -= 1

    def record_bypass(self) -> None:
        self.bypassed += 1


class _DeadWriteMixin:
    """Shared bypass/training plumbing for the two combined policies."""

    def _init_predictor(self, table_size: int, max_level: int, initial: int) -> None:
        self.predictor = DeadWritePredictor(table_size, max_level, initial)

    def _bypass_clean(self, line: EvictedLine) -> bool:
        """Drop a clean victim when its region's writes look dead."""
        if self.predictor.predicts_dead(line.addr):
            self.predictor.record_bypass()
            return True
        return False

    def _train_on_llc_eviction(self, evicted: EvictedLine | None) -> None:
        """Clean LLC victims carry the reuse verdict for training."""
        if evicted is not None and not evicted.dirty:
            self.predictor.train(evicted.addr, evicted.reused)

    def _finish_insert(self, core, addr, evicted, *, dirty, category):
        self._train_on_llc_eviction(evicted)
        super()._finish_insert(core, addr, evicted, dirty=dirty, category=category)


class DeadWriteBypassLAP(_DeadWriteMixin, LAPPolicy):
    """LAP + dead-write bypass of non-duplicate clean victims."""

    def __init__(
        self,
        replacement_mode: str = "duel",
        duel_period: int = 64,
        duel_interval: int = 4096,
        table_size: int = 1024,
        max_level: int = 3,
        initial: int = 2,
    ) -> None:
        super().__init__(replacement_mode, duel_period, duel_interval)
        self._init_predictor(table_size, max_level, initial)
        self.name = "lap+dwb"

    def l2_victim(self, core: int, line: EvictedLine) -> None:
        if not line.dirty and self.llc.peek(line.addr) is None and self._bypass_clean(line):
            return
        super().l2_victim(core, line)


class DeadWriteBypassExclusive(_DeadWriteMixin, ExclusivePolicy):
    """Exclusive LLC + dead-write bypass (DASCA-like baseline)."""

    def __init__(
        self,
        table_size: int = 1024,
        max_level: int = 3,
        initial: int = 2,
    ) -> None:
        super().__init__()
        self._init_predictor(table_size, max_level, initial)
        self.name = "exclusive+dwb"

    def l2_victim(self, core: int, line: EvictedLine) -> None:
        if not line.dirty and self._bypass_clean(line):
            return
        super().l2_victim(core, line)
