"""Lhybrid: LAP's loop-block-aware data placement for hybrid LLCs
(paper Section IV, Figs. 11, 24, 25).

On a hybrid SRAM/STT-RAM LLC (Table II: 4 SRAM ways + 12 STT-RAM ways
per set), *where* a block lands matters as much as *whether* it is
written: STT-RAM writes cost ~8x SRAM writes. Lhybrid keeps LAP's
selective-inclusion data flow and adds three placement stages, each
independently toggleable so Fig. 25's ablation can be reproduced:

- ``winv`` ("LAP+Winv"): a dirty L2 victim that hits a duplicate in the
  STT-RAM region invalidates that copy and lands in SRAM instead of
  rewriting STT-RAM (Fig. 11a);
- ``loop_stt`` ("LAP+LoopSTT"): loop-blocks — which will not be
  rewritten on their next evictions — are steered into STT-RAM;
- ``nloop_sram`` ("LAP+NloopSRAM"): write-prone non-loop-blocks are
  steered into SRAM.

With all three enabled (full Lhybrid) insertions are SRAM-first: a full
SRAM region makes room by migrating its MRU loop-block into STT-RAM
(Fig. 11b), or, with no loop-blocks anywhere, by evicting the SRAM LRU
block (Fig. 11c). STT-RAM victims are chosen loop-aware (invalid →
LRU non-loop-block → LRU loop-block).
"""

from __future__ import annotations

from typing import Optional

from ..cache import CacheBlock, EvictedLine
from ..cache.replacement import LoopAwarePolicy, LRUPolicy
from ..errors import ConfigurationError
from .lap import LAPPolicy


class LhybridPolicy(LAPPolicy):
    """LAP with loop-block-aware hybrid data placement."""

    def __init__(
        self,
        winv: bool = True,
        loop_stt: bool = True,
        nloop_sram: bool = True,
        replacement_mode: str = "duel",
        duel_period: int = 64,
        duel_interval: int = 4096,
    ) -> None:
        super().__init__(replacement_mode, duel_period, duel_interval)
        self.winv = winv
        self.loop_stt = loop_stt
        self.nloop_sram = nloop_sram
        stages = [
            label
            for flag, label in ((winv, "winv"), (loop_stt, "loopstt"), (nloop_sram, "nloopsram"))
            if flag
        ]
        if winv and loop_stt and nloop_sram:
            self.name = "lhybrid"
        elif stages:
            self.name = "lap+" + "+".join(stages)
        else:
            self.name = "lap(hybrid)"
        self._region_lru = LRUPolicy()
        self._region_loop_aware = LoopAwarePolicy(LRUPolicy())
        self.winv_redirects = 0

    def bind(self, hierarchy) -> None:
        super().bind(hierarchy)
        if not self.llc.hybrid:
            raise ConfigurationError(
                "LhybridPolicy requires a hybrid LLC (sram_ways set); use "
                "LAPPolicy for homogeneous LLCs"
            )

    # ------------------------------------------------------------------
    # dirty-hit redirection (Winv stage, Fig. 11a)
    # ------------------------------------------------------------------
    def l2_victim(self, core: int, line: EvictedLine) -> None:
        if line.dirty and self.winv:
            existing = self.llc.probe(line.addr)
            if existing is not None and existing.tech == "stt":
                self.llc.discard(line.addr)
                self.h.note_llc_evict(line.addr)
                self.winv_redirects += 1
                # Fig. 11a: the dirty data explicitly lands in SRAM.
                evicted = self._insert_sram_preferred(core, line.addr, dirty=True, loop_bit=False)
                self._finish_insert(
                    core, line.addr, evicted, dirty=True, category="dirty_victim"
                )
                return
        super().l2_victim(core, line)

    def _insert_sram_preferred(self, core: int, addr: int, *, dirty: bool, loop_bit: bool):
        """Insert into the SRAM region, using the full migration flow
        when both placement stages are active."""
        cache_set = self.llc.sets[self.llc.set_index(addr)]
        if self.loop_stt and self.nloop_sram:
            return self._sram_first_insert(core, cache_set, addr, dirty, loop_bit)
        return self.llc.insert(
            addr, dirty=dirty, loop_bit=loop_bit, region="sram", policy=self._region_lru
        )

    # ------------------------------------------------------------------
    # placement (LoopSTT / NloopSRAM stages, Figs. 11b/11c)
    # ------------------------------------------------------------------
    def _place_and_insert(
        self,
        core: int,
        addr: int,
        *,
        dirty: bool,
        loop_bit: bool,
        category: str,
    ) -> None:
        llc = self.llc
        set_index = llc.set_index(addr)
        cache_set = llc.sets[set_index]

        if self.loop_stt and self.nloop_sram:
            evicted = self._sram_first_insert(core, cache_set, addr, dirty, loop_bit)
        elif self.loop_stt and loop_bit:
            evicted = llc.insert(
                addr, dirty=dirty, loop_bit=loop_bit, region="stt",
                policy=self._region_loop_aware,
            )
        elif self.nloop_sram and not loop_bit:
            evicted = llc.insert(
                addr, dirty=dirty, loop_bit=loop_bit, region="sram", policy=self._region_lru
            )
        else:
            evicted = llc.insert(
                addr, dirty=dirty, loop_bit=loop_bit, region=None,
                policy=self.replacement_for(set_index),
            )
        self._finish_insert(core, addr, evicted, dirty=dirty, category=category)

    def _sram_first_insert(self, core, cache_set, addr: int, dirty: bool, loop_bit: bool):
        """Full-Lhybrid insertion: SRAM first, migrate loop-blocks out.

        An incoming *loop-block* goes straight into STT-RAM: it is by
        definition the most-recently-used loop-block, so Fig. 11b's
        "migrate the MRU loop-block" degenerates to a direct insertion
        — one STT write instead of an SRAM write plus a migration.
        """
        llc = self.llc
        if loop_bit:
            return llc.insert(addr, dirty=dirty, loop_bit=loop_bit, region="stt",
                              policy=self._region_loop_aware)
        sram_blocks = cache_set.region_blocks("sram")
        free = self._region_lru.first_invalid(sram_blocks)
        if free is not None:
            return llc.insert(addr, dirty=dirty, loop_bit=loop_bit, region="sram",
                              policy=self._region_lru)
        loop_in_sram = [b for b in sram_blocks if b.loop_bit]
        if loop_in_sram:
            # Fig. 11b: migrate the MRU loop-block to STT-RAM, then the
            # incoming block takes the freed SRAM way.
            mover = max(loop_in_sram, key=lambda b: b.last_access)
            self._migrate_to_stt(core, cache_set, mover)
            return llc.insert(addr, dirty=dirty, loop_bit=loop_bit, region="sram",
                              policy=self._region_lru)
        # Fig. 11c: no loop-blocks at all — evict the SRAM LRU block.
        return llc.insert(addr, dirty=dirty, loop_bit=loop_bit, region="sram",
                          policy=self._region_lru)

    def _migrate_to_stt(self, core: int, cache_set, mover: CacheBlock) -> None:
        """Move an SRAM-resident loop-block into the STT-RAM region."""
        llc = self.llc
        stt_blocks = cache_set.region_blocks("stt")
        dst = self._region_loop_aware.victim(stt_blocks, mover.last_access)
        evicted: Optional[object] = None
        if dst.valid:
            evicted = llc.evict_block(cache_set, dst)
        addr = llc.addr_of(cache_set.index, mover.tag)
        llc.migrate_block(cache_set, mover, dst)
        self.h.charge_llc_write(core, addr, "stt")
        if evicted is not None:
            self.h.on_llc_eviction(evicted)
