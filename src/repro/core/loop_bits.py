"""Loop-block identification and clean-trip-count instrumentation.

Two related pieces live here:

1. The *loop-bit mechanism* itself is distributed: the single bit per
   block lives on :class:`~repro.cache.block.CacheBlock` in both L2 and
   L3, and :class:`~repro.core.lap.LAPPolicy` updates it at the three
   points of the paper's Fig. 10 (reset on fill/write, carried on
   eviction, set on LLC hit).
2. :class:`LoopBlockTracker` — always-on, policy-independent
   instrumentation that measures the workload characteristics of
   Section II-C1: the fraction of L2 evictions that are loop-blocks and
   the clean-trip-count (CTC) distribution (Fig. 4).

Operational definitions (documented here because the paper describes
them by example):

- a **clean trip** is an L2 eviction of a *clean* block whose most
  recent L2 fill was served by an LLC hit — i.e. the block travelled
  LLC → L2 → (unchanged) → LLC;
- a block's **CTC** is the length of its streak of consecutive clean
  trips; the streak finalises (is recorded in the histogram) when the
  block is written in L2 or evicted dirty, and any still-open streaks
  are flushed at end of run;
- the **loop-block fraction** (Fig. 4's y-axis) is clean-trip
  evictions over all L2 evictions.
"""

from __future__ import annotations

from typing import Dict

from ..cache.stats import LoopBlockStats


class LoopBlockTracker:
    """Measures loop-block populations independent of the active policy."""

    def __init__(self) -> None:
        self.stats = LoopBlockStats()
        self._streak: Dict[int, int] = {}
        self._from_llc: Dict[int, bool] = {}

    def on_l2_fill(self, addr: int, from_llc: bool) -> None:
        """An L2 fill; ``from_llc`` is True when the LLC supplied it."""
        self._from_llc[addr] = from_llc

    def on_dirtied(self, addr: int) -> None:
        """A store dirtied the block: its clean streak ends."""
        self._finalize(addr)

    def on_l2_evict(self, addr: int, dirty: bool) -> None:
        """An L2 eviction; classifies it as a clean trip or not."""
        self.stats.l2_evictions += 1
        if dirty:
            self._finalize(addr)
            return
        if self._from_llc.get(addr, False):
            self._streak[addr] = self._streak.get(addr, 0) + 1
            self.stats.loop_evictions += 1

    def is_loop(self, addr: int) -> bool:
        """True when ``addr`` has an open clean-trip streak (it has
        travelled L2↔LLC clean at least once without being written)."""
        return self._streak.get(addr, 0) > 0

    def on_clean_insert(self, addr: int) -> None:
        """A clean victim was *written* into the LLC; if it already had
        a clean-trip history the write is a redundant loop-block
        re-insertion (the energy-harmful event of Fig. 16)."""
        if self.is_loop(addr):
            self.stats.loop_reinsertions += 1

    def sample_llc_occupancy(self, valid: int, loops: int) -> None:
        """Accumulate one occupancy sample (Fig. 16's loop-block share)."""
        self.stats.llc_loop_samples += valid
        self.stats.llc_loop_blocks += loops

    def finalize(self) -> None:
        """Flush open streaks into the CTC histogram (end of run)."""
        for addr in list(self._streak):
            self._finalize(addr)

    @property
    def loop_block_fraction(self) -> float:
        """Fraction of L2 evictions that were clean trips (Fig. 4)."""
        return self.stats.loop_block_fraction

    def ctc_fractions(self) -> Dict[str, float]:
        """CTC bucket shares among loop-block lifetimes (Fig. 4 stacking)."""
        buckets = self.stats.ctc_buckets()
        total = sum(buckets.values())
        if total == 0:
            return {k: 0.0 for k in buckets}
        return {k: v / total for k, v in buckets.items()}

    def _finalize(self, addr: int) -> None:
        streak = self._streak.pop(addr, 0)
        if streak > 0:
            self.stats.record_ctc(streak)
