"""The paper's contribution: LAP, Lhybrid, loop-block machinery."""

from .lap import LAPPolicy, REPLACEMENT_MODES
from .lhybrid import LhybridPolicy
from .loop_bits import LoopBlockTracker
from .overheads import LAPOverheads, lap_overheads
from .policies import (
    HOMOGENEOUS_POLICIES,
    HYBRID_POLICIES,
    LAP_VARIANTS,
    LHYBRID_STAGES,
    make_policy,
    policy_names,
)

__all__ = [
    "LAPPolicy",
    "LhybridPolicy",
    "LoopBlockTracker",
    "LAPOverheads",
    "lap_overheads",
    "REPLACEMENT_MODES",
    "make_policy",
    "policy_names",
    "HOMOGENEOUS_POLICIES",
    "HYBRID_POLICIES",
    "LAP_VARIANTS",
    "LHYBRID_STAGES",
]
