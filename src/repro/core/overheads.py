"""Hardware-overhead accounting (paper Section III-D).

The paper argues LAP's cost is negligible: "one loop-bit per L2 and L3
cache block, ... two miss counters for the entire cache and a simple
comparator", with all data flows reusing pre-existing paths. This module
computes those overheads for any hierarchy configuration so the claim
can be checked quantitatively (the benchmark harness prints it next to
Table II).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hierarchy.config import HierarchyConfig

MISS_COUNTER_BITS = 32  # two per dueling controller (paper: "two miss counters")
PSEL_COMPARATOR = 1  # the "simple comparator"


@dataclass(frozen=True)
class LAPOverheads:
    """Storage added by LAP over the baseline hierarchy."""

    l2_loop_bits: int
    llc_loop_bits: int
    counter_bits: int
    data_bits: int  # total data-array bits, for the relative view

    @property
    def total_bits(self) -> int:
        return self.l2_loop_bits + self.llc_loop_bits + self.counter_bits

    @property
    def total_bytes(self) -> float:
        return self.total_bits / 8

    @property
    def relative_overhead(self) -> float:
        """Added bits as a fraction of data-array capacity."""
        return self.total_bits / self.data_bits

    def summary_rows(self) -> list:
        """Rows for the harness's overhead table."""
        return [
            ["L2 loop-bits", self.l2_loop_bits],
            ["LLC loop-bits", self.llc_loop_bits],
            ["dueling counters (bits)", self.counter_bits],
            ["total (bytes)", self.total_bytes],
            ["relative to data capacity", f"{self.relative_overhead:.6%}"],
        ]


def lap_overheads(config: HierarchyConfig) -> LAPOverheads:
    """Compute LAP's storage overhead for a hierarchy configuration.

    One loop-bit per L2 block (every core) and per LLC block, plus one
    pair of 32-bit miss counters for the replacement duel. (Lhybrid
    adds no storage: placement reuses the same loop-bits.)
    """
    block = config.block_size
    l2_blocks = config.ncores * (config.l2.size_bytes // block)
    llc_blocks = config.llc.size_bytes // block
    return LAPOverheads(
        l2_loop_bits=l2_blocks,
        llc_loop_bits=llc_blocks,
        counter_bits=2 * MISS_COUNTER_BITS,
        data_bits=(config.ncores * config.l2.size_bytes + config.llc.size_bytes) * 8,
    )
