"""Policy factory: every Table IV policy (and arena rival) by name.

Thin delegation layer over the policy registry
(:mod:`repro.arena.registry`), kept for API stability — the experiment
runner, the benchmark harness, and the examples all build policies
through :func:`make_policy`. The registry owns the catalog: names,
aliases, factories, paper anchors, kernel eligibility, and the curated
sets (``repro check`` default, ``--arena`` grid). See DESIGN.md §15
for the full per-policy table.

The tuples below are the *paper's* evaluated-policy groupings
(Section VI figures), which are fixed by the paper rather than by what
happens to be registered — they stay literal on purpose, and a test
asserts every member is a registered name.
"""

from __future__ import annotations

from ..arena import registry

# The evaluated-policy sets used throughout Section VI.
HOMOGENEOUS_POLICIES = ("non-inclusive", "exclusive", "flexclusion", "dswitch", "lap")
LAP_VARIANTS = ("lap-lru", "lap-loop", "lap")
HYBRID_POLICIES = ("non-inclusive", "exclusive", "flexclusion", "dswitch", "lap", "lhybrid")
LHYBRID_STAGES = ("lap", "lap+winv", "lap+loopstt", "lap+nloopsram", "lhybrid")


def policy_names() -> tuple:
    """Canonical (unaliased) registry names."""
    return registry.names()


def make_policy(name: str, **kwargs):
    """Instantiate a fresh inclusion policy by registry name or alias.

    Keyword arguments are forwarded to the policy constructor (e.g.
    ``duel_interval=...`` for the dueling policies). Unknown names
    raise :class:`~repro.errors.ConfigurationError` listing the valid
    names and suggesting the nearest match.
    """
    return registry.make(name, **kwargs)
