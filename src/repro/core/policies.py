"""Policy registry: every Table IV policy by name.

Central factory used by the experiment runner, the benchmark harness,
and the examples. Names accepted (paper's Table IV plus the Fig. 25
ablation stages):

=====================  ====================================================
``non-inclusive``      baseline inclusion property (alias ``noni``)
``exclusive``          exclusive policy (alias ``ex``)
``inclusive``          strictly inclusive LLC (not in Table IV; Fig. 1a)
``flexclusion``        capacity/bandwidth-driven dynamic switching
``dswitch``            write-aware dynamic switching
``lap``                full LAP with set-dueling replacement
``lap-lru``            LAP forced to LRU replacement
``lap-loop``           LAP forced to loop-aware replacement
``lhybrid``            LAP + all three hybrid placement stages
``lap+winv``           Fig. 25 stage: write-hit invalidation only
``lap+loopstt``        Fig. 25 stage: loop-blocks to STT-RAM only
``lap+nloopsram``      Fig. 25 stage: non-loop-blocks to SRAM only
=====================  ====================================================
"""

from __future__ import annotations

from typing import Callable, Dict

from ..errors import ConfigurationError
from ..inclusion.switching import DswitchPolicy, FLEXclusionPolicy
from ..inclusion.traditional import ExclusivePolicy, InclusivePolicy, NonInclusivePolicy
from .deadwrite import DeadWriteBypassExclusive, DeadWriteBypassLAP
from .lap import LAPPolicy
from .lhybrid import LhybridPolicy

_FACTORIES: Dict[str, Callable[..., object]] = {
    "non-inclusive": NonInclusivePolicy,
    "noni": NonInclusivePolicy,
    "exclusive": ExclusivePolicy,
    "ex": ExclusivePolicy,
    "inclusive": InclusivePolicy,
    "flexclusion": FLEXclusionPolicy,
    "dswitch": DswitchPolicy,
    "lap": lambda **kw: LAPPolicy(replacement_mode="duel", **kw),
    "lap-lru": lambda **kw: LAPPolicy(replacement_mode="lru", **kw),
    "lap-loop": lambda **kw: LAPPolicy(replacement_mode="loop", **kw),
    "lhybrid": lambda **kw: LhybridPolicy(winv=True, loop_stt=True, nloop_sram=True, **kw),
    "lap+winv": lambda **kw: LhybridPolicy(winv=True, loop_stt=False, nloop_sram=False, **kw),
    "lap+loopstt": lambda **kw: LhybridPolicy(winv=False, loop_stt=True, nloop_sram=False, **kw),
    "lap+nloopsram": lambda **kw: LhybridPolicy(winv=False, loop_stt=False, nloop_sram=True, **kw),
    "lap-rrip": lambda **kw: LAPPolicy(replacement_mode="duel", baseline="srrip", **kw),
    "lap+dwb": DeadWriteBypassLAP,
    "exclusive+dwb": lambda **kw: DeadWriteBypassExclusive(),
}

# The evaluated-policy sets used throughout Section VI.
HOMOGENEOUS_POLICIES = ("non-inclusive", "exclusive", "flexclusion", "dswitch", "lap")
LAP_VARIANTS = ("lap-lru", "lap-loop", "lap")
HYBRID_POLICIES = ("non-inclusive", "exclusive", "flexclusion", "dswitch", "lap", "lhybrid")
LHYBRID_STAGES = ("lap", "lap+winv", "lap+loopstt", "lap+nloopsram", "lhybrid")


def policy_names() -> tuple:
    """Canonical (unaliased) registry names."""
    return tuple(
        name for name in _FACTORIES if name not in ("noni", "ex")
    )


def make_policy(name: str, **kwargs):
    """Instantiate a fresh inclusion policy by registry name.

    Keyword arguments are forwarded to the policy constructor (e.g.
    ``duel_interval=...`` for the dueling policies).
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown policy {name!r}; known: {sorted(set(policy_names()))}"
        )
    return factory(**kwargs)
