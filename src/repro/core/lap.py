"""LAP: the Loop-block-Aware Policy (paper Section III).

LAP is a *new* inclusion model, not a switch between existing ones. Its
data flow (Fig. 8) combines the redundant-write-free halves of
non-inclusion and exclusion:

- **no invalidation on LLC hits** (from non-inclusion) — so loop-blocks
  keep their LLC copy and their next clean eviction needs no write;
- **no LLC fill on LLC misses** (from exclusion) — so redundant
  data-fills never happen;
- **selective clean writeback** — a clean L2 victim is written to the
  LLC only when no duplicate copy is already there; when a duplicate
  exists only the loop-bit in the (SRAM) tag array is refreshed;
- dirty victims update/insert as usual.

LLC writes therefore reduce to *non-duplicate* clean victims plus dirty
victims (Section III-A).

The replacement policy is the loop-block-aware scheme of Fig. 9:
leader sets duel loop-aware LRU (evict invalid → LRU non-loop-block →
LRU loop-block) against plain LRU on miss counts; follower sets adopt
the winner. The ``replacement_mode`` parameter exposes the paper's
ablations: ``"lru"`` (LAP-LRU), ``"loop"`` (LAP-Loop), ``"duel"``
(full LAP).
"""

from __future__ import annotations

from ..cache import CacheBlock, EvictedLine
from ..cache.replacement import LoopAwarePolicy, LRUPolicy, ReplacementPolicy, SRRIPPolicy
from ..errors import ConfigurationError
from ..inclusion.base import InclusionPolicy, LLCAccess
from ..inclusion.dueling import ROLE_LEADER_A, SetDueling, fewer_misses_wins

REPLACEMENT_MODES = ("duel", "lru", "loop")
BASELINES = ("lru", "srrip")


class LAPPolicy(InclusionPolicy):
    """The paper's primary contribution (Table IV row "LAP")."""

    name = "lap"
    invalidate_on_hit = False
    fill_on_miss = False
    clean_writeback = True  # selectively: only non-duplicates
    back_invalidates = False

    def __init__(
        self,
        replacement_mode: str = "duel",
        duel_period: int = 64,
        duel_interval: int = 4096,
        baseline: str = "lru",
    ) -> None:
        super().__init__()
        if replacement_mode not in REPLACEMENT_MODES:
            raise ConfigurationError(
                f"replacement_mode must be one of {REPLACEMENT_MODES}, got {replacement_mode!r}"
            )
        if baseline not in BASELINES:
            raise ConfigurationError(
                f"baseline must be one of {BASELINES}, got {baseline!r}"
            )
        self.replacement_mode = replacement_mode
        self.baseline = baseline
        if replacement_mode != "duel":
            self.name = f"lap-{replacement_mode}"
        if baseline != "lru":
            self.name = f"{self.name}@{baseline}"
        self._duel_period = duel_period
        self._duel_interval = duel_interval

        def make_baseline() -> ReplacementPolicy:
            # The loop-block-aware principle "can be easily applied to
            # any baseline policy" (Section III-B); RRIP is the paper's
            # named alternative.
            return SRRIPPolicy() if baseline == "srrip" else LRUPolicy()

        self._lru: ReplacementPolicy = make_baseline()
        self._loop_aware: ReplacementPolicy = LoopAwarePolicy(make_baseline())
        self.dueling: SetDueling | None = None

    def bind(self, hierarchy) -> None:
        super().bind(hierarchy)
        if self.replacement_mode == "duel":
            # Leader A = loop-block-aware, leader B = LRU; fewer misses
            # wins (Fig. 9's "Mloop > Mlru ? LRU : loop-block-aware").
            self.dueling = SetDueling(
                num_sets=self.llc.num_sets,
                period=self._duel_period,
                interval=self._duel_interval,
                winner_fn=fewer_misses_wins,
                initial_winner=ROLE_LEADER_A,
            )

    # ------------------------------------------------------------------
    # inclusion decisions
    # ------------------------------------------------------------------
    def llc_access(self, core: int, addr: int, is_write: bool) -> LLCAccess:
        if self.dueling is not None:
            self.dueling.tick()
        block = self._llc_lookup(core, addr)
        if block is not None:
            # Keep the copy (no invalidation on hits) — Fig. 8 row LAP.
            return LLCAccess(hit=True, tech=block.tech)
        # No LLC data-fill on misses: data goes to upper levels only.
        return LLCAccess(hit=False, tech=self.llc.tech)

    def l2_fill_loop_bit(self, llc_hit: bool) -> bool:
        # Fig. 10c: the block inserted into L2 on an LLC hit is predicted
        # to start (or continue) a clean trip.
        return llc_hit

    def on_l2_dirtied(self, block: CacheBlock) -> None:
        # Fig. 10a: a written block can no longer be a loop-block.
        block.set_loop_bit(False)

    def l2_victim(self, core: int, line: EvictedLine) -> None:
        llc = self.llc
        existing = llc.probe(line.addr)
        if line.dirty:
            if existing is not None:
                llc.update(existing, True)
                existing.set_loop_bit(False)
                llc.stats.update_writes += 1
                self.h.note_dirty_victim(line.addr)
                self.h.charge_llc_write(core, line.addr, existing.tech)
                self._record_duel_write(line.addr)
            else:
                self._place_and_insert(
                    core, line.addr, dirty=True, loop_bit=False, category="dirty_victim"
                )
            return
        if existing is not None:
            # Fig. 10b: the clean data is discarded; only the loop-bit in
            # the SRAM tag array is refreshed — no data-array write.
            existing.set_loop_bit(line.loop_bit)
            return
        # A clean victim with no duplicate: the one clean-writeback case.
        self._place_and_insert(
            core, line.addr, dirty=False, loop_bit=line.loop_bit, category="clean_victim"
        )

    # ------------------------------------------------------------------
    # replacement (Fig. 9)
    # ------------------------------------------------------------------
    def replacement_for(self, set_index: int) -> ReplacementPolicy:
        if self.replacement_mode == "lru":
            return self._lru
        if self.replacement_mode == "loop":
            return self._loop_aware
        choice = self.dueling.policy_for(set_index)
        return self._loop_aware if choice == ROLE_LEADER_A else self._lru

    def _record_duel_miss(self, addr: int) -> None:
        if self.dueling is not None:
            self.dueling.record_miss(self.llc.set_index(addr))
