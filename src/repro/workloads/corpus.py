"""Content-addressed trace corpus (DESIGN.md §16).

A corpus is a directory of verified trace archives addressed by the
SHA-256 of their bytes, plus a ``corpus.json`` manifest describing
each entry (digest, trace name, length, format version). Because
format-v2 archives are byte-deterministic, re-capturing the same
stream re-derives the same address — adding a duplicate is a no-op,
and two corpora holding the same trace agree on its identity. The
digest also rides inside :class:`~repro.exec.jobs.WorkloadSpec`
(``kind="trace"``), so the exec layer's result cache keys replayed
simulations by trace *content*, not path.

Layout::

    <root>/corpus.json
    <root>/objects/<sha256>.npz

``repro corpus add|list|verify`` is the CLI surface;
:func:`active_corpus` resolves the process-wide corpus for workload
building (``$REPRO_CORPUS_DIR`` — an environment variable so exec-pool
worker processes inherit it).
"""

from __future__ import annotations

import difflib
import hashlib
import json
import os
import pathlib
import shutil
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from ..errors import WorkloadError
from .trace import TraceGenerator
from .tracefile import (
    ReplayTrace,
    TraceInfo,
    load_trace,
    save_trace,
    trace_info,
    verify_trace,
)

MANIFEST_NAME = "corpus.json"
OBJECTS_DIR = "objects"
CORPUS_SCHEMA_VERSION = 1

#: Environment variable naming the default corpus directory. Set (not
#: just read) by the CLI's ``--corpus`` flag so pool workers building
#: trace workloads resolve the same corpus as the parent process.
ENV_CORPUS_DIR = "REPRO_CORPUS_DIR"

#: Shortest digest prefix accepted as a lookup key.
MIN_DIGEST_PREFIX = 8


def file_digest(path: Union[str, pathlib.Path]) -> str:
    """SHA-256 of a file's bytes — the corpus content address."""
    sha = hashlib.sha256()
    with open(path, "rb") as fh:
        for block in iter(lambda: fh.read(1 << 20), b""):
            sha.update(block)
    return sha.hexdigest()


@dataclass(frozen=True)
class CorpusEntry:
    """One manifest row: a verified trace archive and its identity."""

    digest: str
    name: str
    length: int
    instr_per_ref: float
    version: int
    size_bytes: int
    source: str = ""

    def as_dict(self) -> Dict:
        return {
            "digest": self.digest,
            "name": self.name,
            "length": self.length,
            "instr_per_ref": self.instr_per_ref,
            "version": self.version,
            "size_bytes": self.size_bytes,
            "source": self.source,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "CorpusEntry":
        try:
            return cls(
                digest=data["digest"],
                name=data["name"],
                length=int(data["length"]),
                instr_per_ref=float(data["instr_per_ref"]),
                version=int(data["version"]),
                size_bytes=int(data.get("size_bytes", 0)),
                source=data.get("source", ""),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise WorkloadError(f"malformed corpus entry: {exc}") from None


class TraceCorpus:
    """A content-addressed directory of trace archives + manifest."""

    def __init__(self, root: Union[str, pathlib.Path], create: bool = False) -> None:
        self.root = pathlib.Path(root)
        manifest = self.root / MANIFEST_NAME
        if not manifest.exists() and not create:
            raise WorkloadError(
                f"no trace corpus at {self.root} ({MANIFEST_NAME} missing); "
                "add a trace with `repro corpus add` to create one"
            )
        self._entries: Dict[str, CorpusEntry] = {}
        if manifest.exists():
            self._load_manifest(manifest)

    # ------------------------------------------------------------------
    # manifest I/O
    # ------------------------------------------------------------------
    def _load_manifest(self, manifest: pathlib.Path) -> None:
        try:
            doc = json.loads(manifest.read_text())
        except (OSError, ValueError) as exc:
            raise WorkloadError(f"cannot read {manifest}: {exc}") from None
        if doc.get("schema") != CORPUS_SCHEMA_VERSION:
            raise WorkloadError(
                f"{manifest} has schema {doc.get('schema')!r}; "
                f"expected {CORPUS_SCHEMA_VERSION}"
            )
        for raw in doc.get("traces", []):
            entry = CorpusEntry.from_dict(raw)
            self._entries[entry.digest] = entry

    def _write_manifest(self) -> None:
        doc = {
            "schema": CORPUS_SCHEMA_VERSION,
            "traces": [
                e.as_dict()
                for e in sorted(self._entries.values(), key=lambda e: (e.name, e.digest))
            ],
        }
        self.root.mkdir(parents=True, exist_ok=True)
        manifest = self.root / MANIFEST_NAME
        tmp = manifest.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, manifest)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> Tuple[CorpusEntry, ...]:
        """Every entry, ordered by trace name then digest."""
        return tuple(sorted(self._entries.values(), key=lambda e: (e.name, e.digest)))

    def names(self) -> Tuple[str, ...]:
        return tuple(e.name for e in self.entries())

    def object_path(self, digest: str) -> pathlib.Path:
        return self.root / OBJECTS_DIR / f"{digest}.npz"

    def get(self, ref: str) -> CorpusEntry:
        """Resolve a digest, a unique digest prefix, or a trace name."""
        if ref in self._entries:
            return self._entries[ref]
        by_name = [e for e in self.entries() if e.name == ref]
        if len(by_name) == 1:
            return by_name[0]
        if len(by_name) > 1:
            digests = ", ".join(e.digest[:12] for e in by_name)
            raise WorkloadError(
                f"trace name {ref!r} is ambiguous in {self.root}: "
                f"digests {digests} — use a digest (prefix)"
            )
        if len(ref) >= MIN_DIGEST_PREFIX:
            by_prefix = [d for d in self._entries if d.startswith(ref)]
            if len(by_prefix) == 1:
                return self._entries[by_prefix[0]]
            if len(by_prefix) > 1:
                raise WorkloadError(
                    f"digest prefix {ref!r} is ambiguous in {self.root} "
                    f"({len(by_prefix)} matches)"
                )
        message = (
            f"unknown trace {ref!r} in corpus {self.root}; "
            f"known traces: {', '.join(self.names()) or '(none)'}"
        )
        near = difflib.get_close_matches(ref, self.names(), n=1, cutoff=0.5)
        if near:
            message += f" (did you mean {near[0]!r}?)"
        raise WorkloadError(message)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(
        self,
        trace_path: Union[str, pathlib.Path],
        name: Optional[str] = None,
        source: Optional[str] = None,
    ) -> CorpusEntry:
        """Verify and ingest one trace archive; returns its entry.

        The archive is fully validated (:func:`verify_trace`) *before*
        it is copied, so a corpus never holds a trace that cannot
        replay. Adding content that is already present is a no-op
        returning the existing entry.
        """
        trace_path = pathlib.Path(trace_path)
        info = verify_trace(trace_path)
        digest = file_digest(info.path)
        existing = self._entries.get(digest)
        if existing is not None:
            return existing
        target = self.object_path(digest)
        target.parent.mkdir(parents=True, exist_ok=True)
        tmp = target.with_suffix(f".tmp.{os.getpid()}")
        shutil.copyfile(info.path, tmp)
        os.replace(tmp, target)
        entry = CorpusEntry(
            digest=digest,
            name=name or info.name,
            length=info.length,
            instr_per_ref=info.instr_per_ref,
            version=info.version,
            size_bytes=target.stat().st_size,
            source=str(source if source is not None else info.path),
        )
        self._entries[digest] = entry
        self._write_manifest()
        return entry

    def capture(
        self,
        generator: TraceGenerator,
        n: int,
        name: Optional[str] = None,
        batch: int = 65536,
    ) -> CorpusEntry:
        """Materialise ``n`` references from ``generator`` straight into
        the corpus (capture + add in one step)."""
        staging = self.root / OBJECTS_DIR / f"capture.tmp.{os.getpid()}.npz"
        staging.parent.mkdir(parents=True, exist_ok=True)
        try:
            save_trace(staging, generator, n, batch=batch)
            return self.add(staging, name=name, source=f"captured:{generator.name}")
        finally:
            staging.unlink(missing_ok=True)

    def remove(self, ref: str) -> CorpusEntry:
        """Drop an entry from the manifest and delete its object."""
        entry = self.get(ref)
        del self._entries[entry.digest]
        self.object_path(entry.digest).unlink(missing_ok=True)
        self._write_manifest()
        return entry

    # ------------------------------------------------------------------
    # verification / loading
    # ------------------------------------------------------------------
    def verify(self) -> List[str]:
        """Re-validate every entry; returns one problem string per fault.

        Checks, per entry: the object file exists, its bytes still hash
        to the manifest digest, the archive passes full
        :func:`verify_trace` validation (chunk lengths + checksum), and
        the archive's own metadata agrees with the manifest row. v1
        entries are reported as a problem — they carry no checksum, so
        content corruption is undetectable; re-add to migrate.
        """
        problems: List[str] = []
        for entry in self.entries():
            label = f"{entry.name} ({entry.digest[:12]})"
            path = self.object_path(entry.digest)
            if not path.exists():
                problems.append(f"{label}: object file {path} is missing")
                continue
            actual = file_digest(path)
            if actual != entry.digest:
                problems.append(
                    f"{label}: content address mismatch — file hashes to "
                    f"{actual[:12]}, manifest says {entry.digest[:12]}"
                )
                continue
            try:
                info = verify_trace(path)
            except WorkloadError as exc:
                problems.append(f"{label}: {exc}")
                continue
            if info.length != entry.length:
                problems.append(
                    f"{label}: archive holds {info.length} references, "
                    f"manifest says {entry.length}"
                )
            if info.version != entry.version:
                problems.append(
                    f"{label}: archive is format v{info.version}, "
                    f"manifest says v{entry.version}"
                )
            if info.version < 2:
                problems.append(
                    f"{label}: format v{info.version} carries no checksum; "
                    "re-add the trace to migrate it to v2"
                )
        return problems

    def load(self, ref: str, loop: bool = True, checksum: bool = False) -> ReplayTrace:
        """Load an entry as a :class:`ReplayTrace`."""
        entry = self.get(ref)
        path = self.object_path(entry.digest)
        if not path.exists():
            raise WorkloadError(
                f"corpus object for {entry.name!r} missing: {path} "
                "(run `repro corpus verify`)"
            )
        replay = load_trace(path, loop=loop, checksum=checksum)
        if len(replay) != entry.length:
            raise WorkloadError(
                f"corpus entry {entry.name!r} declares {entry.length} "
                f"references but archive replays {len(replay)}"
            )
        return replay

    def info(self, ref: str) -> TraceInfo:
        """Archive metadata for one entry (no arrays loaded)."""
        return trace_info(self.object_path(self.get(ref).digest))


# ----------------------------------------------------------------------
# the process-wide active corpus
# ----------------------------------------------------------------------
_ACTIVE: Optional[TraceCorpus] = None


def set_active_corpus(corpus: Optional[TraceCorpus]) -> Optional[TraceCorpus]:
    """Install the process-wide corpus; returns the previous one."""
    global _ACTIVE
    previous, _ACTIVE = _ACTIVE, corpus
    return previous


def active_corpus(required: bool = False) -> Optional[TraceCorpus]:
    """The installed corpus, else one from ``$REPRO_CORPUS_DIR``.

    Exec-pool workers rebuild trace workloads in fresh processes; they
    find the corpus through the environment variable, which the CLI
    sets before the pool starts.
    """
    if _ACTIVE is not None:
        return _ACTIVE
    root = os.environ.get(ENV_CORPUS_DIR)
    if root:
        return TraceCorpus(root)
    if required:
        raise WorkloadError(
            "no trace corpus configured: pass --corpus / --dir or set "
            f"${ENV_CORPUS_DIR}"
        )
    return None
