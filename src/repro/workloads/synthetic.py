"""Region-composing synthetic trace generator and cache-relative sizing.

:class:`ScaleContext` carries the simulated cache geometry so benchmark
definitions can size their regions *relative to the caches* ("working
set larger than L2 but smaller than the LLC") instead of in absolute
bytes — that is what makes the reproduction scale-invariant (see
DESIGN.md §2).

:class:`SyntheticTrace` interleaves several :class:`~repro.workloads.
regions.Region` behaviours with fixed per-reference probabilities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import WorkloadError
from ..utils import require_positive
from .regions import Region
from .trace import TraceGenerator


@dataclass(frozen=True)
class ScaleContext:
    """Cache geometry visible to workload builders.

    ``l2_bytes`` is the *per-core* private L2 capacity and ``llc_bytes``
    the shared LLC capacity; ``core_span`` is the address-space stride
    that keeps different cores' private benchmarks disjoint.
    """

    l1_bytes: int
    l2_bytes: int
    llc_bytes: int
    block_size: int = 64
    core_span: int = 1 << 40

    def __post_init__(self) -> None:
        require_positive(self.l1_bytes, "l1_bytes")
        require_positive(self.l2_bytes, "l2_bytes")
        require_positive(self.llc_bytes, "llc_bytes")
        if not self.l1_bytes <= self.l2_bytes <= self.llc_bytes:
            raise WorkloadError(
                "expected l1 <= l2 <= llc capacities, got "
                f"{self.l1_bytes}/{self.l2_bytes}/{self.llc_bytes}"
            )

    def blocks(self, nbytes: int) -> int:
        """Round a byte size up to whole blocks (at least one)."""
        return max(1, nbytes // self.block_size)

    def region_size(self, l2_multiple: float) -> int:
        """A region size expressed as a multiple of per-core L2 capacity,
        rounded to whole blocks."""
        raw = int(self.l2_bytes * l2_multiple)
        return max(self.block_size, (raw // self.block_size) * self.block_size)


class SyntheticTrace(TraceGenerator):
    """Mixes weighted regions into one reference stream.

    Parameters
    ----------
    regions:
        ``(region, weight)`` pairs; weights are normalised internally.
    seed:
        Seed for the trace's private RNG (region choice *and* every
        region's internal sampling randomness).
    instr_per_ref:
        Committed instructions represented by each memory reference
        (higher for compute-bound benchmarks).
    """

    def __init__(
        self,
        regions: Sequence[Tuple[Region, float]],
        seed: int,
        name: str = "synthetic",
        instr_per_ref: float = 4.0,
    ) -> None:
        if not regions:
            raise WorkloadError("SyntheticTrace needs at least one region")
        total = sum(w for _, w in regions)
        if total <= 0:
            raise WorkloadError("region weights must sum to a positive value")
        for _, w in regions:
            if w < 0:
                raise WorkloadError(f"negative region weight {w}")
        self.name = name
        self.instr_per_ref = float(instr_per_ref)
        self.regions: List[Region] = [r for r, _ in regions]
        self._probs = np.array([w / total for _, w in regions], dtype=float)
        self._rng = np.random.default_rng(seed)

    def batch(self, n: int) -> Tuple[np.ndarray, np.ndarray]:
        if n <= 0:
            raise WorkloadError(f"batch size must be positive, got {n}")
        if len(self.regions) == 1:
            return self.regions[0].sample(self._rng, n)
        choice = self._rng.choice(len(self.regions), size=n, p=self._probs)
        addrs = np.empty(n, dtype=np.uint64)
        writes = np.empty(n, dtype=bool)
        for idx, region in enumerate(self.regions):
            mask = choice == idx
            count = int(mask.sum())
            if count == 0:
                continue
            a, w = region.sample(self._rng, count)
            addrs[mask] = a
            writes[mask] = w
        return addrs, writes


class SharedStateTrace(TraceGenerator):
    """A per-thread view over regions shared with sibling threads.

    Multithreaded workloads build one set of shared :class:`Region`
    objects and hand each thread a :class:`SharedStateTrace` over them
    (plus thread-private regions). Because shared regions keep their
    internal cursors, threads collectively advance shared sweeps the way
    data-parallel workers split an iteration space.
    """

    def __init__(
        self,
        regions: Sequence[Tuple[Region, float]],
        seed: int,
        name: str,
        instr_per_ref: float = 4.0,
    ) -> None:
        self._inner = SyntheticTrace(regions, seed, name, instr_per_ref)
        self.name = name
        self.instr_per_ref = float(instr_per_ref)

    def batch(self, n: int) -> Tuple[np.ndarray, np.ndarray]:
        return self._inner.batch(n)
