"""Address-region behaviours for synthetic workloads.

The paper characterises each SPEC CPU2006 benchmark through a small set
of cache-visible behaviours: frequently re-read working sets sized
between L2 and the LLC (the loop-block source), streaming sweeps larger
than the LLC, read-then-modify streams (the redundant-data-fill source),
small hot sets that live in upper-level caches, and large
low-locality pointer-chasing sets. Each behaviour is a :class:`Region`
that draws block-granular addresses inside its own address range; a
:class:`~repro.workloads.synthetic.SyntheticTrace` mixes several
regions with per-reference weights.

All randomness flows through a ``numpy.random.Generator`` owned by the
composing trace, so workloads are fully deterministic per seed.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import WorkloadError
from ..utils import require_positive


class Region:
    """A contiguous address range with a sampling behaviour.

    Subclasses implement :meth:`sample`, returning ``n`` block-aligned
    addresses (absolute, offset by ``base``) and write flags.
    """

    def __init__(self, base: int, size_bytes: int, block_size: int = 64) -> None:
        require_positive(size_bytes, "region size_bytes")
        require_positive(block_size, "region block_size")
        if size_bytes < block_size:
            raise WorkloadError(
                f"region of {size_bytes}B smaller than one {block_size}B block"
            )
        self.base = base
        self.size_bytes = size_bytes
        self.block_size = block_size
        self.num_blocks = size_bytes // block_size

    def sample(self, rng: np.random.Generator, n: int) -> Tuple[np.ndarray, np.ndarray]:
        """Produce ``n`` (addrs, writes) drawn from this region."""
        raise NotImplementedError

    def _to_addrs(self, block_indices: np.ndarray) -> np.ndarray:
        return (block_indices.astype(np.uint64) * np.uint64(self.block_size)) + np.uint64(
            self.base
        )


class LoopRegion(Region):
    """Cyclic sequential sweep over a fixed working set.

    With a working set sized between L2 and the LLC this is the loop-
    block generator: every pass misses L2, hits the LLC, and travels
    back clean (``write_prob`` defaults to read-only). ``stride_blocks``
    models non-unit strides.
    """

    def __init__(
        self,
        base: int,
        size_bytes: int,
        block_size: int = 64,
        write_prob: float = 0.0,
        stride_blocks: int = 1,
    ) -> None:
        super().__init__(base, size_bytes, block_size)
        if not 0.0 <= write_prob <= 1.0:
            raise WorkloadError(f"write_prob must be in [0,1], got {write_prob}")
        self.write_prob = write_prob
        self.stride_blocks = stride_blocks
        self._pos = 0

    def sample(self, rng: np.random.Generator, n: int) -> Tuple[np.ndarray, np.ndarray]:
        steps = np.arange(self._pos, self._pos + n, dtype=np.int64) * self.stride_blocks
        blocks = steps % self.num_blocks
        self._pos += n
        writes = (
            rng.random(n) < self.write_prob
            if self.write_prob > 0
            else np.zeros(n, dtype=bool)
        )
        return self._to_addrs(blocks), writes


class StreamRegion(Region):
    """One-directional streaming sweep over a very large extent.

    Models lbm/bwaves-style traversals whose footprint exceeds the LLC:
    no block is revisited before wrapping. With ``rw_pair=True`` each
    block is read and then immediately written (read-modify-write
    streaming, the libquantum/GemsFDTD pattern) — under non-inclusion
    every fill of such a block into the LLC is *redundant*, because the
    copy is dirtied in L2 before any LLC reuse.
    """

    def __init__(
        self,
        base: int,
        size_bytes: int,
        block_size: int = 64,
        write_prob: float = 0.0,
        rw_pair: bool = False,
    ) -> None:
        super().__init__(base, size_bytes, block_size)
        if not 0.0 <= write_prob <= 1.0:
            raise WorkloadError(f"write_prob must be in [0,1], got {write_prob}")
        self.write_prob = write_prob
        self.rw_pair = rw_pair
        self._pos = 0
        self._pending_write_block = -1

    def sample(self, rng: np.random.Generator, n: int) -> Tuple[np.ndarray, np.ndarray]:
        if not self.rw_pair:
            blocks = np.arange(self._pos, self._pos + n, dtype=np.int64) % self.num_blocks
            self._pos += n
            writes = (
                rng.random(n) < self.write_prob
                if self.write_prob > 0
                else np.zeros(n, dtype=bool)
            )
            return self._to_addrs(blocks), writes

        blocks = np.empty(n, dtype=np.int64)
        writes = np.empty(n, dtype=bool)
        i = 0
        # Resume a split read/write pair from the previous batch.
        if self._pending_write_block >= 0 and i < n:
            blocks[i] = self._pending_write_block
            writes[i] = True
            self._pending_write_block = -1
            i += 1
        while i < n:
            blk = self._pos % self.num_blocks
            self._pos += 1
            blocks[i] = blk
            writes[i] = False
            i += 1
            if i < n:
                blocks[i] = blk
                writes[i] = True
                i += 1
            else:
                self._pending_write_block = blk
        return self._to_addrs(blocks), writes


class RandomRegion(Region):
    """Uniform random accesses inside a working set.

    With a working set far larger than the LLC this models mcf-style
    pointer chasing (near-zero reuse); with a small working set it is a
    generic mixed hot set.
    """

    def __init__(
        self,
        base: int,
        size_bytes: int,
        block_size: int = 64,
        write_prob: float = 0.2,
    ) -> None:
        super().__init__(base, size_bytes, block_size)
        if not 0.0 <= write_prob <= 1.0:
            raise WorkloadError(f"write_prob must be in [0,1], got {write_prob}")
        self.write_prob = write_prob

    def sample(self, rng: np.random.Generator, n: int) -> Tuple[np.ndarray, np.ndarray]:
        blocks = rng.integers(0, self.num_blocks, size=n, dtype=np.int64)
        writes = rng.random(n) < self.write_prob
        return self._to_addrs(blocks), writes


class HotRegion(RandomRegion):
    """A small, heavily re-referenced set that fits in upper-level caches.

    Present in every benchmark: it supplies the L1/L2 hits that make
    real workloads' LLC access rates per instruction realistic, and it
    is the dominant region of compute-bound benchmarks (blackscholes,
    swaptions).
    """

    def __init__(
        self,
        base: int,
        size_bytes: int,
        block_size: int = 64,
        write_prob: float = 0.3,
    ) -> None:
        super().__init__(base, size_bytes, block_size, write_prob)


class WriteBurstRegion(Region):
    """Blocks that are read and rewritten several times while hot.

    Models bzip2/zeusmp-style dirty reuse: a block is picked, touched
    ``burst`` times with a high write fraction, then abandoned. Such
    blocks leave L2 dirty, so they are *never* loop-blocks, and their
    LLC copies (under non-inclusion) are repeatedly updated.
    """

    def __init__(
        self,
        base: int,
        size_bytes: int,
        block_size: int = 64,
        burst: int = 4,
        write_prob: float = 0.6,
    ) -> None:
        super().__init__(base, size_bytes, block_size)
        if burst < 1:
            raise WorkloadError(f"burst must be >= 1, got {burst}")
        self.burst = burst
        self.write_prob = write_prob
        self._current_block = -1
        self._left_in_burst = 0

    def sample(self, rng: np.random.Generator, n: int) -> Tuple[np.ndarray, np.ndarray]:
        blocks = np.empty(n, dtype=np.int64)
        for i in range(n):
            if self._left_in_burst <= 0:
                self._current_block = int(rng.integers(0, self.num_blocks))
                self._left_in_burst = self.burst
            blocks[i] = self._current_block
            self._left_in_burst -= 1
        writes = rng.random(n) < self.write_prob
        return self._to_addrs(blocks), writes
