"""Memory-reference traces.

The simulator is trace-driven: each core consumes a stream of
``(address, is_write)`` references. Streams are produced in NumPy
batches for speed, via the :class:`TraceGenerator` interface. A small
:class:`MemRef` record and :class:`FixedTrace` exist for hand-written
micro-traces (the Fig. 3 / Fig. 5 walk-throughs and unit tests).

Every reference stands for one memory instruction; the surrounding
non-memory instructions are accounted through the generator's
``instr_per_ref`` weight (committed instructions per memory reference),
which feeds both the EPI denominator and the timing model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from ..errors import WorkloadError


@dataclass(frozen=True)
class MemRef:
    """One memory reference: block-addressable byte address + op kind."""

    addr: int
    is_write: bool = False
    comment: str = ""


class TraceGenerator:
    """Produces memory references in batches.

    Subclasses implement :meth:`batch`; consumers must treat generators
    as stateful single-pass streams. ``instr_per_ref`` scales references
    to committed instructions.
    """

    name: str = "trace"
    instr_per_ref: float = 4.0

    def batch(self, n: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return the next ``n`` references as (addrs:uint64, writes:bool)."""
        raise NotImplementedError

    def refs(self, n: int) -> Iterable[MemRef]:
        """Convenience scalar iterator over the next ``n`` references."""
        addrs, writes = self.batch(n)
        for a, w in zip(addrs.tolist(), writes.tolist()):
            yield MemRef(int(a), bool(w))


class FixedTrace(TraceGenerator):
    """A finite, hand-authored reference list; raises when exhausted.

    Used by the Fig. 3 / Fig. 5 micro-flow reproductions, where the
    exact sequence of fills, hits, and evictions matters.
    """

    def __init__(self, refs: Sequence[MemRef], name: str = "fixed", instr_per_ref: float = 1.0):
        if not refs:
            raise WorkloadError("FixedTrace needs at least one reference")
        self.name = name
        self.instr_per_ref = instr_per_ref
        self._refs: List[MemRef] = list(refs)
        self._pos = 0

    def __len__(self) -> int:
        return len(self._refs)

    @property
    def remaining(self) -> int:
        """References left before exhaustion."""
        return len(self._refs) - self._pos

    def batch(self, n: int) -> Tuple[np.ndarray, np.ndarray]:
        if self._pos + n > len(self._refs):
            raise WorkloadError(
                f"FixedTrace {self.name!r} exhausted: asked for {n}, "
                f"only {self.remaining} remain"
            )
        chunk = self._refs[self._pos : self._pos + n]
        self._pos += n
        addrs = np.fromiter((r.addr for r in chunk), dtype=np.uint64, count=n)
        writes = np.fromiter((r.is_write for r in chunk), dtype=bool, count=n)
        return addrs, writes


class ConcatTrace(TraceGenerator):
    """Chains several generators, consuming each in turn.

    Useful for phase-change workloads (e.g. testing that dynamic
    switching policies actually switch between program phases).
    """

    def __init__(
        self,
        parts: Sequence[Tuple[TraceGenerator, int]],
        name: str = "concat",
    ) -> None:
        if not parts:
            raise WorkloadError("ConcatTrace needs at least one part")
        self.name = name
        self._parts = list(parts)
        self._index = 0
        self._consumed_in_part = 0
        self.instr_per_ref = parts[0][0].instr_per_ref

    def batch(self, n: int) -> Tuple[np.ndarray, np.ndarray]:
        addr_chunks: List[np.ndarray] = []
        write_chunks: List[np.ndarray] = []
        need = n
        while need > 0:
            if self._index >= len(self._parts):
                # Loop back to the first phase so the stream is endless.
                self._index = 0
                self._consumed_in_part = 0
            gen, budget = self._parts[self._index]
            take = min(need, budget - self._consumed_in_part)
            if take <= 0:
                self._index += 1
                self._consumed_in_part = 0
                continue
            a, w = gen.batch(take)
            addr_chunks.append(a)
            write_chunks.append(w)
            self._consumed_in_part += take
            need -= take
            self.instr_per_ref = gen.instr_per_ref
        return np.concatenate(addr_chunks), np.concatenate(write_chunks)
