"""PARSEC-like multithreaded synthetic workloads (Fig. 20).

Each workload builds one set of *shared* regions — region objects whose
internal cursors are advanced collectively by all threads, the way
data-parallel workers split an iteration space — plus per-thread private
regions. Threads draw from both through their own seeded RNGs.

Parameters follow the paper's characterisations: blackscholes,
bodytrack, and swaptions are compute-intensive with small footprints;
canneal chases pointers over a set much larger than the LLC;
streamcluster "demands high cache capacity and frequently reuses clean
data with a footprint larger than L2 but smaller than the LLC" — the
loop-block-rich case where the paper reports LAP's largest
multithreaded savings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from ..errors import WorkloadError
from .regions import HotRegion, LoopRegion, RandomRegion, Region, StreamRegion
from .spec import REGION_SPAN
from .synthetic import ScaleContext, SharedStateTrace
from .trace import TraceGenerator

RegionList = List[Tuple[Region, float]]
SharedBuilder = Callable[[ScaleContext, int], RegionList]
PrivateBuilder = Callable[[ScaleContext, int], RegionList]


@dataclass(frozen=True)
class ParsecSpec:
    """A multithreaded workload: shared + per-thread region builders."""

    name: str
    description: str
    instr_per_ref: float
    shared_builder: SharedBuilder
    private_builder: PrivateBuilder

    def build_threads(
        self, ctx: ScaleContext, seed: int, nthreads: int, base: int = 0
    ) -> List[TraceGenerator]:
        """One generator per thread over common shared-region objects."""
        if nthreads < 1:
            raise WorkloadError(f"need at least one thread, got {nthreads}")
        shared = self.shared_builder(ctx, base)
        threads: List[TraceGenerator] = []
        for tid in range(nthreads):
            private_base = base + (8 + tid * 4) * REGION_SPAN
            regions = list(shared) + self.private_builder(ctx, private_base)
            threads.append(
                SharedStateTrace(
                    regions,
                    seed=seed * 1009 + tid,
                    name=f"{self.name}.t{tid}",
                    instr_per_ref=self.instr_per_ref,
                )
            )
        return threads


PARSEC_BENCHMARKS: Dict[str, ParsecSpec] = {}


def _register(
    name: str, description: str, instr_per_ref: float
) -> Callable[[Callable[[ScaleContext, int], Tuple[RegionList, RegionList]]], None]:
    def deco(fn: Callable[[ScaleContext, int], Tuple[RegionList, RegionList]]) -> None:
        def shared_builder(ctx: ScaleContext, base: int) -> RegionList:
            return fn(ctx, base)[0]

        def private_builder(ctx: ScaleContext, base: int) -> RegionList:
            return fn(ctx, base)[1]

        PARSEC_BENCHMARKS[name] = ParsecSpec(
            name=name,
            description=description,
            instr_per_ref=instr_per_ref,
            shared_builder=shared_builder,
            private_builder=private_builder,
        )

    return deco


def _slot(base: int, i: int) -> int:
    return base + i * REGION_SPAN


def _llc_frac(ctx: ScaleContext, frac: float) -> int:
    raw = int(ctx.llc_bytes * frac)
    return max(ctx.block_size, (raw // ctx.block_size) * ctx.block_size)


@_register(
    "blackscholes",
    "Option pricing: compute-bound, tiny per-thread footprint, few memory "
    "requests reaching the LLC.",
    12.0,
)
def _blackscholes(ctx: ScaleContext, base: int):
    shared = [
        (RandomRegion(_slot(base, 0), _llc_frac(ctx, 0.015), ctx.block_size, write_prob=0.05), 0.15)
    ]
    private = [
        (HotRegion(_slot(base, 0), ctx.region_size(0.3), ctx.block_size, write_prob=0.25), 0.85),
    ]
    return shared, private


@_register(
    "swaptions",
    "Swaption pricing: compute-bound Monte-Carlo with small private state.",
    14.0,
)
def _swaptions(ctx: ScaleContext, base: int):
    shared = [
        (RandomRegion(_slot(base, 0), _llc_frac(ctx, 0.01), ctx.block_size, write_prob=0.02), 0.10)
    ]
    private = [
        (HotRegion(_slot(base, 0), ctx.region_size(0.25), ctx.block_size, write_prob=0.30), 0.90),
    ]
    return shared, private


@_register(
    "bodytrack",
    "Computer vision: shared read-mostly image data plus per-thread "
    "particle state.",
    8.0,
)
def _bodytrack(ctx: ScaleContext, base: int):
    # Particles are partitioned per thread (each re-reads its own slice
    # of the image/particle data); the small shared state is the model
    # configuration, occasionally updated.
    shared = [
        (RandomRegion(_slot(base, 1), _llc_frac(ctx, 0.04), ctx.block_size, write_prob=0.15), 0.10),
    ]
    private = [
        (LoopRegion(_slot(base, 1), _llc_frac(ctx, 0.04), ctx.block_size, write_prob=0.30), 0.30),
        (HotRegion(_slot(base, 0), ctx.region_size(0.4), ctx.block_size, write_prob=0.25), 0.60),
    ]
    return shared, private


@_register(
    "canneal",
    "Chip routing via simulated annealing: random pointer chasing over a "
    "shared netlist much larger than the LLC, with element swaps (writes).",
    3.0,
)
def _canneal(ctx: ScaleContext, base: int):
    shared = [
        (RandomRegion(_slot(base, 0), ctx.llc_bytes * 6, ctx.block_size, write_prob=0.20), 0.65),
    ]
    private = [
        (HotRegion(_slot(base, 0), ctx.region_size(0.3), ctx.block_size, write_prob=0.25), 0.35),
    ]
    return shared, private


@_register(
    "dedup",
    "Compression pipeline: streaming input chunks (read-modify-write) plus "
    "a shared hash table.",
    3.5,
)
def _dedup(ctx: ScaleContext, base: int):
    shared = [
        (StreamRegion(_slot(base, 0), ctx.llc_bytes * 16, ctx.block_size, rw_pair=True), 0.35),
        (RandomRegion(_slot(base, 1), _llc_frac(ctx, 1.1), ctx.block_size, write_prob=0.30), 0.25),
    ]
    private = [
        (HotRegion(_slot(base, 0), ctx.region_size(0.3), ctx.block_size, write_prob=0.25), 0.40),
    ]
    return shared, private


@_register(
    "ferret",
    "Content-based similarity search: shared image database re-read by all "
    "threads (moderate loop-block population).",
    5.0,
)
def _ferret(ctx: ScaleContext, base: int):
    # Pipeline stages work on thread-affine slices of the database
    # (re-read clean) and index lookups touch a shared table slightly
    # larger than the LLC.
    shared = [
        (RandomRegion(_slot(base, 0), _llc_frac(ctx, 1.2), ctx.block_size, write_prob=0.10), 0.20),
    ]
    private = [
        (LoopRegion(_slot(base, 1), _llc_frac(ctx, 0.12), ctx.block_size), 0.20),
        (HotRegion(_slot(base, 0), ctx.region_size(0.35), ctx.block_size, write_prob=0.25), 0.60),
    ]
    return shared, private


@_register(
    "fluidanimate",
    "Fluid dynamics: shared particle grid streamed with in-place dirty "
    "updates plus private accumulation state.",
    4.0,
)
def _fluidanimate(ctx: ScaleContext, base: int):
    # The grid is spatially partitioned: each thread sweeps its own
    # sub-grid (thread-affine, together ~1.3x the LLC so exclusion's
    # capacity benefit shows), exchanging only boundary cells.
    shared = [
        (RandomRegion(_slot(base, 0), _llc_frac(ctx, 0.05), ctx.block_size, write_prob=0.30), 0.08),
    ]
    private = [
        (LoopRegion(_slot(base, 1), _llc_frac(ctx, 0.33), ctx.block_size, write_prob=0.30), 0.40),
        (HotRegion(_slot(base, 0), ctx.region_size(0.4), ctx.block_size, write_prob=0.30), 0.52),
    ]
    return shared, private


@_register(
    "freqmine",
    "Frequent itemset mining: shared FP-tree with read-dominant traversal "
    "that mostly fits in the LLC.",
    5.0,
)
def _freqmine(ctx: ScaleContext, base: int):
    # FP-growth mines thread-private projected trees; the global tree
    # root area is shared read-mostly.
    shared = [
        (RandomRegion(_slot(base, 0), _llc_frac(ctx, 0.06), ctx.block_size, write_prob=0.05), 0.10),
    ]
    private = [
        (RandomRegion(_slot(base, 1), _llc_frac(ctx, 0.10), ctx.block_size, write_prob=0.35), 0.28),
        (HotRegion(_slot(base, 0), ctx.region_size(0.35), ctx.block_size, write_prob=0.25), 0.62),
    ]
    return shared, private


@_register(
    "streamcluster",
    "Online clustering: shared point set larger than L2 but smaller than "
    "the LLC, re-read clean every iteration — the loop-block-dominated "
    "case with the paper's largest multithreaded LAP savings.",
    3.5,
)
def _streamcluster(ctx: ScaleContext, base: int):
    # Each thread repeatedly re-reads its own partition of the point
    # set (clean, between L2 and the LLC: the loop-block source) and
    # all threads share the small set of cluster centres.
    shared = [
        (LoopRegion(_slot(base, 0), _llc_frac(ctx, 0.04), ctx.block_size, write_prob=0.10), 0.12),
    ]
    private = [
        (LoopRegion(_slot(base, 1), _llc_frac(ctx, 0.28), ctx.block_size), 0.50),
        (StreamRegion(_slot(base, 2), ctx.llc_bytes * 8, ctx.block_size, write_prob=0.10), 0.08),
        (HotRegion(_slot(base, 0), ctx.region_size(0.25), ctx.block_size, write_prob=0.25), 0.30),
    ]
    return shared, private


@_register(
    "x264",
    "Video encoding: streaming frame data with moderate writes plus "
    "per-thread macroblock state.",
    5.0,
)
def _x264(ctx: ScaleContext, base: int):
    shared = [
        (StreamRegion(_slot(base, 0), ctx.llc_bytes * 10, ctx.block_size, write_prob=0.25), 0.30),
        (LoopRegion(_slot(base, 1), _llc_frac(ctx, 0.20), ctx.block_size), 0.15),
    ]
    private = [
        (HotRegion(_slot(base, 0), ctx.region_size(0.4), ctx.block_size, write_prob=0.30), 0.55),
    ]
    return shared, private


# Order used on Fig. 20's x-axis (the PARSEC benchmarks we model).
PARSEC_ORDER = (
    "blackscholes",
    "bodytrack",
    "canneal",
    "dedup",
    "ferret",
    "fluidanimate",
    "freqmine",
    "streamcluster",
    "swaptions",
    "x264",
)


def get_parsec(name: str) -> ParsecSpec:
    """Look up a PARSEC-like workload spec by name."""
    try:
        return PARSEC_BENCHMARKS[name]
    except KeyError:
        raise WorkloadError(f"unknown PARSEC workload {name!r}; known: {sorted(PARSEC_BENCHMARKS)}")
