"""Synthetic workloads: traces, regions, SPEC/PARSEC analogues, mixes."""

from .mixes import (
    MULTIPROGRAMMED,
    MULTITHREADED,
    TABLE3_MIXES,
    TABLE3_ORDER,
    WH_MIXES,
    WL_MIXES,
    Workload,
    make_duplicate,
    make_multiprogrammed,
    make_multithreaded,
    make_table3_mix,
    random_mixes,
)
from .parsec import PARSEC_BENCHMARKS, PARSEC_ORDER, ParsecSpec, get_parsec
from .regions import (
    HotRegion,
    LoopRegion,
    RandomRegion,
    Region,
    StreamRegion,
    WriteBurstRegion,
)
from .spec import (
    PAPER_BENCHMARK_ORDER,
    SPEC_BENCHMARKS,
    BenchmarkSpec,
    benchmark_names,
    build_benchmark,
    get_benchmark,
)
from .synthetic import ScaleContext, SharedStateTrace, SyntheticTrace
from .trace import ConcatTrace, FixedTrace, MemRef, TraceGenerator

__all__ = [
    "MemRef",
    "TraceGenerator",
    "FixedTrace",
    "ConcatTrace",
    "Region",
    "LoopRegion",
    "StreamRegion",
    "RandomRegion",
    "HotRegion",
    "WriteBurstRegion",
    "ScaleContext",
    "SyntheticTrace",
    "SharedStateTrace",
    "BenchmarkSpec",
    "SPEC_BENCHMARKS",
    "PAPER_BENCHMARK_ORDER",
    "benchmark_names",
    "get_benchmark",
    "build_benchmark",
    "ParsecSpec",
    "PARSEC_BENCHMARKS",
    "PARSEC_ORDER",
    "get_parsec",
    "Workload",
    "MULTIPROGRAMMED",
    "MULTITHREADED",
    "TABLE3_MIXES",
    "TABLE3_ORDER",
    "WL_MIXES",
    "WH_MIXES",
    "make_multiprogrammed",
    "make_duplicate",
    "make_table3_mix",
    "make_multithreaded",
    "random_mixes",
]
