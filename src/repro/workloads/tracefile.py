"""Trace capture and replay.

Synthetic generators are cheap, but two workflows need materialised
traces: (a) archiving the exact reference stream behind a published
result, and (b) feeding externally collected traces (e.g. from a binary
instrumentation tool) into the simulator. Traces are stored as
compressed ``.npz`` archives holding the address/write arrays plus
metadata (name, ``instr_per_ref``, capture length).

``save_trace`` materialises N references from any generator;
``load_trace`` returns a :class:`ReplayTrace` that streams them back
through the standard :class:`~repro.workloads.trace.TraceGenerator`
interface (optionally looping when the consumer asks for more
references than were captured).
"""

from __future__ import annotations

import json
import pathlib
from typing import Tuple, Union

import numpy as np

from ..errors import WorkloadError
from .trace import TraceGenerator

FORMAT_VERSION = 1


def save_trace(
    path: Union[str, pathlib.Path],
    generator: TraceGenerator,
    n: int,
    batch: int = 65536,
) -> pathlib.Path:
    """Materialise ``n`` references from ``generator`` into ``path``.

    Returns the written path (``.npz`` appended if missing).
    """
    if n <= 0:
        raise WorkloadError(f"trace length must be positive, got {n}")
    path = pathlib.Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    addr_chunks = []
    write_chunks = []
    remaining = n
    while remaining > 0:
        take = min(batch, remaining)
        addrs, writes = generator.batch(take)
        addr_chunks.append(np.asarray(addrs, dtype=np.uint64))
        write_chunks.append(np.asarray(writes, dtype=bool))
        remaining -= take
    meta = {
        "version": FORMAT_VERSION,
        "name": generator.name,
        "instr_per_ref": float(generator.instr_per_ref),
        "length": int(n),
    }
    np.savez_compressed(
        path,
        addrs=np.concatenate(addr_chunks),
        writes=np.concatenate(write_chunks),
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
    )
    return path


class ReplayTrace(TraceGenerator):
    """Streams a captured trace back in batches.

    ``loop=True`` wraps around at the end (useful for driving arbitrary
    run lengths); ``loop=False`` raises :class:`WorkloadError` when the
    capture is exhausted, mirroring :class:`FixedTrace`.
    """

    def __init__(
        self,
        addrs: np.ndarray,
        writes: np.ndarray,
        name: str,
        instr_per_ref: float,
        loop: bool = True,
    ) -> None:
        if len(addrs) != len(writes):
            raise WorkloadError(
                f"corrupt trace: {len(addrs)} addresses vs {len(writes)} write flags"
            )
        if len(addrs) == 0:
            raise WorkloadError("empty trace")
        self._addrs = np.asarray(addrs, dtype=np.uint64)
        self._writes = np.asarray(writes, dtype=bool)
        self.name = name
        self.instr_per_ref = float(instr_per_ref)
        self.loop = loop
        self._pos = 0
        self._consumed = 0

    def __len__(self) -> int:
        return len(self._addrs)

    def batch(self, n: int) -> Tuple[np.ndarray, np.ndarray]:
        if n <= 0:
            raise WorkloadError(f"batch size must be positive, got {n}")
        total = len(self._addrs)
        if not self.loop and self._consumed + n > total:
            raise WorkloadError(
                f"trace {self.name!r} exhausted: asked for {n}, "
                f"{total - self._consumed} remain (pass loop=True to wrap)"
            )
        self._consumed += n
        out_a = np.empty(n, dtype=np.uint64)
        out_w = np.empty(n, dtype=bool)
        filled = 0
        while filled < n:
            take = min(n - filled, total - self._pos)
            out_a[filled : filled + take] = self._addrs[self._pos : self._pos + take]
            out_w[filled : filled + take] = self._writes[self._pos : self._pos + take]
            self._pos = (self._pos + take) % total
            filled += take
        return out_a, out_w


def load_trace(path: Union[str, pathlib.Path], loop: bool = True) -> ReplayTrace:
    """Load a trace written by :func:`save_trace`."""
    path = pathlib.Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    try:
        archive = np.load(path)
    except (OSError, ValueError) as exc:
        raise WorkloadError(f"cannot read trace file {path}: {exc}")
    try:
        meta = json.loads(bytes(archive["meta"]).decode())
        addrs = archive["addrs"]
        writes = archive["writes"]
    except KeyError as exc:
        raise WorkloadError(f"trace file {path} missing field {exc}")
    if meta.get("version") != FORMAT_VERSION:
        raise WorkloadError(
            f"trace file {path} has format version {meta.get('version')}; "
            f"expected {FORMAT_VERSION}"
        )
    return ReplayTrace(
        addrs,
        writes,
        name=meta.get("name", path.stem),
        instr_per_ref=meta.get("instr_per_ref", 4.0),
        loop=loop,
    )
