"""Trace capture and replay (format v2: chunked, checksummed).

Synthetic generators are cheap, but two workflows need materialised
traces: (a) archiving the exact reference stream behind a published
result, and (b) feeding externally collected traces (e.g. from a binary
instrumentation tool) into the simulator. Traces are stored as ``.npz``
zip archives holding the address/write arrays plus metadata.

Format v2 (DESIGN.md §16) is built for *large* traces and for corpus
verification:

- the reference stream is stored as a sequence of chunk members
  (``chunk_0000_addrs`` / ``chunk_0000_writes`` …) so ingestion via
  :class:`TraceWriter` streams chunk-by-chunk without ever holding the
  whole trace in memory;
- the ``meta`` member records the format version, the capture length,
  the per-chunk lengths, and a SHA-256 checksum over the canonical
  chunk bytes, so a truncated or hand-edited archive is *detectable*
  (:func:`verify_trace`, ``repro corpus verify``) instead of silently
  replaying wrong;
- archives are written with pinned zip timestamps, so re-capturing the
  same stream yields byte-identical files — a requirement for the
  content-addressed corpus (:mod:`repro.workloads.corpus`).

Format v1 (a single ``addrs``/``writes`` pair, no chunking, no
checksum) is still loadable; :func:`load_trace` validates its array
lengths against the recorded capture length, and :func:`verify_trace`
flags the missing checksum so corpora can be migrated by re-adding.

``save_trace`` materialises N references from any generator;
``load_trace`` returns a :class:`ReplayTrace` that streams them back
through the standard :class:`~repro.workloads.trace.TraceGenerator`
interface (optionally looping when the consumer asks for more
references than were captured).
"""

from __future__ import annotations

import hashlib
import io
import json
import pathlib
import zipfile
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

import numpy as np

from ..errors import WorkloadError
from .trace import TraceGenerator

#: Current on-disk format. v1 = one addrs/writes pair, no checksum;
#: v2 = chunked members + per-chunk lengths + SHA-256 checksum.
FORMAT_VERSION = 2
SUPPORTED_VERSIONS = (1, 2)

#: Pinned member timestamp so identical content produces identical
#: bytes (the corpus content-addresses whole files).
_ZIP_DATE = (2020, 1, 1, 0, 0, 0)

_META_MEMBER = "meta"


def _chunk_digest(sha: "hashlib._Hash", addrs: np.ndarray, writes: np.ndarray) -> None:
    """Fold one chunk into the running checksum, canonically encoded
    (little-endian u8 addresses, one byte per write flag) so the digest
    is platform-independent."""
    sha.update(np.ascontiguousarray(addrs, dtype="<u8").tobytes())
    sha.update(np.ascontiguousarray(writes, dtype="u1").tobytes())


def _write_member(zf: zipfile.ZipFile, name: str, arr: np.ndarray) -> None:
    buf = io.BytesIO()
    np.lib.format.write_array(buf, np.ascontiguousarray(arr), allow_pickle=False)
    info = zipfile.ZipInfo(name + ".npy", date_time=_ZIP_DATE)
    info.compress_type = zipfile.ZIP_DEFLATED
    zf.writestr(info, buf.getvalue())


@dataclass(frozen=True)
class TraceInfo:
    """One trace file's metadata (no reference arrays loaded)."""

    path: pathlib.Path
    version: int
    name: str
    length: int
    instr_per_ref: float
    chunks: int
    checksum: Optional[str]

    def as_dict(self) -> dict:
        return {
            "path": str(self.path),
            "version": self.version,
            "name": self.name,
            "length": self.length,
            "instr_per_ref": self.instr_per_ref,
            "chunks": self.chunks,
            "checksum": self.checksum,
        }


class TraceWriter:
    """Streaming trace ingestion: append chunks, then :meth:`close`.

    Memory use is bounded by the largest appended chunk — the writer
    never concatenates. ``expected_length`` (when given) is enforced at
    close time, so a short capture fails loudly instead of recording a
    ``length`` that lies. Use as a context manager; an exception inside
    the ``with`` block aborts the write and removes the partial file.
    """

    def __init__(
        self,
        path: Union[str, pathlib.Path],
        name: str,
        instr_per_ref: float,
        expected_length: Optional[int] = None,
    ) -> None:
        path = pathlib.Path(path)
        if path.suffix != ".npz":
            path = path.with_suffix(path.suffix + ".npz")
        self.path = path
        self.name = name
        self.instr_per_ref = float(instr_per_ref)
        self.expected_length = expected_length
        self._chunk_lengths: List[int] = []
        self._sha = hashlib.sha256()
        self._closed = False
        try:
            self._zip = zipfile.ZipFile(path, "w", zipfile.ZIP_DEFLATED)
        except OSError as exc:
            raise WorkloadError(f"cannot write trace file {path}: {exc}") from None

    @property
    def length(self) -> int:
        """References appended so far."""
        return sum(self._chunk_lengths)

    def append(self, addrs, writes) -> None:
        """Append one chunk of references to the archive."""
        if self._closed:
            raise WorkloadError(f"trace writer for {self.path} is closed")
        addrs = np.asarray(addrs, dtype=np.uint64)
        writes = np.asarray(writes, dtype=bool)
        if len(addrs) != len(writes):
            raise WorkloadError(
                f"chunk length mismatch: {len(addrs)} addresses vs "
                f"{len(writes)} write flags"
            )
        if len(addrs) == 0:
            raise WorkloadError("cannot append an empty chunk")
        index = len(self._chunk_lengths)
        _write_member(self._zip, f"chunk_{index:04d}_addrs", addrs)
        _write_member(self._zip, f"chunk_{index:04d}_writes", writes)
        _chunk_digest(self._sha, addrs, writes)
        self._chunk_lengths.append(len(addrs))

    def close(self) -> pathlib.Path:
        """Finalise the archive: write the ``meta`` member and close."""
        if self._closed:
            return self.path
        if not self._chunk_lengths:
            self.abort()
            raise WorkloadError(f"trace {self.path} has no chunks; nothing written")
        total = self.length
        if self.expected_length is not None and total != self.expected_length:
            self.abort()
            raise WorkloadError(
                f"short capture for {self.path}: expected "
                f"{self.expected_length} references, got {total}"
            )
        meta = {
            "version": FORMAT_VERSION,
            "name": self.name,
            "instr_per_ref": self.instr_per_ref,
            "length": int(total),
            "chunk_lengths": [int(c) for c in self._chunk_lengths],
            "checksum": self._sha.hexdigest(),
        }
        _write_member(
            self._zip,
            _META_MEMBER,
            np.frombuffer(json.dumps(meta, sort_keys=True).encode(), dtype=np.uint8),
        )
        self._zip.close()
        self._closed = True
        return self.path

    def abort(self) -> None:
        """Discard the partial archive (error paths)."""
        if not self._closed:
            self._closed = True
            self._zip.close()
            self.path.unlink(missing_ok=True)

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()


def save_trace(
    path: Union[str, pathlib.Path],
    generator: TraceGenerator,
    n: int,
    batch: int = 65536,
) -> pathlib.Path:
    """Materialise ``n`` references from ``generator`` into ``path``.

    Returns the written path (``.npz`` appended if missing). Each
    generator chunk is validated against the requested size — a
    generator that returns short would otherwise record a ``length``
    that lies about the archive's content.
    """
    if n <= 0:
        raise WorkloadError(f"trace length must be positive, got {n}")
    if batch <= 0:
        raise WorkloadError(f"capture batch size must be positive, got {batch}")
    with TraceWriter(
        path, name=generator.name, instr_per_ref=generator.instr_per_ref,
        expected_length=n,
    ) as writer:
        remaining = n
        while remaining > 0:
            take = min(batch, remaining)
            addrs, writes = generator.batch(take)
            addrs = np.asarray(addrs, dtype=np.uint64)
            writes = np.asarray(writes, dtype=bool)
            if len(addrs) != take or len(writes) != take:
                raise WorkloadError(
                    f"short capture: generator {generator.name!r} returned "
                    f"{min(len(addrs), len(writes))} references for a "
                    f"{take}-reference request at offset {n - remaining}"
                )
            writer.append(addrs, writes)
            remaining -= take
    return writer.path


class ReplayTrace(TraceGenerator):
    """Streams a captured trace back in batches.

    ``loop=True`` wraps around at the end (useful for driving arbitrary
    run lengths); ``loop=False`` raises :class:`WorkloadError` when the
    capture is exhausted, mirroring :class:`FixedTrace`. Cursor
    accounting is committed only after a batch copies successfully, so
    a failed copy (e.g. a corrupt archive surfacing as a dtype error)
    leaves the stream where it was; :meth:`reset` rewinds one loaded
    trace so it can drive several runs deterministically, and
    :meth:`fork` hands out an independent cursor over the same arrays
    (one archive load feeding many cores).
    """

    def __init__(
        self,
        addrs: np.ndarray,
        writes: np.ndarray,
        name: str,
        instr_per_ref: float,
        loop: bool = True,
    ) -> None:
        if len(addrs) != len(writes):
            raise WorkloadError(
                f"corrupt trace: {len(addrs)} addresses vs {len(writes)} write flags"
            )
        if len(addrs) == 0:
            raise WorkloadError("empty trace")
        self._addrs = np.asarray(addrs, dtype=np.uint64)
        self._writes = np.asarray(writes, dtype=bool)
        self.name = name
        self.instr_per_ref = float(instr_per_ref)
        self.loop = loop
        self._pos = 0
        self._consumed = 0

    def __len__(self) -> int:
        return len(self._addrs)

    @property
    def consumed(self) -> int:
        """References handed out since construction / the last reset."""
        return self._consumed

    def reset(self) -> None:
        """Rewind to the start of the capture."""
        self._pos = 0
        self._consumed = 0

    def fork(self, loop: Optional[bool] = None) -> "ReplayTrace":
        """A fresh, independent cursor sharing this trace's arrays."""
        return ReplayTrace(
            self._addrs,
            self._writes,
            name=self.name,
            instr_per_ref=self.instr_per_ref,
            loop=self.loop if loop is None else loop,
        )

    def batch(self, n: int) -> Tuple[np.ndarray, np.ndarray]:
        if n <= 0:
            raise WorkloadError(f"batch size must be positive, got {n}")
        total = len(self._addrs)
        if not self.loop and self._consumed + n > total:
            raise WorkloadError(
                f"trace {self.name!r} exhausted: asked for {n}, "
                f"{total - self._consumed} remain (pass loop=True to wrap)"
            )
        out_a = np.empty(n, dtype=np.uint64)
        out_w = np.empty(n, dtype=bool)
        filled = 0
        pos = self._pos
        try:
            while filled < n:
                take = min(n - filled, total - pos)
                out_a[filled : filled + take] = self._addrs[pos : pos + take]
                out_w[filled : filled + take] = self._writes[pos : pos + take]
                pos = (pos + take) % total
                filled += take
        except (ValueError, TypeError) as exc:
            raise WorkloadError(
                f"corrupt trace {self.name!r}: copy failed at offset "
                f"{self._consumed + filled}: {exc}"
            ) from None
        # Commit accounting only after the whole batch copied, so a
        # failure above leaves the cursor replayable.
        self._pos = pos
        self._consumed += n
        return out_a, out_w


def _resolve_path(path: Union[str, pathlib.Path]) -> pathlib.Path:
    path = pathlib.Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    return path


def _read_meta(path: pathlib.Path, archive) -> dict:
    try:
        meta = json.loads(bytes(archive[_META_MEMBER]).decode())
    except KeyError as exc:
        raise WorkloadError(f"trace file {path} missing field {exc}") from None
    except (ValueError, UnicodeDecodeError) as exc:
        raise WorkloadError(f"trace file {path} has corrupt metadata: {exc}") from None
    version = meta.get("version")
    if version not in SUPPORTED_VERSIONS:
        raise WorkloadError(
            f"trace file {path} has format version {version}; "
            f"supported: {SUPPORTED_VERSIONS}"
        )
    if not isinstance(meta.get("length"), int) or meta["length"] <= 0:
        raise WorkloadError(
            f"trace file {path} declares invalid length {meta.get('length')!r}"
        )
    return meta


def _load_arrays(
    path: pathlib.Path, archive, meta: dict, checksum: bool
) -> Tuple[np.ndarray, np.ndarray, Optional[str]]:
    """Read and validate the reference arrays of either format version.

    Returns ``(addrs, writes, checksum_hex)`` — the recomputed checksum
    is only non-None when ``checksum=True`` and the format carries one.
    """
    expected = meta["length"]
    if meta["version"] == 1:
        try:
            addrs = archive["addrs"]
            writes = archive["writes"]
        except KeyError as exc:
            raise WorkloadError(f"trace file {path} missing field {exc}") from None
        if len(addrs) != expected or len(writes) != expected:
            raise WorkloadError(
                f"truncated trace file {path}: meta declares {expected} "
                f"references but archive holds {len(addrs)} addresses / "
                f"{len(writes)} write flags"
            )
        return addrs, writes, None

    chunk_lengths = meta.get("chunk_lengths")
    if not isinstance(chunk_lengths, list) or not chunk_lengths:
        raise WorkloadError(f"trace file {path} missing field 'chunk_lengths'")
    if sum(chunk_lengths) != expected:
        raise WorkloadError(
            f"truncated trace file {path}: meta declares {expected} "
            f"references but chunk lengths sum to {sum(chunk_lengths)}"
        )
    sha = hashlib.sha256() if checksum else None
    addr_chunks: List[np.ndarray] = []
    write_chunks: List[np.ndarray] = []
    for i, declared in enumerate(chunk_lengths):
        try:
            addrs = archive[f"chunk_{i:04d}_addrs"]
            writes = archive[f"chunk_{i:04d}_writes"]
        except KeyError as exc:
            raise WorkloadError(
                f"truncated trace file {path}: missing field {exc}"
            ) from None
        if len(addrs) != declared or len(writes) != declared:
            raise WorkloadError(
                f"truncated trace file {path}: chunk {i} declares {declared} "
                f"references but holds {len(addrs)} addresses / "
                f"{len(writes)} write flags"
            )
        if sha is not None:
            _chunk_digest(sha, addrs, writes)
        addr_chunks.append(addrs)
        write_chunks.append(writes)
    digest = sha.hexdigest() if sha is not None else None
    if digest is not None and digest != meta.get("checksum"):
        raise WorkloadError(
            f"corrupt trace file {path}: checksum mismatch (meta declares "
            f"{meta.get('checksum')}, content hashes to {digest})"
        )
    if len(addr_chunks) == 1:
        return addr_chunks[0], write_chunks[0], digest
    return np.concatenate(addr_chunks), np.concatenate(write_chunks), digest


def load_trace(
    path: Union[str, pathlib.Path], loop: bool = True, checksum: bool = False
) -> ReplayTrace:
    """Load a trace written by :func:`save_trace` (either format).

    Array lengths are always validated against the recorded capture
    length; ``checksum=True`` additionally re-hashes the content
    against the v2 checksum (the corpus verify path does this for
    every archive).
    """
    path = _resolve_path(path)
    try:
        archive = np.load(path)
    except (OSError, ValueError, zipfile.BadZipFile) as exc:
        raise WorkloadError(f"cannot read trace file {path}: {exc}") from None
    try:
        with archive:
            meta = _read_meta(path, archive)
            addrs, writes, _ = _load_arrays(path, archive, meta, checksum)
    except (OSError, ValueError, zipfile.BadZipFile) as exc:
        raise WorkloadError(f"cannot read trace file {path}: {exc}") from None
    return ReplayTrace(
        addrs,
        writes,
        name=meta.get("name", path.stem),
        instr_per_ref=meta.get("instr_per_ref", 4.0),
        loop=loop,
    )


def _info_from_meta(path: pathlib.Path, meta: dict) -> TraceInfo:
    return TraceInfo(
        path=path,
        version=meta["version"],
        name=meta.get("name", path.stem),
        length=meta["length"],
        instr_per_ref=float(meta.get("instr_per_ref", 4.0)),
        chunks=len(meta.get("chunk_lengths", [])) or 1,
        checksum=meta.get("checksum"),
    )


def trace_info(path: Union[str, pathlib.Path]) -> TraceInfo:
    """The trace's metadata without loading the reference arrays."""
    path = _resolve_path(path)
    try:
        with np.load(path) as archive:
            meta = _read_meta(path, archive)
    except (OSError, ValueError, zipfile.BadZipFile) as exc:
        raise WorkloadError(f"cannot read trace file {path}: {exc}") from None
    return _info_from_meta(path, meta)


def verify_trace(path: Union[str, pathlib.Path]) -> TraceInfo:
    """Fully validate a trace archive; raises :class:`WorkloadError`.

    Checks metadata well-formedness, every chunk's length against the
    manifest, the total against the capture length, and (v2) the
    SHA-256 checksum against the content. v1 archives pass length
    validation but are flagged: they carry no checksum, so corruption
    inside the arrays is undetectable — re-capture or re-add to a
    corpus to migrate them to v2.
    """
    path = _resolve_path(path)
    try:
        with np.load(path) as archive:
            meta = _read_meta(path, archive)
            _load_arrays(path, archive, meta, checksum=True)
    except (OSError, ValueError, zipfile.BadZipFile) as exc:
        raise WorkloadError(f"cannot read trace file {path}: {exc}") from None
    return _info_from_meta(path, meta)
