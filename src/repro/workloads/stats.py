"""Trace statistics: footprint, write ratio, reuse distance.

Synthetic workloads are only credible if their *trace-level* statistics
match the behaviours they claim to model. This module measures, for any
:class:`~repro.workloads.trace.TraceGenerator`:

- **footprint** — number of distinct blocks touched;
- **write ratio** — fraction of references that are stores;
- **reuse-distance profile** — for each reference to a previously seen
  block, the number of *distinct* blocks touched since its last access
  (the classic stack-distance metric: a fully-associative LRU cache of
  capacity C hits exactly the references with distance < C);
- **cold fraction** — references to never-before-seen blocks.

The reuse-distance computation uses the standard O(N log N)
Fenwick-tree (binary indexed tree) formulation over last-access
timestamps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..errors import WorkloadError
from .trace import TraceGenerator


class _Fenwick:
    """Binary indexed tree over reference timestamps (prefix sums)."""

    def __init__(self, size: int) -> None:
        self._tree = [0] * (size + 1)
        self.size = size

    def add(self, index: int, delta: int) -> None:
        i = index + 1
        while i <= self.size:
            self._tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, index: int) -> int:
        """Sum of entries in [0, index]."""
        i = index + 1
        total = 0
        while i > 0:
            total += self._tree[i]
            i -= i & (-i)
        return total


@dataclass
class TraceStats:
    """Aggregate statistics of a measured trace window."""

    references: int
    footprint_blocks: int
    write_ratio: float
    cold_fraction: float
    reuse_distances: np.ndarray = field(repr=False)

    def reuse_cdf_at(self, capacity_blocks: int) -> float:
        """Fraction of *reused* references with stack distance below a
        capacity — the hit rate of a fully-associative LRU cache of that
        many blocks, over warm references."""
        if len(self.reuse_distances) == 0:
            return 0.0
        return float((self.reuse_distances < capacity_blocks).mean())

    def median_reuse_distance(self) -> Optional[float]:
        """Median stack distance of warm references (None if no reuse)."""
        if len(self.reuse_distances) == 0:
            return None
        return float(np.median(self.reuse_distances))

    def footprint_bytes(self, block_size: int = 64) -> int:
        return self.footprint_blocks * block_size


def measure_trace(
    generator: TraceGenerator,
    n: int,
    block_size: int = 64,
    batch: int = 8192,
) -> TraceStats:
    """Consume ``n`` references from ``generator`` and profile them."""
    if n <= 0:
        raise WorkloadError(f"need a positive window, got {n}")
    last_pos: Dict[int, int] = {}
    tree = _Fenwick(n)
    distances: List[int] = []
    writes = 0
    refs_seen = 0
    cold = 0

    remaining = n
    while remaining > 0:
        take = min(batch, remaining)
        addrs, wflags = generator.batch(take)
        writes += int(np.asarray(wflags, dtype=bool).sum())
        blocks = (np.asarray(addrs, dtype=np.uint64) // np.uint64(block_size)).tolist()
        for blk in blocks:
            prev = last_pos.get(blk)
            if prev is None:
                cold += 1
            else:
                # distinct blocks touched strictly after prev:
                distance = tree.prefix_sum(refs_seen) - tree.prefix_sum(prev)
                distances.append(distance)
                tree.add(prev, -1)
            last_pos[blk] = refs_seen
            tree.add(refs_seen, 1)
            refs_seen += 1
        remaining -= take

    return TraceStats(
        references=n,
        footprint_blocks=len(last_pos),
        write_ratio=writes / n,
        cold_fraction=cold / n,
        reuse_distances=np.asarray(distances, dtype=np.int64),
    )


def compare_footprints(
    generators: Dict[str, TraceGenerator], n: int, block_size: int = 64
) -> Dict[str, TraceStats]:
    """Profile several generators over the same window length."""
    return {name: measure_trace(g, n, block_size) for name, g in generators.items()}
