"""Workload-model validation against the paper's published traits.

Every synthetic benchmark in :mod:`repro.workloads.spec` declares the
behavioural traits it is supposed to reproduce (loop-heavy,
redundant-fill-heavy, WL/WH class, …). This module *measures* those
traits on a live system and checks them, so any retuning of region
parameters that silently breaks a benchmark's published characteristics
is caught by the test-suite and the ``validate-workloads`` harness
target rather than surfacing as a mysteriously failing figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..sim.runner import duplicate_builder, run_policies
from ..sim.system import SystemConfig
from .spec import (
    PAPER_BENCHMARK_ORDER,
    TRAIT_LOOP_HEAVY,
    TRAIT_REDUNDANT_FILL,
    TRAIT_WRITE_HEAVY_EX,
    TRAIT_WRITE_LIGHT_EX,
    get_benchmark,
)

# Measured thresholds for each declared trait.
LOOP_HEAVY_MIN = 0.20  # Fig. 4: ">20% loop-blocks"
REDUNDANT_FILL_MIN = 0.25  # Fig. 6: visibly redundant-fill-heavy
WREL_TOLERANCE = 0.05  # slack around Wrel = 1 for the WL/WH split


@dataclass(frozen=True)
class TraitReport:
    """Measured characteristics of one benchmark plus the verdicts."""

    benchmark: str
    loop_fraction: float
    redundant_fill_fraction: float
    mrel: float
    wrel: float
    declared_traits: frozenset
    violations: tuple

    @property
    def ok(self) -> bool:
        return not self.violations


def measure_benchmark(
    benchmark: str,
    system: Optional[SystemConfig] = None,
    refs: int = 12_000,
    seed: int = 0,
) -> TraitReport:
    """Measure one benchmark's traits and compare to its declaration."""
    spec = get_benchmark(benchmark)
    system = system or SystemConfig.scaled()
    res = run_policies(
        system,
        ("non-inclusive", "exclusive"),
        duplicate_builder(spec.name, ncores=system.hierarchy.ncores, seed=seed),
        refs_per_core=refs,
    )
    noni, ex = res["non-inclusive"], res["exclusive"]
    loop_fraction = noni.loop_block_fraction
    redundant = noni.redundant_fill_fraction
    mrel = ex.llc_misses / max(1, noni.llc_misses)
    wrel = ex.llc_writes / max(1, noni.llc_writes)

    violations: List[str] = []
    traits = spec.traits
    if TRAIT_LOOP_HEAVY in traits and loop_fraction < LOOP_HEAVY_MIN:
        violations.append(
            f"declared loop-heavy but measured loop fraction {loop_fraction:.2f}"
        )
    if TRAIT_REDUNDANT_FILL in traits and redundant < REDUNDANT_FILL_MIN:
        violations.append(
            f"declared redundant-fill-heavy but measured fraction {redundant:.2f}"
        )
    if TRAIT_WRITE_HEAVY_EX in traits and wrel < 1.0 - WREL_TOLERANCE:
        violations.append(f"declared WH but measured Wrel {wrel:.2f}")
    if TRAIT_WRITE_LIGHT_EX in traits and wrel > 1.0 + WREL_TOLERANCE:
        violations.append(f"declared WL but measured Wrel {wrel:.2f}")
    return TraitReport(
        benchmark=spec.name,
        loop_fraction=loop_fraction,
        redundant_fill_fraction=redundant,
        mrel=mrel,
        wrel=wrel,
        declared_traits=traits,
        violations=tuple(violations),
    )


def validate_all(
    system: Optional[SystemConfig] = None,
    refs: int = 12_000,
    benchmarks: Sequence[str] = PAPER_BENCHMARK_ORDER,
) -> Dict[str, TraitReport]:
    """Measure every benchmark; returns reports keyed by name."""
    return {b: measure_benchmark(b, system, refs) for b in benchmarks}


def violations(reports: Dict[str, TraitReport]) -> Dict[str, tuple]:
    """Extract only the failing benchmarks from a report set."""
    return {b: r.violations for b, r in reports.items() if not r.ok}
