"""SPEC CPU2006-like synthetic benchmark definitions.

The paper evaluates thirteen SPEC CPU2006 benchmarks (Figs. 2, 4, 6 and
the Table III mixes). We cannot ship SPEC traces, so each benchmark is
re-expressed as a mixture of region behaviours whose parameters are
chosen to reproduce the characteristics the paper *publishes* for it:

- Fig. 4 loop-block fraction (omnetpp/xalancbmk > 60 %, bzip2 > 20 %,
  everything else low);
- Fig. 6 redundant LLC data-fill fraction (libquantum > 80 %; astar,
  GemsFDTD, mcf high);
- the WL/WH split of Fig. 12–13 (fewer vs. more LLC writes under
  exclusion than non-inclusion);
- working sets sized relative to L2 and the LLC, so the behaviours
  survive geometry scaling.

Every builder receives a :class:`ScaleContext` plus a seed and address
base, and returns an independent single-core trace. Multi-programmed
mixes instantiate one copy per core at disjoint bases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Tuple

from ..errors import WorkloadError
from .regions import (
    HotRegion,
    LoopRegion,
    RandomRegion,
    Region,
    StreamRegion,
    WriteBurstRegion,
)
from .synthetic import ScaleContext, SyntheticTrace

# Address-space stride between a benchmark's regions. Regions never
# exceed a few hundred MB even at Table II scale, so 64 GB slots keep
# them disjoint with room to spare.
REGION_SPAN = 1 << 36

# Behavioural traits used by tests and the analysis layer.
TRAIT_LOOP_HEAVY = "loop_heavy"  # Fig. 4: > 20% loop blocks
TRAIT_REDUNDANT_FILL = "redundant_fill_heavy"  # Fig. 6: > 25% redundant fills
TRAIT_WRITE_HEAVY_EX = "wh"  # Fig. 12: more LLC writes under exclusion
TRAIT_WRITE_LIGHT_EX = "wl"  # Fig. 12: fewer LLC writes under exclusion
TRAIT_STREAMING = "streaming"
TRAIT_COMPUTE = "compute_bound"

RegionList = List[Tuple[Region, float]]
Builder = Callable[[ScaleContext, int, int], SyntheticTrace]


@dataclass(frozen=True)
class BenchmarkSpec:
    """A named synthetic benchmark and its expected traits."""

    name: str
    description: str
    instr_per_ref: float
    traits: FrozenSet[str]
    builder: Builder

    def build(self, ctx: ScaleContext, seed: int, base: int = 0) -> SyntheticTrace:
        """Instantiate the benchmark's trace generator."""
        return self.builder(ctx, seed, base)


SPEC_BENCHMARKS: Dict[str, BenchmarkSpec] = {}


def _register(
    name: str,
    description: str,
    instr_per_ref: float,
    traits: FrozenSet[str],
) -> Callable[[Callable[[ScaleContext, int], RegionList]], Builder]:
    """Register a benchmark; the wrapped function returns its regions."""

    def deco(region_fn: Callable[[ScaleContext, int], RegionList]) -> Builder:
        def builder(ctx: ScaleContext, seed: int, base: int = 0) -> SyntheticTrace:
            regions = region_fn(ctx, base)
            return SyntheticTrace(
                regions, seed=seed, name=name, instr_per_ref=instr_per_ref
            )

        SPEC_BENCHMARKS[name] = BenchmarkSpec(
            name=name,
            description=description,
            instr_per_ref=instr_per_ref,
            traits=traits,
            builder=builder,
        )
        return builder

    return deco


def _slot(base: int, i: int) -> int:
    return base + i * REGION_SPAN


# ---------------------------------------------------------------------------
# Loop-heavy benchmarks (Fig. 4: omnetpp / xalancbmk > 60%, bzip2 > 20%).
# Their frequently-read sets are "larger than L2 but smaller than the LLC".
# ---------------------------------------------------------------------------


@_register(
    "omnetpp",
    "Discrete-event simulator: large frequently re-read event structures "
    "(loop-block source), > 60% loop-blocks, write-heavy under exclusion.",
    4.0,
    frozenset({TRAIT_LOOP_HEAVY, TRAIT_WRITE_HEAVY_EX}),
)
def _omnetpp(ctx: ScaleContext, base: int) -> RegionList:
    return [
        (HotRegion(_slot(base, 0), ctx.region_size(0.25), ctx.block_size, write_prob=0.20), 0.38),
        (LoopRegion(_slot(base, 1), ctx.region_size(3.0), ctx.block_size), 0.55),
        (RandomRegion(_slot(base, 2), int(ctx.llc_bytes * 1.25), ctx.block_size, write_prob=0.10), 0.07),
    ]


@_register(
    "xalancbmk",
    "XSLT processor: re-read DOM working set between L2 and LLC, "
    "> 60% loop-blocks, write-heavy under exclusion.",
    4.0,
    frozenset({TRAIT_LOOP_HEAVY, TRAIT_WRITE_HEAVY_EX}),
)
def _xalancbmk(ctx: ScaleContext, base: int) -> RegionList:
    return [
        (HotRegion(_slot(base, 0), ctx.region_size(0.3), ctx.block_size, write_prob=0.25), 0.36),
        (LoopRegion(_slot(base, 1), ctx.region_size(2.5), ctx.block_size), 0.53),
        (RandomRegion(_slot(base, 2), int(ctx.llc_bytes * 1.25), ctx.block_size, write_prob=0.15), 0.11),
    ]


@_register(
    "bzip2",
    "Compressor: dictionary reuse (~25% loop-blocks) plus bursty dirty "
    "buffers; mildly write-heavy under exclusion.",
    5.0,
    frozenset({TRAIT_LOOP_HEAVY, TRAIT_WRITE_HEAVY_EX}),
)
def _bzip2(ctx: ScaleContext, base: int) -> RegionList:
    return [
        (HotRegion(_slot(base, 0), ctx.region_size(0.5), ctx.block_size, write_prob=0.30), 0.35),
        (LoopRegion(_slot(base, 1), ctx.region_size(2.0), ctx.block_size), 0.28),
        (
            WriteBurstRegion(
                _slot(base, 2), ctx.region_size(1.5), ctx.block_size, burst=4, write_prob=0.55
            ),
            0.23,
        ),
        (StreamRegion(_slot(base, 3), ctx.llc_bytes * 16, ctx.block_size, write_prob=0.10), 0.14),
    ]


# ---------------------------------------------------------------------------
# Redundant-fill-heavy benchmarks (Fig. 6: libquantum > 80%; astar,
# GemsFDTD, mcf high). Read-modify-write streaming makes non-inclusive
# LLC fills useless.
# ---------------------------------------------------------------------------


@_register(
    "libquantum",
    "Quantum simulator: sequential read-modify-write sweep over a vector "
    "larger than the LLC; > 80% redundant LLC data-fills; write-light "
    "under exclusion.",
    3.5,
    frozenset({TRAIT_REDUNDANT_FILL, TRAIT_WRITE_LIGHT_EX, TRAIT_STREAMING}),
)
def _libquantum(ctx: ScaleContext, base: int) -> RegionList:
    return [
        (
            StreamRegion(_slot(base, 0), ctx.llc_bytes * 16, ctx.block_size, rw_pair=True),
            0.80,
        ),
        (HotRegion(_slot(base, 1), ctx.region_size(0.25), ctx.block_size, write_prob=0.20), 0.20),
    ]


@_register(
    "astar",
    "Path-finding: read-modify-write node updates over a map larger than "
    "the LLC; high redundant fills; write-light under exclusion.",
    4.5,
    frozenset({TRAIT_REDUNDANT_FILL, TRAIT_WRITE_LIGHT_EX}),
)
def _astar(ctx: ScaleContext, base: int) -> RegionList:
    return [
        (HotRegion(_slot(base, 0), ctx.region_size(0.4), ctx.block_size, write_prob=0.25), 0.48),
        (
            StreamRegion(_slot(base, 1), ctx.llc_bytes * 24, ctx.block_size, rw_pair=True),
            0.32,
        ),
        (RandomRegion(_slot(base, 2), int(ctx.llc_bytes * 1.6), ctx.block_size, write_prob=0.20), 0.20),
    ]


@_register(
    "GemsFDTD",
    "Finite-difference EM solver: grid sweeps with read-modify-write "
    "updates far larger than the LLC; high redundant fills and MPKI.",
    3.0,
    frozenset({TRAIT_REDUNDANT_FILL, TRAIT_WRITE_LIGHT_EX, TRAIT_STREAMING}),
)
def _gemsfdtd(ctx: ScaleContext, base: int) -> RegionList:
    return [
        (
            StreamRegion(_slot(base, 0), ctx.llc_bytes * 32, ctx.block_size, rw_pair=True),
            0.45,
        ),
        (HotRegion(_slot(base, 1), ctx.region_size(0.3), ctx.block_size, write_prob=0.30), 0.35),
        (RandomRegion(_slot(base, 2), int(ctx.llc_bytes * 1.3), ctx.block_size, write_prob=0.20), 0.20),
    ]


@_register(
    "mcf",
    "Network-flow solver: pointer chasing over an arena several times the "
    "LLC plus read-modify-write arc updates; high redundant fills.",
    3.0,
    frozenset({TRAIT_REDUNDANT_FILL}),
)
def _mcf(ctx: ScaleContext, base: int) -> RegionList:
    return [
        (RandomRegion(_slot(base, 0), int(ctx.llc_bytes * 1.5), ctx.block_size, write_prob=0.25), 0.45),
        (
            StreamRegion(_slot(base, 1), ctx.llc_bytes * 24, ctx.block_size, rw_pair=True),
            0.20,
        ),
        (HotRegion(_slot(base, 2), ctx.region_size(0.3), ctx.block_size, write_prob=0.20), 0.35),
    ]


# ---------------------------------------------------------------------------
# Streaming / mixed benchmarks.
# ---------------------------------------------------------------------------


@_register(
    "zeusmp",
    "Astrophysical CFD: streaming sweeps with in-place dirty updates; few "
    "loop-blocks; write-light under exclusion.",
    4.0,
    frozenset({TRAIT_WRITE_LIGHT_EX, TRAIT_STREAMING}),
)
def _zeusmp(ctx: ScaleContext, base: int) -> RegionList:
    return [
        (HotRegion(_slot(base, 0), ctx.region_size(0.5), ctx.block_size, write_prob=0.30), 0.44),
        (StreamRegion(_slot(base, 1), ctx.llc_bytes * 24, ctx.block_size, write_prob=0.40), 0.22),
        (RandomRegion(_slot(base, 3), int(ctx.llc_bytes * 1.3), ctx.block_size, write_prob=0.30), 0.12),
        (
            WriteBurstRegion(
                _slot(base, 2), ctx.region_size(2.0), ctx.block_size, burst=3, write_prob=0.60
            ),
            0.22,
        ),
    ]


@_register(
    "dealII",
    "Finite-element library: good locality, working set mostly inside "
    "upper-level caches with mild LLC reuse.",
    6.0,
    frozenset({TRAIT_COMPUTE}),
)
def _dealii(ctx: ScaleContext, base: int) -> RegionList:
    return [
        (HotRegion(_slot(base, 0), ctx.region_size(0.75), ctx.block_size, write_prob=0.35), 0.60),
        (LoopRegion(_slot(base, 1), ctx.region_size(1.5), ctx.block_size), 0.07),
        (StreamRegion(_slot(base, 2), ctx.llc_bytes * 8, ctx.block_size, write_prob=0.10), 0.15),
        (RandomRegion(_slot(base, 3), ctx.region_size(4.0), ctx.block_size, write_prob=0.20), 0.18),
    ]


@_register(
    "milc",
    "Lattice QCD: streaming gauge-field sweeps with stores plus a small "
    "re-read set; appears in WH mixes.",
    3.5,
    frozenset({TRAIT_STREAMING}),
)
def _milc(ctx: ScaleContext, base: int) -> RegionList:
    return [
        (StreamRegion(_slot(base, 0), ctx.llc_bytes * 24, ctx.block_size, write_prob=0.35), 0.38),
        (HotRegion(_slot(base, 1), ctx.region_size(0.4), ctx.block_size, write_prob=0.25), 0.40),
        (LoopRegion(_slot(base, 2), ctx.region_size(2.0), ctx.block_size), 0.22),
    ]


@_register(
    "leslie3d",
    "CFD: streaming with a moderately re-read plane of data between L2 "
    "and the LLC (mild loop-block population).",
    4.0,
    frozenset({TRAIT_STREAMING}),
)
def _leslie3d(ctx: ScaleContext, base: int) -> RegionList:
    return [
        (StreamRegion(_slot(base, 0), ctx.llc_bytes * 20, ctx.block_size, write_prob=0.25), 0.28),
        (LoopRegion(_slot(base, 1), ctx.region_size(2.5), ctx.block_size), 0.26),
        (HotRegion(_slot(base, 2), ctx.region_size(0.4), ctx.block_size, write_prob=0.25), 0.46),
    ]


@_register(
    "lbm",
    "Lattice-Boltzmann: write-dominant streaming over a grid much larger "
    "than the LLC; write-light under exclusion.",
    3.0,
    frozenset({TRAIT_WRITE_LIGHT_EX, TRAIT_STREAMING}),
)
def _lbm(ctx: ScaleContext, base: int) -> RegionList:
    return [
        (
            StreamRegion(_slot(base, 0), ctx.llc_bytes * 32, ctx.block_size, rw_pair=True),
            0.35,
        ),
        (StreamRegion(_slot(base, 1), ctx.llc_bytes * 32, ctx.block_size, write_prob=0.20), 0.25),
        (HotRegion(_slot(base, 2), ctx.region_size(0.3), ctx.block_size, write_prob=0.30), 0.40),
    ]


@_register(
    "bwaves",
    "Blast-wave CFD: read-dominant streaming far beyond the LLC; "
    "write-light under exclusion.",
    3.5,
    frozenset({TRAIT_WRITE_LIGHT_EX, TRAIT_STREAMING}),
)
def _bwaves(ctx: ScaleContext, base: int) -> RegionList:
    return [
        (StreamRegion(_slot(base, 0), ctx.llc_bytes * 32, ctx.block_size, write_prob=0.05), 0.42),
        (HotRegion(_slot(base, 1), ctx.region_size(0.4), ctx.block_size, write_prob=0.20), 0.46),
        (RandomRegion(_slot(base, 2), ctx.llc_bytes, ctx.block_size, write_prob=0.10), 0.12),
    ]


# The order the paper uses on its per-benchmark x-axes (Figs. 2, 4, 6).
PAPER_BENCHMARK_ORDER = (
    "astar",
    "zeusmp",
    "dealII",
    "omnetpp",
    "xalancbmk",
    "bzip2",
    "GemsFDTD",
    "mcf",
    "milc",
    "leslie3d",
    "lbm",
    "bwaves",
    "libquantum",
)


def benchmark_names() -> Tuple[str, ...]:
    """All registered SPEC-like benchmark names, paper order."""
    return PAPER_BENCHMARK_ORDER


def get_benchmark(name: str) -> BenchmarkSpec:
    """Look up a benchmark spec; accepts the paper's abbreviations."""
    aliases = {"omn": "omnetpp", "xalan": "xalancbmk", "lib": "libquantum", "Gems": "GemsFDTD"}
    resolved = aliases.get(name, name)
    try:
        return SPEC_BENCHMARKS[resolved]
    except KeyError:
        raise WorkloadError(
            f"unknown benchmark {name!r}; known: {sorted(SPEC_BENCHMARKS)}"
        )


def build_benchmark(
    name: str, ctx: ScaleContext, seed: int, base: int = 0
) -> SyntheticTrace:
    """Instantiate one benchmark trace at an address base."""
    return get_benchmark(name).build(ctx, seed, base)
