"""Workload construction: Table III mixes, random mixes, threads.

A :class:`Workload` bundles one trace generator per core plus metadata.
Multi-programmed workloads place each core's benchmark at a disjoint
address base (private address spaces); multithreaded workloads share
regions across threads (see :mod:`repro.workloads.parsec`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..errors import WorkloadError
from .parsec import get_parsec
from .spec import build_benchmark, get_benchmark
from .synthetic import ScaleContext
from .trace import TraceGenerator

MULTIPROGRAMMED = "multiprogrammed"
MULTITHREADED = "multithreaded"


@dataclass
class Workload:
    """One runnable workload: a generator per core plus metadata."""

    name: str
    kind: str
    generators: List[TraceGenerator]
    benchmarks: Tuple[str, ...]
    seed: int = 0

    @property
    def ncores(self) -> int:
        return len(self.generators)


# Table III of the paper, verbatim (WL: fewer writes under exclusion;
# WH: more writes under exclusion). Paper abbreviations expanded.
TABLE3_MIXES: Dict[str, Tuple[str, str, str, str]] = {
    "WL1": ("zeusmp", "leslie3d", "omnetpp", "dealII"),
    "WL2": ("lbm", "xalancbmk", "libquantum", "GemsFDTD"),
    "WL3": ("GemsFDTD", "GemsFDTD", "GemsFDTD", "mcf"),
    "WL4": ("milc", "libquantum", "leslie3d", "bwaves"),
    "WL5": ("bzip2", "xalancbmk", "GemsFDTD", "GemsFDTD"),
    "WH1": ("omnetpp", "xalancbmk", "zeusmp", "libquantum"),
    "WH2": ("milc", "omnetpp", "bzip2", "xalancbmk"),
    "WH3": ("omnetpp", "omnetpp", "dealII", "leslie3d"),
    "WH4": ("mcf", "omnetpp", "leslie3d", "xalancbmk"),
    "WH5": ("xalancbmk", "xalancbmk", "xalancbmk", "bzip2"),
}

WL_MIXES = ("WL1", "WL2", "WL3", "WL4", "WL5")
WH_MIXES = ("WH1", "WH2", "WH3", "WH4", "WH5")
TABLE3_ORDER = WL_MIXES + WH_MIXES


def make_multiprogrammed(
    benchmarks: Sequence[str],
    ctx: ScaleContext,
    seed: int = 0,
    name: str | None = None,
) -> Workload:
    """Build an N-core multi-programmed workload.

    Each core runs its own copy of a benchmark in a private address
    space (base offset ``core * ctx.core_span``), matching the paper's
    rate-mode SPEC methodology.
    """
    if not benchmarks:
        raise WorkloadError("a multiprogrammed workload needs at least one benchmark")
    resolved = tuple(get_benchmark(b).name for b in benchmarks)
    generators: List[TraceGenerator] = []
    for core, bench in enumerate(resolved):
        generators.append(
            build_benchmark(bench, ctx, seed=seed * 7919 + core, base=core * ctx.core_span)
        )
    return Workload(
        name=name or "+".join(resolved),
        kind=MULTIPROGRAMMED,
        generators=generators,
        benchmarks=resolved,
        seed=seed,
    )


def make_duplicate(
    benchmark: str, ctx: ScaleContext, ncores: int = 4, seed: int = 0
) -> Workload:
    """Run ``ncores`` duplicate copies of one benchmark (Figs. 2/4/6)."""
    wl = make_multiprogrammed([benchmark] * ncores, ctx, seed=seed, name=f"{benchmark}x{ncores}")
    return wl


def make_table3_mix(mix_name: str, ctx: ScaleContext, seed: int = 0) -> Workload:
    """Build one of the paper's ten selected mixes (Table III)."""
    try:
        benchmarks = TABLE3_MIXES[mix_name]
    except KeyError:
        raise WorkloadError(f"unknown Table III mix {mix_name!r}; known: {sorted(TABLE3_MIXES)}")
    wl = make_multiprogrammed(benchmarks, ctx, seed=seed, name=mix_name)
    return wl


def make_multithreaded(
    benchmark: str, ctx: ScaleContext, nthreads: int = 4, seed: int = 0
) -> Workload:
    """Build a PARSEC-like multithreaded workload (Fig. 20)."""
    spec = get_parsec(benchmark)
    generators = spec.build_threads(ctx, seed=seed, nthreads=nthreads)
    return Workload(
        name=benchmark,
        kind=MULTITHREADED,
        generators=generators,
        benchmarks=(benchmark,),
        seed=seed,
    )


def random_mixes(
    count: int = 50,
    ncores: int = 4,
    seed: int = 1,
    benchmarks: Sequence[str] | None = None,
) -> List[Tuple[str, ...]]:
    """Sample the paper's "50 random combinations" of SPEC benchmarks.

    Deterministic in ``seed``. Duplicates inside a mix are allowed, as
    in the paper (e.g. WL3 runs three copies of GemsFDTD).
    """
    from .spec import benchmark_names

    pool = list(benchmarks if benchmarks is not None else benchmark_names())
    if not pool:
        raise WorkloadError("empty benchmark pool")
    rng = random.Random(seed)
    return [tuple(rng.choice(pool) for _ in range(ncores)) for _ in range(count)]
