"""Declarative, picklable experiment descriptions.

The runner historically described workloads as closures
(``ScaleContext -> Workload``), which cannot cross a process boundary
and have no canonical identity to cache under. :class:`WorkloadSpec`
replaces the closure builders with frozen dataclasses that *are*
builders (they are callable with a ``ScaleContext``), and
:class:`JobSpec` bundles everything one simulation needs — system
config, workload spec, policy name, reference count — into a value that
pickles cleanly and hashes to a stable content address.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..errors import ExecutionError, WorkloadError
from ..sim.system import SystemConfig
from ..workloads.mixes import (
    Workload,
    make_duplicate,
    make_multiprogrammed,
    make_multithreaded,
    make_table3_mix,
)
from ..workloads.synthetic import ScaleContext
from .serialize import system_from_dict, system_to_dict

# Bump whenever the meaning of a cached result changes (serialisation
# format, simulator semantics, metric definitions): old entries then
# miss instead of resurrecting stale results.
CACHE_SCHEMA_VERSION = 1

DUPLICATE = "duplicate"
MIX = "mix"
MULTIPROGRAMMED = "multiprogrammed"
MULTITHREADED = "multithreaded"
TRACE = "trace"
_KINDS = (DUPLICATE, MIX, MULTIPROGRAMMED, MULTITHREADED, TRACE)


@dataclass(frozen=True)
class WorkloadSpec:
    """A declarative workload recipe; callable as a workload builder.

    ``kind`` selects the construction path; ``benchmarks`` holds the
    benchmark name(s) (or the mix name for ``kind="mix"``); ``ncores``
    doubles as the thread count for multithreaded workloads.
    """

    kind: str
    benchmarks: Tuple[str, ...]
    ncores: int = 4
    seed: int = 0
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise WorkloadError(f"unknown workload kind {self.kind!r}; known: {_KINDS}")
        if not self.benchmarks:
            raise WorkloadError("a WorkloadSpec needs at least one benchmark/mix name")
        if self.ncores <= 0:
            raise WorkloadError(f"ncores must be positive, got {self.ncores}")
        # tolerate lists from from_dict callers
        object.__setattr__(self, "benchmarks", tuple(self.benchmarks))

    # ------------------------------------------------------------------
    # constructors mirroring sim.runner's historical builders
    # ------------------------------------------------------------------
    @classmethod
    def duplicate(cls, benchmark: str, ncores: int = 4, seed: int = 0) -> "WorkloadSpec":
        """N duplicate copies of one benchmark (Figs. 2/4/6)."""
        return cls(kind=DUPLICATE, benchmarks=(benchmark,), ncores=ncores, seed=seed)

    @classmethod
    def mix(cls, mix_name: str, seed: int = 0) -> "WorkloadSpec":
        """A Table III mix (WL1..WH5)."""
        return cls(kind=MIX, benchmarks=(mix_name,), seed=seed)

    @classmethod
    def multiprogrammed(
        cls, benchmarks, seed: int = 0, name: Optional[str] = None
    ) -> "WorkloadSpec":
        """An arbitrary multiprogrammed combination (one bench per core)."""
        benchmarks = tuple(benchmarks)
        return cls(
            kind=MULTIPROGRAMMED,
            benchmarks=benchmarks,
            ncores=len(benchmarks),
            seed=seed,
            name=name,
        )

    @classmethod
    def multithreaded(cls, benchmark: str, nthreads: int = 4, seed: int = 0) -> "WorkloadSpec":
        """A PARSEC-like multithreaded workload (Fig. 20)."""
        return cls(kind=MULTITHREADED, benchmarks=(benchmark,), ncores=nthreads, seed=seed)

    @classmethod
    def trace(
        cls, digests, ncores: int = 4, name: Optional[str] = None
    ) -> "WorkloadSpec":
        """A corpus-replay workload (``repro.workloads.corpus``).

        ``benchmarks`` holds trace *content addresses* (SHA-256 file
        digests), so the result cache keys these jobs by what the trace
        contains, never by where it lives. One digest replays the same
        capture on every core (rate-mode replay); otherwise one digest
        per core is required. The corpus that resolves the digests is
        discovered at build time via
        :func:`repro.workloads.corpus.active_corpus` — an environment
        channel, so pool workers in fresh processes find it too.
        """
        digests = tuple(digests)
        if len(digests) not in (1, ncores):
            raise WorkloadError(
                f"a trace workload needs 1 digest (replayed on every "
                f"core) or exactly ncores={ncores}, got {len(digests)}"
            )
        return cls(kind=TRACE, benchmarks=digests, ncores=ncores, name=name)

    # ------------------------------------------------------------------
    @property
    def label(self) -> str:
        """Human-readable identity (sweep axis labels, logs)."""
        if self.name:
            return self.name
        if self.kind == DUPLICATE:
            return f"{self.benchmarks[0]}x{self.ncores}"
        if self.kind == MULTIPROGRAMMED:
            return "+".join(self.benchmarks)
        if self.kind == TRACE:
            return "trace:" + "+".join(d[:12] for d in self.benchmarks)
        return self.benchmarks[0]

    def build(self, ctx: ScaleContext) -> Workload:
        """Materialise the workload against a system's geometry."""
        if self.kind == DUPLICATE:
            return make_duplicate(self.benchmarks[0], ctx, ncores=self.ncores, seed=self.seed)
        if self.kind == MIX:
            return make_table3_mix(self.benchmarks[0], ctx, seed=self.seed)
        if self.kind == MULTIPROGRAMMED:
            return make_multiprogrammed(self.benchmarks, ctx, seed=self.seed, name=self.name)
        if self.kind == TRACE:
            return self._build_trace()
        return make_multithreaded(
            self.benchmarks[0], ctx, nthreads=self.ncores, seed=self.seed
        )

    def _build_trace(self) -> Workload:
        from ..workloads.corpus import active_corpus

        corpus = active_corpus(required=True)
        if len(self.benchmarks) == 1:
            base = corpus.load(self.benchmarks[0], loop=True)
            generators = [base.fork() for _ in range(self.ncores)]
            names = (base.name,) * self.ncores
        else:
            loaded = [corpus.load(d, loop=True) for d in self.benchmarks]
            generators = list(loaded)
            names = tuple(g.name for g in loaded)
        return Workload(
            name=self.name or self.label,
            kind=MULTIPROGRAMMED,
            generators=generators,
            benchmarks=names,
        )

    # WorkloadSpec *is* a WorkloadBuilder: callable(ScaleContext) -> Workload.
    __call__ = build

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "benchmarks": list(self.benchmarks),
            "ncores": self.ncores,
            "seed": self.seed,
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "WorkloadSpec":
        try:
            return cls(
                kind=data["kind"],
                benchmarks=tuple(data["benchmarks"]),
                ncores=data.get("ncores", 4),
                seed=data.get("seed", 0),
                name=data.get("name"),
            )
        except (KeyError, TypeError) as exc:
            raise ExecutionError(f"malformed WorkloadSpec dict: {exc}") from None


@dataclass(frozen=True)
class JobSpec:
    """One fully-specified simulation: the unit the pool and cache see."""

    system: SystemConfig
    workload: WorkloadSpec
    policy: str
    refs_per_core: int

    def __post_init__(self) -> None:
        if not isinstance(self.workload, WorkloadSpec):
            raise ExecutionError(
                f"JobSpec.workload must be a WorkloadSpec, got {type(self.workload).__name__}"
            )
        if not isinstance(self.policy, str) or not self.policy:
            raise ExecutionError("JobSpec.policy must be a non-empty policy name")
        # The registry is the single source of truth for policy names:
        # validate at admission (CLI, serve submissions, from_dict all
        # funnel through here) and canonicalise aliases so "noni" and
        # "non-inclusive" share one cache key.
        from ..arena import registry

        canonical = registry.validate_names((self.policy,), error=ExecutionError)[0]
        object.__setattr__(self, "policy", canonical)
        if self.refs_per_core <= 0:
            raise ExecutionError(f"refs_per_core must be positive, got {self.refs_per_core}")

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Canonical dict form — the basis of the cache key."""
        return {
            "schema": CACHE_SCHEMA_VERSION,
            "system": system_to_dict(self.system),
            "workload": self.workload.to_dict(),
            "policy": self.policy,
            "refs_per_core": self.refs_per_core,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobSpec":
        try:
            return cls(
                system=system_from_dict(data["system"]),
                workload=WorkloadSpec.from_dict(data["workload"]),
                policy=data["policy"],
                refs_per_core=data["refs_per_core"],
            )
        except KeyError as exc:
            raise ExecutionError(f"malformed JobSpec dict: missing {exc}") from None

    def canonical_json(self) -> str:
        """Deterministic JSON encoding (sorted keys, no whitespace)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def key(self) -> str:
        """SHA-256 content address of this job (includes schema version)."""
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self):
        """Execute the job in-process and return its ``RunResult``."""
        from ..sim.simulator import Simulator

        workload = self.workload.build(self.system.scale_context())
        return Simulator(self.system, self.policy, workload).run(self.refs_per_core)
