"""Content-addressed on-disk cache of simulation results.

Every entry is one JSON file named after the SHA-256 of the job's
canonical description (see :meth:`~repro.exec.jobs.JobSpec.key`), so a
result can only ever be served back to the exact (system, workload,
policy, refs) that produced it — there is no invalidation logic to get
wrong, only misses. A size cap evicts least-recently-used entries
(mtime order; hits refresh mtime). Corrupt or schema-mismatched files
count as misses and are deleted on sight.

The directory is safe to share between independent writers (the serve
daemon, concurrent CLI invocations, pool workers): every store writes
a process-unique temporary file and publishes it with an atomic
``os.replace``, so readers only ever observe complete entries, and
every directory walk tolerates entries that a racing eviction (or
``clear``) deletes mid-scan. Two processes storing the same key both
win — the entries are byte-identical by construction (content
addressing plus deterministic simulation), so last-replace-wins is a
no-op.
"""

from __future__ import annotations

import itertools
import json
import os
import pathlib
from dataclasses import dataclass
from typing import Dict, Optional, Union

from ..errors import ExecutionError
from ..sim.results import RunResult
from .jobs import CACHE_SCHEMA_VERSION, JobSpec
from .serialize import result_from_dict, result_to_dict

DEFAULT_MAX_BYTES = 512 * 1024 * 1024  # 512 MiB of JSON ≈ hundreds of thousands of runs

# Environment variable consulted by :func:`cache_from_env` (the CLI and
# the benchmark harness both honour it).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

# Distinguishes concurrent in-process writers (serve worker threads)
# sharing one pid; combined with the pid it makes temp names unique
# across processes sharing a cache directory.
_tmp_counter = itertools.count()


@dataclass
class ResultCacheStats:
    """Session counters plus the on-disk footprint of a cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    puts: int = 0
    entries: int = 0
    total_bytes: int = 0
    max_bytes: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "puts": self.puts,
            "entries": self.entries,
            "total_bytes": self.total_bytes,
            "max_bytes": self.max_bytes,
        }


class ResultCache:
    """A content-addressed store of serialised :class:`RunResult`s."""

    def __init__(
        self,
        root: Union[str, pathlib.Path],
        max_bytes: int = DEFAULT_MAX_BYTES,
    ) -> None:
        if max_bytes <= 0:
            raise ExecutionError(f"cache max_bytes must be positive, got {max_bytes}")
        self.root = pathlib.Path(root)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise ExecutionError(f"cannot create cache directory {self.root}: {exc}") from None
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.puts = 0

    # ------------------------------------------------------------------
    def _path(self, key: str) -> pathlib.Path:
        return self.root / f"{key}.json"

    @staticmethod
    def _is_entry(path: pathlib.Path) -> bool:
        """Only content-addressed files (64-hex stems) are cache entries.

        The run manifest (``manifest.json``, see
        :mod:`repro.telemetry.profiling`) and any other stray files in
        the cache directory must never be counted, evicted, or cleared.
        """
        stem = path.stem
        return len(stem) == 64 and all(c in "0123456789abcdef" for c in stem)

    def _entries(self):
        return [p for p in self.root.glob("*.json") if p.is_file() and self._is_entry(p)]

    # ------------------------------------------------------------------
    def get(self, job: JobSpec) -> Optional[RunResult]:
        """Return the cached result for ``job``, or ``None`` on a miss."""
        key = job.key()
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
            if payload.get("schema") != CACHE_SCHEMA_VERSION or payload.get("key") != key:
                raise ValueError("schema/key mismatch")
            result = result_from_dict(payload["result"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (ValueError, KeyError, OSError, ExecutionError):
            # Corrupt entry: purge it so it cannot keep masking a miss.
            path.unlink(missing_ok=True)
            self.misses += 1
            return None
        self.hits += 1
        try:
            os.utime(path)  # refresh recency for LRU eviction
        except OSError:
            pass
        return result

    def put(self, job: JobSpec, result: RunResult) -> None:
        """Store ``result`` under ``job``'s content address."""
        key = job.key()
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "key": key,
            "job": job.to_dict(),
            "result": result_to_dict(result),
        }
        path = self._path(key)
        # Process- and thread-unique temp name: concurrent writers of
        # the same key must never interleave bytes in a shared temp
        # file. The leading dot keeps it out of the ``*.json`` walks.
        tmp = self.root / f".{key}.{os.getpid()}.{next(_tmp_counter)}.tmp"
        try:
            tmp.write_text(json.dumps(payload))
            os.replace(tmp, path)
        except OSError as exc:
            tmp.unlink(missing_ok=True)
            raise ExecutionError(f"cannot write cache entry {path}: {exc}") from None
        self.puts += 1
        self._enforce_cap(protect=path)

    @staticmethod
    def _sizes(entries) -> Dict[pathlib.Path, int]:
        """``{path: byte size}`` skipping entries a racer just deleted."""
        sizes: Dict[pathlib.Path, int] = {}
        for path in entries:
            try:
                sizes[path] = path.stat().st_size
            except OSError:
                continue  # evicted/cleared by a concurrent writer
        return sizes

    def _enforce_cap(self, protect: Optional[pathlib.Path] = None) -> None:
        sizes = self._sizes(self._entries())
        total = sum(sizes.values())
        if total <= self.max_bytes:
            return

        def mtime(path: pathlib.Path) -> float:
            try:
                return path.stat().st_mtime
            except OSError:
                return 0.0  # already gone: sorts first, unlink is a no-op

        # Oldest first; never evict the entry just written.
        for path in sorted(sizes, key=mtime):
            if path == protect:
                continue
            total -= sizes[path]
            path.unlink(missing_ok=True)
            self.evictions += 1
            if total <= self.max_bytes:
                break

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self._entries():
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def stats(self) -> ResultCacheStats:
        """Session hit/miss/evict counters plus current disk footprint."""
        sizes = self._sizes(self._entries())
        return ResultCacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            puts=self.puts,
            entries=len(sizes),
            total_bytes=sum(sizes.values()),
            max_bytes=self.max_bytes,
        )


# ----------------------------------------------------------------------
# process-wide active cache
# ----------------------------------------------------------------------
# The runner consults this so that *every* path into run_one — figures,
# the benchmark harness, the CLI — can be cached without threading a
# cache handle through each call site.
_active_cache: Optional[ResultCache] = None


def set_active_cache(cache: Optional[ResultCache]) -> Optional[ResultCache]:
    """Install ``cache`` as the process-wide default; returns the old one."""
    global _active_cache
    previous = _active_cache
    _active_cache = cache
    return previous


def get_active_cache() -> Optional[ResultCache]:
    """The process-wide default cache, if any."""
    return _active_cache


def cache_from_env(env_var: str = CACHE_DIR_ENV) -> Optional[ResultCache]:
    """Build a cache from ``$REPRO_CACHE_DIR``; ``None`` when unset/empty."""
    path = os.environ.get(env_var, "").strip()
    if not path:
        return None
    return ResultCache(path)
