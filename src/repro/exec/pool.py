"""Parallel job execution over a process pool, with caching and retry.

:func:`execute_jobs` is the engine behind ``Sweep.run(max_workers=...)``
and the CLI's ``--jobs``: it resolves cache hits first, fans the misses
out over a :class:`~concurrent.futures.ProcessPoolExecutor`, and returns
results in the *input* order regardless of completion order, so parallel
sweeps are record-for-record identical to serial ones.

Failure policy: library errors (:class:`~repro.errors.ReproError`) are
deterministic — a retry would fail identically — so they propagate
unchanged. Anything else (a worker killed by the OS, a broken pool, a
pickling hiccup) is treated as transient and retried once, in-process;
a second failure raises :class:`~repro.errors.ExecutionError`.

Workers serialise results with :mod:`repro.exec.serialize` rather than
pickling :class:`RunResult` objects, so the parallel path returns
byte-identical data to the cache path.
"""

from __future__ import annotations

import concurrent.futures as cf
from typing import Any, Dict, List, Optional, Sequence

from ..errors import ExecutionError, ReproError
from ..sim.results import RunResult
from .cache import ResultCache
from .jobs import JobSpec
from .serialize import result_from_dict, result_to_dict


def _run_job_dict(job: JobSpec) -> Dict[str, Any]:
    """Worker entry point: run one job, return its serialised result."""
    return result_to_dict(job.run())


def _run_with_retry(job: JobSpec, index: int, retries: int) -> RunResult:
    """In-process execution with the same retry policy as the pool path."""
    attempts = retries + 1
    last: Optional[BaseException] = None
    for _ in range(attempts):
        try:
            return job.run()
        except ReproError:
            raise
        except Exception as exc:  # transient by assumption; retry once
            last = exc
    raise ExecutionError(
        f"job {index} ({job.workload.label} / {job.policy}) failed after "
        f"{attempts} attempts: {last}"
    ) from last


def execute_jobs(
    jobs: Sequence[JobSpec],
    max_workers: int = 1,
    cache: Optional[ResultCache] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
) -> List[RunResult]:
    """Execute ``jobs`` and return one :class:`RunResult` per job, in order.

    ``max_workers <= 1`` (or a pool that fails to start) runs serially
    in-process; ``cache`` short-circuits jobs whose content address is
    already stored and records fresh results on the way out. ``timeout``
    bounds each job's wall-clock wait in seconds (parallel path only —
    a serial job cannot be preempted). ``retries`` bounds re-execution
    of transiently-failed jobs (default: one retry).
    """
    jobs = list(jobs)
    for i, job in enumerate(jobs):
        if not isinstance(job, JobSpec):
            raise ExecutionError(f"jobs[{i}] is not a JobSpec: {type(job).__name__}")
    if retries < 0:
        raise ExecutionError(f"retries must be >= 0, got {retries}")
    results: List[Optional[RunResult]] = [None] * len(jobs)

    misses: List[int] = []
    if cache is not None:
        for i, job in enumerate(jobs):
            hit = cache.get(job)
            if hit is not None:
                results[i] = hit
            else:
                misses.append(i)
    else:
        misses = list(range(len(jobs)))

    if misses:
        if max_workers > 1 and len(misses) > 1:
            _execute_pooled(jobs, misses, results, max_workers, timeout, retries)
        else:
            for i in misses:
                results[i] = _run_with_retry(jobs[i], i, retries)
        if cache is not None:
            for i in misses:
                cache.put(jobs[i], results[i])

    return results  # type: ignore[return-value]


def _execute_pooled(
    jobs: Sequence[JobSpec],
    misses: Sequence[int],
    results: List[Optional[RunResult]],
    max_workers: int,
    timeout: Optional[float],
    retries: int,
) -> None:
    """Fan ``misses`` out over a process pool, filling ``results`` in place."""
    workers = min(max_workers, len(misses))
    try:
        pool = cf.ProcessPoolExecutor(max_workers=workers)
    except (OSError, ValueError, RuntimeError):
        # Pool cannot start (sandboxed environment, missing semaphores,
        # spawn failure): degrade gracefully to serial execution.
        for i in misses:
            results[i] = _run_with_retry(jobs[i], i, retries)
        return

    with pool:
        futures = {i: pool.submit(_run_job_dict, jobs[i]) for i in misses}
        retry_budget = {i: retries for i in misses}
        pending = list(misses)
        while pending:
            i = pending.pop(0)
            try:
                results[i] = result_from_dict(futures[i].result(timeout=timeout))
            except ReproError:
                raise  # deterministic library failure: retrying is pointless
            except cf.TimeoutError:
                futures[i].cancel()
                raise ExecutionError(
                    f"job {i} ({jobs[i].workload.label} / {jobs[i].policy}) "
                    f"exceeded its {timeout:g}s timeout"
                ) from None
            except Exception as exc:
                if retry_budget[i] > 0:
                    retry_budget[i] -= 1
                    # A crashed worker may have broken the whole pool;
                    # the retry runs in-process, which also covers
                    # unpicklable-job failures.
                    results[i] = _run_with_retry(jobs[i], i, retries=0)
                else:
                    raise ExecutionError(
                        f"job {i} ({jobs[i].workload.label} / {jobs[i].policy}) "
                        f"failed in worker: {exc}"
                    ) from exc
