"""Parallel job execution over a process pool, with caching and retry.

:func:`execute_jobs` is the engine behind ``Sweep.run(max_workers=...)``
and the CLI's ``--jobs``: it resolves cache hits first, fans the misses
out over a :class:`~concurrent.futures.ProcessPoolExecutor`, and returns
results in the *input* order regardless of completion order, so parallel
sweeps are record-for-record identical to serial ones.

The return value is an :class:`ExecutionOutcome` — a list of
:class:`RunResult` (so every existing caller keeps working) that also
carries one :class:`~repro.telemetry.profiling.JobProfile` per job
(wall time, throughput, retries, provenance, peak RSS) plus cache
hit/miss totals, and can roll them up into a
:class:`~repro.telemetry.profiling.RunManifest`. Pass ``manifest_dir``
to have the manifest written as ``manifest.json`` (a sweep run with a
cache does this automatically, next to the cached results), and
``heartbeat_interval`` to get rate-limited progress lines on stderr
during long sweeps.

Failure policy: library errors (:class:`~repro.errors.ReproError`) are
deterministic — a retry would fail identically — so they propagate
unchanged. Anything else (a worker killed by the OS, a broken pool, a
pickling hiccup) is treated as transient and retried once, in-process;
a second failure raises :class:`~repro.errors.ExecutionError`.

Interruption policy: SIGINT (Ctrl-C) and SIGTERM (a supervisor's stop)
during a batch shut the batch down gracefully instead of unwinding
with a raw traceback — pending work is cancelled, every *completed*
job is still cached and profiled, the manifest is still written, and
the caller receives a partial :class:`ExecutionOutcome` with
``interrupted=True`` (SIGTERM is bridged to ``KeyboardInterrupt``
while the batch runs, main thread only — worker-thread callers such as
the serve daemon inherit their host's signal handling untouched).

Workers serialise results with :mod:`repro.exec.serialize` rather than
pickling :class:`RunResult` objects, so the parallel path returns
byte-identical data to the cache path.
"""

from __future__ import annotations

import concurrent.futures as cf
import contextlib
import pathlib
import signal
import threading
import time
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..errors import ExecutionError, ReproError
from ..obs.spans import current_recorder, span, tracing_enabled
from ..sim.results import RunResult
from ..telemetry.profiling import (
    SOURCE_CACHE,
    SOURCE_POOL,
    SOURCE_SERIAL,
    Heartbeat,
    JobProfile,
    RunManifest,
    peak_rss_kb,
)
from .cache import ResultCache
from .jobs import JobSpec
from .serialize import result_from_dict, result_to_dict


class ExecutionOutcome(List[RunResult]):
    """Ordered results plus per-job execution telemetry.

    Behaves exactly like the plain ``List[RunResult]`` this function
    used to return; the telemetry rides along as attributes. An
    interrupted batch (``interrupted=True``) holds only the jobs that
    completed — still in input order — with ``total_jobs`` recording
    how many were requested.
    """

    def __init__(
        self,
        results: Sequence[RunResult],
        profiles: Sequence[JobProfile],
        max_workers: int,
        wall_s: float,
        interrupted: bool = False,
        total_jobs: Optional[int] = None,
    ) -> None:
        super().__init__(results)
        self.profiles: List[JobProfile] = list(profiles)
        self.max_workers = max_workers
        self.wall_s = wall_s
        self.interrupted = interrupted
        self.total_jobs = len(self) if total_jobs is None else total_jobs

    @property
    def cache_hits(self) -> int:
        return sum(1 for p in self.profiles if p.source == SOURCE_CACHE)

    @property
    def cache_misses(self) -> int:
        return sum(1 for p in self.profiles if p.source != SOURCE_CACHE)

    def manifest(self) -> RunManifest:
        return RunManifest(
            jobs=list(self.profiles), max_workers=self.max_workers, wall_s=self.wall_s
        )

    def write_manifest(self, target: Union[str, pathlib.Path]) -> pathlib.Path:
        """Write ``manifest.json`` (``target`` may be a directory)."""
        return self.manifest().write(target)


def _run_job_dict(job: JobSpec) -> Dict[str, Any]:
    """Worker entry point: run one job, return its serialised result
    plus the worker-side profile facts (wall time, peak RSS)."""
    start = time.perf_counter()
    result = job.run()
    return {
        "result": result_to_dict(result),
        "wall_s": time.perf_counter() - start,
        "peak_rss_kb": peak_rss_kb(),
    }


def _run_with_retry(
    job: JobSpec, index: int, retries: int
) -> Tuple[RunResult, int]:
    """In-process execution with the same retry policy as the pool path.

    Returns ``(result, retries_used)``.
    """
    attempts = retries + 1
    last: Optional[BaseException] = None
    for attempt in range(attempts):
        try:
            return job.run(), attempt
        except ReproError:
            raise
        except Exception as exc:  # transient by assumption; retry once
            last = exc
    raise ExecutionError(
        f"job {index} ({job.workload.label} / {job.policy}) failed after "
        f"{attempts} attempts: {last}"
    ) from last


@contextlib.contextmanager
def _sigterm_as_interrupt() -> Iterator[None]:
    """Bridge SIGTERM to ``KeyboardInterrupt`` for the enclosed batch.

    Lets a supervisor's ``kill`` trigger the same graceful partial
    shutdown as Ctrl-C. Signal handlers are a main-thread-only,
    process-global resource, so this is a no-op off the main thread
    (e.g. ``execute_jobs`` running inside a serve worker thread) and
    on platforms that refuse the handler.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return
    def _raise(signum, frame):  # noqa: ARG001
        raise KeyboardInterrupt
    try:
        previous = signal.signal(signal.SIGTERM, _raise)
    except (ValueError, OSError, AttributeError):  # no SIGTERM / exotic host
        yield
        return
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


def _profile_for(
    index: int, job: JobSpec, source: str, result: RunResult
) -> JobProfile:
    return JobProfile(
        index=index,
        key=job.key(),
        workload=job.workload.label,
        policy=job.policy,
        system=job.system.label,
        source=source,
        accesses=result.hier.accesses,
    )


def execute_jobs(
    jobs: Sequence[JobSpec],
    max_workers: int = 1,
    cache: Optional[ResultCache] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
    manifest_dir: Optional[Union[str, pathlib.Path]] = None,
    heartbeat_interval: Optional[float] = None,
    heartbeat_emit: Optional[Callable[[str], None]] = None,
) -> ExecutionOutcome:
    """Execute ``jobs`` and return one :class:`RunResult` per job, in order.

    ``max_workers <= 1`` (or a pool that fails to start) runs serially
    in-process; ``cache`` short-circuits jobs whose content address is
    already stored and records fresh results on the way out. ``timeout``
    bounds each job's wall-clock wait in seconds (parallel path only —
    a serial job cannot be preempted). ``retries`` bounds re-execution
    of transiently-failed jobs (default: one retry). ``manifest_dir``
    writes the run manifest there (``manifest.json``);
    ``heartbeat_interval`` emits progress lines at most that many
    seconds apart (via ``heartbeat_emit``, default stderr).

    SIGINT/SIGTERM mid-batch returns a *partial* outcome instead of
    raising: completed jobs are cached, profiled, and manifest-logged
    as usual, pending work is cancelled, and the returned outcome has
    ``interrupted=True`` with ``total_jobs`` = the requested count.
    """
    start = time.perf_counter()
    jobs = list(jobs)
    for i, job in enumerate(jobs):
        if not isinstance(job, JobSpec):
            raise ExecutionError(f"jobs[{i}] is not a JobSpec: {type(job).__name__}")
    if retries < 0:
        raise ExecutionError(f"retries must be >= 0, got {retries}")
    results: List[Optional[RunResult]] = [None] * len(jobs)
    profiles: List[Optional[JobProfile]] = [None] * len(jobs)
    pulse = Heartbeat(len(jobs), heartbeat_interval, emit=heartbeat_emit)

    batch_span = span("exec.batch", jobs=len(jobs), max_workers=max_workers)
    misses: List[int] = []
    if cache is not None:
        with span("exec.cache_probe", jobs=len(jobs)) as probe_span:
            for i, job in enumerate(jobs):
                lookup_start = time.perf_counter()
                hit = cache.get(job)
                if hit is not None:
                    results[i] = hit
                    profile = _profile_for(i, job, SOURCE_CACHE, hit)
                    profile.wall_s = time.perf_counter() - lookup_start
                    profiles[i] = profile
                else:
                    misses.append(i)
            probe_span.set(hits=len(jobs) - len(misses), misses=len(misses))
    else:
        misses = list(range(len(jobs)))
    cached_count = len(jobs) - len(misses)

    interrupted = False
    try:
        if misses:
            with _sigterm_as_interrupt():
                try:
                    if max_workers > 1 and len(misses) > 1:
                        _execute_pooled(
                            jobs, misses, results, profiles, max_workers, timeout,
                            retries, pulse, cached_count,
                        )
                    else:
                        for n, i in enumerate(misses):
                            job_start = time.perf_counter()
                            with span(
                                "exec.job", index=i, policy=jobs[i].policy,
                                workload=jobs[i].workload.label,
                            ):
                                results[i], used = _run_with_retry(
                                    jobs[i], i, retries
                                )
                            profile = _profile_for(
                                i, jobs[i], SOURCE_SERIAL, results[i]
                            )
                            profile.wall_s = time.perf_counter() - job_start
                            profile.retries = used
                            profile.peak_rss_kb = peak_rss_kb()
                            profiles[i] = profile
                            pulse.beat(cached_count + n + 1, cached_count)
                except KeyboardInterrupt:
                    # Graceful shutdown: keep everything that finished.
                    # (_execute_pooled has already cancelled its futures.)
                    interrupted = True
            if cache is not None:
                for i in misses:
                    if results[i] is not None:
                        cache.put(jobs[i], results[i])
    except BaseException:
        batch_span.finish("error")
        raise

    completed = [
        i for i in range(len(jobs))
        if results[i] is not None and profiles[i] is not None
    ]
    wall_s = time.perf_counter() - start
    outcome = ExecutionOutcome(
        [results[i] for i in completed],  # type: ignore[misc]
        [profiles[i] for i in completed],  # type: ignore[misc]
        max_workers=max_workers,
        wall_s=wall_s,
        interrupted=interrupted,
        total_jobs=len(jobs),
    )
    batch_span.set(
        completed=len(completed), cache_hits=cached_count, interrupted=interrupted
    )
    batch_span.finish()
    _report_metrics(outcome)
    if jobs:
        pulse.final(len(completed), cached_count)
    if manifest_dir is not None:
        outcome.write_manifest(manifest_dir)
        if tracing_enabled():
            # The span dump rides next to the manifest so the ledger
            # scanner finds both in one pass. Dumping the whole
            # recorder (not a drained slice) means later batches in
            # the same process supersede the file with a superset.
            recorder = current_recorder()
            if recorder is not None and len(recorder):
                recorder.dump(pathlib.Path(manifest_dir))
    return outcome


def _report_metrics(outcome: ExecutionOutcome) -> None:
    """Pool roll-ups into the process metrics registry (once per batch)."""
    from ..telemetry.metrics import get_registry

    registry = get_registry()
    registry.counter("exec.jobs").inc(len(outcome))
    if outcome.interrupted:
        registry.counter("exec.interrupted").inc()
    registry.counter("exec.cache_hits").inc(outcome.cache_hits)
    registry.counter("exec.cache_misses").inc(outcome.cache_misses)
    registry.counter("exec.retries").inc(sum(p.retries for p in outcome.profiles))
    job_wall = registry.histogram("exec.job_wall_s")
    for profile in outcome.profiles:
        if profile.source != SOURCE_CACHE:
            job_wall.observe(profile.wall_s)


def _execute_pooled(
    jobs: Sequence[JobSpec],
    misses: Sequence[int],
    results: List[Optional[RunResult]],
    profiles: List[Optional[JobProfile]],
    max_workers: int,
    timeout: Optional[float],
    retries: int,
    pulse: Heartbeat,
    cached_count: int,
) -> None:
    """Fan ``misses`` out over a process pool, filling ``results`` and
    ``profiles`` in place."""
    workers = min(max_workers, len(misses))
    try:
        pool = cf.ProcessPoolExecutor(max_workers=workers)
    except (OSError, ValueError, RuntimeError):
        # Pool cannot start (sandboxed environment, missing semaphores,
        # spawn failure): degrade gracefully to serial execution.
        for n, i in enumerate(misses):
            job_start = time.perf_counter()
            results[i], used = _run_with_retry(jobs[i], i, retries)
            profile = _profile_for(i, jobs[i], SOURCE_SERIAL, results[i])
            profile.wall_s = time.perf_counter() - job_start
            profile.retries = used
            profile.peak_rss_kb = peak_rss_kb()
            profiles[i] = profile
            pulse.beat(cached_count + n + 1, cached_count)
        return

    try:
        futures = {i: pool.submit(_run_job_dict, jobs[i]) for i in misses}
        retry_budget = {i: retries for i in misses}
        pending = list(misses)
        done = 0
        while pending:
            i = pending.pop(0)
            try:
                payload = _wait_with_heartbeat(
                    futures[i], timeout, pulse, cached_count + done, cached_count
                )
                results[i] = result_from_dict(payload["result"])
                profile = _profile_for(i, jobs[i], SOURCE_POOL, results[i])
                profile.wall_s = payload.get("wall_s", 0.0)
                profile.retries = retries - retry_budget[i]
                profile.peak_rss_kb = payload.get("peak_rss_kb")
                profiles[i] = profile
            except ReproError:
                raise  # deterministic library failure: retrying is pointless
            except cf.TimeoutError:
                futures[i].cancel()
                raise ExecutionError(
                    f"job {i} ({jobs[i].workload.label} / {jobs[i].policy}) "
                    f"exceeded its {timeout:g}s timeout"
                ) from None
            except Exception as exc:
                if retry_budget[i] > 0:
                    retry_budget[i] -= 1
                    # A crashed worker may have broken the whole pool;
                    # the retry runs in-process, which also covers
                    # unpicklable-job failures.
                    job_start = time.perf_counter()
                    results[i], _ = _run_with_retry(jobs[i], i, retries=0)
                    profile = _profile_for(i, jobs[i], SOURCE_SERIAL, results[i])
                    profile.wall_s = time.perf_counter() - job_start
                    profile.retries = retries - retry_budget[i]
                    profile.peak_rss_kb = peak_rss_kb()
                    profiles[i] = profile
                else:
                    raise ExecutionError(
                        f"job {i} ({jobs[i].workload.label} / {jobs[i].policy}) "
                        f"failed in worker: {exc}"
                    ) from exc
            done += 1
            pulse.beat(cached_count + done, cached_count)
    except KeyboardInterrupt:
        # Graceful shutdown: drop work that has not started, abandon
        # the in-flight job (a process pool cannot preempt it), keep
        # every result already collected. The caller turns this into a
        # partial ExecutionOutcome.
        for future in futures.values():
            future.cancel()
        pool.shutdown(wait=False, cancel_futures=True)
        raise
    except BaseException:
        pool.shutdown(wait=True, cancel_futures=True)
        raise
    else:
        pool.shutdown(wait=True)


def _wait_with_heartbeat(
    future: "cf.Future",
    timeout: Optional[float],
    pulse: Heartbeat,
    done: int,
    cached: int,
) -> Dict[str, Any]:
    """``future.result(timeout=...)`` that keeps the heartbeat alive.

    Waits in slices no longer than the heartbeat interval so progress
    lines keep flowing while a slow job blocks the ordered collection
    loop; the per-job ``timeout`` semantics are unchanged (measured
    from when collection reaches this job).
    """
    if pulse.interval is None or pulse.interval <= 0:
        return future.result(timeout=timeout)
    deadline = None if timeout is None else time.perf_counter() + timeout
    while True:
        remaining = None if deadline is None else deadline - time.perf_counter()
        if remaining is not None and remaining <= 0:
            raise cf.TimeoutError()
        wait = pulse.interval if remaining is None else min(pulse.interval, remaining)
        try:
            return future.result(timeout=wait)
        except cf.TimeoutError:
            if deadline is not None and time.perf_counter() >= deadline:
                raise
            pulse.beat(done, cached)
