"""Lossless JSON-safe serialisation of run results and system configs.

The execution engine moves :class:`~repro.sim.results.RunResult`s across
two boundaries — worker processes and the on-disk result cache — and both
use the same dict representation so a cache hit is bit-identical to a
fresh run. Floats survive because :func:`json.dumps` emits ``repr``-style
shortest round-trip literals; the only JSON-hostile structure is
``LoopBlockStats.ctc_histogram`` (int keys), which is re-keyed on load.

``system_to_dict`` / ``system_from_dict`` give
:class:`~repro.sim.system.SystemConfig` a canonical dict form used both
to rebuild systems and to derive the content-address of a
:class:`~repro.exec.jobs.JobSpec`.
"""

from __future__ import annotations

from dataclasses import asdict, fields
from typing import Any, Dict, Optional, Type, TypeVar

from ..cache.stats import CacheStats, CoherenceStats, LoopBlockStats
from ..energy.model import EnergyResult
from ..energy.technology import TechnologyParams
from ..errors import ExecutionError
from ..hierarchy.config import HierarchyConfig, LevelConfig, LLCLevelConfig
from ..hierarchy.hierarchy import HierarchyStats
from ..sim.results import RunResult
from ..sim.system import SystemConfig

T = TypeVar("T")


def _from_fields(cls: Type[T], data: Dict[str, Any], what: str) -> T:
    """Instantiate a dataclass from a dict, ignoring unknown keys.

    Tolerating extras lets newer writers add counters without breaking
    older readers; *missing* keys fall back to the dataclass defaults,
    and dataclasses without defaults raise a clear error instead.
    """
    if not isinstance(data, dict):
        raise ExecutionError(f"serialised {what} must be a dict, got {type(data).__name__}")
    known = {f.name for f in fields(cls)}
    try:
        return cls(**{k: v for k, v in data.items() if k in known})
    except TypeError as exc:
        raise ExecutionError(f"cannot rebuild {what} from serialised form: {exc}") from None


# ----------------------------------------------------------------------
# RunResult
# ----------------------------------------------------------------------
def result_to_dict(result: RunResult) -> Dict[str, Any]:
    """Flatten a :class:`RunResult` into a JSON-serialisable dict."""
    loop = asdict(result.loop)
    # JSON objects only have string keys; stringify here so that a dict
    # that has already been through json.dumps compares equal to a
    # freshly serialised one.
    loop["ctc_histogram"] = {str(k): v for k, v in loop["ctc_histogram"].items()}
    return {
        "policy": result.policy,
        "workload": result.workload,
        "system": result.system,
        "refs_per_core": result.refs_per_core,
        "instructions": result.instructions,
        "cycles": result.cycles,
        "core_instructions": list(result.core_instructions),
        "core_cycles": list(result.core_cycles),
        "llc": asdict(result.llc),
        "hier": asdict(result.hier),
        "loop": loop,
        "energy": asdict(result.energy),
        "coherence": asdict(result.coherence) if result.coherence else None,
        "extra": dict(result.extra),
    }


def result_from_dict(data: Dict[str, Any]) -> RunResult:
    """Rebuild a :class:`RunResult` from :func:`result_to_dict` output."""
    if not isinstance(data, dict):
        raise ExecutionError(f"serialised RunResult must be a dict, got {type(data).__name__}")
    missing = {"policy", "workload", "system", "llc", "hier", "loop", "energy"} - set(data)
    if missing:
        raise ExecutionError(f"serialised RunResult is missing fields: {sorted(missing)}")
    loop_data = dict(data["loop"])
    loop_data["ctc_histogram"] = {
        int(k): v for k, v in loop_data.get("ctc_histogram", {}).items()
    }
    coherence: Optional[CoherenceStats] = None
    if data.get("coherence") is not None:
        coherence = _from_fields(CoherenceStats, data["coherence"], "CoherenceStats")
    return RunResult(
        policy=data["policy"],
        workload=data["workload"],
        system=data["system"],
        refs_per_core=data["refs_per_core"],
        instructions=data["instructions"],
        cycles=data["cycles"],
        core_instructions=[int(x) for x in data["core_instructions"]],
        core_cycles=[float(x) for x in data["core_cycles"]],
        llc=_from_fields(CacheStats, data["llc"], "CacheStats"),
        hier=_from_fields(HierarchyStats, data["hier"], "HierarchyStats"),
        loop=_from_fields(LoopBlockStats, loop_data, "LoopBlockStats"),
        energy=_from_fields(EnergyResult, data["energy"], "EnergyResult"),
        coherence=coherence,
        extra=dict(data.get("extra", {})),
    )


# ----------------------------------------------------------------------
# SystemConfig
# ----------------------------------------------------------------------
def system_to_dict(system: SystemConfig) -> Dict[str, Any]:
    """Canonical dict form of a :class:`SystemConfig` (nested dataclasses)."""
    return asdict(system)


def system_from_dict(data: Dict[str, Any]) -> SystemConfig:
    """Rebuild a :class:`SystemConfig` from :func:`system_to_dict` output."""
    if not isinstance(data, dict) or "hierarchy" not in data:
        raise ExecutionError("serialised SystemConfig must be a dict with a 'hierarchy'")
    h = data["hierarchy"]
    llc = dict(h["llc"])
    llc["tech"] = _from_fields(TechnologyParams, llc["tech"], "TechnologyParams")
    llc["sram_tech"] = _from_fields(TechnologyParams, llc["sram_tech"], "TechnologyParams")
    hierarchy = _from_fields(
        HierarchyConfig,
        {
            **h,
            "l1": _from_fields(LevelConfig, h["l1"], "LevelConfig"),
            "l2": _from_fields(LevelConfig, h["l2"], "LevelConfig"),
            "llc": _from_fields(LLCLevelConfig, llc, "LLCLevelConfig"),
        },
        "HierarchyConfig",
    )
    return _from_fields(SystemConfig, {**data, "hierarchy": hierarchy}, "SystemConfig")
