"""repro.exec — parallel experiment execution with result caching.

The paper's figures are grids of independent (system × workload ×
policy) simulations. This package turns one grid cell into a value
(:class:`JobSpec`), executes batches of them over a process pool with
deterministic ordering (:func:`execute_jobs`), and memoises results in a
content-addressed on-disk cache (:class:`ResultCache`) so identical runs
are never simulated twice — across sweeps, figures, the CLI, and the
benchmark harness alike.
"""

from .cache import (
    CACHE_DIR_ENV,
    DEFAULT_MAX_BYTES,
    ResultCache,
    ResultCacheStats,
    cache_from_env,
    get_active_cache,
    set_active_cache,
)
from .jobs import CACHE_SCHEMA_VERSION, JobSpec, WorkloadSpec
from .pool import ExecutionOutcome, execute_jobs
from .serialize import (
    result_from_dict,
    result_to_dict,
    system_from_dict,
    system_to_dict,
)

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_MAX_BYTES",
    "ExecutionOutcome",
    "JobSpec",
    "ResultCache",
    "ResultCacheStats",
    "WorkloadSpec",
    "cache_from_env",
    "execute_jobs",
    "get_active_cache",
    "result_from_dict",
    "result_to_dict",
    "set_active_cache",
    "system_from_dict",
    "system_to_dict",
]
