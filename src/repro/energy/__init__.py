"""Energy modelling: Table I technologies, EPI accounting, Fig. 23 scaling."""

from .model import (
    DEFAULT_CLOCK_HZ,
    DEFAULT_LEAKAGE_COMPENSATION,
    EnergyResult,
    LLCEnergyModel,
)
from .technology import (
    L3_TAG,
    MB,
    PUBLISHED_CONFIGS,
    RAW_TABLE1,
    SRAM,
    STT_RAM,
    PublishedConfig,
    TagParams,
    TechnologyParams,
    iso_area_capacity,
    pow2_floor,
    technology_by_name,
)

__all__ = [
    "EnergyResult",
    "LLCEnergyModel",
    "DEFAULT_CLOCK_HZ",
    "DEFAULT_LEAKAGE_COMPENSATION",
    "TechnologyParams",
    "TagParams",
    "PublishedConfig",
    "PUBLISHED_CONFIGS",
    "RAW_TABLE1",
    "SRAM",
    "STT_RAM",
    "L3_TAG",
    "MB",
    "technology_by_name",
    "iso_area_capacity",
    "pow2_floor",
]
