"""Memory-technology parameters (paper Table I / Table II).

The paper models its caches with CACTI 6.0 and NVSim and consumes six
numbers per technology: area, read/write latency, read/write energy,
and leakage power. We transcribe those numbers for the 2 MB bank at
22 nm / 350 K (Table I) plus the tag-array parameters given for the
8 MB L3 in Table II, and express leakage *per megabyte* so the same
parameters drive geometry-scaled simulations.

Latencies are carried in cycles at the paper's 3 GHz clock as given in
Table II (SRAM L3: 8-cycle read/write; STT-RAM L3: 8-cycle read,
33-cycle write).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ConfigurationError

MB = 1024 * 1024


@dataclass(frozen=True)
class TechnologyParams:
    """Data-array parameters of one memory technology.

    Energies are nJ per block access; leakage is mW per MB of data
    array; latencies are LLC access cycles at 3 GHz; area is mm^2 per
    MB (used only for iso-area capacity reasoning, Fig. 21b).
    """

    name: str
    read_energy_nj: float
    write_energy_nj: float
    leakage_mw_per_mb: float
    read_latency_cycles: int
    write_latency_cycles: int
    area_mm2_per_mb: float

    @property
    def write_read_ratio(self) -> float:
        """The paper's key abstraction: write/read energy ratio."""
        return self.write_energy_nj / self.read_energy_nj

    def with_write_read_ratio(self, ratio: float) -> "TechnologyParams":
        """Fix read energy and leakage, scale write energy (Fig. 23).

        This mirrors Section VI-D exactly: "we fix the read energy and
        leakage power consumption, but scale the write energy".
        """
        if ratio <= 0:
            raise ConfigurationError(f"write/read ratio must be positive, got {ratio}")
        return replace(
            self,
            name=f"{self.name}-r{ratio:g}x",
            write_energy_nj=self.read_energy_nj * ratio,
        )


@dataclass(frozen=True)
class TagParams:
    """SRAM tag-array parameters (Table II).

    The tag array is SRAM regardless of the data-array technology (the
    paper stores loop-bits "in the SRAM tag array").
    """

    dynamic_nj_per_access: float
    leakage_mw_per_mb: float


# Table I, 2MB bank, 22nm, 350K — taken verbatim from the paper.
# Leakage converted to per-MB of the 2MB bank; latencies taken from the
# Table II L3 figures (cycles at 3GHz).
SRAM = TechnologyParams(
    name="sram",
    read_energy_nj=0.072,
    write_energy_nj=0.056,
    leakage_mw_per_mb=50.736 / 2.0,
    read_latency_cycles=8,
    write_latency_cycles=8,
    area_mm2_per_mb=1.65 / 2.0,
)

STT_RAM = TechnologyParams(
    name="stt",
    read_energy_nj=0.133,
    write_energy_nj=0.436,
    leakage_mw_per_mb=7.108 / 2.0,
    read_latency_cycles=8,
    write_latency_cycles=33,
    area_mm2_per_mb=0.62 / 2.0,
)

# Table II tag parameters for an 8MB L3: leakage 17.73mW, 0.015nJ/access.
L3_TAG = TagParams(dynamic_nj_per_access=0.015, leakage_mw_per_mb=17.73 / 8.0)

# Table I raw latencies in nanoseconds (used by Table I regeneration).
RAW_TABLE1 = {
    "sram": {
        "area_mm2": 1.65,
        "read_latency_ns": 2.09,
        "write_latency_ns": 1.73,
        "read_energy_nj": 0.072,
        "write_energy_nj": 0.056,
        "leakage_mw": 50.736,
    },
    "stt": {
        "area_mm2": 0.62,
        "read_latency_ns": 2.69,
        "write_latency_ns": 10.91,
        "read_energy_nj": 0.133,
        "write_energy_nj": 0.436,
        "leakage_mw": 7.108,
    },
}


@dataclass(frozen=True)
class PublishedConfig:
    """One published STT-RAM design point plotted in Fig. 23.

    The paper overlays eleven configurations from the literature on its
    write/read-ratio scaling curve. The original circuit papers are not
    reproducible here, so each entry records the *ratio* at which the
    paper plots it (read off Fig. 23's x-axis) together with relative
    latency/leakage multipliers that perturb the design away from the
    pure scaling curve the way the paper describes ("slightly different
    from our predicted curve due to variant settings of access latency
    and leakage power").
    """

    label: str
    citation: str
    write_read_ratio: float
    latency_scale: float = 1.0
    leakage_scale: float = 1.0
    on_curve: bool = True

    def technology(self, base: TechnologyParams = STT_RAM) -> TechnologyParams:
        """Materialise this design point as technology parameters."""
        scaled = base.with_write_read_ratio(self.write_read_ratio)
        return replace(
            scaled,
            name=f"stt-{self.label}",
            leakage_mw_per_mb=scaled.leakage_mw_per_mb * self.leakage_scale,
            write_latency_cycles=max(
                scaled.read_latency_cycles,
                round(scaled.write_latency_cycles * self.latency_scale),
            ),
        )


# Eleven design points from Fig. 23, ratios read off the figure's axis.
# Entries flagged on_curve=False are the ones the paper notes deviate
# from the prediction because of latency/leakage differences.
PUBLISHED_CONFIGS = (
    PublishedConfig("dasca14", "[34] Ahn et al., HPCA 2014", 2.2),
    PublishedConfig("apm14", "[17] Wang et al., HPCA 2014", 3.3),
    PublishedConfig("l3c13", "[41] Chang et al., HPCA 2013", 4.5),
    PublishedConfig("vlsic14", "[12] Noguchi et al., VLSIC 2014", 2.8, 0.8, 1.2, on_curve=False),
    PublishedConfig("smullen11-1", "[13]-1 Smullen et al., HPCA 2011", 5.5),
    PublishedConfig("smullen11-2", "[13]-2 Smullen et al., HPCA 2011", 8.0),
    PublishedConfig("isscc10", "[42] Halupka et al., ISSCC 2010", 10.0, 1.2, 0.9, on_curve=False),
    PublishedConfig("isscc15", "[11] Noguchi et al., ISSCC 2015", 12.0, 0.9, 1.1, on_curve=False),
    PublishedConfig("vlsic12", "[43] Ohsawa et al., VLSIC 2012", 15.0, 1.1, 0.85, on_curve=False),
    PublishedConfig("vlsit13", "[14] Noguchi et al., VLSIT 2013", 18.0),
    PublishedConfig("mram10", "[16] Tsuchida et al., ISSCC 2010", 22.0, 1.3, 1.2, on_curve=False),
)


def iso_area_capacity(
    sram_bytes: int,
    sram: TechnologyParams = SRAM,
    stt: TechnologyParams = STT_RAM,
) -> int:
    """STT-RAM capacity fitting in the die area of an SRAM LLC.

    Fig. 21b's premise: "the high density of STT-RAM could be utilized
    to provide larger capacity within the same chip area" — Table I's
    densities make an 8 MB SRAM footprint hold ~21 MB of STT-RAM (the
    paper evaluates a 24 MB iso-area point). Returns raw bytes; round
    to a power of two before building a cache with it.
    """
    if sram_bytes <= 0:
        raise ConfigurationError(f"sram_bytes must be positive, got {sram_bytes}")
    area_mm2 = sram_bytes / MB * sram.area_mm2_per_mb
    return int(area_mm2 / stt.area_mm2_per_mb * MB)


def pow2_floor(value: int) -> int:
    """Largest power of two <= value (cache geometries need powers of two)."""
    if value < 1:
        raise ConfigurationError(f"need a positive value, got {value}")
    return 1 << (value.bit_length() - 1)


def technology_by_name(name: str) -> TechnologyParams:
    """Look up a base technology by name (``"sram"`` or ``"stt"``)."""
    table = {"sram": SRAM, "stt": STT_RAM}
    try:
        return table[name]
    except KeyError:
        raise ConfigurationError(f"unknown technology {name!r}; expected one of {sorted(table)}")
