"""LLC energy accounting (EPI model).

The paper's figure of merit is LLC energy per instruction (EPI), split
into static (leakage) and dynamic (per-access) energy:

- static: data-array leakage per technology region plus SRAM tag-array
  leakage, integrated over the run's wall-clock time;
- dynamic: per-access read/write energies per technology region plus
  tag-probe energy.

Scale compensation
------------------
The reproduction runs geometry-scaled simulations (~10^5 memory
references against KB-scale caches) instead of 2-billion-cycle gem5 runs
against an 8 MB LLC. Scaling the geometry down raises the number of LLC
accesses *per instruction* by roughly the scaling factor, which would
artificially deflate leakage's share of total energy and break the
paper's central regime distinction (SRAM LLC energy is leakage-
dominated; STT-RAM LLC energy is write-dominated). The
``leakage_compensation`` factor multiplies leakage power to restore the
paper's static/dynamic balance; the default of 48 corresponds to the
ratio between the paper's LLC-accesses-per-instruction (a few per
thousand) and the scaled simulation's (a few per hundred). Full-scale
Table II simulations should pass ``leakage_compensation=1.0``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cache.stats import CacheStats
from ..errors import ConfigurationError
from ..utils import require_nonnegative, require_positive
from .technology import L3_TAG, MB, SRAM, STT_RAM, TagParams, TechnologyParams

DEFAULT_LEAKAGE_COMPENSATION = 48.0
DEFAULT_CLOCK_HZ = 3.0e9


@dataclass(frozen=True)
class EnergyResult:
    """Energy of one cache over one run, in joules, plus EPI views."""

    static_j: float
    dynamic_read_j: float
    dynamic_write_j: float
    tag_dynamic_j: float
    instructions: int
    cycles: int

    @property
    def dynamic_j(self) -> float:
        """All non-leakage energy (data reads + writes + tag probes)."""
        return self.dynamic_read_j + self.dynamic_write_j + self.tag_dynamic_j

    @property
    def total_j(self) -> float:
        """Static plus dynamic energy."""
        return self.static_j + self.dynamic_j

    @property
    def epi(self) -> float:
        """Energy per instruction (J/instr); the paper's y-axis."""
        if self.instructions <= 0:
            raise ConfigurationError("EPI undefined for zero instructions")
        return self.total_j / self.instructions

    @property
    def static_epi(self) -> float:
        """Leakage energy per instruction."""
        return self.static_j / max(1, self.instructions)

    @property
    def dynamic_epi(self) -> float:
        """Dynamic energy per instruction."""
        return self.dynamic_j / max(1, self.instructions)

    @property
    def static_share(self) -> float:
        """Leakage's share of total energy in [0, 1]."""
        total = self.total_j
        return self.static_j / total if total > 0 else 0.0


class LLCEnergyModel:
    """Computes :class:`EnergyResult` from LLC event counters.

    Parameters
    ----------
    sram_bytes / stt_bytes:
        Data-array capacity per technology region. A homogeneous LLC
        sets one of them to zero; the Table II hybrid uses 2 MB SRAM +
        6 MB STT-RAM (scaled proportionally in small configurations).
    sram / stt:
        :class:`TechnologyParams` for each region. Passing a scaled STT
        variant realises the Fig. 23 write/read-ratio sweep.
    tag:
        SRAM tag-array parameters (leakage scales with total capacity).
    clock_hz:
        Core clock for converting cycles to seconds.
    leakage_compensation:
        See module docstring.
    """

    def __init__(
        self,
        sram_bytes: int,
        stt_bytes: int,
        sram: TechnologyParams = SRAM,
        stt: TechnologyParams = STT_RAM,
        tag: TagParams = L3_TAG,
        clock_hz: float = DEFAULT_CLOCK_HZ,
        leakage_compensation: float = DEFAULT_LEAKAGE_COMPENSATION,
    ) -> None:
        require_nonnegative(sram_bytes, "sram_bytes")
        require_nonnegative(stt_bytes, "stt_bytes")
        if sram_bytes + stt_bytes <= 0:
            raise ConfigurationError("LLC must have nonzero capacity")
        require_positive(clock_hz, "clock_hz")
        require_positive(leakage_compensation, "leakage_compensation")
        self.sram_bytes = sram_bytes
        self.stt_bytes = stt_bytes
        self.sram = sram
        self.stt = stt
        self.tag = tag
        self.clock_hz = clock_hz
        self.leakage_compensation = leakage_compensation

    @classmethod
    def homogeneous(
        cls,
        tech: TechnologyParams,
        capacity_bytes: int,
        **kwargs,
    ) -> "LLCEnergyModel":
        """Build a single-technology model (SRAM-only or STT-only)."""
        if tech.name.startswith("sram"):
            return cls(sram_bytes=capacity_bytes, stt_bytes=0, sram=tech, **kwargs)
        return cls(sram_bytes=0, stt_bytes=capacity_bytes, stt=tech, **kwargs)

    @property
    def capacity_bytes(self) -> int:
        """Total data-array capacity."""
        return self.sram_bytes + self.stt_bytes

    def leakage_watts(self) -> float:
        """Compensated total leakage power (data arrays + tags)."""
        sram_mb = self.sram_bytes / MB
        stt_mb = self.stt_bytes / MB
        total_mb = self.capacity_bytes / MB
        milliwatts = (
            self.sram.leakage_mw_per_mb * sram_mb
            + self.stt.leakage_mw_per_mb * stt_mb
            + self.tag.leakage_mw_per_mb * total_mb
        )
        return milliwatts * 1e-3 * self.leakage_compensation

    def compute(
        self,
        stats: CacheStats,
        cycles: int,
        instructions: int,
        active_fraction: float = 1.0,
    ) -> EnergyResult:
        """Turn one run's LLC counters into an :class:`EnergyResult`.

        ``cycles`` is the slowest core's cycle count (the run's
        duration) and ``instructions`` the total committed instructions
        across cores (the paper's EPI denominator).
        ``active_fraction`` scales the data-array + tag leakage for
        way-gating policies (Mittal-style reconfiguration, the arena's
        ``ways-off``): powered-down ways leak nothing, so static energy
        is charged only for the fraction left on.
        """
        require_nonnegative(cycles, "cycles")
        if not 0.0 < active_fraction <= 1.0:
            raise ConfigurationError(
                f"active_fraction must be in (0, 1], got {active_fraction}"
            )
        duration_s = cycles / self.clock_hz
        static_j = self.leakage_watts() * duration_s * active_fraction

        nj = 1e-9
        read_j = (
            stats.data_reads_sram * self.sram.read_energy_nj
            + stats.data_reads_stt * self.stt.read_energy_nj
        ) * nj
        write_j = (
            stats.data_writes_sram * self.sram.write_energy_nj
            + stats.data_writes_stt * self.stt.write_energy_nj
        ) * nj
        tag_j = stats.tag_probes * self.tag.dynamic_nj_per_access * nj
        return EnergyResult(
            static_j=static_j,
            dynamic_read_j=read_j,
            dynamic_write_j=write_j,
            tag_dynamic_j=tag_j,
            instructions=instructions,
            cycles=cycles,
        )
