"""Per-job profiles, per-sweep run manifests, and heartbeat progress.

:func:`repro.exec.pool.execute_jobs` fills one :class:`JobProfile` per
job — wall time, simulated accesses/s, retry count, result provenance
(fresh worker / in-process / content-addressed cache) and peak RSS
where the platform reports it — and rolls them up into a
:class:`RunManifest` written as ``manifest.json`` next to the cached
results. The manifest is the sweep-level flight log: when a Fig. 14
grid produces a surprising number, it answers "which jobs actually
ran, which came from cache, and where did the time go" without
re-running anything.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

from ..errors import TelemetryError

MANIFEST_SCHEMA_VERSION = 1
MANIFEST_KIND = "repro-manifest"
MANIFEST_NAME = "manifest.json"

#: Result provenance values a profile can carry.
SOURCE_CACHE = "cache"  # served from the content-addressed result cache
SOURCE_POOL = "pool"  # simulated in a worker process
SOURCE_SERIAL = "serial"  # simulated in-process (serial path or retry fallback)


def peak_rss_kb() -> Optional[int]:
    """This process's peak resident set size in KiB, if knowable.

    Uses :mod:`resource` (Unix). Linux reports ``ru_maxrss`` in KiB,
    macOS in bytes; both are normalised to KiB. Returns ``None`` on
    platforms without the module.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-Unix
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - platform-specific
        rss //= 1024
    return int(rss)


@dataclass
class JobProfile:
    """Execution telemetry for one job of a sweep."""

    index: int
    key: str
    workload: str
    policy: str
    system: str
    source: str
    wall_s: float = 0.0
    accesses: int = 0
    retries: int = 0
    peak_rss_kb: Optional[int] = None

    @property
    def accesses_per_s(self) -> float:
        """Simulation throughput (0 for cache hits — nothing was simulated)."""
        if self.source == SOURCE_CACHE or self.wall_s <= 0:
            return 0.0
        return self.accesses / self.wall_s

    def as_dict(self) -> Dict:
        return {
            "index": self.index,
            "key": self.key,
            "workload": self.workload,
            "policy": self.policy,
            "system": self.system,
            "source": self.source,
            "wall_s": self.wall_s,
            "accesses": self.accesses,
            "accesses_per_s": self.accesses_per_s,
            "retries": self.retries,
            "peak_rss_kb": self.peak_rss_kb,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "JobProfile":
        try:
            return cls(
                index=data["index"],
                key=data["key"],
                workload=data["workload"],
                policy=data["policy"],
                system=data["system"],
                source=data["source"],
                wall_s=data.get("wall_s", 0.0),
                accesses=data.get("accesses", 0),
                retries=data.get("retries", 0),
                peak_rss_kb=data.get("peak_rss_kb"),
            )
        except KeyError as exc:
            raise TelemetryError(f"malformed job profile: missing {exc}") from None


@dataclass
class RunManifest:
    """One sweep's flight log: every job's profile plus roll-ups."""

    jobs: List[JobProfile] = field(default_factory=list)
    max_workers: int = 1
    wall_s: float = 0.0

    # ------------------------------------------------------------------
    # roll-ups
    # ------------------------------------------------------------------
    @property
    def cache_hits(self) -> int:
        return sum(1 for j in self.jobs if j.source == SOURCE_CACHE)

    @property
    def cache_misses(self) -> int:
        return sum(1 for j in self.jobs if j.source != SOURCE_CACHE)

    @property
    def total_retries(self) -> int:
        return sum(j.retries for j in self.jobs)

    @property
    def simulated_accesses(self) -> int:
        return sum(j.accesses for j in self.jobs if j.source != SOURCE_CACHE)

    def as_dict(self) -> Dict:
        return {
            "kind": MANIFEST_KIND,
            "schema": MANIFEST_SCHEMA_VERSION,
            "max_workers": self.max_workers,
            "wall_s": self.wall_s,
            "totals": {
                "jobs": len(self.jobs),
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "retries": self.total_retries,
                "simulated_accesses": self.simulated_accesses,
            },
            "jobs": [j.as_dict() for j in self.jobs],
        }

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def write(self, target: Union[str, pathlib.Path]) -> pathlib.Path:
        """Write the manifest; a directory target gets ``manifest.json``."""
        path = pathlib.Path(target)
        if path.is_dir():
            path = path / MANIFEST_NAME
        try:
            path.write_text(json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n")
        except OSError as exc:
            raise TelemetryError(f"cannot write manifest {path}: {exc}") from None
        return path

    @classmethod
    def load(cls, source: Union[str, pathlib.Path]) -> "RunManifest":
        path = pathlib.Path(source)
        if path.is_dir():
            path = path / MANIFEST_NAME
        try:
            data = json.loads(path.read_text())
        except FileNotFoundError:
            raise TelemetryError(f"no such manifest: {path}") from None
        except (OSError, json.JSONDecodeError) as exc:
            raise TelemetryError(f"unreadable manifest {path}: {exc}") from None
        if not isinstance(data, dict) or data.get("kind") != MANIFEST_KIND:
            raise TelemetryError(f"{path}: not a {MANIFEST_KIND} file")
        if data.get("schema") != MANIFEST_SCHEMA_VERSION:
            raise TelemetryError(
                f"{path}: manifest schema {data.get('schema')!r} is not the "
                f"supported version {MANIFEST_SCHEMA_VERSION}"
            )
        return cls(
            jobs=[JobProfile.from_dict(j) for j in data.get("jobs", [])],
            max_workers=data.get("max_workers", 1),
            wall_s=data.get("wall_s", 0.0),
        )


class Heartbeat:
    """Rate-limited progress lines for long sweeps.

    ``beat(done, cached)`` emits at most once per ``interval`` seconds;
    ``final()`` always emits. ``interval=None`` disables emission
    entirely (the default for library callers — the CLI turns it on).
    """

    def __init__(
        self,
        total: int,
        interval: Optional[float],
        emit: Optional[Callable[[str], None]] = None,
        label: str = "exec",
    ) -> None:
        if interval is not None and interval < 0:
            raise TelemetryError(f"heartbeat interval must be >= 0, got {interval}")
        self.total = total
        self.interval = interval
        self.label = label
        self._emit = emit if emit is not None else self._default_emit
        self._start = time.perf_counter()
        self._last = self._start

    @staticmethod
    def _default_emit(line: str) -> None:
        print(line, file=sys.stderr)

    def _line(self, done: int, cached: int) -> str:
        elapsed = time.perf_counter() - self._start
        parts = [f"[{self.label}] {done}/{self.total} job(s) done"]
        if cached:
            parts.append(f"{cached} from cache")
        parts.append(f"{elapsed:.1f}s elapsed")
        return ", ".join(parts)

    def beat(self, done: int, cached: int = 0) -> None:
        if self.interval is None:
            return
        now = time.perf_counter()
        if now - self._last >= self.interval:
            self._last = now
            self._emit(self._line(done, cached))

    def final(self, done: int, cached: int = 0) -> None:
        if self.interval is None:
            return
        self._emit(self._line(done, cached))
