"""repro.telemetry — observability across runs.

Where :mod:`repro.instr` observes a *single* simulation from inside
(probes on the hierarchy's event bus), this package makes whole
*experiments* observable:

- the **flight recorder** (:class:`TraceProbe` / :class:`TraceReader`)
  streams the probe-bus event vocabulary to compressed JSONL and loads
  it back as typed records;
- the **metrics registry** (:class:`MetricsRegistry` with
  :class:`Counter` / :class:`Gauge` / :class:`Histogram`) collects
  process-local roll-ups from the simulator, the hierarchy, and the
  execution pool, snapshot-able to JSON;
- **per-job profiling** (:class:`JobProfile` / :class:`RunManifest`)
  records wall time, throughput, retries, provenance and peak RSS for
  every pooled job, written as ``manifest.json`` next to cached
  results;
- **trace diffing** (:func:`diff_traces` / :func:`summarize_trace`)
  replays two recorded streams, reports the first divergence and
  per-event-type deltas — the engine behind ``repro trace diff``.

Everything here is off the simulator's hot path: recording is a probe
you opt into, metrics report once per run, and profiling wraps jobs,
not accesses.
"""

from .diff import Divergence, TraceDiff, TraceSummary, diff_traces, summarize_trace
from .metrics import (
    BUCKET_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from .profiling import (
    MANIFEST_NAME,
    MANIFEST_SCHEMA_VERSION,
    SOURCE_CACHE,
    SOURCE_POOL,
    SOURCE_SERIAL,
    Heartbeat,
    JobProfile,
    RunManifest,
    peak_rss_kb,
)
from .trace import (
    EVENT_FIELDS,
    EVENT_GROUPS,
    EVENT_TYPES,
    TRACE_SCHEMA_VERSION,
    TraceProbe,
    TraceReader,
    read_events,
    record_simulation,
    resolve_events,
)

__all__ = [
    "BUCKET_BOUNDS",
    "Counter",
    "Divergence",
    "EVENT_FIELDS",
    "EVENT_GROUPS",
    "EVENT_TYPES",
    "Gauge",
    "Heartbeat",
    "Histogram",
    "JobProfile",
    "MANIFEST_NAME",
    "MANIFEST_SCHEMA_VERSION",
    "MetricsRegistry",
    "RunManifest",
    "SOURCE_CACHE",
    "SOURCE_POOL",
    "SOURCE_SERIAL",
    "TRACE_SCHEMA_VERSION",
    "TraceDiff",
    "TraceProbe",
    "TraceReader",
    "TraceSummary",
    "diff_traces",
    "get_registry",
    "peak_rss_kb",
    "read_events",
    "record_simulation",
    "resolve_events",
    "set_registry",
    "summarize_trace",
]
