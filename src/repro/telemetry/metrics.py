"""Process-local metrics: counters, gauges, and log-bucket histograms.

The registry is the cross-run companion to :mod:`repro.instr`'s
per-run probes: the simulator, the hierarchy, and the execution pool
all report coarse-grained facts into it (runs completed, accesses
simulated, jobs executed, cache hit/miss counts, per-job wall times),
and a snapshot can be dumped to JSON at any point — the CLI's global
``--metrics PATH`` does exactly that after every command.

Design rules:

- **Reporting is edge-triggered, never per-access.** Instruments write
  once per run/job, so an enabled registry costs nothing on the
  simulator's hot path.
- **No wall-clock dependence in keys.** Histogram buckets are fixed
  log-scale boundaries (a 1-2-5 ladder per decade), so two snapshots of
  the same work are structurally identical and diffable; wall time only
  ever appears as *observed values*, never as part of a metric or
  bucket name.
- **Process-local.** Worker processes report into their own registries;
  the pool aggregates what it needs (wall times, provenance) explicitly
  through job profiles rather than through shared mutable state.
"""

from __future__ import annotations

import json
import math
import threading
from typing import Dict, Iterator, List, Optional, Tuple, Union

from ..errors import TelemetryError

Number = Union[int, float]

#: Fixed log-scale histogram boundaries: a 1-2-5 ladder from 1e-9 to
#: 1e9 (wide enough for nanosecond latencies and giga-scale counts).
#: Being a module constant — not derived from the data, the clock, or
#: the host — keeps bucket keys stable across runs and machines.
_DECADES = range(-9, 10)
BUCKET_BOUNDS: Tuple[float, ...] = tuple(
    mantissa * (10.0**exp) for exp in _DECADES for mantissa in (1, 2, 5)
)


def _bucket_label(bound: float) -> str:
    """Short, stable label for one upper bound (``"2e-03"``, ``"5e+06"``)."""
    exp = math.floor(math.log10(bound) + 1e-12)
    mantissa = round(bound / 10.0**exp)
    return f"{mantissa}e{exp:+03d}"


BUCKET_LABELS: Tuple[str, ...] = tuple(_bucket_label(b) for b in BUCKET_BOUNDS)
OVERFLOW_LABEL = "inf"


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise TelemetryError(f"counter {self.name!r} cannot decrease (inc {amount})")
        # += is a read-modify-write, NOT atomic under the GIL; serve
        # worker threads and the event loop inc the same counters.
        with self._lock:
            self.value += amount


class Gauge:
    """A value that can move both ways (queue depth, cache bytes)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: Number) -> None:
        self.value = float(value)

    def add(self, delta: Number) -> None:
        with self._lock:
            self.value += float(delta)


class Histogram:
    """A fixed log-bucket histogram of non-negative observations.

    Bucket boundaries come from :data:`BUCKET_BOUNDS`; an observation
    lands in the first bucket whose upper bound is >= the value, with
    one overflow bucket (``"inf"``) above the ladder. Count, sum, min
    and max are tracked exactly alongside the buckets.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_buckets", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._buckets: Dict[str, int] = {}
        self._lock = threading.Lock()

    def observe(self, value: Number) -> None:
        value = float(value)
        if value < 0 or math.isnan(value):
            raise TelemetryError(
                f"histogram {self.name!r} takes non-negative values, got {value}"
            )
        label = self._label_for(value)
        # One lock for the whole update keeps count/sum/buckets mutually
        # consistent: a snapshot taken mid-observe never sees a count
        # that disagrees with the bucket totals.
        with self._lock:
            self.count += 1
            self.total += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)
            self._buckets[label] = self._buckets.get(label, 0) + 1

    @staticmethod
    def _label_for(value: float) -> str:
        # Linear scan would be fine (57 buckets) but bisect is clearer
        # about intent: first bound >= value.
        import bisect

        idx = bisect.bisect_left(BUCKET_BOUNDS, value)
        if idx >= len(BUCKET_BOUNDS):
            return OVERFLOW_LABEL
        return BUCKET_LABELS[idx]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def buckets(self) -> Dict[str, int]:
        """Non-empty buckets in ladder order (overflow last)."""
        ordered = {
            label: self._buckets[label]
            for label in BUCKET_LABELS
            if label in self._buckets
        }
        if OVERFLOW_LABEL in self._buckets:
            ordered[OVERFLOW_LABEL] = self._buckets[OVERFLOW_LABEL]
        return ordered

    def as_dict(self) -> Dict[str, object]:
        with self._lock:
            return {
                "count": self.count,
                "sum": self.total,
                "min": self.min,
                "max": self.max,
                "mean": self.total / self.count if self.count else 0.0,
                "buckets": self.buckets(),
            }


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named instruments, created on first use, snapshot-able to JSON.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first
    call for a name fixes its kind, and asking for the same name as a
    different kind raises :class:`~repro.errors.TelemetryError` (a
    silent re-type would corrupt dashboards downstream). Creation takes
    a registry lock and every instrument guards its own updates, so
    concurrent ``inc``/``observe`` from worker threads never lose
    writes and a snapshot taken mid-update stays internally consistent.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _get_or_create(self, name: str, cls) -> Instrument:
        if not name or not isinstance(name, str):
            raise TelemetryError(f"metric names must be non-empty strings, got {name!r}")
        found = self._instruments.get(name)
        if found is not None:
            if not isinstance(found, cls):
                raise TelemetryError(
                    f"metric {name!r} is a {type(found).__name__}, "
                    f"not a {cls.__name__}"
                )
            return found
        with self._lock:
            found = self._instruments.get(name)
            if found is None:
                found = self._instruments[name] = cls(name)
            elif not isinstance(found, cls):
                raise TelemetryError(
                    f"metric {name!r} is a {type(found).__name__}, "
                    f"not a {cls.__name__}"
                )
            return found

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self) -> Iterator[Instrument]:
        return iter(list(self._instruments.values()))

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def reset(self) -> None:
        """Drop every instrument (tests, per-sweep isolation)."""
        with self._lock:
            self._instruments.clear()

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-safe dict of every instrument, grouped by kind."""
        counters: Dict[str, int] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, object] = {}
        for name in self.names():
            inst = self._instruments[name]
            if isinstance(inst, Counter):
                counters[name] = inst.value
            elif isinstance(inst, Gauge):
                gauges[name] = inst.value
            else:
                histograms[name] = inst.as_dict()
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def snapshot_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)


# ----------------------------------------------------------------------
# the process-wide default registry
# ----------------------------------------------------------------------
_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry every built-in instrument reports into."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the process default; returns the old one."""
    global _default_registry
    if not isinstance(registry, MetricsRegistry):
        raise TelemetryError(
            f"set_registry needs a MetricsRegistry, got {type(registry).__name__}"
        )
    previous = _default_registry
    _default_registry = registry
    return previous
