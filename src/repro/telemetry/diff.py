"""Trace summaries and trace diffing.

``repro trace diff`` turns "why does LAP save 31% of writes here?"
into an inspectable answer: replay two recorded event streams (same
workload and seed, different inclusion policies), find the first point
where the streams diverge, and aggregate per-event-type count deltas —
the redundant LLC fills non-inclusion pays, the clean-victim
re-insertions exclusion pays, and so on, straight from the recorded
evidence rather than from end-of-run counters alone.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from itertools import zip_longest
from typing import Dict, Optional, Tuple, Union

from .trace import PROBE_EVENTS, TraceReader

PathLike = Union[str, pathlib.Path]


# ----------------------------------------------------------------------
# summaries
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TraceSummary:
    """Per-event-type counts plus the recording's identity metadata."""

    path: str
    meta: Dict
    total: int
    by_event: Dict[str, int]

    def as_dict(self) -> Dict:
        return {
            "path": self.path,
            "meta": dict(self.meta),
            "total": self.total,
            "by_event": dict(self.by_event),
        }


def summarize_trace(path: PathLike) -> TraceSummary:
    """Count events per type in one pass (validates the whole file)."""
    reader = TraceReader(path)
    counts: Dict[str, int] = {}
    total = 0
    for event in reader:
        name = type(event).__name__
        counts[name] = counts.get(name, 0) + 1
        total += 1
    # Re-key from record class names back to event names, in bus order.
    by_event = {}
    for event_name in PROBE_EVENTS:
        class_name = "".join(p.capitalize() for p in event_name.split("_")) + "Event"
        if class_name in counts:
            by_event[event_name] = counts[class_name]
    return TraceSummary(
        path=str(path), meta=reader.meta, total=total, by_event=by_event
    )


# ----------------------------------------------------------------------
# diffing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Divergence:
    """The first position where two event streams stop agreeing.

    ``index`` is the 0-based position in the lockstep replay; ``left``/
    ``right`` are the typed events at that position (``None`` when the
    corresponding stream already ended — a pure length divergence).
    """

    index: int
    left: Optional[tuple]
    right: Optional[tuple]

    def describe(self) -> str:
        def show(event):
            if event is None:
                return "<stream ended>"
            fields = ", ".join(
                f"{name}={getattr(event, name)}" for name in event._fields if name != "seq"
            )
            return f"{type(event).__name__}({fields})"

        return f"event #{self.index}: {show(self.left)} vs {show(self.right)}"


@dataclass(frozen=True)
class TraceDiff:
    """Outcome of replaying two traces in lockstep."""

    left: TraceSummary
    right: TraceSummary
    divergence: Optional[Divergence]
    #: per-event-type (left count, right count) for every type present
    #: in either trace, in bus order.
    counts: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    @property
    def identical(self) -> bool:
        return self.divergence is None

    def deltas(self) -> Dict[str, int]:
        """right − left count per event type (what the policy changed)."""
        return {name: r - l for name, (l, r) in self.counts.items()}

    def as_dict(self) -> Dict:
        return {
            "left": self.left.as_dict(),
            "right": self.right.as_dict(),
            "identical": self.identical,
            "divergence": None
            if self.divergence is None
            else {
                "index": self.divergence.index,
                "left": _event_dict(self.divergence.left),
                "right": _event_dict(self.divergence.right),
            },
            "counts": {name: list(pair) for name, pair in self.counts.items()},
            "deltas": self.deltas(),
        }


def _event_dict(event: Optional[tuple]) -> Optional[Dict]:
    if event is None:
        return None
    return {"type": type(event).__name__, **event._asdict()}


def _comparable(event: tuple) -> tuple:
    """What lockstep comparison looks at: type + args, not seq.

    Sequence numbers are recorder-local (they depend on the event
    filter), so two traces of the same run recorded with different
    filters still compare equal event-for-event.
    """
    return (type(event).__name__,) + tuple(event)[1:]


def diff_traces(left_path: PathLike, right_path: PathLike) -> TraceDiff:
    """Replay two traces in lockstep and report where and how they differ.

    Identical streams produce ``identical=True`` with zero deltas. The
    first mismatching event — or the first position where exactly one
    stream has ended — is the :class:`Divergence`; counting always
    continues to the end of both streams so the per-event-type deltas
    describe the *whole* runs, not just the shared prefix.
    """
    left_reader = TraceReader(left_path)
    right_reader = TraceReader(right_path)
    divergence: Optional[Divergence] = None
    left_counts: Dict[str, int] = {}
    right_counts: Dict[str, int] = {}

    for index, (l_event, r_event) in enumerate(
        zip_longest(iter(left_reader), iter(right_reader))
    ):
        if l_event is not None:
            name = type(l_event).__name__
            left_counts[name] = left_counts.get(name, 0) + 1
        if r_event is not None:
            name = type(r_event).__name__
            right_counts[name] = right_counts.get(name, 0) + 1
        if divergence is None and (
            l_event is None
            or r_event is None
            or _comparable(l_event) != _comparable(r_event)
        ):
            divergence = Divergence(index=index, left=l_event, right=r_event)

    counts: Dict[str, Tuple[int, int]] = {}
    for event_name in PROBE_EVENTS:
        class_name = "".join(p.capitalize() for p in event_name.split("_")) + "Event"
        l = left_counts.get(class_name, 0)
        r = right_counts.get(class_name, 0)
        if l or r:
            counts[event_name] = (l, r)

    return TraceDiff(
        left=summary_from_counts(left_path, left_reader.meta, counts, side=0),
        right=summary_from_counts(right_path, right_reader.meta, counts, side=1),
        divergence=divergence,
        counts=counts,
    )


def summary_from_counts(
    path: PathLike, meta: Dict, counts: Dict[str, Tuple[int, int]], side: int
) -> TraceSummary:
    """Build one side's summary from already-aggregated lockstep counts."""
    by_event = {name: pair[side] for name, pair in counts.items() if pair[side]}
    return TraceSummary(
        path=str(path), meta=meta, total=sum(by_event.values()), by_event=by_event
    )
