"""The flight recorder: stream cache events to JSONL and read them back.

:class:`TraceProbe` rides the :mod:`repro.instr` probe bus — it is just
another probe, so recording changes *nothing* about simulation results
— and appends every subscribed event to a compressed JSONL file with
bounded in-memory buffering. :class:`TraceReader` is the other half: it
validates the header, re-types every line into a named-tuple event
record, and detects truncation via an explicit end-of-trace marker.

File format (version :data:`TRACE_SCHEMA_VERSION`):

- line 1 — header object: ``{"kind": "repro-trace", "schema": 1,
  "events": [...], "meta": {...}}``;
- one line per event — a compact array ``[seq, name, arg, ...]`` whose
  arg order is the probe handler's signature (see
  :data:`EVENT_FIELDS`);
- last line — footer array ``["end", <event count>]``. A file without
  it was cut off mid-write, and the reader says so instead of silently
  yielding a prefix.

Files whose first two bytes are the gzip magic are decompressed
transparently; :class:`TraceProbe` compresses whenever the target path
ends in ``.gz``.
"""

from __future__ import annotations

import gzip
import io
import json
import pathlib
from collections import namedtuple
from typing import Dict, Iterable, Iterator, Optional, Sequence, Tuple, Union

from ..errors import TelemetryError
from ..instr.probe import PROBE_EVENTS, Probe

TRACE_SCHEMA_VERSION = 1
TRACE_KIND = "repro-trace"
_FOOTER_TAG = "end"
_GZIP_MAGIC = b"\x1f\x8b"

#: Positional argument names per event, in handler-signature order.
#: This is the trace line layout *and* the typed record's fields.
EVENT_FIELDS: Dict[str, Tuple[str, ...]] = {
    "access": ("core", "addr", "is_write"),
    "l2_fill": ("addr", "from_llc"),
    "l2_victim": ("addr", "dirty"),
    "llc_fill": ("addr",),
    "llc_evict": ("addr",),
    "demand_hit": ("addr",),
    "dirtied": ("addr",),
    "clean_insert": ("addr",),
    "dirty_victim": ("addr",),
    "mem_writeback": ("addr",),
    "occupancy_sample": ("valid", "loops"),
}
assert set(EVENT_FIELDS) == set(PROBE_EVENTS)

#: Named event groups accepted wherever an event filter is taken:
#: ``"llc"`` selects the LLC-write-relevant stream (the paper's unit of
#: energy accounting), ``"l2"`` the upper-level traffic.
EVENT_GROUPS: Dict[str, Tuple[str, ...]] = {
    "all": tuple(PROBE_EVENTS),
    "l2": ("l2_fill", "l2_victim", "dirtied"),
    "llc": ("llc_fill", "llc_evict", "demand_hit", "clean_insert", "dirty_victim"),
    "mem": ("mem_writeback",),
    "occupancy": ("occupancy_sample",),
}


def _camel(name: str) -> str:
    return "".join(part.capitalize() for part in name.split("_"))


#: Typed record classes, one per event: ``EVENT_TYPES["access"]`` is
#: ``AccessEvent(seq, core, addr, is_write)``. Every record carries its
#: global sequence number first so filtered traces keep ordering info.
EVENT_TYPES: Dict[str, type] = {
    name: namedtuple(f"{_camel(name)}Event", ("seq",) + fields)
    for name, fields in EVENT_FIELDS.items()
}


def resolve_events(spec: Union[None, str, Iterable[str]]) -> Tuple[str, ...]:
    """Normalise an event filter into a tuple of event names.

    ``None`` (or ``"all"``) selects everything. A string may be a
    comma-separated mix of event names and group names
    (:data:`EVENT_GROUPS`); an iterable is treated the same way. Order
    follows :data:`PROBE_EVENTS` regardless of spelling order, and
    unknown names raise :class:`~repro.errors.TelemetryError`.
    """
    if spec is None:
        return tuple(PROBE_EVENTS)
    if isinstance(spec, str):
        parts = [p.strip() for p in spec.split(",") if p.strip()]
    else:
        parts = [str(p).strip() for p in spec]
    if not parts:
        return tuple(PROBE_EVENTS)
    chosen = set()
    for part in parts:
        if part in EVENT_GROUPS:
            chosen.update(EVENT_GROUPS[part])
        elif part in EVENT_FIELDS:
            chosen.add(part)
        else:
            raise TelemetryError(
                f"unknown trace event or group {part!r}; events: "
                f"{sorted(EVENT_FIELDS)}, groups: {sorted(EVENT_GROUPS)}"
            )
    return tuple(e for e in PROBE_EVENTS if e in chosen)


class TraceProbe(Probe):
    """A probe that records its event stream to a JSONL trace file.

    ``events`` filters what gets written (names/groups, see
    :func:`resolve_events`); everything else still flows to the other
    probes on the bus. ``buffer_events`` bounds the in-memory line
    buffer — the recorder flushes to disk whenever the buffer fills, so
    memory use is O(buffer), not O(run length). The file is finalised
    (footer + close) by :meth:`finish`, which the hierarchy calls at
    end-of-run; use the probe as a context manager when driving a
    hierarchy by hand.
    """

    name = "trace"

    def __init__(
        self,
        path: Union[str, pathlib.Path],
        events: Union[None, str, Iterable[str]] = None,
        buffer_events: int = 4096,
        meta: Optional[Dict] = None,
    ) -> None:
        if buffer_events <= 0:
            raise TelemetryError(
                f"TraceProbe buffer_events must be positive, got {buffer_events}"
            )
        self.path = pathlib.Path(path)
        self.events = resolve_events(events)
        self._enabled = frozenset(self.events)
        self._buffer_events = buffer_events
        self._buffer: list[str] = []
        self._seq = 0
        self._written = 0
        self._fh: Optional[io.TextIOBase] = None
        header = {
            "kind": TRACE_KIND,
            "schema": TRACE_SCHEMA_VERSION,
            "events": list(self.events),
            "meta": dict(meta or {}),
        }
        try:
            if self.path.suffix == ".gz":
                self._fh = gzip.open(self.path, "wt", encoding="utf-8")
            else:
                self._fh = self.path.open("w", encoding="utf-8")
            self._fh.write(json.dumps(header, sort_keys=True) + "\n")
        except OSError as exc:
            raise TelemetryError(f"cannot open trace file {self.path}: {exc}") from None

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def _record(self, event: str, args: tuple) -> None:
        self._buffer.append(json.dumps([self._seq, event, *args]))
        self._seq += 1
        if len(self._buffer) >= self._buffer_events:
            self.flush()

    # One tiny handler per event: the bus only compiles the ones below,
    # and each pays a frozenset membership test before buffering.
    def on_access(self, core: int, addr: int, is_write: bool) -> None:
        if "access" in self._enabled:
            self._record("access", (core, addr, bool(is_write)))

    def on_l2_fill(self, addr: int, from_llc: bool) -> None:
        if "l2_fill" in self._enabled:
            self._record("l2_fill", (addr, bool(from_llc)))

    def on_l2_victim(self, addr: int, dirty: bool) -> None:
        if "l2_victim" in self._enabled:
            self._record("l2_victim", (addr, bool(dirty)))

    def on_llc_fill(self, addr: int) -> None:
        if "llc_fill" in self._enabled:
            self._record("llc_fill", (addr,))

    def on_llc_evict(self, addr: int) -> None:
        if "llc_evict" in self._enabled:
            self._record("llc_evict", (addr,))

    def on_demand_hit(self, addr: int) -> None:
        if "demand_hit" in self._enabled:
            self._record("demand_hit", (addr,))

    def on_dirtied(self, addr: int) -> None:
        if "dirtied" in self._enabled:
            self._record("dirtied", (addr,))

    def on_clean_insert(self, addr: int) -> None:
        if "clean_insert" in self._enabled:
            self._record("clean_insert", (addr,))

    def on_dirty_victim(self, addr: int) -> None:
        if "dirty_victim" in self._enabled:
            self._record("dirty_victim", (addr,))

    def on_mem_writeback(self, addr: int) -> None:
        if "mem_writeback" in self._enabled:
            self._record("mem_writeback", (addr,))

    def on_occupancy_sample(self, valid: int, loops: int) -> None:
        if "occupancy_sample" in self._enabled:
            self._record("occupancy_sample", (valid, loops))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def recorded(self) -> int:
        """Events recorded so far (buffered + written)."""
        return self._seq

    def flush(self) -> None:
        if self._fh is None or not self._buffer:
            self._buffer.clear()
            return
        try:
            self._fh.write("\n".join(self._buffer) + "\n")
            self._fh.flush()
        except OSError as exc:
            raise TelemetryError(f"cannot write trace file {self.path}: {exc}") from None
        self._written += len(self._buffer)
        self._buffer.clear()

    def finish(self) -> None:
        """Flush, write the end-of-trace footer, and close the file."""
        if self._fh is None:
            return
        self.flush()
        try:
            self._fh.write(json.dumps([_FOOTER_TAG, self._written]) + "\n")
            self._fh.close()
        except OSError as exc:
            raise TelemetryError(f"cannot finalise trace file {self.path}: {exc}") from None
        finally:
            self._fh = None

    close = finish

    def __enter__(self) -> "TraceProbe":
        return self

    def __exit__(self, *exc_info) -> None:
        self.finish()


# ----------------------------------------------------------------------
# reading
# ----------------------------------------------------------------------
class TraceReader:
    """Validated, typed iteration over one recorded trace file.

    The header is parsed eagerly (so ``reader.header`` / ``.meta`` are
    available before iteration); events stream lazily, each re-typed to
    its :data:`EVENT_TYPES` record. Malformed lines, unknown event
    types, schema mismatches and truncation (missing or short footer)
    all raise :class:`~repro.errors.TelemetryError` naming the file and
    line.
    """

    def __init__(self, path: Union[str, pathlib.Path]) -> None:
        self.path = pathlib.Path(path)
        if not self.path.exists():
            raise TelemetryError(f"no such trace file: {self.path}")
        self.header = self._read_header()
        self.meta: Dict = self.header.get("meta", {})
        self.events: Tuple[str, ...] = tuple(self.header.get("events", PROBE_EVENTS))

    def _open(self):
        try:
            with self.path.open("rb") as probe_fh:
                magic = probe_fh.read(2)
            if magic == _GZIP_MAGIC:
                return gzip.open(self.path, "rt", encoding="utf-8")
            return self.path.open("r", encoding="utf-8")
        except OSError as exc:
            raise TelemetryError(f"cannot open trace file {self.path}: {exc}") from None

    def _read_header(self) -> Dict:
        with self._open() as fh:
            try:
                first = fh.readline()
            except (OSError, EOFError) as exc:
                raise TelemetryError(
                    f"{self.path}: unreadable trace header: {exc}"
                ) from None
            try:
                header = json.loads(first)
            except json.JSONDecodeError:
                raise TelemetryError(
                    f"{self.path}: first line is not a JSON trace header"
                ) from None
        if not isinstance(header, dict) or header.get("kind") != TRACE_KIND:
            raise TelemetryError(
                f"{self.path}: not a {TRACE_KIND} file (header kind: "
                f"{header.get('kind') if isinstance(header, dict) else type(header).__name__})"
            )
        if header.get("schema") != TRACE_SCHEMA_VERSION:
            raise TelemetryError(
                f"{self.path}: trace schema {header.get('schema')!r} is not "
                f"the supported version {TRACE_SCHEMA_VERSION}"
            )
        return header

    def __iter__(self) -> Iterator[tuple]:
        count = 0
        footer_seen = False
        with self._open() as fh:
            lines = iter(fh)
            next(lines)  # header, validated in __init__
            lineno = 1
            try:
                for line in lines:
                    lineno += 1
                    line = line.strip()
                    if not line:
                        continue
                    record = self._parse(line, lineno)
                    if record is None:  # footer
                        footer_seen = True
                        declared = self._footer_count(line, lineno)
                        if declared != count:
                            raise TelemetryError(
                                f"{self.path}: footer declares {declared} events "
                                f"but {count} were read — file is corrupt"
                            )
                        break
                    count += 1
                    yield record
            except EOFError:
                # gzip stream cut off mid-member
                raise TelemetryError(
                    f"{self.path}: compressed trace is truncated after "
                    f"{count} event(s)"
                ) from None
        if not footer_seen:
            raise TelemetryError(
                f"{self.path}: trace is truncated — no end-of-trace marker "
                f"after {count} event(s) (was the recording interrupted?)"
            )

    def _parse(self, line: str, lineno: int) -> Optional[tuple]:
        try:
            raw = json.loads(line)
        except json.JSONDecodeError:
            raise TelemetryError(
                f"{self.path}:{lineno}: malformed trace line (truncated write?)"
            ) from None
        if not isinstance(raw, list) or len(raw) < 2:
            raise TelemetryError(
                f"{self.path}:{lineno}: trace lines must be [seq, event, args...]"
            )
        if raw[0] == _FOOTER_TAG:
            return None
        seq, event = raw[0], raw[1]
        event_type = EVENT_TYPES.get(event)
        if event_type is None:
            raise TelemetryError(
                f"{self.path}:{lineno}: unknown event type {event!r}; this "
                f"reader knows {sorted(EVENT_TYPES)} (newer trace format?)"
            )
        args = raw[2:]
        if len(args) != len(EVENT_FIELDS[event]):
            raise TelemetryError(
                f"{self.path}:{lineno}: event {event!r} carries {len(args)} "
                f"arg(s), expected {len(EVENT_FIELDS[event])} "
                f"({', '.join(EVENT_FIELDS[event])})"
            )
        return event_type(seq, *args)

    def _footer_count(self, line: str, lineno: int) -> int:
        raw = json.loads(line)
        if len(raw) != 2 or not isinstance(raw[1], int):
            raise TelemetryError(f"{self.path}:{lineno}: malformed trace footer")
        return raw[1]


def read_events(path: Union[str, pathlib.Path]) -> list:
    """Materialise every typed event of a trace (small traces, tests)."""
    return list(TraceReader(path))


def record_simulation(
    path: Union[str, pathlib.Path],
    system,
    policy: str,
    workload_name: str,
    refs_per_core: int,
    seed: int = 0,
    events: Union[None, str, Sequence[str]] = None,
):
    """Run one (workload, policy) simulation with a flight recorder attached.

    The trace rides *alongside* the system's configured instrumentation
    (default probes included), so the recorded run's results are
    bit-identical to an unrecorded one. Returns the
    :class:`~repro.sim.results.RunResult`; the finished trace is at
    ``path``.
    """
    from .. import make_workload, simulate

    workload = make_workload(workload_name, system, seed=seed)
    probe = TraceProbe(
        path,
        events=events,
        meta={
            "workload": workload_name,
            "policy": policy,
            "system": system.label,
            "refs_per_core": refs_per_core,
            "seed": seed,
        },
    )
    probes = list(system.probes()) + [probe]
    try:
        return simulate(system, policy, workload, refs_per_core=refs_per_core, probes=probes)
    finally:
        probe.finish()  # no-op when the hierarchy already finalised it
