"""Experiment-report assembly.

The benchmark harness writes every regenerated table/figure to
``benchmarks/results/<name>.txt``. :func:`assemble_report` stitches
those files into a single markdown report (the mechanism behind
EXPERIMENTS.md), pairing each artefact with the paper's claim so
readers can compare measured-vs-paper side by side.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import List, Sequence, Union

from ..errors import AnalysisError


@dataclass(frozen=True)
class ExperimentEntry:
    """One table/figure: its result file and the paper's claim."""

    experiment_id: str
    title: str
    paper_claim: str
    result_file: str


# The full experiment index (mirrors DESIGN.md §4).
EXPERIMENT_INDEX: Sequence[ExperimentEntry] = (
    ExperimentEntry("Table I", "Technology characteristics",
                    "STT-RAM: ~3x denser, ~7x less leakage, ~8x write energy vs SRAM.",
                    "table1_technology"),
    ExperimentEntry("Table II", "System configuration",
                    "4 cores, 32KB L1 / 512KB L2 per core, 8MB 16-way 4-bank L3.",
                    "table2_config"),
    ExperimentEntry("Table III", "Selected workload mixes",
                    "Five WL and five WH mixes of SPEC CPU2006 benchmarks.",
                    "table3_mixes"),
    ExperimentEntry("Table IV", "Evaluated policies",
                    "noni/ex baselines, FLEXclusion, Dswitch, LAP variants, Lhybrid.",
                    "table4_policies"),
    ExperimentEntry("Fig. 2", "Per-benchmark motivation",
                    "SRAM always favours exclusion; STT-RAM splits by relative writes "
                    "(omnetpp/xalancbmk favour non-inclusion; astar/zeusmp/libquantum "
                    "favour exclusion).",
                    "fig02_motivation"),
    ExperimentEntry("Fig. 3", "Redundant clean insertion walk-through",
                    "Exclusive re-inserts clean loop-blocks A and C: two extra writes "
                    "vs non-inclusive.",
                    "fig03_redundant_clean_insertion"),
    ExperimentEntry("Fig. 4", "Loop-block distribution",
                    "omnetpp/xalancbmk >60% loop-blocks, bzip2 >20%, most with CTC>=5.",
                    "fig04_loopblocks"),
    ExperimentEntry("Fig. 5", "Redundant data-fill walk-through",
                    "Fills of B and C are modified before reuse: two redundant writes "
                    "under non-inclusion.",
                    "fig05_redundant_data_fill"),
    ExperimentEntry("Fig. 6", "Redundant LLC data-fill distribution",
                    "libquantum >80% redundant fills; astar/GemsFDTD/mcf high.",
                    "fig06_redundant_fill"),
    ExperimentEntry("Fig. 12", "noni vs ex on mixes",
                    "Exclusion: -18% EPI on WL mixes, +12% on WH mixes (STT).",
                    "fig12_mixes"),
    ExperimentEntry("Section V", "The 50 random SPEC mixes",
                    "50 random combinations sorted by relative exclusive-LLC "
                    "writes; Table III picks ten representatives spanning both "
                    "classes.",
                    "random50_mixes"),
    ExperimentEntry("Fig. 13", "Mrel/Wrel scatter",
                    "Mixes separate around a negatively sloped borderline (-0.8): "
                    "higher relative writes disfavour exclusion.",
                    "fig13_scatter"),
    ExperimentEntry("Fig. 14", "Policy comparison",
                    "LAP: -20%/-12% EPI vs noni/ex on average (up to -51%/-47%), "
                    "+2% throughput vs exclusion; beats FLEXclusion and Dswitch.",
                    "fig14_policy_comparison"),
    ExperimentEntry("Fig. 15", "Write breakdown",
                    "LAP cuts write traffic -35%/-29% vs noni/ex: no fills, "
                    "fewer clean insertions.",
                    "fig15_write_breakdown"),
    ExperimentEntry("Fig. 16", "Loop-blocks in the LLC",
                    "LAP retains loop-blocks; switching policies shed some.",
                    "fig16_loopblock_elim"),
    ExperimentEntry("Fig. 17", "Redundant fills per mix",
                    "9.6% of non-inclusive fills redundant on average; >30% for some.",
                    "fig17_redundant_fill_mixes"),
    ExperimentEntry("Fig. 18", "LLC MPKI",
                    "Exclusion -23% MPKI vs noni; LAP -22% (within ~1% of exclusion).",
                    "fig18_mpki"),
    ExperimentEntry("Fig. 19", "LAP replacement variants",
                    "Neither LAP-LRU nor LAP-Loop dominates; set-dueling LAP matches "
                    "the better one per mix.",
                    "fig19_lap_variants"),
    ExperimentEntry("Fig. 20", "Multithreaded (PARSEC)",
                    "LAP: -11%/-7% energy vs noni/ex on average (streamcluster -53%); "
                    "snoop traffic tracks LLC misses.",
                    "fig20_multithreaded"),
    ExperimentEntry("Fig. 21", "L2:L3 ratio sensitivity",
                    "Exclusion/LAP savings grow with the L2:L3 ratio; LAP still saves "
                    "~10% at triple LLC capacity.",
                    "fig21_ratio_sensitivity"),
    ExperimentEntry("Fig. 22", "Core-count sensitivity",
                    "At 8 cores exclusion's capacity benefit grows; LAP saves 25%/12% "
                    "vs noni/ex.",
                    "fig22_cores"),
    ExperimentEntry("Fig. 23", "Write/read energy-ratio scaling",
                    "Savings grow with the ratio, positive already at 2x (17%); "
                    "published design points track the curve.",
                    "fig23_energy_ratio"),
    ExperimentEntry("Fig. 24", "Hybrid LLC",
                    "LAP: -15%/-8% vs noni/ex on the hybrid; Lhybrid: -22%/-15%.",
                    "fig24_hybrid"),
    ExperimentEntry("Fig. 25", "Lhybrid stage ablation",
                    "Each stage helps slightly; NloopSRAM dominates on WL3/4/5; "
                    "combined Lhybrid ~7% better than LAP.",
                    "fig25_lhybrid_ablation"),
    ExperimentEntry("Ablation A", "Set-dueling cadence (extension)",
                    "(no paper counterpart) LAP should be robust to the dueling "
                    "interval and leader density.",
                    "ablation_dueling"),
    ExperimentEntry("Ablation B", "Loop-bit prediction value (extension)",
                    "(no paper counterpart) loop-aware replacement must cut clean "
                    "insertions exactly where loop-blocks exist.",
                    "ablation_loopbit"),
    ExperimentEntry("Extension", "Dead-write bypass composition (Section VII)",
                    "The paper states DASCA-style dead-write bypassing is orthogonal "
                    "to LAP and composes with it for further dynamic-energy savings.",
                    "ext_deadwrite"),
    ExperimentEntry("Arena EPI", "Cross-paper policy arena: EPI (extension)",
                    "(no paper counterpart) every arena-registry policy — the LAP "
                    "families plus reuse-detector, rd-copyback and ways-off rivals — "
                    "on the Table III mixes, EPI normalised to non-inclusive.",
                    "arena_epi"),
    ExperimentEntry("Arena writes", "Cross-paper policy arena: LLC writes (extension)",
                    "(no paper counterpart) the same grid's total-LLC-write "
                    "ratios; write-avoiding rivals land between LAP and the "
                    "switching policies, ways-off trades writes for leakage.",
                    "arena_writes"),
    ExperimentEntry("Harness", "Hot-path throughput (infrastructure)",
                    "Simulator accesses/sec on the Fig. 14 grid, instrumented vs "
                    "probe-free; the probe-bus refactor's >=1.5x uninstrumented "
                    "speedup is recorded in BENCH_hotpath.json.",
                    "hotpath_throughput"),
    ExperimentEntry("Harness", "Benchmark-suite geomean (infrastructure)",
                    "The paper's summary statistic as a harness primitive: "
                    "`repro suite run <set>` fans a named benchmark set "
                    "through the exec pool and reports per-policy geometric "
                    "means of the metric ratios vs the baseline policy "
                    "(`make suite-demo`).",
                    "suite_geomean"),
    ExperimentEntry("Harness", "Trace diff: LAP vs non-inclusive (infrastructure)",
                    "Flight-recorder evidence for the paper's write-count claims: "
                    "on the same (workload, seed), LAP's event stream shows zero "
                    "llc_fill events (no fill-on-miss writes) where non-inclusion "
                    "pays one per LLC miss (`make trace-demo`).",
                    "trace_demo"),
)


def assemble_report(
    results_dir: Union[str, pathlib.Path],
    index: Sequence[ExperimentEntry] = EXPERIMENT_INDEX,
    title: str = "Experiment record",
    preamble: str = "",
) -> str:
    """Render a markdown report from the harness's result files.

    Missing result files are reported as *not yet regenerated* rather
    than failing, so partial harness runs still produce a useful
    document.
    """
    results_dir = pathlib.Path(results_dir)
    if not results_dir.exists():
        raise AnalysisError(
            f"results directory {results_dir} does not exist — run "
            "`pytest benchmarks/ --benchmark-only` first"
        )
    parts: List[str] = [f"# {title}", ""]
    if preamble:
        parts += [preamble.strip(), ""]
    for entry in index:
        parts.append(f"## {entry.experiment_id}: {entry.title}")
        parts.append("")
        parts.append(f"**Paper:** {entry.paper_claim}")
        parts.append("")
        path = results_dir / f"{entry.result_file}.txt"
        if path.exists():
            parts.append("**Measured:**")
            parts.append("")
            parts.append("```")
            parts.append(path.read_text().rstrip())
            parts.append("```")
        else:
            parts.append(
                f"*Not yet regenerated — run the `{entry.result_file}` benchmark.*"
            )
        parts.append("")
    return "\n".join(parts)


def missing_results(results_dir: Union[str, pathlib.Path]) -> List[str]:
    """Names of experiments whose result files are absent."""
    results_dir = pathlib.Path(results_dir)
    return [
        e.result_file
        for e in EXPERIMENT_INDEX
        if not (results_dir / f"{e.result_file}.txt").exists()
    ]
