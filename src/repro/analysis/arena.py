"""The arena grid: Fig. 14/15-style comparison across registry policies.

Extends the paper's headline comparisons beyond LAP's own variants to
every policy the registry marks as an arena member — including the
cross-paper rivals (reuse-detector, rd-copyback, ways-off). One grid
row per policy, all metrics normalised to the non-inclusive baseline
on a bit-identical trace, with the Fig. 15 write-class split expressed
as a share of the baseline's total LLC writes.

``repro compare --arena`` renders this grid for one workload;
``arena_over_mixes`` assembles the Fig. 14-shaped (mix x policy)
matrices for the experiment record.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..arena import registry
from ..errors import AnalysisError
from ..sim.results import RunResult
from ..sim.system import SystemConfig

Rows = Dict[str, Dict[str, float]]

BASELINE = "non-inclusive"


def arena_policies(hybrid: bool = False) -> Tuple[str, ...]:
    """Grid membership, baseline first (the normalisation anchor)."""
    names = registry.arena_names(hybrid=hybrid)
    return (BASELINE, *[n for n in names if n != BASELINE])


def arena_grid(
    system: SystemConfig,
    workload_name: str,
    refs: int,
    *,
    seed: int = 0,
    policies: Optional[Sequence[str]] = None,
) -> Rows:
    """One workload, every arena policy: the ``--arena`` grid rows.

    Each policy replays a bit-identical trace (same workload name and
    seed). Columns: EPI, dynamic EPI, throughput and total LLC writes
    normalised to the non-inclusive baseline, plus the write-class
    split (fills / clean victims / dirty victims, as shares of the
    baseline's total writes — the Fig. 15 convention).
    """
    from .. import make_workload, simulate

    if policies is None:
        policies = arena_policies(hybrid=system.hierarchy.llc.sram_ways is not None)
    policies = registry.validate_names(policies)
    if BASELINE not in policies:
        raise AnalysisError(
            f"the arena grid normalises to {BASELINE!r}; include it in the policy set"
        )
    results: Dict[str, RunResult] = {}
    for policy in policies:
        workload = make_workload(workload_name, system, seed=seed)
        results[policy] = simulate(system, policy, workload, refs_per_core=refs)
    return grid_rows(results)


def grid_rows(results: Dict[str, RunResult]) -> Rows:
    """Normalise finished runs into grid rows (baseline must be present)."""
    base = results[BASELINE]
    base_writes = max(1, base.llc_writes)
    rows: Rows = {}
    for policy, r in results.items():
        b = r.write_breakdown()
        rows[policy] = {
            "epi": r.epi / base.epi,
            "dyn_epi": r.dynamic_epi / max(1e-30, base.dynamic_epi),
            "perf": r.throughput / max(1e-30, base.throughput),
            "llc_w": r.llc_writes / base_writes,
            "fill_w": b["llc_data_fill"] / base_writes,
            "clean_w": b["l2_clean"] / base_writes,
            "dirty_w": b["l2_dirty"] / base_writes,
        }
    return rows


def arena_over_mixes(
    refs: int,
    mixes: Optional[Sequence[str]] = None,
    policies: Optional[Sequence[str]] = None,
) -> Tuple[Rows, Rows]:
    """Fig. 14-shaped (mix x policy) EPI and write matrices for the
    arena set on the scaled STT-RAM system (experiment record)."""
    from ..workloads.mixes import TABLE3_ORDER
    from .figures import _mix_results, _norm

    if mixes is None:
        mixes = TABLE3_ORDER
    if policies is None:
        policies = arena_policies()
    policies = registry.validate_names(policies)
    system = SystemConfig.scaled()
    epi: Rows = {}
    writes: Rows = {}
    for mix, res in _mix_results(system, policies, refs, mixes).items():
        epi[mix] = _norm(res, "epi")
        base_writes = max(1, res[BASELINE].llc_writes)
        writes[mix] = {p: res[p].llc_writes / base_writes for p in policies}
    return epi, writes
