"""ASCII charts for terminal reports.

The paper's figures are bar charts and scatter plots; the benchmark
harness reproduces their *data*, and these helpers render quick visual
summaries directly in the terminal so shapes can be eyeballed without a
plotting stack (the repository is dependency-light by design).
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Tuple

from ..errors import AnalysisError

FULL = "█"
PARTIALS = ("", "▏", "▎", "▍", "▌", "▋", "▊", "▉")


def _bar(value: float, scale: float, width: int) -> str:
    if scale <= 0:
        raise AnalysisError("bar scale must be positive")
    cells = max(0.0, value) / scale * width
    whole = int(cells)
    frac = int((cells - whole) * 8)
    return FULL * whole + (PARTIALS[frac] if frac else "")


def render_bars(
    title: str,
    data: Mapping[str, float],
    width: int = 40,
    reference: Optional[float] = None,
    fmt: str = "{:.3f}",
) -> str:
    """Horizontal bar chart of labelled values.

    ``reference`` draws a marker column (e.g. at 1.0 for normalised
    metrics) so above/below-baseline bars are visually obvious.
    """
    if not data:
        raise AnalysisError(f"no data for chart {title!r}")
    top = max(list(data.values()) + ([reference] if reference else []))
    if top <= 0:
        raise AnalysisError("bar charts need at least one positive value")
    label_w = max(len(k) for k in data)
    ref_col = int(reference / top * width) if reference else None
    lines = [title, "-" * max(len(title), label_w + width + 10)]
    for label, value in data.items():
        bar = _bar(value, top, width)
        if ref_col is not None and len(bar) < ref_col:
            bar = bar + " " * (ref_col - len(bar)) + "|"
        lines.append(f"{label.ljust(label_w)} {bar} {fmt.format(value)}")
    if reference is not None:
        lines.append(f"{''.ljust(label_w)} {'^'.rjust(ref_col + 1)} reference={fmt.format(reference)}")
    return "\n".join(lines)


def render_grouped_bars(
    title: str,
    rows: Mapping[str, Mapping[str, float]],
    width: int = 30,
    reference: Optional[float] = 1.0,
) -> str:
    """One bar group per row (e.g. per mix), one bar per column (policy)."""
    if not rows:
        raise AnalysisError(f"no data for chart {title!r}")
    blocks = [title, "=" * len(title)]
    for row_label, cols in rows.items():
        blocks.append(render_bars(row_label, cols, width=width, reference=reference))
        blocks.append("")
    return "\n".join(blocks).rstrip()


def render_scatter(
    title: str,
    points: Sequence[Tuple[float, float, str]],
    width: int = 56,
    height: int = 16,
    xlabel: str = "x",
    ylabel: str = "y",
) -> str:
    """Character-grid scatter plot; each point carries a 1-char marker.

    Used for the Fig. 13 (M_rel vs W_rel) cloud: pass ``"+"`` for mixes
    favouring exclusion and ``"o"`` for the rest and the two clouds
    separate visually.
    """
    if not points:
        raise AnalysisError(f"no points for scatter {title!r}")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y, marker in points:
        col = int((x - x_lo) / x_span * (width - 1))
        row = height - 1 - int((y - y_lo) / y_span * (height - 1))
        grid[row][col] = (marker or "*")[0]
    lines = [title, "-" * max(len(title), width + 2)]
    for i, row in enumerate(grid):
        edge_val = y_hi - (y_hi - y_lo) * i / (height - 1)
        lines.append(f"{edge_val:7.2f} |" + "".join(row))
    lines.append(" " * 8 + "+" + "-" * width)
    lines.append(f"{'':8} {x_lo:<10.2f}{xlabel:^{max(0, width - 22)}}{x_hi:>10.2f}")
    lines.append(f"(y = {ylabel})")
    return "\n".join(lines)
