"""Metric helpers shared by figures, tests, and examples."""

from __future__ import annotations

from typing import Dict, Mapping, Sequence, Tuple

from ..errors import AnalysisError
from ..sim.results import RunResult


def epi_saving(result: RunResult, baseline: RunResult) -> float:
    """Fractional EPI saving of ``result`` over ``baseline`` (positive
    = better)."""
    if baseline.epi == 0:
        raise AnalysisError("baseline EPI is zero")
    return 1.0 - result.epi / baseline.epi


def relative(result: RunResult, baseline: RunResult, metric: str) -> float:
    """Ratio of a metric between two runs (the paper's M_rel/W_rel)."""
    base = getattr(baseline, metric)
    if base == 0:
        raise AnalysisError(f"baseline metric {metric!r} is zero")
    return getattr(result, metric) / base


def classify_wl_wh(noni: RunResult, exclusive: RunResult) -> str:
    """Classify a workload as WL (fewer writes under exclusion) or WH."""
    return "WL" if exclusive.llc_writes <= noni.llc_writes else "WH"


def favors_exclusion(noni: RunResult, exclusive: RunResult) -> bool:
    """True when the exclusive policy is the more energy-efficient one."""
    return exclusive.epi < noni.epi


def borderline_slope(points: Sequence[Tuple[float, float, bool]]) -> float:
    """Estimate Fig. 13's borderline slope via a linear decision fit.

    ``points`` are ``(Mrel, Wrel, favors_exclusion)`` triples. The paper
    reports that workloads separate around a line ``Wrel = a*Mrel + b``
    with slope ≈ −0.8; we recover a comparable slope by least-squares
    fitting the boundary between the two classes: for each class we take
    its centroid and return the slope of the perpendicular bisector's
    direction in (Mrel, Wrel) space.
    """
    fav = [(m, w) for m, w, f in points if f]
    nof = [(m, w) for m, w, f in points if not f]
    if not fav or not nof:
        raise AnalysisError("need both classes to estimate a borderline")
    cf = (sum(m for m, _ in fav) / len(fav), sum(w for _, w in fav) / len(fav))
    cn = (sum(m for m, _ in nof) / len(nof), sum(w for _, w in nof) / len(nof))
    dx, dy = cn[0] - cf[0], cn[1] - cf[1]
    if dy == 0:
        raise AnalysisError("degenerate class separation")
    # The boundary is perpendicular to the centroid difference vector.
    return -dx / dy


def average_over(rows: Mapping[str, Mapping[str, float]], keys: Sequence[str]) -> Dict[str, float]:
    """Average each column over a subset of rows (e.g. the WL mixes)."""
    subset = [rows[k] for k in keys if k in rows]
    if not subset:
        raise AnalysisError(f"none of {keys} present in rows")
    out: Dict[str, float] = {}
    for col in subset[0]:
        out[col] = sum(r[col] for r in subset) / len(subset)
    return out
