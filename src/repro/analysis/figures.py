"""Per-figure data assembly: one function per paper table/figure.

Every function returns plain ``{row: {column: value}}`` mappings that
:mod:`repro.analysis.tables` renders and the benchmark harness prints.
Reference counts default to :data:`DEFAULT_BENCH_REFS` (override with
the ``REPRO_REFS`` environment variable) — large enough for the scaled
working sets to cycle several times, small enough that the full
harness completes in minutes.

All comparisons follow the paper's conventions: metrics normalised to
the **non-inclusive** policy on the same workload; WL/WH classification
by relative write traffic under exclusion.
"""

from __future__ import annotations

import os
from typing import Dict, List, Mapping, Sequence, Tuple

from ..core.policies import (
    HOMOGENEOUS_POLICIES,
    HYBRID_POLICIES,
    LAP_VARIANTS,
    LHYBRID_STAGES,
)
from ..energy import PUBLISHED_CONFIGS, RAW_TABLE1, SRAM, STT_RAM
from ..errors import AnalysisError
from ..sim.results import RunResult
from ..sim.runner import (
    duplicate_builder,
    mix_builder,
    multithreaded_builder,
    run_policies,
)
from ..sim.system import SystemConfig
from ..workloads.mixes import TABLE3_MIXES, TABLE3_ORDER
from ..workloads.parsec import PARSEC_ORDER
from ..workloads.spec import PAPER_BENCHMARK_ORDER

DEFAULT_BENCH_REFS = int(os.environ.get("REPRO_REFS", "30000"))

Rows = Dict[str, Dict[str, float]]


def _norm(results: Mapping[str, RunResult], metric: str, baseline: str = "non-inclusive") -> Dict[str, float]:
    base = getattr(results[baseline], metric)
    if base == 0:
        raise AnalysisError(f"baseline metric {metric} is zero")
    return {p: getattr(r, metric) / base for p, r in results.items()}


# ---------------------------------------------------------------------------
# Tables I–IV (static regenerations)
# ---------------------------------------------------------------------------


def table1_rows() -> List[List]:
    """Table I: 2MB SRAM vs STT-RAM bank characteristics."""
    rows = []
    metrics = [
        ("Area (mm2)", "area_mm2"),
        ("Read latency (ns)", "read_latency_ns"),
        ("Write latency (ns)", "write_latency_ns"),
        ("Read energy (nJ/access)", "read_energy_nj"),
        ("Write energy (nJ/access)", "write_energy_nj"),
        ("Leakage power (mW)", "leakage_mw"),
    ]
    for label, key in metrics:
        rows.append([label, RAW_TABLE1["sram"][key], RAW_TABLE1["stt"][key]])
    return rows


def table2_rows(system: SystemConfig) -> List[List]:
    """Table II: system configuration of one SystemConfig."""
    h = system.hierarchy
    llc = h.llc
    rows = [
        ["cores", h.ncores],
        ["block size (B)", h.block_size],
        ["L1 per core (B)", h.l1.size_bytes],
        ["L1 assoc / latency", f"{h.l1.assoc}-way / {h.l1.latency} cyc"],
        ["L2 per core (B)", h.l2.size_bytes],
        ["L2 assoc / latency", f"{h.l2.assoc}-way / {h.l2.latency} cyc"],
        ["L3 shared (B)", llc.size_bytes],
        ["L3 assoc / banks", f"{llc.assoc}-way / {llc.banks} banks"],
        ["L3 technology", llc.tech.name + (f" (+{llc.sram_ways} SRAM ways)" if llc.is_hybrid else "")],
        ["L3 read/write latency", f"{llc.tech.read_latency_cycles}/{llc.tech.write_latency_cycles} cyc"],
        ["memory latency (cyc)", h.mem_latency],
    ]
    return rows


def table3_rows() -> List[List]:
    """Table III: the ten selected workload mixes."""
    return [[name, ", ".join(TABLE3_MIXES[name])] for name in TABLE3_ORDER]


def table4_rows() -> List[List]:
    """Table IV: evaluated policies."""
    return [
        ["non-inclusive", "baseline inclusion property"],
        ["exclusive", "exclusive policy used in commercial products"],
        ["flexclusion", "dynamic noni/ex switching on capacity & bandwidth"],
        ["dswitch", "dynamic noni/ex switching aware of LLC writes"],
        ["lap-lru", "LAP with LRU replacement"],
        ["lap-loop", "LAP always evicting non-loop-blocks first"],
        ["lap", "LAP with set-dueling replacement"],
        ["lhybrid", "LAP + loop-aware placement for hybrid LLCs"],
    ]


# ---------------------------------------------------------------------------
# Motivation figures (2, 4, 6) — single benchmarks, duplicate copies
# ---------------------------------------------------------------------------


def fig2_motivation(
    refs: int = DEFAULT_BENCH_REFS,
    benchmarks: Sequence[str] = PAPER_BENCHMARK_ORDER,
) -> Tuple[Rows, Rows]:
    """Fig. 2: exclusive vs non-inclusive EPI in SRAM and STT-RAM LLCs.

    Returns (sram_rows, stt_rows); each row holds the exclusive
    policy's EPI normalised to non-inclusive plus relative misses and
    writes (Fig. 2c).
    """
    sram_sys = SystemConfig.scaled(tech=SRAM)
    stt_sys = SystemConfig.scaled(tech=STT_RAM)
    sram_rows: Rows = {}
    stt_rows: Rows = {}
    for bench in benchmarks:
        builder = duplicate_builder(bench)
        sram_res = run_policies(sram_sys, ("non-inclusive", "exclusive"), builder, refs)
        stt_res = run_policies(stt_sys, ("non-inclusive", "exclusive"), builder, refs)
        sram_rows[bench] = {
            "ex_epi": _norm(sram_res, "epi")["exclusive"],
            "ex_static_epi": _norm(sram_res, "static_epi")["exclusive"],
        }
        stt_rows[bench] = {
            "ex_epi": _norm(stt_res, "epi")["exclusive"],
            "rel_misses": _norm(stt_res, "llc_misses")["exclusive"],
            "rel_writes": _norm(stt_res, "llc_writes")["exclusive"],
        }
    return sram_rows, stt_rows


def fig4_loop_blocks(
    refs: int = DEFAULT_BENCH_REFS,
    benchmarks: Sequence[str] = PAPER_BENCHMARK_ORDER,
) -> Rows:
    """Fig. 4: loop-block fraction and CTC bucket shares per benchmark."""
    system = SystemConfig.scaled()
    rows: Rows = {}
    for bench in benchmarks:
        res = run_policies(system, ("non-inclusive",), duplicate_builder(bench), refs)
        r = res["non-inclusive"]
        buckets = {f"share[{k}]": v for k, v in _ctc_shares(r).items()}
        rows[bench] = {"loop_fraction": r.loop_block_fraction, **buckets}
    return rows


def _ctc_shares(result: RunResult) -> Dict[str, float]:
    buckets = result.loop.ctc_buckets()
    total = sum(buckets.values())
    if total == 0:
        return {k: 0.0 for k in buckets}
    return {k: v / total for k, v in buckets.items()}


def fig6_redundant_fill(
    refs: int = DEFAULT_BENCH_REFS,
    benchmarks: Sequence[str] = PAPER_BENCHMARK_ORDER,
) -> Rows:
    """Fig. 6: fraction of redundant LLC data-fills (non-inclusive)."""
    system = SystemConfig.scaled()
    rows: Rows = {}
    for bench in benchmarks:
        res = run_policies(system, ("non-inclusive",), duplicate_builder(bench), refs)
        rows[bench] = {"redundant_fill_fraction": res["non-inclusive"].redundant_fill_fraction}
    return rows


# ---------------------------------------------------------------------------
# Mix-level evaluation (Figs. 12–19)
# ---------------------------------------------------------------------------


# Several figures consume the same (system, mix, policy) runs — e.g.
# Figs. 14/15/16/18 all simulate the Table III mixes under the same
# policies. Results are deterministic, so they are memoised per process;
# the benchmark harness relies on this to avoid re-simulating.
_RUN_CACHE: Dict[tuple, RunResult] = {}


def _system_key(system: SystemConfig) -> tuple:
    llc = system.hierarchy.llc
    return (
        system.label,
        system.hierarchy.ncores,
        system.hierarchy.l2.size_bytes,
        llc.size_bytes,
        llc.tech.name,
        llc.sram_ways,
        system.duel_interval,
    )


def _cached_run(system: SystemConfig, policy: str, mix: str, refs: int) -> RunResult:
    key = (_system_key(system), policy, mix, refs)
    if key not in _RUN_CACHE:
        _RUN_CACHE[key] = run_policies(system, (policy,), mix_builder(mix), refs)[policy]
    return _RUN_CACHE[key]


def _mix_results(
    system: SystemConfig,
    policies: Sequence[str],
    refs: int,
    mixes: Sequence[str] = TABLE3_ORDER,
) -> Dict[str, Dict[str, RunResult]]:
    return {
        mix: {p: _cached_run(system, p, mix, refs) for p in policies} for mix in mixes
    }


def fig12_noni_vs_ex(
    refs: int = DEFAULT_BENCH_REFS,
    mixes: Sequence[str] = TABLE3_ORDER,
) -> Tuple[Rows, Rows]:
    """Fig. 12: exclusive EPI normalised to non-inclusive, SRAM vs STT,
    with the static/dynamic breakdown of the STT runs."""
    sram_sys = SystemConfig.scaled(tech=SRAM)
    stt_sys = SystemConfig.scaled(tech=STT_RAM)
    sram_rows: Rows = {}
    stt_rows: Rows = {}
    for mix in mixes:
        sres = {p: _cached_run(sram_sys, p, mix, refs) for p in ("non-inclusive", "exclusive")}
        tres = {p: _cached_run(stt_sys, p, mix, refs) for p in ("non-inclusive", "exclusive")}
        sram_rows[mix] = {"ex_epi": _norm(sres, "epi")["exclusive"]}
        noni, ex = tres["non-inclusive"], tres["exclusive"]
        stt_rows[mix] = {
            "ex_epi": ex.epi / noni.epi,
            "noni_static_share": noni.energy.static_share,
            "ex_static_share": ex.energy.static_share,
            "rel_writes": ex.llc_writes / max(1, noni.llc_writes),
        }
    return sram_rows, stt_rows


def fig13_scatter(
    refs: int = DEFAULT_BENCH_REFS,
    mixes: Sequence[str] = TABLE3_ORDER,
) -> Rows:
    """Fig. 13: relative misses (Mrel) vs relative writes (Wrel) of the
    exclusive LLC, with which policy each mix favours."""
    system = SystemConfig.scaled()
    rows: Rows = {}
    for mix in mixes:
        noni = _cached_run(system, "non-inclusive", mix, refs)
        ex = _cached_run(system, "exclusive", mix, refs)
        mrel = ex.llc_misses / max(1, noni.llc_misses)
        wrel = ex.llc_writes / max(1, noni.llc_writes)
        rows[mix] = {
            "Mrel": mrel,
            "Wrel": wrel,
            "ex_epi": ex.epi / noni.epi,
            "favors_exclusion": 1.0 if ex.epi < noni.epi else 0.0,
        }
    return rows


def fig14_policy_comparison(
    refs: int = DEFAULT_BENCH_REFS,
    mixes: Sequence[str] = TABLE3_ORDER,
    policies: Sequence[str] = HOMOGENEOUS_POLICIES,
) -> Tuple[Rows, Rows, Rows]:
    """Fig. 14: overall EPI, dynamic EPI, and throughput per policy,
    all normalised to the non-inclusive STT-RAM LLC."""
    system = SystemConfig.scaled()
    matrix = _mix_results(system, policies, refs, mixes)
    epi: Rows = {}
    dyn: Rows = {}
    perf: Rows = {}
    for mix, res in matrix.items():
        epi[mix] = _norm(res, "epi")
        dyn[mix] = _norm(res, "dynamic_epi")
        perf[mix] = _norm(res, "throughput")
    return epi, dyn, perf


def fig15_write_breakdown(
    refs: int = DEFAULT_BENCH_REFS,
    mixes: Sequence[str] = TABLE3_ORDER,
    policies: Sequence[str] = ("non-inclusive", "exclusive", "lap"),
) -> Rows:
    """Fig. 15: LLC write classes per policy, normalised to the
    non-inclusive policy's total writes."""
    system = SystemConfig.scaled()
    rows: Rows = {}
    for mix, res in _mix_results(system, policies, refs, mixes).items():
        base = max(1, res["non-inclusive"].llc_writes)
        for policy in policies:
            b = res[policy].write_breakdown()
            rows[f"{mix}/{policy}"] = {
                "fill": b["llc_data_fill"] / base,
                "l2_dirty": b["l2_dirty"] / base,
                "l2_clean": b["l2_clean"] / base,
                "total": res[policy].llc_writes / base,
            }
    return rows


def fig16_loop_occupancy(
    refs: int = DEFAULT_BENCH_REFS,
    mixes: Sequence[str] = TABLE3_ORDER,
    policies: Sequence[str] = HOMOGENEOUS_POLICIES,
) -> Rows:
    """Fig. 16: share of LLC writes that redundantly re-insert
    loop-blocks (the energy-harmful writes each policy leaves behind).

    Operational definition: a clean-victim data write whose block had
    already completed at least one clean L2↔LLC trip. Non-inclusion
    never writes clean victims (share 0 by construction); exclusion
    re-inserts every travelling loop-block; the switching policies
    eliminate part of them; LAP's duplicate check eliminates most.
    """
    system = SystemConfig.scaled()
    rows: Rows = {}
    for mix, res in _mix_results(system, policies, refs, mixes).items():
        rows[mix] = {p: res[p].loop_reinsertion_share for p in policies}
    return rows


def fig17_redundant_fill_mixes(
    refs: int = DEFAULT_BENCH_REFS,
    mixes: Sequence[str] = TABLE3_ORDER,
) -> Rows:
    """Fig. 17: redundant-fill fraction of the non-inclusive LLC per mix."""
    system = SystemConfig.scaled()
    rows: Rows = {}
    for mix in mixes:
        res = _cached_run(system, "non-inclusive", mix, refs)
        rows[mix] = {"redundant_fill_fraction": res.redundant_fill_fraction}
    return rows


def fig18_mpki(
    refs: int = DEFAULT_BENCH_REFS,
    mixes: Sequence[str] = TABLE3_ORDER,
    policies: Sequence[str] = ("non-inclusive", "exclusive", "lap"),
) -> Rows:
    """Fig. 18: LLC MPKI normalised to the non-inclusive policy."""
    system = SystemConfig.scaled()
    rows: Rows = {}
    for mix, res in _mix_results(system, policies, refs, mixes).items():
        rows[mix] = _norm(res, "mpki")
    return rows


def fig19_lap_variants(
    refs: int = DEFAULT_BENCH_REFS,
    mixes: Sequence[str] = TABLE3_ORDER,
    policies: Sequence[str] = ("non-inclusive",) + LAP_VARIANTS,
) -> Rows:
    """Fig. 19: LAP-LRU vs LAP-Loop vs LAP overall EPI (normalised)."""
    system = SystemConfig.scaled()
    rows: Rows = {}
    for mix, res in _mix_results(system, policies, refs, mixes).items():
        rows[mix] = {p: v for p, v in _norm(res, "epi").items() if p != "non-inclusive"}
    return rows


# ---------------------------------------------------------------------------
# Multithreaded (Fig. 20)
# ---------------------------------------------------------------------------


def fig20_multithreaded(
    refs: int = DEFAULT_BENCH_REFS,
    benchmarks: Sequence[str] = PARSEC_ORDER,
    policies: Sequence[str] = ("non-inclusive", "exclusive", "flexclusion", "dswitch", "lap"),
) -> Tuple[Rows, Rows, Rows]:
    """Fig. 20: total LLC energy, performance (1/latency), and snoop
    traffic on PARSEC-like workloads, normalised to non-inclusion."""
    system = SystemConfig.scaled()
    energy: Rows = {}
    perf: Rows = {}
    snoop: Rows = {}
    for bench in benchmarks:
        res = run_policies(system, policies, multithreaded_builder(bench), refs)
        noni = res["non-inclusive"]
        energy[bench] = {p: res[p].total_energy / noni.total_energy for p in policies}
        perf[bench] = {p: noni.latency / res[p].latency for p in policies}
        snoop[bench] = {
            p: res[p].snoop_traffic / max(1, noni.snoop_traffic)
            for p in ("non-inclusive", "exclusive", "lap")
            if p in res
        }
    return energy, perf, snoop


# ---------------------------------------------------------------------------
# Sensitivity studies (Figs. 21–23)
# ---------------------------------------------------------------------------


def fig21_capacity_ratio(
    refs: int = DEFAULT_BENCH_REFS,
    mixes: Sequence[str] = ("WL2", "WL4", "WH1", "WH5"),
    policies: Sequence[str] = ("non-inclusive", "exclusive", "dswitch", "lap"),
) -> Rows:
    """Fig. 21: LLC EPI vs L2:L3 capacity ratio.

    (a) varies the private L2 (ratios 1:8, 1:4, 1:2 at fixed LLC);
    (b) enlarges the LLC (iso-geometry stand-ins for 16/24 MB LLCs).
    """
    configs = {
        "L2:L3=1:8": SystemConfig.scaled(l2_kb=4, llc_kb=128),
        "L2:L3=1:4": SystemConfig.scaled(l2_kb=8, llc_kb=128),
        "L2:L3=1:2": SystemConfig.scaled(l2_kb=16, llc_kb=128),
        "2x LLC": SystemConfig.scaled(l2_kb=8, llc_kb=256),
    }
    # The workloads are FIXED at the baseline geometry: the paper varies
    # the caches under the same applications, so region sizes must not
    # re-scale with the swept L2/LLC capacities.
    base_ctx = SystemConfig.scaled().scale_context()

    def fixed_builder(mix_name: str):
        from ..workloads.mixes import make_table3_mix

        def build(_ctx):
            return make_table3_mix(mix_name, base_ctx, seed=0)

        return build

    rows: Rows = {}
    for label, system in configs.items():
        acc: Dict[str, float] = {p: 0.0 for p in policies}
        for mix in mixes:
            res = run_policies(system, policies, fixed_builder(mix), refs)
            norm = _norm(res, "epi")
            for p in policies:
                acc[p] += norm[p] / len(mixes)
        rows[label] = acc
    return rows


def fig22_core_count(
    refs: int = DEFAULT_BENCH_REFS,
    policies: Sequence[str] = ("non-inclusive", "exclusive", "dswitch", "lap"),
) -> Rows:
    """Fig. 22: 4-core vs 8-core LLC EPI (fixed cache sizes)."""
    from ..sim.runner import benchmarks_builder

    mixes4 = [TABLE3_MIXES[m] for m in ("WL2", "WH1")]
    rows: Rows = {}
    for ncores in (4, 8):
        system = SystemConfig.scaled(ncores=ncores)
        acc: Dict[str, float] = {p: 0.0 for p in policies}
        for benchmarks in mixes4:
            # replicate the 4-benchmark mix across 8 cores
            benchlist = list(benchmarks) * (ncores // 4)
            res = run_policies(
                system, policies, benchmarks_builder(benchlist), refs
            )
            norm = _norm(res, "epi")
            for p in policies:
                acc[p] += norm[p] / len(mixes4)
        rows[f"{ncores}-core"] = acc
    return rows


def fig23_energy_ratio(
    refs: int = DEFAULT_BENCH_REFS,
    ratios: Sequence[float] = (2, 3.3, 5, 8, 12, 16, 20, 25),
    mixes: Sequence[str] = ("WL2", "WH1", "WH5"),
    include_published: bool = True,
) -> Tuple[Rows, Rows]:
    """Fig. 23: LAP's EPI savings over non-inclusion as the write/read
    energy ratio scales, plus the published STT-RAM design points."""
    curve: Rows = {}
    for ratio in ratios:
        system = SystemConfig.scaled(tech=STT_RAM.with_write_read_ratio(ratio))
        saving = _avg_lap_saving(system, mixes, refs)
        curve[f"ratio={ratio:g}"] = {"write_read_ratio": ratio, "epi_saving": saving}
    published: Rows = {}
    if include_published:
        for cfg in PUBLISHED_CONFIGS:
            system = SystemConfig.scaled(tech=cfg.technology())
            saving = _avg_lap_saving(system, mixes, refs)
            published[cfg.label] = {
                "write_read_ratio": cfg.write_read_ratio,
                "epi_saving": saving,
                "on_curve": 1.0 if cfg.on_curve else 0.0,
            }
    return curve, published


def _avg_lap_saving(system: SystemConfig, mixes: Sequence[str], refs: int) -> float:
    total = 0.0
    for mix in mixes:
        noni = _cached_run(system, "non-inclusive", mix, refs)
        lap = _cached_run(system, "lap", mix, refs)
        total += 1.0 - lap.epi / noni.epi
    return total / len(mixes)


# ---------------------------------------------------------------------------
# Hybrid LLC (Figs. 24–25)
# ---------------------------------------------------------------------------


def fig24_hybrid(
    refs: int = DEFAULT_BENCH_REFS,
    mixes: Sequence[str] = TABLE3_ORDER,
    policies: Sequence[str] = HYBRID_POLICIES,
) -> Rows:
    """Fig. 24: hybrid-LLC EPI per policy, normalised to non-inclusion."""
    system = SystemConfig.scaled(hybrid=True)
    rows: Rows = {}
    for mix, res in _mix_results(system, policies, refs, mixes).items():
        rows[mix] = _norm(res, "epi")
    return rows


def fig25_lhybrid_stages(
    refs: int = DEFAULT_BENCH_REFS,
    mixes: Sequence[str] = TABLE3_ORDER,
    policies: Sequence[str] = LHYBRID_STAGES,
) -> Rows:
    """Fig. 25: Lhybrid placement-stage ablation (normalised EPI)."""
    system = SystemConfig.scaled(hybrid=True)
    rows: Rows = {}
    matrix = _mix_results(system, ("non-inclusive",) + tuple(policies), refs, mixes)
    for mix, res in matrix.items():
        rows[mix] = {p: v for p, v in _norm(res, "epi").items() if p != "non-inclusive"}
    return rows
