"""Analysis: metrics, ASCII tables, per-figure data assembly."""

from .charts import render_bars, render_grouped_bars, render_scatter
from .metrics import (
    average_over,
    borderline_slope,
    classify_wl_wh,
    epi_saving,
    favors_exclusion,
    relative,
)
from .tables import render_mapping_table, render_table, summarize_columns

__all__ = [
    "epi_saving",
    "relative",
    "classify_wl_wh",
    "favors_exclusion",
    "borderline_slope",
    "average_over",
    "render_table",
    "render_mapping_table",
    "summarize_columns",
    "render_bars",
    "render_grouped_bars",
    "render_scatter",
]
