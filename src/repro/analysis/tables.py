"""ASCII rendering of tables and series.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep the formatting uniform and dependency-free.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

from ..errors import AnalysisError


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence],
) -> str:
    """Render a fixed-width table with a title rule."""
    str_rows: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise AnalysisError(
                f"row width {len(row)} does not match {len(headers)} headers in {title!r}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [title, "=" * max(len(title), len(sep))]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_mapping_table(
    title: str,
    data: Mapping[str, Mapping[str, float]],
    row_label: str = "workload",
) -> str:
    """Render a nested ``{row: {column: value}}`` mapping as a table."""
    if not data:
        raise AnalysisError(f"no data to render for {title!r}")
    columns: List[str] = []
    for cols in data.values():
        for c in cols:
            if c not in columns:
                columns.append(c)
    headers = [row_label] + columns
    rows = [[name] + [cols.get(c, float("nan")) for c in columns] for name, cols in data.items()]
    return render_table(title, headers, rows)


def summarize_columns(data: Mapping[str, Mapping[str, float]]) -> Dict[str, float]:
    """Arithmetic mean of every column across rows (the paper's 'Avg')."""
    sums: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for cols in data.values():
        for c, v in cols.items():
            sums[c] = sums.get(c, 0.0) + v
            counts[c] = counts.get(c, 0) + 1
    return {c: sums[c] / counts[c] for c in sums}
