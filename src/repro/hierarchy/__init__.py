"""Three-level hierarchy engine: config, timing, coherence, orchestration."""

from .config import (
    HierarchyConfig,
    LevelConfig,
    LLCLevelConfig,
    scaled_config,
    table2_config,
)
from .coherence import CoherenceController
from .hierarchy import CacheHierarchy, HierarchyStats
from .timing import BankModel, TimingModel

__all__ = [
    "LevelConfig",
    "LLCLevelConfig",
    "HierarchyConfig",
    "table2_config",
    "scaled_config",
    "CacheHierarchy",
    "HierarchyStats",
    "CoherenceController",
    "TimingModel",
    "BankModel",
]
