"""Hierarchy geometry and latency configuration.

:class:`HierarchyConfig` describes the three-level hierarchy of the
paper's Table II: private L1s and L2s per core, one shared (optionally
hybrid SRAM/STT-RAM) LLC, and a flat main memory. Two stock
configurations are provided:

- :func:`table2_config` — the paper's full-scale system (8 MB LLC);
- :func:`scaled_config` — a geometry-preserving scaled system used by
  the test-suite and benchmark harness (ΣL2 : L3 = 1 : 4 as in the
  paper; every capacity divided by 64).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..energy.technology import SRAM, STT_RAM, TechnologyParams
from ..errors import ConfigurationError
from ..utils import require_pow2


@dataclass(frozen=True)
class LevelConfig:
    """Geometry of one private cache level."""

    size_bytes: int
    assoc: int
    latency: int  # hit latency in cycles

    def __post_init__(self) -> None:
        require_pow2(self.size_bytes, "size_bytes")
        if self.assoc <= 0:
            raise ConfigurationError(f"assoc must be positive, got {self.assoc}")
        if self.latency < 0:
            raise ConfigurationError(f"latency must be >= 0, got {self.latency}")


@dataclass(frozen=True)
class LLCLevelConfig:
    """Geometry and technology of the shared LLC.

    ``sram_ways`` selects the hybrid organisation: ``None`` means a
    homogeneous LLC of ``tech``; an integer splits every set's ways into
    an SRAM region (ways ``[0, sram_ways)``) and an STT-RAM region, as
    in Table II's 2 MB SRAM (4-way) + 6 MB STT-RAM (12-way).
    """

    size_bytes: int
    assoc: int
    banks: int
    tech: TechnologyParams
    sram_ways: int | None = None
    sram_tech: TechnologyParams = SRAM

    def __post_init__(self) -> None:
        require_pow2(self.size_bytes, "llc size_bytes")
        require_pow2(self.banks, "llc banks")
        if self.assoc <= 0:
            raise ConfigurationError(f"llc assoc must be positive, got {self.assoc}")
        if self.sram_ways is not None and not 0 < self.sram_ways < self.assoc:
            raise ConfigurationError(
                f"hybrid sram_ways must be in (0, assoc), got {self.sram_ways}"
            )

    @property
    def is_hybrid(self) -> bool:
        return self.sram_ways is not None

    @property
    def sram_bytes(self) -> int:
        """Capacity of the SRAM region (0 for homogeneous STT LLCs)."""
        if self.sram_ways is None:
            return self.size_bytes if self.tech.name.startswith("sram") else 0
        return self.size_bytes * self.sram_ways // self.assoc

    @property
    def stt_bytes(self) -> int:
        """Capacity of the STT region."""
        return self.size_bytes - self.sram_bytes


@dataclass(frozen=True)
class HierarchyConfig:
    """Full three-level hierarchy description."""

    ncores: int
    block_size: int
    l1: LevelConfig
    l2: LevelConfig
    llc: LLCLevelConfig
    mem_latency: int = 150
    # fraction of off-chip miss latency exposed to the core after
    # memory-level parallelism overlap (1.0 = fully serialised)
    mlp_exposure: float = 0.6

    def __post_init__(self) -> None:
        if self.ncores <= 0:
            raise ConfigurationError(f"ncores must be positive, got {self.ncores}")
        require_pow2(self.block_size, "block_size")
        if not 0.0 < self.mlp_exposure <= 1.0:
            raise ConfigurationError(
                f"mlp_exposure must be in (0,1], got {self.mlp_exposure}"
            )

    def with_llc(self, **changes) -> "HierarchyConfig":
        """A copy with LLC fields replaced (tech sweeps, hybrid toggles)."""
        return replace(self, llc=replace(self.llc, **changes))


def table2_config(
    ncores: int = 4,
    tech: TechnologyParams = STT_RAM,
    hybrid: bool = False,
) -> HierarchyConfig:
    """The paper's full-scale Table II system.

    32 KB 4-way L1s, 512 KB 8-way L2s, 8 MB 16-way 4-bank shared L3
    (hybrid: 2 MB SRAM / 4 ways + 6 MB STT-RAM / 12 ways), 64 B blocks.
    """
    return HierarchyConfig(
        ncores=ncores,
        block_size=64,
        l1=LevelConfig(size_bytes=32 * 1024, assoc=4, latency=2),
        l2=LevelConfig(size_bytes=512 * 1024, assoc=8, latency=4),
        llc=LLCLevelConfig(
            size_bytes=8 * 1024 * 1024,
            assoc=16,
            banks=4,
            tech=tech,
            sram_ways=4 if hybrid else None,
        ),
        mem_latency=150,
    )


def scaled_config(
    ncores: int = 4,
    tech: TechnologyParams = STT_RAM,
    hybrid: bool = False,
    llc_kb: int = 128,
    l2_kb: int = 8,
) -> HierarchyConfig:
    """Geometry-preserving scaled system (default 1/64 of Table II).

    Defaults keep the paper's shape: per-core L1 : L2 = 1 : 16,
    ΣL2 : L3 = 1 : 4 with four cores, 16-way 4-bank LLC, 64 B blocks.
    ``llc_kb`` / ``l2_kb`` expose the Fig. 21 capacity sweeps.
    """
    return HierarchyConfig(
        ncores=ncores,
        block_size=64,
        # The paper's L1:L2 ratio is 1:16, but 512 B is a degenerate L1;
        # the scaled system floors L1 at 1:4 of L2 so it still filters
        # the hot working set the way a real L1 does.
        l1=LevelConfig(size_bytes=max(2048, l2_kb * 1024 // 4), assoc=4, latency=2),
        l2=LevelConfig(size_bytes=l2_kb * 1024, assoc=8, latency=4),
        llc=LLCLevelConfig(
            size_bytes=llc_kb * 1024,
            assoc=16,
            banks=4,
            tech=tech,
            sram_ways=4 if hybrid else None,
        ),
        mem_latency=150,
    )
