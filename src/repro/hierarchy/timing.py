"""Approximate timing model.

The paper's performance numbers come from gem5; here we use a
latency-accounting model that captures the two effects the evaluation
depends on:

1. *capacity*: LLC misses cost main-memory latency, so policies with
   better effective capacity (exclusion, LAP) run faster;
2. *write occupancy*: STT-RAM writes occupy an LLC bank for 33 cycles
   (Table II), so write-heavy policies suffer bank-contention stalls —
   the reason LAP sometimes beats exclusion in Fig. 14(c).

Each core keeps its own cycle clock; the LLC keeps a per-bank
``busy_until`` horizon. A core's access to a busy bank stalls until the
bank frees. Off-chip latency is derated by an MLP exposure factor since
real out-of-order cores overlap misses.
"""

from __future__ import annotations

from typing import List

from .config import HierarchyConfig


class BankModel:
    """Per-bank occupancy tracking for the shared LLC."""

    def __init__(self, nbanks: int) -> None:
        self.busy_until: List[float] = [0.0] * nbanks
        self.write_stall_cycles = 0.0
        self.read_stall_cycles = 0.0

    def access(self, bank: int, now: float, service: float, is_write: bool) -> float:
        """Occupy ``bank`` for ``service`` cycles starting at ``now``.

        Returns the stall (cycles the requester waits for the bank).
        Writes are posted — they occupy the bank but the requester does
        not wait for their completion, only for the bank to be free.
        """
        free_at = self.busy_until[bank]
        stall = max(0.0, free_at - now)
        start = now + stall
        self.busy_until[bank] = start + service
        if is_write:
            self.write_stall_cycles += stall
        else:
            self.read_stall_cycles += stall
        return stall


class TimingModel:
    """Per-core cycle accounting with LLC bank contention."""

    def __init__(self, config: HierarchyConfig) -> None:
        self.config = config
        self.l1_latency = config.l1.latency
        self.l2_latency = config.l2.latency
        llc = config.llc
        self.llc_read_latency = llc.tech.read_latency_cycles
        self.llc_write_latency = llc.tech.write_latency_cycles
        self.sram_write_latency = llc.sram_tech.write_latency_cycles
        self.sram_read_latency = llc.sram_tech.read_latency_cycles
        self.mem_latency = config.mem_latency
        self.mlp_exposure = config.mlp_exposure
        self.banks = BankModel(llc.banks)
        self.core_cycles: List[float] = [0.0] * config.ncores

    def clock(self, core: int) -> float:
        """Current cycle count of ``core``."""
        return self.core_cycles[core]

    def advance_instructions(self, core: int, instructions: float) -> None:
        """Charge the base pipeline cost of committed instructions."""
        self.core_cycles[core] += instructions

    def l1_hit(self, core: int) -> float:
        """An L1 hit is pipelined; no extra stall."""
        return 0.0

    def l2_hit(self, core: int) -> float:
        """Stall for an L2 hit beyond the pipelined L1."""
        stall = float(self.l2_latency)
        self.core_cycles[core] += stall
        return stall

    def llc_read(self, core: int, bank: int, tech: str = "stt") -> float:
        """Demand read served by the LLC: L2 latency + bank + array."""
        now = self.core_cycles[core] + self.l2_latency
        service = self.sram_read_latency if tech == "sram" else self.llc_read_latency
        bank_stall = self.banks.access(bank, now, service, is_write=False)
        stall = self.l2_latency + bank_stall + service
        self.core_cycles[core] += stall
        return stall

    def llc_write(self, core: int, bank: int, tech: str = "stt") -> float:
        """Posted write into the LLC (fills, victim insertions).

        The core does not wait for completion; the bank is occupied for
        the technology's write latency, creating back-pressure on later
        reads. Returns the (small) issue stall.
        """
        now = self.core_cycles[core]
        service = self.sram_write_latency if tech == "sram" else self.llc_write_latency
        self.banks.access(bank, now, service, is_write=True)
        return 0.0

    def memory_access(self, core: int) -> float:
        """Off-chip miss latency, derated by MLP overlap."""
        stall = (self.l2_latency + self.llc_read_latency + self.mem_latency) * self.mlp_exposure
        self.core_cycles[core] += stall
        return stall

    @property
    def max_cycles(self) -> float:
        """The run's duration: the slowest core's clock."""
        return max(self.core_cycles)

    def reset(self) -> None:
        """Zero all clocks and bank horizons."""
        self.core_cycles = [0.0] * self.config.ncores
        self.banks = BankModel(self.config.llc.banks)
