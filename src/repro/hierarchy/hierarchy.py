"""The three-level cache hierarchy engine.

:class:`CacheHierarchy` wires per-core L1/L2 caches, the shared LLC,
the timing model, optional MOESI coherence, and one bound
:class:`~repro.inclusion.base.InclusionPolicy`. It implements only the
*mechanics* every policy shares — L1⊆L2 inclusion within a core,
write-back dirtiness propagation, L2 victim extraction — and defers
every L2↔LLC decision to the policy (the paper's Fig. 8 decision
table).

Instrumentation is *not* mechanics: loop-block tracking, redundant-fill
detection and occupancy sampling live in :mod:`repro.instr` as probes.
The engine dispatches a fixed event vocabulary (see
:data:`repro.instr.probe.PROBE_EVENTS`) to precompiled handler tuples;
an empty tuple — a probe-free run — costs one attribute load and branch
per event site, so uninstrumented sweeps pay nothing for observability.

Level roles follow the paper's footnote 1: the L2 is non-inclusive with
respect to the LLC by default; the studied inclusion property is the
one between L2 and L3. Within a core we keep L1 ⊆ L2 so that coherence
and back-invalidation act at L2 granularity only.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import List, Optional, Sequence

from ..cache import Cache, EvictedLine
from ..cache.block import STATE_MODIFIED
from ..cache.replacement import LRUPolicy
from ..cache.stats import LoopBlockStats
from ..core.loop_bits import LoopBlockTracker
from ..errors import SimulationError
from ..inclusion.base import InclusionPolicy
from ..instr import LoopProbe, Probe, ProbeBus, make_probes
from ..kernel import resolve_backend
from .config import HierarchyConfig
from .coherence import CoherenceController
from .timing import TimingModel


@dataclass
class HierarchyStats:
    """Cross-level counters not owned by any single cache."""

    accesses: int = 0
    stores: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    llc_demand_accesses: int = 0
    llc_demand_hits: int = 0
    l2_clean_victims: int = 0
    l2_dirty_victims: int = 0
    mem_reads: int = 0
    mem_writes: int = 0
    #: subset of ``mem_writes`` forced by inclusive back-invalidation
    #: (the LLC victim's upper-level copy was dirty). Splitting it out
    #: keeps the write ledger exact: ``mem_writes`` ==
    #: LLC ``dirty_evictions`` + ``mem_writes_backinval``.
    mem_writes_backinval: int = 0

    def snapshot(self) -> dict:
        """Plain-dict copy for reporting."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


class CacheHierarchy:
    """Private L1/L2 per core + shared LLC under one inclusion policy.

    ``probes`` selects the instrumentation: ``None`` builds the
    legacy-equivalent default set (loop tracker, redundant-fill
    detector, and — when ``occupancy_sample_interval`` is positive —
    the occupancy sampler), an explicit sequence is used verbatim, and
    an empty sequence runs with zero per-access instrumentation.

    ``tag_backend`` picks the tag-store layout for every cache in the
    hierarchy (see :mod:`repro.kernel`): ``"object"`` or ``"soa"``;
    ``None`` consults ``REPRO_TAG_BACKEND`` and defaults to
    ``"object"``. Semantics and stats are backend-independent; the
    choice only decides the memory layout and whether the batched
    probe-free kernel may engage.
    """

    def __init__(
        self,
        config: HierarchyConfig,
        policy: InclusionPolicy,
        enable_coherence: bool = False,
        occupancy_sample_interval: int = 0,
        probes: Optional[Sequence[Probe]] = None,
        tag_backend: Optional[str] = None,
    ) -> None:
        self.config = config
        self.policy = policy
        self.tag_backend = resolve_backend(tag_backend)
        backend = self.tag_backend
        block = config.block_size
        self.l1s: List[Cache] = [
            Cache(
                f"L1-{c}",
                config.l1.size_bytes,
                config.l1.assoc,
                block,
                replacement=LRUPolicy(),
                tech="sram",
                backend=backend,
            )
            for c in range(config.ncores)
        ]
        self.l2s: List[Cache] = [
            Cache(
                f"L2-{c}",
                config.l2.size_bytes,
                config.l2.assoc,
                block,
                replacement=LRUPolicy(),
                tech="sram",
                backend=backend,
            )
            for c in range(config.ncores)
        ]
        llc_cfg = config.llc
        self.llc = Cache(
            "L3",
            llc_cfg.size_bytes,
            llc_cfg.assoc,
            block,
            replacement=LRUPolicy(),
            tech="sram" if llc_cfg.tech.name.startswith("sram") else "stt",
            sram_ways=llc_cfg.sram_ways,
            banks=llc_cfg.banks,
            backend=backend,
        )
        self.timing = TimingModel(config)
        self.stats = HierarchyStats()
        self._finished = False
        self.coherence: Optional[CoherenceController] = (
            CoherenceController(self) if enable_coherence else None
        )
        if probes is None:
            probes = make_probes("default", occupancy_interval=occupancy_sample_interval)
        self._install_bus(ProbeBus(probes))
        policy.bind(self)

    def _install_bus(self, bus: ProbeBus) -> None:
        """Bind ``bus`` and refresh the cached per-event handler tuples."""
        self.probe_bus = bus
        bus.bind(self)
        bus_handlers = bus.handlers
        self._on_access = bus_handlers("access")
        self._on_l2_fill = bus_handlers("l2_fill")
        self._on_l2_victim = bus_handlers("l2_victim")
        self._on_llc_fill = bus_handlers("llc_fill")
        self._on_llc_evict = bus_handlers("llc_evict")
        self._on_demand_hit = bus_handlers("demand_hit")
        self._on_dirtied = bus_handlers("dirtied")
        self._on_clean_insert = bus_handlers("clean_insert")
        self._on_dirty_victim = bus_handlers("dirty_victim")
        self._on_occupancy_sample = bus_handlers("occupancy_sample")
        self._on_mem_writeback = bus_handlers("mem_writeback")

    def attach_probe(self, probe: Probe) -> None:
        """Attach one more probe mid-run (e.g. a flight recorder).

        The bus is recompiled and the cached handler tuples refreshed,
        so the probe observes every event from this point on; events
        before the attach are simply not seen (probes must tolerate
        starting from an unknown state — the standard ones do).
        """
        self._install_bus(ProbeBus((*self.probe_bus.probes, probe)))

    # ------------------------------------------------------------------
    # the access path
    # ------------------------------------------------------------------
    def access(self, core: int, addr: int, is_write: bool) -> None:
        """Process one memory reference from ``core``."""
        addr = self.llc.block_addr(int(addr))
        stats = self.stats
        stats.accesses += 1
        if is_write:
            stats.stores += 1

        l1 = self.l1s[core]
        if l1.lookup(addr, is_write) is not None:
            # L1 hits are pipelined: no timing charge.
            stats.l1_hits += 1
            if is_write:
                self._propagate_store(core, addr)
            cbs = self._on_access
            if cbs:
                for cb in cbs:
                    cb(core, addr, is_write)
            return

        if self.l2s[core].lookup(addr, False) is not None:
            stats.l2_hits += 1
            self.timing.l2_hit(core)
            l1.fill(addr, is_write)
            if is_write:
                self._propagate_store(core, addr)
            cbs = self._on_access
            if cbs:
                for cb in cbs:
                    cb(core, addr, is_write)
            return

        # ---- L2 miss: the inclusion policy owns the LLC interaction.
        stats.llc_demand_accesses += 1
        outcome = self.policy.llc_access(core, addr, is_write)
        if outcome.hit:
            stats.llc_demand_hits += 1
        supplied = False
        if self.coherence is not None:
            supplied = self.coherence.on_l2_miss(core, addr, is_write, outcome.hit)
        if not outcome.hit and not supplied:
            stats.mem_reads += 1
            self.timing.memory_access(core)

        loop_bit = self.policy.l2_fill_loop_bit(outcome.hit)
        self._fill_l2(core, addr, loop_bit=loop_bit, is_write=is_write, dirty=outcome.dirty)
        cbs = self._on_l2_fill
        if cbs:
            for cb in cbs:
                cb(addr, outcome.hit)
        l1.fill(addr, is_write)
        if is_write:
            self._propagate_store(core, addr)
        cbs = self._on_access
        if cbs:
            for cb in cbs:
                cb(core, addr, is_write)

    # ------------------------------------------------------------------
    # fills and writebacks
    # ------------------------------------------------------------------
    def _fill_l2(
        self, core: int, addr: int, loop_bit: bool, is_write: bool, dirty: bool = False
    ) -> None:
        """Install a line into ``core``'s L2.

        ``dirty`` marks a fill that inherits a writeback obligation from
        an invalidated dirty LLC copy (exclusive-style hit-invalidation):
        the L2 copy starts dirty, and — under coherence — Modified,
        since the policy only hands dirtiness up when no peer holds the
        line, making this core the sole owner of the unwritten data.
        """
        l2 = self.l2s[core]
        evicted = l2.insert(addr, dirty, loop_bit)
        if self.coherence is not None:
            block = l2.peek(addr)
            block.state = (
                STATE_MODIFIED if dirty else self.coherence.fill_state(core, addr, is_write)
            )
            self.coherence.on_l2_insert(core, addr)
        if evicted is not None:
            self._handle_l2_victim(core, evicted)

    def _handle_l2_victim(self, core: int, line: EvictedLine) -> None:
        # Enforce L1 ⊆ L2: kill the upper copy (its dirtiness already
        # lives in the L2 line thanks to store propagation).
        self.l1s[core].discard(line.addr)
        if self.coherence is not None:
            self.coherence.on_l2_drop(core, line.addr)
        if line.dirty:
            self.stats.l2_dirty_victims += 1
        else:
            self.stats.l2_clean_victims += 1
        cbs = self._on_l2_victim
        if cbs:
            for cb in cbs:
                cb(line.addr, line.dirty)
        self.policy.l2_victim(core, line)

    def _propagate_store(self, core: int, addr: int) -> None:
        """Reflect a store into the L2 copy's dirty bit and loop-bit.

        The L1 is write-back, but propagating the dirty bit eagerly to
        the L2 copy (metadata only — no data traffic is modelled inside
        the SRAM upper levels) keeps loop-bit semantics exact: Fig. 10a
        resets the loop-bit the moment a block is written.
        """
        block = self.l2s[core].peek(addr)
        if block is None:
            raise SimulationError(
                f"L1/L2 inclusion violated: store to {addr:#x} with no L2 copy on core {core}"
            )
        first_dirtying = not block.dirty
        block.dirty = True
        self.policy.on_l2_dirtied(block)
        if first_dirtying:
            cbs = self._on_dirtied
            if cbs:
                for cb in cbs:
                    cb(addr)
            if self.coherence is not None:
                self.coherence.on_store(core, addr)

    # ------------------------------------------------------------------
    # services used by inclusion policies
    # ------------------------------------------------------------------
    def charge_llc_write(self, core: int, addr: int, tech: str) -> None:
        """Occupy the LLC bank for a (posted) write."""
        self.timing.llc_write(core, self.llc.bank_of(addr), tech)

    def shared_by_peers(self, core: int, addr: int) -> bool:
        """True when another core's L2 holds ``addr`` (coherent runs only).

        Exclusive-flavoured policies use this to relax invalidate-on-hit
        for actively shared lines: invalidating a line that other cores
        still read would force every subsequent reader through a snoop,
        so real exclusive LLCs keep shared lines resident (cf. Jaleel et
        al., HPCA 2015). Answered in O(1) from the coherence
        controller's sharers map. Multiprogrammed runs (no coherence)
        always return False.
        """
        coherence = self.coherence
        return coherence is not None and coherence.peers_of(core, addr) != 0

    def on_llc_eviction(self, line: EvictedLine) -> None:
        """An LLC victim leaves the cache: write back dirty data and
        apply back-invalidation for strictly inclusive policies."""
        if line.dirty:
            self.stats.mem_writes += 1
            self.note_mem_writeback(line.addr)
        self.note_llc_evict(line.addr)
        if self.policy.back_invalidates:
            self._back_invalidate(line.addr)

    def _back_invalidate(self, addr: int) -> None:
        for core in range(self.config.ncores):
            self.l1s[core].discard(addr)
            dropped = self.l2s[core].invalidate(addr)
            if dropped is not None:
                if self.coherence is not None:
                    self.coherence.on_l2_drop(core, addr)
                cbs = self._on_l2_victim
                if cbs:
                    for cb in cbs:
                        cb(dropped.addr, dropped.dirty)
                if dropped.dirty:
                    # The LLC copy is gone too; dirty data must reach
                    # memory directly.
                    self.stats.mem_writes += 1
                    self.stats.mem_writes_backinval += 1
                    self.note_mem_writeback(addr)

    # ---- probe event entry points used by policies & coherence -------
    def note_clean_insert(self, addr: int) -> None:
        """A clean victim's data was written into the LLC (Fig. 16's
        redundant loop-block re-insertions are counted here)."""
        for cb in self._on_clean_insert:
            cb(addr)

    def note_fill(self, addr: int) -> None:
        """An LLC data-fill just happened (Figs. 6 / 17 freshness)."""
        for cb in self._on_llc_fill:
            cb(addr)

    def note_demand_hit(self, addr: int) -> None:
        """A demand hit consumed an LLC fill — it was useful."""
        for cb in self._on_demand_hit:
            cb(addr)

    def note_dirty_victim(self, addr: int) -> None:
        """A dirty victim overwrote the LLC copy (Fig. 5's redundant-
        fill trigger)."""
        for cb in self._on_dirty_victim:
            cb(addr)

    def note_llc_evict(self, addr: int) -> None:
        """The line left the LLC."""
        for cb in self._on_llc_evict:
            cb(addr)

    def note_mem_writeback(self, addr: int) -> None:
        """Dirty data for ``addr`` was written back to main memory."""
        for cb in self._on_mem_writeback:
            cb(addr)

    def note_l2_drop(self, addr: int, dirty: bool) -> None:
        """A peer invalidation dropped an L2 line (coherence flows)."""
        for cb in self._on_l2_victim:
            cb(addr, dirty)

    def emit_occupancy_sample(self, valid: int, loops: int) -> None:
        """Re-broadcast an occupancy sample to subscribing probes."""
        for cb in self._on_occupancy_sample:
            cb(valid, loops)

    # ------------------------------------------------------------------
    # instrumentation access / finalisation
    # ------------------------------------------------------------------
    @property
    def loop_tracker(self) -> Optional[LoopBlockTracker]:
        """The loop-block tracker, when the loop probe is enabled."""
        probe = self.probe_bus.find(LoopProbe)
        return probe.tracker if probe is not None else None

    def loop_stats(self) -> LoopBlockStats:
        """Loop-block stats (empty when running without the loop probe)."""
        tracker = self.loop_tracker
        return tracker.stats if tracker is not None else LoopBlockStats()

    def finish(self) -> None:
        """End-of-run bookkeeping (flush CTC streaks, policy hooks).

        Also reports run totals into the process metrics registry —
        once per run, never per access, so the hot path is unaffected.
        Idempotent: calling it again (tests, belt-and-braces callers
        like ``record_simulation``) must not double-report the
        ``hierarchy.*`` metrics or re-run probe/policy finalisation.
        """
        if self._finished:
            return
        self._finished = True
        self.probe_bus.finish()
        self.policy.end_of_run()
        from ..telemetry.metrics import get_registry

        registry = get_registry()
        registry.counter("hierarchy.runs").inc()
        registry.counter("hierarchy.accesses").inc(self.stats.accesses)
        registry.counter("hierarchy.llc_demand_accesses").inc(self.stats.llc_demand_accesses)
        registry.counter("hierarchy.llc_writes").inc(self.llc.stats.llc_writes)
        registry.counter("hierarchy.mem_writes").inc(self.stats.mem_writes)

    # convenience -------------------------------------------------------
    @property
    def llc_mpki_numerator(self) -> int:
        """LLC misses (demand accesses that missed)."""
        return self.stats.llc_demand_accesses - self.stats.llc_demand_hits
