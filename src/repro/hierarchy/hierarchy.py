"""The three-level cache hierarchy engine.

:class:`CacheHierarchy` wires per-core L1/L2 caches, the shared LLC,
the timing model, the always-on loop-block instrumentation, optional
MOESI coherence, and one bound :class:`~repro.inclusion.base.
InclusionPolicy`. It implements the mechanics every policy shares —
L1⊆L2 inclusion within a core, write-back dirtiness propagation, L2
victim extraction — and defers every L2↔LLC decision to the policy
(the paper's Fig. 8 decision table).

Level roles follow the paper's footnote 1: the L2 is non-inclusive with
respect to the LLC by default; the studied inclusion property is the
one between L2 and L3. Within a core we keep L1 ⊆ L2 so that coherence
and back-invalidation act at L2 granularity only.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import List, Optional, Set

from ..cache import Cache, EvictedLine
from ..cache.replacement import LRUPolicy
from ..core.loop_bits import LoopBlockTracker
from ..errors import SimulationError
from ..inclusion.base import InclusionPolicy
from .config import HierarchyConfig
from .coherence import CoherenceController
from .timing import TimingModel


@dataclass
class HierarchyStats:
    """Cross-level counters not owned by any single cache."""

    accesses: int = 0
    stores: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    llc_demand_accesses: int = 0
    llc_demand_hits: int = 0
    l2_clean_victims: int = 0
    l2_dirty_victims: int = 0
    mem_reads: int = 0
    mem_writes: int = 0

    def snapshot(self) -> dict:
        """Plain-dict copy for reporting."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


class CacheHierarchy:
    """Private L1/L2 per core + shared LLC under one inclusion policy."""

    def __init__(
        self,
        config: HierarchyConfig,
        policy: InclusionPolicy,
        enable_coherence: bool = False,
        occupancy_sample_interval: int = 0,
    ) -> None:
        self.config = config
        self.policy = policy
        block = config.block_size
        self.l1s: List[Cache] = [
            Cache(
                f"L1-{c}",
                config.l1.size_bytes,
                config.l1.assoc,
                block,
                replacement=LRUPolicy(),
                tech="sram",
            )
            for c in range(config.ncores)
        ]
        self.l2s: List[Cache] = [
            Cache(
                f"L2-{c}",
                config.l2.size_bytes,
                config.l2.assoc,
                block,
                replacement=LRUPolicy(),
                tech="sram",
            )
            for c in range(config.ncores)
        ]
        llc_cfg = config.llc
        self.llc = Cache(
            "L3",
            llc_cfg.size_bytes,
            llc_cfg.assoc,
            block,
            replacement=LRUPolicy(),
            tech="sram" if llc_cfg.tech.name.startswith("sram") else "stt",
            sram_ways=llc_cfg.sram_ways,
            banks=llc_cfg.banks,
        )
        self.timing = TimingModel(config)
        self.stats = HierarchyStats()
        self.loop_tracker = LoopBlockTracker()
        self.coherence: Optional[CoherenceController] = (
            CoherenceController(self) if enable_coherence else None
        )
        self._fresh_fills: Set[int] = set()
        self._occupancy_interval = occupancy_sample_interval
        self._since_sample = 0
        policy.bind(self)

    # ------------------------------------------------------------------
    # the access path
    # ------------------------------------------------------------------
    def access(self, core: int, addr: int, is_write: bool) -> None:
        """Process one memory reference from ``core``."""
        addr = self.llc.block_addr(int(addr))
        self.stats.accesses += 1
        if is_write:
            self.stats.stores += 1

        l1 = self.l1s[core]
        hit1 = l1.lookup(addr, is_write=is_write)
        if hit1 is not None:
            self.stats.l1_hits += 1
            self.timing.l1_hit(core)
            if is_write:
                self._propagate_store(core, addr)
            self._maybe_sample()
            return

        l2 = self.l2s[core]
        hit2 = l2.lookup(addr, is_write=False)
        if hit2 is not None:
            self.stats.l2_hits += 1
            self.timing.l2_hit(core)
            self._fill_l1(core, addr, dirty=is_write)
            if is_write:
                self._propagate_store(core, addr)
            self._maybe_sample()
            return

        # ---- L2 miss: the inclusion policy owns the LLC interaction.
        self.stats.llc_demand_accesses += 1
        outcome = self.policy.llc_access(core, addr, is_write)
        if outcome.hit:
            self.stats.llc_demand_hits += 1
        supplied = False
        if self.coherence is not None:
            supplied = self.coherence.on_l2_miss(core, addr, is_write, outcome.hit)
        if not outcome.hit and not supplied:
            self.stats.mem_reads += 1
            self.timing.memory_access(core)

        loop_bit = self.policy.l2_fill_loop_bit(outcome.hit)
        self._fill_l2(core, addr, loop_bit=loop_bit, is_write=is_write)
        self.loop_tracker.on_l2_fill(addr, from_llc=outcome.hit)
        self._fill_l1(core, addr, dirty=is_write)
        if is_write:
            self._propagate_store(core, addr)
        self._maybe_sample()

    # ------------------------------------------------------------------
    # fills and writebacks
    # ------------------------------------------------------------------
    def _fill_l1(self, core: int, addr: int, dirty: bool) -> None:
        """Fill the L1; victims need no writeback because dirtiness is
        propagated to the L2 copy at store time (L1 ⊆ L2)."""
        self.l1s[core].insert(addr, dirty=dirty)

    def _fill_l2(self, core: int, addr: int, loop_bit: bool, is_write: bool) -> None:
        l2 = self.l2s[core]
        evicted = l2.insert(addr, dirty=False, loop_bit=loop_bit)
        if self.coherence is not None:
            block = l2.peek(addr)
            block.state = self.coherence.fill_state(core, addr, is_write)
        if evicted is not None:
            self._handle_l2_victim(core, evicted)

    def _handle_l2_victim(self, core: int, line: EvictedLine) -> None:
        # Enforce L1 ⊆ L2: kill the upper copy (its dirtiness already
        # lives in the L2 line thanks to store propagation).
        self.l1s[core].invalidate(line.addr)
        if line.dirty:
            self.stats.l2_dirty_victims += 1
        else:
            self.stats.l2_clean_victims += 1
        self.loop_tracker.on_l2_evict(line.addr, line.dirty)
        self.policy.l2_victim(core, line)

    def _propagate_store(self, core: int, addr: int) -> None:
        """Reflect a store into the L2 copy's dirty bit and loop-bit.

        The L1 is write-back, but propagating the dirty bit eagerly to
        the L2 copy (metadata only — no data traffic is modelled inside
        the SRAM upper levels) keeps loop-bit semantics exact: Fig. 10a
        resets the loop-bit the moment a block is written.
        """
        block = self.l2s[core].peek(addr)
        if block is None:
            raise SimulationError(
                f"L1/L2 inclusion violated: store to {addr:#x} with no L2 copy on core {core}"
            )
        first_dirtying = not block.dirty
        block.dirty = True
        self.policy.on_l2_dirtied(block)
        if first_dirtying:
            self.loop_tracker.on_dirtied(addr)
            if self.coherence is not None:
                self.coherence.on_store(core, addr)

    # ------------------------------------------------------------------
    # services used by inclusion policies
    # ------------------------------------------------------------------
    def charge_llc_write(self, core: int, addr: int, tech: str) -> None:
        """Occupy the LLC bank for a (posted) write."""
        self.timing.llc_write(core, self.llc.bank_of(addr), tech)

    def shared_by_peers(self, core: int, addr: int) -> bool:
        """True when another core's L2 holds ``addr`` (coherent runs only).

        Exclusive-flavoured policies use this to relax invalidate-on-hit
        for actively shared lines: invalidating a line that other cores
        still read would force every subsequent reader through a snoop,
        so real exclusive LLCs keep shared lines resident (cf. Jaleel et
        al., HPCA 2015). Multiprogrammed runs (no coherence) always
        return False.
        """
        if self.coherence is None:
            return False
        return any(
            peer != core and self.l2s[peer].peek(addr) is not None
            for peer in range(self.config.ncores)
        )

    def on_llc_eviction(self, line: EvictedLine) -> None:
        """An LLC victim leaves the cache: write back dirty data and
        apply back-invalidation for strictly inclusive policies."""
        if line.dirty:
            self.stats.mem_writes += 1
        self.note_llc_evict(line.addr)
        if getattr(self.policy, "back_invalidates", False):
            self._back_invalidate(line.addr)

    def _back_invalidate(self, addr: int) -> None:
        for core in range(self.config.ncores):
            self.l1s[core].invalidate(addr)
            dropped = self.l2s[core].invalidate(addr)
            if dropped is not None:
                self.loop_tracker.on_l2_evict(dropped.addr, dropped.dirty)
                if dropped.dirty:
                    # The LLC copy is gone too; dirty data must reach
                    # memory directly.
                    self.stats.mem_writes += 1

    def note_clean_insert(self, addr: int) -> None:
        """A clean victim's data was written into the LLC (Fig. 16's
        redundant loop-block re-insertions are counted here)."""
        self.loop_tracker.on_clean_insert(addr)

    # ---- redundant-fill instrumentation (Figs. 6 / 17) ---------------
    def note_fill(self, addr: int) -> None:
        """An LLC data-fill just happened; it is 'fresh' until reused."""
        self._fresh_fills.add(addr)

    def note_demand_hit(self, addr: int) -> None:
        """A demand hit consumed the fill — it was useful."""
        self._fresh_fills.discard(addr)

    def note_dirty_victim(self, addr: int) -> None:
        """A dirty victim overwrote the LLC copy; a still-fresh fill of
        the same line was redundant (Fig. 5's definition)."""
        if addr in self._fresh_fills:
            self.llc.stats.redundant_fills += 1
            self._fresh_fills.discard(addr)

    def note_llc_evict(self, addr: int) -> None:
        """The line left the LLC; forget its freshness."""
        self._fresh_fills.discard(addr)

    # ------------------------------------------------------------------
    # sampling / finalisation
    # ------------------------------------------------------------------
    def _maybe_sample(self) -> None:
        if self._occupancy_interval <= 0:
            return
        self._since_sample += 1
        if self._since_sample >= self._occupancy_interval:
            self._since_sample = 0
            valid, loops = self.llc.loop_block_occupancy()
            self.loop_tracker.sample_llc_occupancy(valid, loops)

    def finish(self) -> None:
        """End-of-run bookkeeping (flush CTC streaks, policy hooks)."""
        self.loop_tracker.finalize()
        self.policy.end_of_run()

    # convenience -------------------------------------------------------
    @property
    def llc_mpki_numerator(self) -> int:
        """LLC misses (demand accesses that missed)."""
        return self.stats.llc_demand_accesses - self.stats.llc_demand_hits
