"""MOESI-style snooping coherence for multithreaded workloads (Fig. 20).

Coherence acts at the private-cache level: every L2 block carries a
MOESI state, and L1s are kept inclusive within their core's L2 so an
L2-level invalidation suffices. The shared LLC is *not* a coherence
point — matching the paper's snooping-bus baseline — and the modelled
protocol maintains one simplifying invariant:

    while any core holds a block dirty (M or O), the LLC holds no copy
    of it (the first store to a clean block invalidates any LLC
    duplicate).

This keeps every LLC hit safe to consume without a snoop, so snoop
broadcasts happen exactly on LLC misses and on write upgrades — which
reproduces the paper's observation that snoop traffic tracks LLC misses
(exclusion ≈ 38 % less traffic than non-inclusion in Fig. 20c).

Traffic accounting (Fig. 20c): one ``snoop_broadcast`` per bus
transaction that probes peers, one ``invalidation_message`` per peer
copy killed, one ``cache_to_cache`` per peer-supplied fill.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from ..cache.block import (
    STATE_EXCLUSIVE,
    STATE_MODIFIED,
    STATE_OWNED,
    STATE_SHARED,
)
from ..cache.stats import CoherenceStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .hierarchy import CacheHierarchy


class CoherenceController:
    """Bus-snooping MOESI controller over the per-core L2s.

    Alongside the MOESI states it maintains a **sharers map** —
    ``addr → bitmask of cores whose L2 holds the line`` — updated by the
    hierarchy at every L2 insert/drop. Snoop fan-out and
    :meth:`CacheHierarchy.shared_by_peers` read the map in O(1) instead
    of probing every core's L2 tag array per query.
    """

    def __init__(self, hierarchy: "CacheHierarchy") -> None:
        self.h = hierarchy
        self.stats = CoherenceStats()
        self._sharers: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # sharers map maintenance (driven by the hierarchy's L2 mechanics)
    # ------------------------------------------------------------------
    def on_l2_insert(self, core: int, addr: int) -> None:
        """``core``'s L2 now holds ``addr``."""
        sharers = self._sharers
        sharers[addr] = sharers.get(addr, 0) | (1 << core)

    def on_l2_drop(self, core: int, addr: int) -> None:
        """``core``'s L2 no longer holds ``addr``."""
        sharers = self._sharers
        mask = sharers.get(addr, 0) & ~(1 << core)
        if mask:
            sharers[addr] = mask
        else:
            sharers.pop(addr, None)

    def peers_of(self, core: int, addr: int) -> int:
        """Bitmask of cores other than ``core`` whose L2 holds ``addr``."""
        return self._sharers.get(addr, 0) & ~(1 << core)

    def sharers_snapshot(self) -> Dict[int, int]:
        """Copy of the sharers map (``addr → core bitmask``).

        Diagnostic/validation surface: ``repro.validate`` rebuilds the
        map from the L2 tag arrays and compares it against this to
        prove the O(1) bookkeeping never drifts from the ground truth.
        """
        return dict(self._sharers)

    # ------------------------------------------------------------------
    # miss-path hooks
    # ------------------------------------------------------------------
    def on_l2_miss(self, core: int, addr: int, is_write: bool, llc_hit: bool) -> bool:
        """Handle the bus side of an L2 miss.

        Returns True when a peer cache supplied the line (so main
        memory need not be read).
        """
        if llc_hit:
            if is_write:
                # Read-for-ownership served by the LLC still must kill
                # peer copies before the store retires.
                self._broadcast_invalidate(core, addr)
            else:
                # A new sharer appeared: peers holding the line
                # exclusively must downgrade (the LLC-hit copy is clean
                # by the no-stale-LLC invariant, so E→S is the only
                # possible transition).
                for peer in self._holders(core, addr):
                    block = self.h.l2s[peer].peek(addr)
                    if block is not None and block.state == STATE_EXCLUSIVE:
                        block.state = STATE_SHARED
            return False

        # LLC miss: snoop the bus.
        self.stats.snoop_broadcasts += 1
        holders = self._holders(core, addr)
        supplied = bool(holders)
        if supplied:
            self.stats.cache_to_cache += 1
        if is_write:
            for peer in holders:
                self._invalidate_peer(peer, addr)
        elif holders:
            # A read: the (single possible) owner downgrades but keeps
            # ownership of the dirty data; clean holders share.
            for peer in holders:
                block = self.h.l2s[peer].peek(addr)
                if block is None:
                    continue
                if block.state == STATE_MODIFIED:
                    block.state = STATE_OWNED
                elif block.state == STATE_EXCLUSIVE:
                    block.state = STATE_SHARED
        return supplied

    def fill_state(self, core: int, addr: int, is_write: bool) -> str:
        """MOESI state for the line being filled into ``core``'s L2."""
        if is_write:
            return STATE_MODIFIED
        return STATE_SHARED if self._holders(core, addr) else STATE_EXCLUSIVE

    # ------------------------------------------------------------------
    # store-path hook
    # ------------------------------------------------------------------
    def on_store(self, core: int, addr: int) -> None:
        """A store is retiring into a block ``core`` already holds."""
        block = self.h.l2s[core].peek(addr)
        if block is None:  # pragma: no cover - hierarchy guarantees presence
            return
        if block.state in (STATE_SHARED, STATE_OWNED):
            self.stats.upgrades += 1
            self._broadcast_invalidate(core, addr)
        block.state = STATE_MODIFIED
        # Maintain the no-stale-LLC invariant: the LLC duplicate (if
        # any) is now stale and must go.
        if self.h.llc.peek(addr) is not None:
            self.h.llc.discard(addr)
            self.h.note_llc_evict(addr)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _holders(self, core: int, addr: int) -> List[int]:
        mask = self.peers_of(core, addr)
        if not mask:
            return []
        return [peer for peer in range(self.h.config.ncores) if (mask >> peer) & 1]

    def _broadcast_invalidate(self, core: int, addr: int) -> None:
        self.stats.snoop_broadcasts += 1
        for peer in self._holders(core, addr):
            self._invalidate_peer(peer, addr)

    def _invalidate_peer(self, peer: int, addr: int) -> None:
        """Kill a peer's copy (L2 and, by inclusion, L1)."""
        self.stats.invalidation_messages += 1
        self.h.l1s[peer].discard(addr)
        line = self.h.l2s[peer].invalidate(addr)
        if line is not None:
            self.on_l2_drop(peer, addr)
            # The requester's copy now carries the latest data; probes
            # just see the block leave this L2.
            self.h.note_l2_drop(line.addr, line.dirty)
