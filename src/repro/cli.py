"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Enumerate registered policies, workloads, and technologies.
``run``
    Simulate one (workload, policy) pair and print the metric summary.
``compare``
    Run several policies against bit-identical traces and print a
    normalised comparison table.
``characterize``
    Measure the Section II workload characteristics (loop-block
    fraction, redundant fills, WL/WH class) for named benchmarks.
``figure``
    Regenerate one of the paper's figures by id (e.g. ``fig14``).
``report``
    Assemble a markdown experiment record from the benchmark harness's
    result files (``benchmarks/results``) — or, with ``--out`` /
    ``--cache-dir``, render the self-contained HTML fleet dashboard
    from one or more result-cache directories (``repro.obs``): policy
    grids, throughput/latency histograms, invariant status, span hot
    spots, and the bench trend with regression highlighting.
``validate-workloads``
    Re-measure every synthetic benchmark's declared traits.
``sweep``
    Run a workloads x policies grid on one system and export CSV.
``cache``
    Inspect (``stats``, optionally ``--json``) or empty (``clear``)
    the result cache.
``trace``
    The flight recorder: ``record`` a simulation's cache-event stream
    to compressed JSONL, ``summarize`` a recording, or ``diff`` two
    recordings (first divergence + per-event-type deltas).
``check``
    Machine-check the simulator's per-policy invariants
    (``repro.validate``): deterministic invariant + differential
    stages, plus ``--fuzz N`` randomized cases with failure shrinking.
``suite``
    Named benchmark sets (``repro.suite``): ``list`` the registry
    (Table III mixes, SPEC-like int/fp splits, trait families, trace
    corpora) or ``run`` one set through the exec pool with
    per-benchmark error surfacing and a geomean summary normalised to
    the baseline policy.
``corpus``
    The content-addressed trace store (``repro.workloads.corpus``):
    ``add`` archives (verified before ingest), ``list`` entries,
    ``verify`` every stored trace against its manifest and checksums,
    or ``capture`` a synthetic workload's streams straight into the
    corpus.
``serve``
    Run the simulation service (``repro.serve``): an asyncio HTTP/JSON
    server that accepts job specs, coalesces identical submissions,
    short-circuits warm-cache hits, and schedules the rest fairly
    across clients through the execution pool.
``submit`` / ``status`` / ``result``
    Client side of ``serve``: submit one (workload, policy) job spec
    (``--wait`` polls to completion and prints the summary), poll a
    job id, or fetch a finished result.

Every command accepts ``--refs``, ``--seed`` and system-shape flags so
sweeps can be scripted from the shell; all output is plain ASCII.

Four *global* options (they precede the subcommand) drive the
execution engine and telemetry: ``--jobs N`` fans grid commands out
over N worker processes, ``--cache-dir PATH`` memoises every
spec-described simulation in a content-addressed on-disk cache
(``$REPRO_CACHE_DIR`` is honoured when the flag is absent),
``--metrics PATH`` dumps the process metrics-registry snapshot to JSON
after the command finishes, and ``--spans PATH`` turns on span tracing
for the command and dumps the trace as JSONL (``$REPRO_SPANS`` enables
tracing without a dump path; the exec pool then writes ``spans.jsonl``
next to ``manifest.json``), e.g.::

    python -m repro --jobs 4 --cache-dir ~/.repro-cache sweep --workloads WL2,WH1
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from . import make_workload, simulate
from .analysis import classify_wl_wh, favors_exclusion, render_mapping_table, render_table
from .energy import SRAM, STT_RAM
from .errors import ReproError
from .exec import ResultCache, cache_from_env, get_active_cache, set_active_cache
from .sim import SystemConfig
from .workloads import PARSEC_ORDER, TABLE3_ORDER, benchmark_names

FIGURES = {
    "fig2": "fig2_motivation",
    "fig4": "fig4_loop_blocks",
    "fig6": "fig6_redundant_fill",
    "fig12": "fig12_noni_vs_ex",
    "fig13": "fig13_scatter",
    "fig14": "fig14_policy_comparison",
    "fig15": "fig15_write_breakdown",
    "fig16": "fig16_loop_occupancy",
    "fig17": "fig17_redundant_fill_mixes",
    "fig18": "fig18_mpki",
    "fig19": "fig19_lap_variants",
    "fig20": "fig20_multithreaded",
    "fig21": "fig21_capacity_ratio",
    "fig22": "fig22_core_count",
    "fig23": "fig23_energy_ratio",
    "fig24": "fig24_hybrid",
    "fig25": "fig25_lhybrid_stages",
}


def _add_system_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--tech", choices=("stt", "sram"), default="stt",
                        help="LLC technology (default: stt)")
    parser.add_argument("--ratio", type=float, default=None,
                        help="override the STT write/read energy ratio")
    parser.add_argument("--hybrid", action="store_true",
                        help="hybrid SRAM/STT-RAM LLC (Table II split)")
    parser.add_argument("--ncores", type=int, default=4)
    parser.add_argument("--llc-kb", type=int, default=128)
    parser.add_argument("--l2-kb", type=int, default=8)
    parser.add_argument("--refs", type=int, default=20_000,
                        help="memory references per core (default: 20000)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--tag-backend", choices=("auto", "object", "soa"),
                        default="auto",
                        help="tag-store layout: object (reference), soa "
                        "(numpy struct-of-arrays + batched kernel), or auto "
                        "(soa when the run qualifies; default)")


def _system_from(args: argparse.Namespace) -> SystemConfig:
    tech = SRAM if args.tech == "sram" else STT_RAM
    if args.ratio is not None:
        if args.tech == "sram":
            raise ReproError("--ratio only applies to the STT technology")
        tech = STT_RAM.with_write_read_ratio(args.ratio)
    return SystemConfig.scaled(
        ncores=args.ncores,
        tech=tech,
        hybrid=args.hybrid,
        llc_kb=args.llc_kb,
        l2_kb=args.l2_kb,
        tag_backend=getattr(args, "tag_backend", "auto"),
    )


def _cmd_list(args: argparse.Namespace) -> int:
    from .arena import registry

    rows = []
    for entry in registry.catalog_rows():
        sets = ",".join(
            label
            for label, member in (
                ("arena", entry["arena"]),
                ("check", entry["check_default"]),
                ("hybrid", entry["hybrid_only"]),
            )
            if member
        )
        rows.append([
            entry["name"],
            entry["aliases"] or "-",
            entry["kernel"],
            sets or "-",
            f"{entry['paper']} {entry['anchor']}",
        ])
    print(render_table(
        "policies (registry catalog; details in DESIGN.md section 15)",
        ["name", "aliases", "kernel", "sets", "paper anchor"],
        rows,
    ))
    print()
    rows = (
        [[m, "Table III mix"] for m in TABLE3_ORDER]
        + [[b, "SPEC-like benchmark (duplicate copies)"] for b in benchmark_names()]
        + [[p, "PARSEC-like multithreaded workload"] for p in PARSEC_ORDER]
    )
    print(render_table("workloads", ["name", "kind"], rows))
    print()
    rows = [
        ["sram", SRAM.read_energy_nj, SRAM.write_energy_nj, SRAM.leakage_mw_per_mb],
        ["stt", STT_RAM.read_energy_nj, STT_RAM.write_energy_nj, STT_RAM.leakage_mw_per_mb],
    ]
    print(render_table("technologies", ["name", "read nJ", "write nJ", "leak mW/MB"], rows))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    system = _system_from(args)
    workload = make_workload(args.workload, system, seed=args.seed)
    result = simulate(system, args.policy, workload, refs_per_core=args.refs)
    summary = result.summary()
    summary["snoop_traffic"] = float(result.snoop_traffic)
    summary["cycles"] = float(result.cycles)
    if args.json:
        print(json.dumps({"workload": args.workload, "policy": args.policy, **summary}, indent=2))
    else:
        print(render_table(
            f"{args.workload} under {args.policy} on {system.label}",
            ["metric", "value"],
            [[k, v] for k, v in summary.items()],
        ))
    return 0


def _policy_list(spec: str, hybrid: bool = False) -> tuple:
    """Split a ``--policies`` value, expanding the ``arena`` token to
    the registry's arena-grid set and validating every name."""
    from .analysis.arena import arena_policies
    from .arena import registry

    names = []
    for name in spec.split(","):
        name = name.strip()
        if name == "arena":
            names.extend(arena_policies(hybrid=hybrid))
        elif name:
            names.append(name)
    # de-dupe after canonicalisation, keeping first occurrence
    return tuple(dict.fromkeys(registry.validate_names(names)))


def _cmd_compare(args: argparse.Namespace) -> int:
    from .analysis.arena import grid_rows

    system = _system_from(args)
    if args.arena:
        policies = _policy_list("arena", hybrid=args.hybrid)
    else:
        policies = _policy_list(args.policies, hybrid=args.hybrid)
    results = {}
    for policy in policies:
        workload = make_workload(args.workload, system, seed=args.seed)
        results[policy] = simulate(system, policy, workload, refs_per_core=args.refs)
    if args.arena:
        print(render_mapping_table(
            f"arena grid: {args.workload} on {system.label} "
            f"(normalised to {policies[0]}; write classes as share of "
            "its total LLC writes)",
            grid_rows(results),
            row_label="policy",
        ))
        return 0
    baseline = results[policies[0]]
    rows = {}
    for policy, r in results.items():
        rows[policy] = {
            "epi": r.epi / baseline.epi,
            "dynamic_epi": r.dynamic_epi / max(1e-30, baseline.dynamic_epi),
            "llc_writes": r.llc_writes / max(1, baseline.llc_writes),
            "mpki": r.mpki / max(1e-30, baseline.mpki),
            "throughput": r.throughput / max(1e-30, baseline.throughput),
        }
    print(render_mapping_table(
        f"{args.workload} on {system.label} (normalised to {policies[0]})",
        rows,
        row_label="policy",
    ))
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    system = _system_from(args)
    rows = []
    benches = args.benchmarks or list(benchmark_names())
    for bench in benches:
        runs = {}
        for policy in ("non-inclusive", "exclusive"):
            workload = make_workload(bench, system, seed=args.seed)
            runs[policy] = simulate(system, policy, workload, refs_per_core=args.refs)
        noni, ex = runs["non-inclusive"], runs["exclusive"]
        rows.append([
            bench,
            noni.loop_block_fraction,
            noni.redundant_fill_fraction,
            ex.llc_misses / max(1, noni.llc_misses),
            ex.llc_writes / max(1, noni.llc_writes),
            classify_wl_wh(noni, ex),
            "exclusive" if favors_exclusion(noni, ex) else "non-inclusive",
        ])
    print(render_table(
        "workload characterisation (paper Figs. 2/4/6)",
        ["benchmark", "loop_frac", "redundant_fill", "Mrel", "Wrel", "class", "favours"],
        rows,
    ))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    from .analysis import figures as F

    name = args.name.lower()
    if name not in FIGURES:
        raise ReproError(f"unknown figure {args.name!r}; known: {sorted(FIGURES)}")
    fn = getattr(F, FIGURES[name])
    out = fn(refs=args.refs)
    blocks = out if isinstance(out, tuple) else (out,)
    for i, rows in enumerate(blocks):
        if not rows:
            continue
        print(render_mapping_table(f"{name} [{i}]", rows, row_label="row"))
        print()
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    # HTML fleet-dashboard mode only on an explicit ask (--out or a
    # sub-level --cache-dir); the bare command keeps producing the
    # legacy markdown record from benchmarks/results.
    if getattr(args, "out", None) or getattr(args, "cache_dirs", None):
        return _cmd_report_html(args)
    from .analysis.report import assemble_report, missing_results

    text = assemble_report(args.results_dir)
    if args.output:
        import pathlib

        pathlib.Path(args.output).write_text(text)
        print(f"report written to {args.output}")
    else:
        print(text)
    missing = missing_results(args.results_dir)
    if missing:
        print(f"\nnote: {len(missing)} experiments not yet regenerated: "
              f"{', '.join(missing)}", file=sys.stderr)
    return 0


def _cmd_report_html(args: argparse.Namespace) -> int:
    """The ``repro.obs`` path: scan cache dirs, render the dashboard."""
    import pathlib

    from .bench import load_bench_file
    from .obs.dashboard import render_dashboard
    from .obs.ledger import scan_dirs

    dirs = list(args.cache_dirs or ())
    if not dirs:
        cache = get_active_cache()
        if cache is None:
            raise ReproError(
                "no result-cache directory to scan: pass --cache-dir "
                "(repeatable) or set $REPRO_CACHE_DIR"
            )
        dirs = [str(cache.root)]
    ledger = scan_dirs(dirs)
    print(
        f"scanned {len(dirs)} director{'y' if len(dirs) == 1 else 'ies'}: "
        f"{len(ledger.rows)} job(s), {len(ledger.spans)} span(s), "
        f"{len(ledger.problems)} problem(s)",
        file=sys.stderr,
    )

    bench_doc = None
    bench_path = pathlib.Path(args.bench)
    if bench_path.exists():
        bench_doc = load_bench_file(bench_path)

    check_rows = None
    if not args.no_check:
        from .validate import run_checks

        policies = sorted(
            {r.policy for r in ledger.rows if r.policy != "?"}
        ) or None
        print(
            f"running invariant checks ({args.check_refs} refs"
            f"{', ' + str(len(policies)) + ' swept policies' if policies else ''})"
            " ...",
            file=sys.stderr,
        )
        if policies:
            report = run_checks(
                tuple(policies), refs=args.check_refs, coherence="off"
            )
        else:  # empty ledger: check the default policy set anyway
            report = run_checks(refs=args.check_refs, coherence="off")
        check_rows = [(e.name, e.ok, e.detail) for e in report.entries]

    html = render_dashboard(
        ledger,
        bench_doc=bench_doc,
        check_rows=check_rows,
        regression_pct=args.regression_pct,
    )
    out = pathlib.Path(args.out or "report.html")
    out.write_text(html)
    print(f"dashboard written to {out} ({len(html)} bytes)")
    if args.ledger:
        pathlib.Path(args.ledger).write_text(ledger.to_json() + "\n")
        print(f"ledger written to {args.ledger}")
    if check_rows is not None and any(not ok for _, ok, _ in check_rows):
        print("invariant checks FAILED (see dashboard)", file=sys.stderr)
        return 1
    return 0


def _cmd_validate_workloads(args: argparse.Namespace) -> int:
    from .workloads.validation import validate_all, violations

    system = _system_from(args)
    reports = validate_all(system, refs=args.refs)
    rows = [
        [
            r.benchmark,
            r.loop_fraction,
            r.redundant_fill_fraction,
            r.mrel,
            r.wrel,
            "; ".join(r.violations) or "ok",
        ]
        for r in reports.values()
    ]
    print(render_table(
        "workload-model validation against declared traits",
        ["benchmark", "loop_frac", "redundant_fill", "Mrel", "Wrel", "verdict"],
        rows,
    ))
    bad = violations(reports)
    if bad:
        print(f"\n{len(bad)} benchmark(s) violate their declared traits",
              file=sys.stderr)
        return 1
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .sim.runner import duplicate_builder, mix_builder, multithreaded_builder
    from .sim.sweeps import Sweep, records_to_csv
    from .workloads.mixes import TABLE3_MIXES
    from .workloads.parsec import PARSEC_BENCHMARKS

    system = _system_from(args)
    builders = {}
    for name in args.workloads.split(","):
        if name in TABLE3_MIXES:
            builders[name] = mix_builder(name, seed=args.seed)
        elif name in PARSEC_BENCHMARKS:
            builders[name] = multithreaded_builder(
                name, nthreads=system.hierarchy.ncores, seed=args.seed
            )
        else:
            builders[name] = duplicate_builder(
                name, ncores=system.hierarchy.ncores, seed=args.seed
            )
    sweep = Sweep(
        systems={system.label: system},
        workloads=builders,
        policies=_policy_list(args.policies, hybrid=args.hybrid),
        refs_per_core=args.refs,
    )
    jobs = max(1, getattr(args, "jobs", 1))
    cache = get_active_cache()
    print(
        f"running {sweep.size()} simulations "
        f"({'serial' if jobs == 1 else f'{jobs} workers'}"
        f"{', cached' if cache else ''}) ...",
        file=sys.stderr,
    )
    records = sweep.run(
        progress=lambda r: print(f"  {r.workload} / {r.policy} done", file=sys.stderr),
        max_workers=jobs,
        cache=cache,
        heartbeat_interval=args.heartbeat if args.heartbeat > 0 else None,
    )
    if cache is not None:
        print(f"run manifest written to {cache.root / 'manifest.json'}", file=sys.stderr)
    text = records_to_csv(records, args.output)
    if args.output:
        print(f"CSV written to {args.output}")
    else:
        print(text, end="")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = get_active_cache()
    if cache is None:
        raise ReproError(
            "no result cache configured: pass --cache-dir (before the "
            "subcommand) or set $REPRO_CACHE_DIR"
        )
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached result(s) from {cache.root}")
        return 0
    stats = cache.stats()
    if getattr(args, "json", False):
        print(json.dumps(
            {"directory": str(cache.root), **stats.as_dict()}, indent=2, sort_keys=True
        ))
        return 0
    rows = [["directory", str(cache.root)]] + [
        [k, v] for k, v in stats.as_dict().items()
    ]
    print(render_table("result cache", ["field", "value"], rows))
    return 0


# ----------------------------------------------------------------------
# trace: the flight recorder
# ----------------------------------------------------------------------
def _cmd_trace_record(args: argparse.Namespace) -> int:
    from .telemetry import record_simulation, summarize_trace

    system = _system_from(args)
    record_simulation(
        args.out,
        system,
        args.policy,
        args.workload,
        refs_per_core=args.refs,
        seed=args.seed,
        events=args.events,
    )
    summary = summarize_trace(args.out)
    print(
        f"recorded {summary.total} event(s) from {args.workload} / "
        f"{args.policy} to {args.out}"
    )
    return 0


def _summary_rows(summary) -> list:
    return [[name, count] for name, count in summary.by_event.items()]


def _cmd_trace_summarize(args: argparse.Namespace) -> int:
    from .telemetry import summarize_trace

    summary = summarize_trace(args.path)
    if args.json:
        print(json.dumps(summary.as_dict(), indent=2, sort_keys=True))
        return 0
    meta = summary.meta
    title = (
        f"{args.path}: {meta.get('workload', '?')} / {meta.get('policy', '?')} "
        f"({summary.total} events)"
    )
    print(render_table(title, ["event", "count"], _summary_rows(summary)))
    return 0


def _cmd_trace_diff(args: argparse.Namespace) -> int:
    from .telemetry import diff_traces

    diff = diff_traces(args.left, args.right)
    if args.json:
        print(json.dumps(diff.as_dict(), indent=2, sort_keys=True))
        return 0
    left_name = diff.left.meta.get("policy") or args.left
    right_name = diff.right.meta.get("policy") or args.right
    rows = [
        [name, l, r, r - l]
        for name, (l, r) in diff.counts.items()
    ]
    rows.append(["total", diff.left.total, diff.right.total,
                 diff.right.total - diff.left.total])
    print(render_table(
        f"trace diff: {left_name} vs {right_name}",
        ["event", left_name, right_name, "delta"],
        rows,
    ))
    print()
    if diff.identical:
        print("streams are identical: zero divergence")
    else:
        print(f"first divergence at {diff.divergence.describe()}")
    return 0


# ----------------------------------------------------------------------
# check: the invariant-validation suite
# ----------------------------------------------------------------------
def _cmd_check(args: argparse.Namespace) -> int:
    from .arena import registry
    from .validate import DEFAULT_POLICIES, run_checks

    # Validate names up front so a typo gets the registry's list +
    # nearest-match suggestion instead of failing mid-suite.
    policies = (
        registry.validate_names(args.policy) if args.policy else DEFAULT_POLICIES
    )
    report = run_checks(
        policies,
        fuzz_rounds=args.fuzz,
        refs=args.refs,
        seed=args.seed,
        coherence=args.coherence,
        interval=args.interval,
        progress=(None if args.quiet else lambda m: print(f"  {m}", file=sys.stderr)),
        tag_backend=args.tag_backend,
    )
    print(render_table(
        f"invariant checks ({len(policies)} policies, coherence={args.coherence}"
        + (f", fuzz={args.fuzz}" if args.fuzz else "")
        + ")",
        ["check", "status", "detail"],
        report.as_rows(),
    ))
    if report.ok:
        print(f"\nall {len(report.entries)} check(s) passed")
        return 0
    print(f"\n{len(report.failures)} check(s) FAILED:", file=sys.stderr)
    for entry in report.failures:
        print(f"  {entry.name}: {entry.detail}", file=sys.stderr)
    for failure in report.fuzz_failures:
        print(f"\nreproduction for {failure.case.describe()}:", file=sys.stderr)
        print(failure.repro_snippet(), file=sys.stderr)
    return 1


# ----------------------------------------------------------------------
# bench: hot-path throughput across tag-store backends
# ----------------------------------------------------------------------
def _cmd_bench(args: argparse.Namespace) -> int:
    if args.action == "trend":
        return _cmd_bench_trend(args)
    from .bench import BENCH_POLICIES, append_entry, entry_rows, run_hotpath_bench
    from .kernel import numpy_available

    policies = tuple(args.policy) if args.policy else BENCH_POLICIES
    if args.backend:
        backends = tuple(args.backend)
    else:
        backends = ("object", "soa") if numpy_available() else ("object",)
    if not args.quiet:
        print(
            f"  benchmarking {len(policies)} policies x {len(backends)} "
            f"backends ({args.refs} refs/core, best of {args.reps})",
            file=sys.stderr,
        )
    entry = run_hotpath_bench(
        policies,
        backends,
        workload=args.workload,
        refs_per_core=args.refs,
        reps=args.reps,
        seed=args.seed,
    )
    if args.out != "-":
        append_entry(args.out, entry)
    if args.json:
        print(json.dumps(entry, indent=2, sort_keys=True))
    else:
        print(render_table(
            f"hotpath accesses/sec ({entry['workload']}, probe-free, "
            f"{entry['timestamp']})",
            ["policy", *backends, "soa/object"],
            entry_rows(entry),
        ))
        if args.out != "-":
            print(f"\nappended to {args.out}")
    return 0


def _cmd_bench_trend(args: argparse.Namespace) -> int:
    """``repro bench trend``: per-(policy, backend) trajectory over the
    bench history, latest vs best prior; ``--fail-on-regression PCT``
    exits 1 when any cell decayed beyond the tolerance (the CI guard)."""
    import pathlib

    from .bench import load_bench_file
    from .obs.trend import bench_trend, regressions, trend_rows

    path = pathlib.Path(args.out)
    if not path.exists():
        raise ReproError(
            f"no bench history at {path}; run `repro bench` first"
        )
    cells = bench_trend(load_bench_file(path))
    threshold = args.fail_on_regression
    if args.json:
        print(json.dumps(
            {
                "file": str(path),
                "threshold_pct": threshold,
                "cells": [c.as_dict() for c in cells],
                "regressions": [
                    {"policy": c.policy, "backend": c.backend,
                     "delta_pct": c.delta_pct}
                    for c in (regressions(cells, threshold) if threshold else ())
                ],
            },
            indent=2, sort_keys=True,
        ))
    else:
        print(render_table(
            f"bench trend over {path} ({len(cells)} cells, latest vs best prior)",
            ["policy", "backend", "entries", "latest", "best prior", "delta"],
            trend_rows(cells, threshold),
        ))
    if threshold is not None:
        bad = regressions(cells, threshold)
        if bad:
            print(
                f"\n{len(bad)} cell(s) regressed beyond {threshold:g}%:",
                file=sys.stderr,
            )
            for c in bad:
                print(
                    f"  {c.policy}/{c.backend}: {c.delta_pct:+.1f}% "
                    f"({c.latest:.0f} vs best {c.best_prior:.0f})",
                    file=sys.stderr,
                )
            return 1
    return 0


# ----------------------------------------------------------------------
# serve: the simulation service and its client commands
# ----------------------------------------------------------------------
def _job_spec_from(args: argparse.Namespace):
    """One (workload, policy) JobSpec from the standard system flags."""
    from .exec import JobSpec, WorkloadSpec
    from .workloads.mixes import TABLE3_MIXES
    from .workloads.parsec import PARSEC_BENCHMARKS

    system = _system_from(args)
    name = args.workload
    if name in TABLE3_MIXES:
        workload = WorkloadSpec.mix(name, seed=args.seed)
    elif name in PARSEC_BENCHMARKS:
        workload = WorkloadSpec.multithreaded(
            name, nthreads=system.hierarchy.ncores, seed=args.seed
        )
    else:
        workload = WorkloadSpec.duplicate(
            name, ncores=system.hierarchy.ncores, seed=args.seed
        )
    return JobSpec(
        system=system, workload=workload, policy=args.policy,
        refs_per_core=args.refs,
    )


def _serve_client(args: argparse.Namespace):
    from .serve import ServeClient

    return ServeClient(
        host=args.host, port=args.port,
        client_id=getattr(args, "client", None) or "cli",
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import ServeConfig, serve_forever

    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_limit=args.queue_limit,
        cache=get_active_cache(),
        job_workers=args.job_workers,
        heartbeat_interval=args.heartbeat if args.heartbeat > 0 else None,
    )
    return serve_forever(config)


def _print_job_status(status: dict, as_json: bool) -> None:
    if as_json:
        print(json.dumps(status, indent=2, sort_keys=True))
        return
    rows = [[k, status[k]] for k in
            ("id", "state", "client", "workload", "policy", "system",
             "source", "coalesced", "wall_s", "error")]
    print(render_table("job", ["field", "value"], rows))
    for line in status.get("progress", ()):
        print(f"  {line}")


def _cmd_submit(args: argparse.Namespace) -> int:
    spec = _job_spec_from(args)
    client = _serve_client(args)
    receipt = client.submit(spec)
    if not args.wait:
        _print_job_status(receipt, args.json)
        return 0
    status = receipt
    if receipt["state"] not in ("done", "failed"):
        status = client.wait(receipt["id"], timeout=args.timeout)
    result = client.result(status["id"])
    summary = result.summary()
    if args.json:
        print(json.dumps({**status, "summary": summary}, indent=2, sort_keys=True))
    else:
        _print_job_status(status, False)
        print()
        print(render_table(
            f"{args.workload} under {args.policy} (via repro serve)",
            ["metric", "value"],
            [[k, v] for k, v in summary.items()],
        ))
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    _print_job_status(_serve_client(args).status(args.job_id), args.json)
    return 0


def _cmd_result(args: argparse.Namespace) -> int:
    result = _serve_client(args).result(args.job_id)
    summary = result.summary()
    if args.json:
        print(json.dumps({"id": args.job_id, **summary}, indent=2, sort_keys=True))
    else:
        print(render_table(
            f"result {args.job_id[:12]}…",
            ["metric", "value"],
            [[k, v] for k, v in summary.items()],
        ))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    actions = {
        "record": _cmd_trace_record,
        "summarize": _cmd_trace_summarize,
        "diff": _cmd_trace_diff,
    }
    return actions[args.action](args)


# ----------------------------------------------------------------------
# suite: named benchmark sets through the exec pool
# ----------------------------------------------------------------------
def _corpus_from(args: argparse.Namespace, create: bool = False):
    """The corpus named by ``--corpus``/``--dir`` or $REPRO_CORPUS_DIR.

    A directory given explicitly is also exported to the environment so
    pool workers (fresh processes) resolve the same corpus.
    """
    import os

    from .workloads.corpus import ENV_CORPUS_DIR, TraceCorpus, active_corpus

    directory = getattr(args, "corpus", None) or getattr(args, "dir", None)
    if directory:
        corpus = TraceCorpus(directory, create=create)
        os.environ[ENV_CORPUS_DIR] = str(corpus.root)
        return corpus
    return active_corpus()


def _cmd_suite_list(args: argparse.Namespace) -> int:
    from .suite import sets

    rows = [
        [s.name, ",".join(s.aliases) or "-", len(s), s.kind, s.description]
        for s in sets()
    ]
    rows.append(["corpus", "-", "*", "trace",
                 "every trace in the active corpus (--corpus / $REPRO_CORPUS_DIR)"])
    print(render_table(
        "benchmark sets (repro suite run <set>)",
        ["name", "aliases", "members", "kind", "description"],
        rows,
    ))
    return 0


def _cmd_suite_run(args: argparse.Namespace) -> int:
    from .sim.sweeps import records_to_csv
    from .suite import result_text, run_suite, suite_records, write_result_file

    system = _system_from(args)
    corpus = _corpus_from(args)
    cache = get_active_cache()
    jobs = max(1, getattr(args, "jobs", 1))
    report = run_suite(
        args.set,
        system,
        policies=_policy_list(args.policies, hybrid=args.hybrid),
        refs_per_core=args.refs,
        seed=args.seed,
        max_workers=jobs,
        cache=cache,
        corpus=corpus,
        progress=lambda line: print(f"  {line}", file=sys.stderr),
        heartbeat_interval=args.heartbeat if args.heartbeat > 0 else None,
    )
    if args.json:
        print(json.dumps(
            {
                "set": report.set_name,
                "system": report.system,
                "policies": list(report.policies),
                "refs_per_core": report.refs_per_core,
                "baseline": report.baseline,
                "geomean": report.geomean_summary() if report.succeeded else {},
                "failures": {o.benchmark: o.error for o in report.failures},
                "cache_hits": report.cache_hits,
                "simulated": report.simulated,
            },
            indent=2, sort_keys=True,
        ))
    else:
        print(result_text(report), end="")
    if args.output:
        records_to_csv(suite_records(report), args.output)
        print(f"CSV written to {args.output}", file=sys.stderr)
    if args.result_file:
        path = write_result_file(report, args.result_file)
        print(f"result file written to {path}", file=sys.stderr)
    if cache is not None:
        print(f"run manifest written to {cache.root / 'manifest.json'}",
              file=sys.stderr)
    if not report.ok:
        print(f"\n{len(report.failures)} benchmark(s) failed", file=sys.stderr)
        return 1
    return 0


def _cmd_suite(args: argparse.Namespace) -> int:
    actions = {"list": _cmd_suite_list, "run": _cmd_suite_run}
    return actions[args.action](args)


# ----------------------------------------------------------------------
# corpus: the content-addressed trace store
# ----------------------------------------------------------------------
def _require_corpus(args: argparse.Namespace, create: bool = False):
    corpus = _corpus_from(args, create=create)
    if corpus is None:
        raise ReproError(
            "no trace corpus: pass --dir or set $REPRO_CORPUS_DIR"
        )
    return corpus


def _cmd_corpus_add(args: argparse.Namespace) -> int:
    corpus = _require_corpus(args, create=True)
    for path in args.paths:
        entry = corpus.add(path, name=args.name)
        print(f"{entry.digest[:12]}  {entry.name}  "
              f"{entry.length} refs  v{entry.version}")
    print(f"{len(corpus)} trace(s) in {corpus.root}", file=sys.stderr)
    return 0


def _cmd_corpus_list(args: argparse.Namespace) -> int:
    corpus = _require_corpus(args)
    entries = corpus.entries()
    if args.json:
        print(json.dumps([e.as_dict() for e in entries], indent=2, sort_keys=True))
        return 0
    rows = [
        [e.digest[:12], e.name, e.length, e.instr_per_ref, e.version,
         e.size_bytes, e.source or "-"]
        for e in entries
    ]
    print(render_table(
        f"trace corpus at {corpus.root} ({len(entries)} entries)",
        ["digest", "name", "refs", "instr/ref", "fmt", "bytes", "source"],
        rows,
    ))
    return 0


def _cmd_corpus_verify(args: argparse.Namespace) -> int:
    corpus = _require_corpus(args)
    problems = corpus.verify()
    if problems:
        print(f"{len(problems)} problem(s) in {corpus.root}:", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    print(f"all {len(corpus)} trace(s) in {corpus.root} verify clean")
    return 0


def _cmd_corpus_capture(args: argparse.Namespace) -> int:
    corpus = _require_corpus(args, create=True)
    system = _system_from(args)
    workload = make_workload(args.workload, system, seed=args.seed)
    for i, generator in enumerate(workload.generators):
        name = args.name or f"{args.workload}.core{i}"
        if len(workload.generators) > 1 and args.name:
            name = f"{args.name}.core{i}"
        entry = corpus.capture(generator, args.refs, name=name)
        print(f"{entry.digest[:12]}  {entry.name}  {entry.length} refs")
        if args.first_only:
            break
    return 0


def _cmd_corpus(args: argparse.Namespace) -> int:
    actions = {
        "add": _cmd_corpus_add,
        "list": _cmd_corpus_list,
        "verify": _cmd_corpus_verify,
        "capture": _cmd_corpus_capture,
    }
    return actions[args.action](args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LAP (ISCA 2016) reproduction — simulate inclusion "
        "policies on asymmetric LLCs",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for grid commands (default: 1 = serial)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="content-addressed result cache directory "
        "(default: $REPRO_CACHE_DIR when set, else no caching)",
    )
    parser.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="write the process metrics-registry snapshot to PATH (JSON) "
        "after the command finishes",
    )
    parser.add_argument(
        "--spans", default=None, metavar="PATH",
        help="enable span tracing for the command and dump the trace as "
        "JSONL to PATH afterwards ($REPRO_SPANS enables tracing without "
        "a dump path)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("list", help="list policies, workloads, technologies")
    p.set_defaults(fn=_cmd_list)

    p = sub.add_parser("run", help="simulate one workload under one policy")
    p.add_argument("workload")
    p.add_argument("policy")
    p.add_argument("--json", action="store_true", help="machine-readable output")
    _add_system_args(p)
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser("compare", help="compare policies on identical traces")
    p.add_argument("workload")
    p.add_argument("--policies", default="non-inclusive,exclusive,dswitch,lap",
                   help="comma-separated policy names; the token 'arena' "
                   "expands to the registry's arena-grid set")
    p.add_argument("--arena", action="store_true",
                   help="run the full cross-paper arena grid (every "
                   "registry policy marked arena=yes, non-inclusive "
                   "baseline first) with the Fig. 15 write-class split")
    _add_system_args(p)
    p.set_defaults(fn=_cmd_compare)

    p = sub.add_parser("characterize", help="measure loop/redundant-fill traits")
    p.add_argument("benchmarks", nargs="*", help="default: all 13 SPEC-like")
    _add_system_args(p)
    p.set_defaults(fn=_cmd_characterize)

    p = sub.add_parser("figure", help="regenerate one paper figure (e.g. fig14)")
    p.add_argument("name")
    p.add_argument("--refs", type=int, default=10_000)
    p.set_defaults(fn=_cmd_figure)

    p = sub.add_parser(
        "report",
        help="assemble the markdown experiment record, or (with --out / "
        "--cache-dir) the self-contained HTML fleet dashboard",
    )
    p.add_argument("--results-dir", default="benchmarks/results")
    p.add_argument("--output", default=None,
                   help="markdown mode: write to a file instead of stdout")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="HTML mode: dashboard output path (default when "
                   "--cache-dir is given: report.html)")
    # Repeatable, distinct dest from the global --cache-dir: the HTML
    # dashboard can merge several result-cache directories.
    p.add_argument("--cache-dir", action="append", dest="cache_dirs",
                   default=None, metavar="PATH",
                   help="HTML mode: result-cache directory to scan "
                   "(repeatable; default: the active cache)")
    p.add_argument("--bench", default="BENCH_hotpath.json", metavar="PATH",
                   help="bench history for the trend section "
                   "(default: BENCH_hotpath.json; missing file = no section)")
    p.add_argument("--ledger", default=None, metavar="PATH",
                   help="also write the normalized run ledger as JSON")
    p.add_argument("--no-check", action="store_true",
                   help="skip the invariant-check section")
    p.add_argument("--check-refs", type=int, default=500, metavar="N",
                   help="references per invariant-check run (default: 500)")
    p.add_argument("--regression-pct", type=float, default=10.0, metavar="PCT",
                   help="bench-trend highlight tolerance (default: 10)")
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser("validate-workloads",
                       help="re-measure every benchmark's declared traits")
    _add_system_args(p)
    p.set_defaults(fn=_cmd_validate_workloads)

    p = sub.add_parser("sweep", help="workloads x policies grid with CSV export")
    p.add_argument("--workloads", default="WL2,WH1",
                   help="comma-separated mixes/benchmarks (default: WL2,WH1)")
    p.add_argument("--policies", default="non-inclusive,exclusive,lap",
                   help="comma-separated policy names; the token 'arena' "
                   "expands to the registry's arena-grid set")
    p.add_argument("--output", default=None, help="CSV output path (default: stdout)")
    p.add_argument("--heartbeat", type=float, default=10.0, metavar="SECONDS",
                   help="progress-line interval for long sweeps "
                   "(default: 10; 0 disables)")
    _add_system_args(p)
    p.set_defaults(fn=_cmd_sweep)

    p = sub.add_parser("cache", help="inspect or clear the result cache")
    p.add_argument("action", choices=("stats", "clear"))
    p.add_argument("--json", action="store_true", help="machine-readable stats")
    # Convenience alias so `repro cache stats --cache-dir X` also works;
    # SUPPRESS keeps an omitted sub-level flag from clobbering the
    # global one.
    p.add_argument("--cache-dir", metavar="PATH", default=argparse.SUPPRESS)
    p.set_defaults(fn=_cmd_cache)

    p = sub.add_parser(
        "check",
        help="machine-check simulation invariants (optionally fuzzing)",
    )
    p.add_argument("--policy", action="append", default=None, metavar="NAME",
                   help="policy to check (repeatable; default: the "
                   "registry's check set — the paper's evaluated "
                   "policies plus the arena rivals; `repro list` "
                   "shows membership)")
    p.add_argument("--fuzz", type=int, default=0, metavar="N",
                   help="also run N randomized fuzz cases with shrinking "
                   "(default: 0 = deterministic stages only)")
    p.add_argument("--refs", type=int, default=2000,
                   help="references per deterministic check run (default: 2000)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--coherence", choices=("both", "on", "off"), default="both",
                   help="which coherence modes to exercise (default: both)")
    p.add_argument("--interval", type=int, default=64,
                   help="invariant re-check period in references (default: 64)")
    p.add_argument("--tag-backend", choices=("object", "soa"), default=None,
                   help="pin every stage's tag-store layout (default: the "
                   "REPRO_TAG_BACKEND env var, then object)")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-stage progress on stderr")
    p.set_defaults(fn=_cmd_check)

    p = sub.add_parser(
        "bench",
        help="measure hot-path throughput per tag-store backend and "
        "append the entry to BENCH_hotpath.json; `bench trend` analyses "
        "the accumulated history instead",
    )
    p.add_argument("action", nargs="?", choices=("run", "trend"), default="run",
                   help="run = measure and append (default); trend = "
                   "per-cell trajectory over the history, latest vs "
                   "best prior")
    p.add_argument("--fail-on-regression", type=float, default=None,
                   metavar="PCT",
                   help="trend only: exit 1 when any (policy, backend) "
                   "cell's latest rate sits more than PCT%% below its "
                   "best prior value")
    p.add_argument("--policy", action="append", default=None, metavar="NAME",
                   help="policy to bench (repeatable; default: the "
                   "kernel-eligible trio non-inclusive/exclusive/lap)")
    p.add_argument("--backend", action="append", default=None,
                   choices=("object", "soa"),
                   help="tag-store backend to bench (repeatable; default: "
                   "both when numpy is importable, object otherwise)")
    p.add_argument("--workload", default="WL1",
                   help="workload name (default: WL1)")
    p.add_argument("--refs", type=int, default=30_000,
                   help="references per core per rep (default: 30000)")
    p.add_argument("--reps", type=int, default=5,
                   help="reps per cell, best-of (default: 5)")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--out", default="BENCH_hotpath.json", metavar="PATH",
                   help="bench history file to append to "
                   "(default: BENCH_hotpath.json; '-' skips the write)")
    p.add_argument("--json", action="store_true", help="machine-readable entry")
    p.add_argument("--quiet", action="store_true",
                   help="suppress progress on stderr")
    p.set_defaults(fn=_cmd_bench)

    from .serve.protocol import DEFAULT_PORT

    def _add_endpoint_args(sp: argparse.ArgumentParser) -> None:
        sp.add_argument("--host", default="127.0.0.1")
        sp.add_argument("--port", type=int, default=DEFAULT_PORT)

    p = sub.add_parser("serve", help="run the simulation service "
                       "(HTTP/JSON over the exec engine)")
    _add_endpoint_args(p)
    p.add_argument("--workers", type=int, default=2, metavar="N",
                   help="concurrent simulations (default: 2)")
    p.add_argument("--queue-limit", type=int, default=256, metavar="N",
                   help="global queued-job bound before backpressure "
                   "(default: 256)")
    p.add_argument("--job-workers", type=int, default=1, metavar="N",
                   help="process-pool width per job (default: 1 = in-thread)")
    p.add_argument("--heartbeat", type=float, default=5.0, metavar="SECONDS",
                   help="per-job progress-line interval (default: 5; "
                   "0 disables)")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser("submit", help="submit one job spec to a running "
                       "`repro serve`")
    p.add_argument("workload")
    p.add_argument("policy")
    _add_endpoint_args(p)
    p.add_argument("--client", default="cli", metavar="NAME",
                   help="client identity for fair scheduling (default: cli)")
    p.add_argument("--wait", action="store_true",
                   help="poll until done and print the metric summary")
    p.add_argument("--timeout", type=float, default=600.0, metavar="SECONDS",
                   help="--wait deadline (default: 600)")
    p.add_argument("--json", action="store_true", help="machine-readable output")
    _add_system_args(p)
    p.set_defaults(fn=_cmd_submit)

    p = sub.add_parser("status", help="status of one submitted job")
    p.add_argument("job_id")
    _add_endpoint_args(p)
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(fn=_cmd_status)

    p = sub.add_parser("result", help="fetch a finished job's metric summary")
    p.add_argument("job_id")
    _add_endpoint_args(p)
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(fn=_cmd_result)

    p = sub.add_parser(
        "suite",
        help="list named benchmark sets or run one through the exec pool "
        "with a geomean summary",
    )
    suite_sub = p.add_subparsers(dest="action", required=True)

    sp = suite_sub.add_parser("list", help="enumerate the registered sets")
    sp.set_defaults(fn=_cmd_suite)

    sp = suite_sub.add_parser(
        "run",
        help="run every member of a set under every policy "
        "(per-benchmark failures don't kill the suite)",
    )
    sp.add_argument("set", help="set name (see `repro suite list`; "
                    "'corpus' runs every trace in the active corpus)")
    sp.add_argument("--policies", default="non-inclusive,exclusive,lap",
                    help="comma-separated policy names, baseline first; "
                    "the token 'arena' expands to the registry's "
                    "arena-grid set")
    sp.add_argument("--corpus", default=None, metavar="DIR",
                    help="trace corpus for trace sets "
                    "(default: $REPRO_CORPUS_DIR)")
    sp.add_argument("--output", default=None, metavar="PATH",
                    help="also write per-benchmark records as CSV")
    sp.add_argument("--result-file", default=None, metavar="DIR",
                    help="also write the suite_geomean.txt artefact "
                    "(the experiment record indexes it)")
    sp.add_argument("--json", action="store_true", help="machine-readable summary")
    sp.add_argument("--heartbeat", type=float, default=10.0, metavar="SECONDS",
                    help="progress-line interval (default: 10; 0 disables)")
    _add_system_args(sp)
    sp.set_defaults(fn=_cmd_suite)

    p = sub.add_parser(
        "corpus",
        help="manage the content-addressed trace corpus "
        "(add/list/verify/capture)",
    )
    corpus_sub = p.add_subparsers(dest="action", required=True)

    def _add_corpus_dir(sp: argparse.ArgumentParser) -> None:
        sp.add_argument("--dir", default=None, metavar="DIR",
                        help="corpus directory (default: $REPRO_CORPUS_DIR)")

    sp = corpus_sub.add_parser("add", help="verify and ingest trace archives")
    sp.add_argument("paths", nargs="+", help="trace .npz files to ingest")
    sp.add_argument("--name", default=None,
                    help="override the stored trace name")
    _add_corpus_dir(sp)
    sp.set_defaults(fn=_cmd_corpus)

    sp = corpus_sub.add_parser("list", help="enumerate corpus entries")
    sp.add_argument("--json", action="store_true", help="machine-readable output")
    _add_corpus_dir(sp)
    sp.set_defaults(fn=_cmd_corpus)

    sp = corpus_sub.add_parser(
        "verify",
        help="re-validate every entry (checksums, chunk lengths, "
        "manifest agreement); exit 1 on any fault",
    )
    _add_corpus_dir(sp)
    sp.set_defaults(fn=_cmd_corpus)

    sp = corpus_sub.add_parser(
        "capture",
        help="capture a synthetic workload's reference stream into the corpus",
    )
    sp.add_argument("workload", help="workload name (mix/benchmark/PARSEC)")
    sp.add_argument("--name", default=None,
                    help="stored trace name (default: workload.coreN)")
    sp.add_argument("--first-only", action="store_true",
                    help="capture only core 0's stream")
    _add_corpus_dir(sp)
    _add_system_args(sp)
    sp.set_defaults(fn=_cmd_corpus)

    p = sub.add_parser(
        "trace", help="record, summarize, or diff cache-event flight recordings"
    )
    trace_sub = p.add_subparsers(dest="action", required=True)

    tp = trace_sub.add_parser("record", help="run one simulation with the "
                              "flight recorder attached")
    tp.add_argument("workload")
    tp.add_argument("policy")
    tp.add_argument("--out", required=True, metavar="PATH",
                    help="trace output path (.gz compresses)")
    tp.add_argument("--events", default=None, metavar="SPEC",
                    help="comma-separated event/group filter "
                    "(e.g. 'llc' or 'llc_fill,dirty_victim'; default: all)")
    _add_system_args(tp)

    tp = trace_sub.add_parser("summarize", help="per-event-type counts of one trace")
    tp.add_argument("path")
    tp.add_argument("--json", action="store_true", help="machine-readable output")

    tp = trace_sub.add_parser("diff", help="first divergence and per-event-type "
                              "deltas between two traces")
    tp.add_argument("left")
    tp.add_argument("right")
    tp.add_argument("--json", action="store_true", help="machine-readable output")

    p.set_defaults(fn=_cmd_trace)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        from .obs.spans import (
            SpanRecorder,
            install_recorder,
            recorder_from_env,
            uninstall_recorder,
        )

        spans_path = getattr(args, "spans", None)
        if spans_path:
            recorder = SpanRecorder()
            install_recorder(recorder)
        else:
            recorder = recorder_from_env()
        cache = (
            ResultCache(args.cache_dir) if getattr(args, "cache_dir", None)
            else cache_from_env()
        )
        previous = set_active_cache(cache) if cache is not None else None
        try:
            return args.fn(args)
        finally:
            if cache is not None:
                set_active_cache(previous)
            if recorder is not None:
                if spans_path:
                    recorder.dump(spans_path)
                    print(f"span trace written to {spans_path} "
                          f"({len(recorder)} spans)", file=sys.stderr)
                uninstall_recorder()
            if getattr(args, "metrics", None):
                from .telemetry import get_registry

                import pathlib

                pathlib.Path(args.metrics).write_text(
                    get_registry().snapshot_json() + "\n"
                )
                print(f"metrics snapshot written to {args.metrics}", file=sys.stderr)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
