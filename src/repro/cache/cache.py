"""Set-associative cache model.

:class:`Cache` is the substrate every hierarchy level is built from. It
models the tag/data arrays of a banked, set-associative, write-back
cache and counts every energy-relevant event into a
:class:`~repro.cache.stats.CacheStats`. It holds *no* policy decisions
beyond victim selection — inclusion behaviour, coherence, and placement
are orchestrated by the hierarchy and policy layers, which drive the
primitive operations exposed here.

Hybrid LLCs (Section IV / Table II) are modelled by partitioning the
ways of every set between an ``"sram"`` region and an ``"stt"`` region;
homogeneous caches place all ways in a single region named after their
technology.
"""

from __future__ import annotations

from typing import Callable, List, NamedTuple, Optional

from ..errors import ConfigurationError
from ..kernel import make_tag_store
from ..utils import ilog2, require_pow2
from .block import CacheBlock
from .replacement import LRUPolicy, ReplacementPolicy
from .set import CacheSet
from .stats import CacheStats


class EvictedLine(NamedTuple):
    """Snapshot of a victim block at the moment of its eviction.

    ``addr`` is the block-aligned byte address reconstructed from the
    victim's tag and set index, so cascaded eviction flows (L2 victim →
    LLC insertion → LLC victim → memory) can re-index the line at the
    next level. ``reused`` records whether the line was touched after
    insertion — dead-write predictors train on it.
    """

    addr: int
    dirty: bool
    loop_bit: bool
    tech: str
    state: str
    reused: bool = False


class Cache:
    """A banked, set-associative, write-back cache tag/data model.

    Parameters
    ----------
    name:
        Label used in stats reporting (``"L1"``, ``"L2-0"``, ``"L3"``).
    size_bytes / assoc / block_size:
        Standard power-of-two geometry.
    replacement:
        Default :class:`ReplacementPolicy`; individual operations may
        override it per call (set-dueling relies on this).
    tech:
        ``"sram"`` or ``"stt"`` for homogeneous caches.
    sram_ways:
        When given, builds a hybrid cache: ways ``[0, sram_ways)`` are
        SRAM, the rest STT-RAM (``tech`` is then ignored for ways).
    banks:
        Number of independently busy banks (address-interleaved at
        block granularity); used by the timing model.
    backend:
        Tag-store layout (see :mod:`repro.kernel`): ``"object"`` keeps
        one Python block object per way, ``"soa"`` keeps numpy
        struct-of-arrays matrices behind protocol-identical views.
        ``None`` consults ``REPRO_TAG_BACKEND`` and defaults to
        ``"object"``. The choice never changes semantics or stats —
        only the memory layout and which execution engines can run.
    """

    def __init__(
        self,
        name: str,
        size_bytes: int,
        assoc: int,
        block_size: int = 64,
        replacement: Optional[ReplacementPolicy] = None,
        tech: str = "sram",
        sram_ways: Optional[int] = None,
        banks: int = 1,
        backend: Optional[str] = None,
    ) -> None:
        require_pow2(size_bytes, f"{name} size_bytes")
        require_pow2(block_size, f"{name} block_size")
        require_pow2(banks, f"{name} banks")
        if assoc <= 0:
            raise ConfigurationError(f"{name} associativity must be positive, got {assoc}")
        if tech not in ("sram", "stt"):
            raise ConfigurationError(f"{name} tech must be 'sram' or 'stt', got {tech!r}")
        num_sets = size_bytes // (assoc * block_size)
        if num_sets <= 0 or size_bytes != num_sets * assoc * block_size:
            raise ConfigurationError(
                f"{name}: size {size_bytes} not divisible into {assoc}-way sets of "
                f"{block_size}B blocks"
            )
        require_pow2(num_sets, f"{name} derived set count")

        if sram_ways is not None:
            if not 0 < sram_ways < assoc:
                raise ConfigurationError(
                    f"{name}: hybrid sram_ways must be in (0, assoc); got {sram_ways} of {assoc}"
                )
            way_techs = ["sram"] * sram_ways + ["stt"] * (assoc - sram_ways)
            self.hybrid = True
        else:
            way_techs = [tech] * assoc
            self.hybrid = False

        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.block_size = block_size
        self.num_sets = num_sets
        self.banks = banks
        self.tech = tech
        self.sram_ways = sram_ways if sram_ways is not None else (assoc if tech == "sram" else 0)
        self.replacement = replacement if replacement is not None else LRUPolicy()
        self._offset_bits = ilog2(block_size)
        self._index_bits = ilog2(num_sets)
        self._index_mask = num_sets - 1
        self._bank_mask = banks - 1
        # Tag extraction is ``addr >> _tag_shift``; precomputed so the
        # hot path slices each address exactly once per operation.
        self._tag_shift = self._offset_bits + self._index_bits
        # The tag-array state lives in a swappable TagStore backend;
        # ``self.sets`` aliases the store's protocol-identical set
        # objects so every operation below is backend-agnostic.
        self.store = make_tag_store(backend, num_sets, assoc, way_techs)
        self.backend = self.store.kind
        self.sets: List[CacheSet] = self.store.sets
        self.stats = CacheStats()
        self._tick = 0
        #: Optional per-set replacement resolver consulted on hit-path
        #: touches. Inclusion policies set this (see
        #: :meth:`repro.inclusion.base.InclusionPolicy.bind`) so that
        #: set-dueled replacement schemes receive their hit promotions:
        #: given a set index, it returns the :class:`ReplacementPolicy`
        #: whose ``on_hit`` should run for that set, or ``None`` to fall
        #: back to the cache's default ``replacement``. The contract is
        #: per-access — leader sets may answer differently from follower
        #: sets, and the winning answer may change between accesses as
        #: the duel progresses.
        self.touch_policy: Optional[Callable[[int], Optional[ReplacementPolicy]]] = None

    # ------------------------------------------------------------------
    # address slicing
    # ------------------------------------------------------------------
    def block_addr(self, addr: int) -> int:
        """Block-align a byte address."""
        return addr >> self._offset_bits << self._offset_bits

    def set_index(self, addr: int) -> int:
        """Set index of a byte address."""
        return (addr >> self._offset_bits) & self._index_mask

    def tag_of(self, addr: int) -> int:
        """Tag of a byte address."""
        return addr >> (self._offset_bits + self._index_bits)

    def bank_of(self, addr: int) -> int:
        """Bank servicing a byte address (block-interleaved)."""
        return (addr >> self._offset_bits) & self._bank_mask

    def addr_of(self, set_index: int, tag: int) -> int:
        """Reconstruct the block address of a (set, tag) pair."""
        return ((tag << self._index_bits) | set_index) << self._offset_bits

    def _now(self) -> int:
        self._tick += 1
        return self._tick

    # ------------------------------------------------------------------
    # primitive operations
    # ------------------------------------------------------------------
    def probe(self, addr: int) -> Optional[CacheBlock]:
        """Tag-only presence check (no data access, no hit/miss counts).

        Used for LAP's "is there a duplicate copy in the LLC?" check on
        clean L2 evictions — a pre-existing data path in exclusive
        caches, hence costed as a tag probe only.
        """
        self.stats.tag_probes += 1
        return self.sets[(addr >> self._offset_bits) & self._index_mask].tag_map.get(
            addr >> self._tag_shift
        )

    def peek(self, addr: int) -> Optional[CacheBlock]:
        """Stat-free lookup for tests, assertions and sampling."""
        return self.sets[(addr >> self._offset_bits) & self._index_mask].tag_map.get(
            addr >> self._tag_shift
        )

    def lookup(self, addr: int, is_write: bool = False) -> Optional[CacheBlock]:
        """Full lookup: tag probe plus data access on hit.

        On a hit, the data array is read (or written, for a store hit),
        recency metadata is updated via the default replacement policy,
        and a store hit sets the dirty bit. Returns the block on hit,
        None on miss.
        """
        stats = self.stats
        stats.lookups += 1
        stats.tag_probes += 1
        set_index = (addr >> self._offset_bits) & self._index_mask
        block = self.sets[set_index].tag_map.get(addr >> self._tag_shift)
        if block is None:
            stats.misses += 1
            return None
        stats.hits += 1
        if is_write:
            if block.tech == "sram":
                stats.data_writes_sram += 1
            else:
                stats.data_writes_stt += 1
            block.dirty = True
        elif block.tech == "sram":
            stats.data_reads_sram += 1
        else:
            stats.data_reads_stt += 1
        tp = self.touch_policy
        toucher = tp(set_index) if tp is not None else None
        self._tick = now = self._tick + 1
        (toucher or self.replacement).on_hit(block, now)
        return block

    def insert(
        self,
        addr: int,
        dirty: bool = False,
        loop_bit: bool = False,
        region: Optional[str] = None,
        policy: Optional[ReplacementPolicy] = None,
    ) -> Optional[EvictedLine]:
        """Install a line, evicting a victim if the (region of the) set is full.

        Returns an :class:`EvictedLine` snapshot of the displaced valid
        block, or None when an invalid way was used. The data-array
        write is counted against the region the line lands in.
        """
        set_index = (addr >> self._offset_bits) & self._index_mask
        cache_set = self.sets[set_index]
        if region is None:
            candidates = cache_set.blocks
        else:
            candidates = cache_set.region_blocks(region)
            if not candidates:
                raise ConfigurationError(
                    f"{self.name}: no ways in region {region!r} (hybrid misconfiguration)"
                )
        chooser = policy if policy is not None else self.replacement
        self._tick = now = self._tick + 1
        victim = chooser.victim(candidates, now)
        stats = self.stats
        if victim.valid:
            stats.evictions += 1
            if victim.dirty:
                stats.dirty_evictions += 1
            evicted = EvictedLine(
                ((victim.tag << self._index_bits) | set_index) << self._offset_bits,
                victim.dirty,
                victim.loop_bit,
                victim.tech,
                victim.state,
                victim.last_access > victim.insert_seq,
            )
        else:
            evicted = None
        cache_set.install(victim, addr >> self._tag_shift, dirty, loop_bit, now)
        chooser.on_insert(victim, now)
        stats.insertions += 1
        stats.tag_probes += 1
        if victim.tech == "sram":
            stats.data_writes_sram += 1
        else:
            stats.data_writes_stt += 1
        return evicted

    def fill(self, addr: int, dirty: bool = False) -> None:
        """Install a line whose victim nobody inspects (upper-level fills).

        Identical event accounting to :meth:`insert` with the default
        replacement policy and no region constraint, but never
        constructs an :class:`EvictedLine` — the L1 fill path discards
        victims (their dirtiness already lives in the L2 copy), so the
        snapshot allocation would be pure overhead.
        """
        set_index = (addr >> self._offset_bits) & self._index_mask
        cache_set = self.sets[set_index]
        self._tick = now = self._tick + 1
        chooser = self.replacement
        victim = chooser.victim(cache_set.blocks, now)
        stats = self.stats
        if victim.valid:
            stats.evictions += 1
            if victim.dirty:
                stats.dirty_evictions += 1
        cache_set.install(victim, addr >> self._tag_shift, dirty, False, now)
        chooser.on_insert(victim, now)
        stats.insertions += 1
        stats.tag_probes += 1
        if victim.tech == "sram":
            stats.data_writes_sram += 1
        else:
            stats.data_writes_stt += 1

    def update(self, block: CacheBlock, dirty: bool = False) -> None:
        """In-place data write to an existing block (e.g. dirty victim
        merging into an LLC copy)."""
        block.dirty = block.dirty or dirty
        block.last_access = self._now()
        self.stats.tag_probes += 1
        self._count_data_write(block.tech)

    def invalidate(self, addr: int) -> Optional[EvictedLine]:
        """Invalidate the line holding ``addr``, if present.

        Returns the dropped line's snapshot (so back-invalidation can
        propagate dirty data) or None. Counts a tag probe; dropping a
        line does not touch the data array.
        """
        cache_set = self.sets[(addr >> self._offset_bits) & self._index_mask]
        self.stats.tag_probes += 1
        block = cache_set.tag_map.get(addr >> self._tag_shift)
        if block is None:
            return None
        snapshot = EvictedLine(
            self.addr_of(cache_set.index, block.tag),
            block.dirty,
            block.loop_bit,
            block.tech,
            block.state,
            block.last_access > block.insert_seq,
        )
        cache_set.drop(block)
        self.stats.invalidations += 1
        return snapshot

    def discard(self, addr: int) -> bool:
        """Invalidate the line holding ``addr`` without snapshotting it.

        Event accounting is identical to :meth:`invalidate`; use this on
        paths that throw the snapshot away (L1 kills on L2 victims,
        exclusive-hit invalidations) so no :class:`EvictedLine` is
        allocated. Returns whether a line was dropped.
        """
        cache_set = self.sets[(addr >> self._offset_bits) & self._index_mask]
        self.stats.tag_probes += 1
        block = cache_set.tag_map.get(addr >> self._tag_shift)
        if block is None:
            return False
        cache_set.drop(block)
        self.stats.invalidations += 1
        return True

    def evict_block(self, cache_set: CacheSet, block: CacheBlock) -> Optional[EvictedLine]:
        """Explicitly evict ``block`` from ``cache_set`` (policy layers use
        this when they choose victims themselves, e.g. Lhybrid migration)."""
        evicted = self._capture_eviction(cache_set, block)
        if block.valid:
            cache_set.drop(block)
        return evicted

    def read_block(self, block: CacheBlock) -> None:
        """Count a data-array read of ``block`` (migration source reads)."""
        self._count_data_read(block.tech)

    def migrate_block(self, cache_set: CacheSet, src: CacheBlock, dst: CacheBlock) -> None:
        """Move a line between ways of one set (hybrid SRAM↔STT migration).

        Copies ``src``'s identity and metadata into ``dst`` (a free or
        just-vacated way, typically in the other technology region) and
        invalidates ``src``. Counts a data read of the source region and
        a data write of the destination region plus one migration.
        """
        if not src.valid:
            raise ConfigurationError(f"{self.name}: cannot migrate an invalid block")
        if dst.valid:
            raise ConfigurationError(f"{self.name}: migration destination must be free")
        tag, dirty, loop_bit = src.tag, src.dirty, src.loop_bit
        self._count_data_read(src.tech)
        cache_set.drop(src)
        cache_set.install(dst, tag, dirty=dirty, loop_bit=loop_bit, now=self._now())
        self._count_data_write(dst.tech)
        self.stats.migrations += 1

    # ------------------------------------------------------------------
    # occupancy / sampling helpers
    # ------------------------------------------------------------------
    def occupancy(self) -> int:
        """Total valid lines across all sets."""
        return self.store.occupancy()

    def loop_block_occupancy(self) -> tuple[int, int]:
        """(valid lines, valid lines with loop_bit set) — Fig. 16 metric.

        Delegates to the tag store: the object backend reads the per-set
        incremental counters (O(num_sets)), the SoA backend reduces its
        valid/loop matrices in two vector ops; see
        :meth:`~repro.cache.block.CacheBlock.set_loop_bit` for the
        write-side discipline that keeps the counters exact.
        """
        return self.store.loop_block_occupancy()

    def resident_addrs(self) -> list[int]:
        """Block addresses of every valid line (test/diagnostic helper)."""
        out = []
        for s in self.sets:
            for tag in s.tag_map:
                out.append(self.addr_of(s.index, tag))
        return out

    def reset_stats(self) -> None:
        """Zero the stats counters without touching cache contents."""
        self.stats.reset()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _capture_eviction(self, cache_set: CacheSet, victim: CacheBlock) -> Optional[EvictedLine]:
        if not victim.valid:
            return None
        self.stats.evictions += 1
        if victim.dirty:
            self.stats.dirty_evictions += 1
        return EvictedLine(
            addr=self.addr_of(cache_set.index, victim.tag),
            dirty=victim.dirty,
            loop_bit=victim.loop_bit,
            tech=victim.tech,
            state=victim.state,
            reused=victim.last_access > victim.insert_seq,
        )

    def _count_data_read(self, tech: str) -> None:
        if tech == "sram":
            self.stats.data_reads_sram += 1
        else:
            self.stats.data_reads_stt += 1

    def _count_data_write(self, tech: str) -> None:
        if tech == "sram":
            self.stats.data_writes_sram += 1
        else:
            self.stats.data_writes_stt += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "hybrid" if self.hybrid else self.tech
        return (
            f"Cache({self.name}, {self.size_bytes}B, {self.assoc}-way, "
            f"{self.num_sets} sets, {kind})"
        )
