"""Loop-block-aware victim selection (paper Section III-B).

The loop-block-aware policy layers a priority scheme over any baseline
recency order:

1. an invalid block, if one exists;
2. the baseline-victim among *non-loop-blocks* (``loop_bit == 0``);
3. the baseline-victim among loop-blocks, only when the whole set is
   loop-blocks.

The paper instantiates this over LRU ("loop-block-aware LRU"); we keep
the baseline pluggable so it can also wrap SRRIP, matching the paper's
remark that the principle "can be easily applied to any baseline
policy".
"""

from __future__ import annotations

from typing import Sequence

from ..block import CacheBlock
from .base import ReplacementPolicy
from .lru import LRUPolicy


class LoopAwarePolicy(ReplacementPolicy):
    """Prefer evicting non-loop-blocks, falling back to the baseline."""

    name = "loop-aware"

    def __init__(self, baseline: ReplacementPolicy | None = None) -> None:
        self.baseline = baseline if baseline is not None else LRUPolicy()
        self.name = f"loop-aware({self.baseline.name})"

    def on_insert(self, block: CacheBlock, now: int) -> None:
        self.baseline.on_insert(block, now)

    def on_hit(self, block: CacheBlock, now: int) -> None:
        self.baseline.on_hit(block, now)

    def victim(self, blocks: Sequence[CacheBlock], now: int) -> CacheBlock:
        # One pass gathers the non-loop candidates and short-circuits on
        # the first invalid way (same preference order as two passes).
        non_loop = []
        for block in blocks:
            if not block.valid:
                return block
            if not block.loop_bit:
                non_loop.append(block)
        if non_loop:
            return self.baseline.victim(non_loop, now)
        return self.baseline.victim(blocks, now)
