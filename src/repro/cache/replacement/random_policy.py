"""Seeded pseudo-random replacement.

Used as a cheap baseline in substrate tests and as a tie-breaking
fallback; all randomness flows through an explicit :class:`random.Random`
instance so simulations stay reproducible.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..block import CacheBlock
from .base import ReplacementPolicy


class RandomPolicy(ReplacementPolicy):
    """Evict a uniformly random valid block (invalid ways first)."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def victim(self, blocks: Sequence[CacheBlock], now: int) -> CacheBlock:
        invalid = self.first_invalid(blocks)
        if invalid is not None:
            return invalid
        return blocks[self._rng.randrange(len(blocks))]
