"""Replacement-policy interface.

A replacement policy is stateless with respect to the cache: all
recency/re-reference metadata lives on the blocks themselves
(``last_access``, ``rrpv``), so one policy object can serve every set of
a cache — and, importantly for set-dueling, different sets of the same
cache can consult *different* policy objects on a per-access basis.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..block import CacheBlock


class ReplacementPolicy:
    """Abstract victim-selection and touch-notification interface."""

    name = "base"

    def on_insert(self, block: CacheBlock, now: int) -> None:
        """Update per-block metadata when ``block`` is filled."""
        block.last_access = now

    def on_hit(self, block: CacheBlock, now: int) -> None:
        """Update per-block metadata when ``block`` is hit."""
        block.last_access = now

    def victim(self, blocks: Sequence[CacheBlock], now: int) -> CacheBlock:
        """Choose a victim among ``blocks`` (all ways of one set/region).

        Implementations must prefer invalid blocks; callers rely on
        this so they never overwrite live data while free ways exist.
        """
        raise NotImplementedError

    @staticmethod
    def first_invalid(blocks: Iterable[CacheBlock]) -> Optional[CacheBlock]:
        """Return the first invalid block, or None when the set is full."""
        for block in blocks:
            if not block.valid:
                return block
        return None
