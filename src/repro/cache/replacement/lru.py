"""Least-recently-used replacement.

Recency is tracked with a monotonically increasing access counter
(``block.last_access``) supplied by the owning cache, avoiding any
per-set ordering structures.
"""

from __future__ import annotations

from typing import Sequence

from ..block import CacheBlock
from .base import ReplacementPolicy


class LRUPolicy(ReplacementPolicy):
    """Classic LRU: evict the valid block touched longest ago."""

    name = "lru"

    def victim(self, blocks: Sequence[CacheBlock], now: int) -> CacheBlock:
        # Single pass: the first invalid way wins immediately, otherwise
        # the least-recently-used valid way (first-win on ties).
        victim = blocks[0]
        if not victim.valid:
            return victim
        oldest = victim.last_access
        for block in blocks:
            if not block.valid:
                return block
            if block.last_access < oldest:
                victim = block
                oldest = block.last_access
        return victim


class MRUPolicy(ReplacementPolicy):
    """Most-recently-used selection.

    Not a sensible general replacement policy, but Lhybrid's placement
    stage needs "pick the MRU loop-block in SRAM to migrate" (Fig. 11b),
    and exposing it as a policy keeps that code uniform.
    """

    name = "mru"

    def victim(self, blocks: Sequence[CacheBlock], now: int) -> CacheBlock:
        victim = blocks[0]
        if not victim.valid:
            return victim
        newest = victim.last_access
        for block in blocks:
            if not block.valid:
                return block
            if block.last_access > newest:
                victim = block
                newest = block.last_access
        return victim
