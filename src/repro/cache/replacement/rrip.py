"""Static re-reference interval prediction (SRRIP) replacement.

Implements SRRIP-HP (hit priority) from Jaleel et al., ISCA 2010 — the
paper's Section IV notes that the Lhybrid placement principle composes
with RRIP, so the substrate provides it as an alternative baseline
replacement policy and tests exercise LAP on top of it.
"""

from __future__ import annotations

from typing import Sequence

from ..block import CacheBlock
from .base import ReplacementPolicy


class SRRIPPolicy(ReplacementPolicy):
    """SRRIP with ``m``-bit re-reference prediction values (RRPV).

    New blocks are inserted with a *long* re-reference prediction
    (``max_rrpv - 1``); hits promote to 0; victims are blocks with the
    *distant* prediction (``max_rrpv``), aging the whole set until one
    appears.
    """

    name = "srrip"

    def __init__(self, bits: int = 2) -> None:
        if bits < 1:
            raise ValueError(f"SRRIP needs at least 1 RRPV bit, got {bits}")
        self.max_rrpv = (1 << bits) - 1

    def on_insert(self, block: CacheBlock, now: int) -> None:
        block.last_access = now
        block.rrpv = self.max_rrpv - 1

    def on_hit(self, block: CacheBlock, now: int) -> None:
        block.last_access = now
        block.rrpv = 0

    def victim(self, blocks: Sequence[CacheBlock], now: int) -> CacheBlock:
        invalid = self.first_invalid(blocks)
        if invalid is not None:
            return invalid
        while True:
            for block in blocks:
                if block.rrpv >= self.max_rrpv:
                    return block
            for block in blocks:
                block.rrpv += 1
