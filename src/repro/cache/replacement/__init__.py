"""Replacement policies for the cache substrate.

Exports:

- :class:`ReplacementPolicy` — the abstract interface;
- :class:`LRUPolicy` / :class:`MRUPolicy` — recency-based selection;
- :class:`RandomPolicy` — seeded random baseline;
- :class:`SRRIPPolicy` — static RRIP (Jaleel et al.);
- :class:`LoopAwarePolicy` — the paper's loop-block-aware selection
  layered over a pluggable baseline.
"""

from .base import ReplacementPolicy
from .loop_aware import LoopAwarePolicy
from .lru import LRUPolicy, MRUPolicy
from .random_policy import RandomPolicy
from .rrip import SRRIPPolicy

__all__ = [
    "ReplacementPolicy",
    "LRUPolicy",
    "MRUPolicy",
    "RandomPolicy",
    "SRRIPPolicy",
    "LoopAwarePolicy",
]
