"""Cache block (line) bookkeeping.

A :class:`CacheBlock` is a tag-array entry. The simulator is
trace-driven, so blocks carry metadata only — no payload bytes. The
fields mirror the hardware state the paper manipulates:

``dirty``
    write-back dirty bit.
``loop_bit``
    the single extra bit per block that LAP adds in both L2 and L3
    (Section III-C of the paper) to mark blocks predicted to make
    clean trips between L2 and the LLC.
``state``
    MOESI coherence state for private-cache blocks; LLC blocks keep the
    default ``"-"`` (the LLC is not a coherence point in the snooping
    protocol we model).
``tech``
    which technology region of a hybrid LLC the block resides in
    (``"sram"`` or ``"stt"``); homogeneous caches use a single region.
"""

from __future__ import annotations

# MOESI coherence states used by private caches. The LLC does not track
# coherence state in the modelled snooping protocol.
STATE_INVALID = "I"
STATE_SHARED = "S"
STATE_EXCLUSIVE = "E"
STATE_OWNED = "O"
STATE_MODIFIED = "M"
STATE_NONE = "-"

VALID_STATES = frozenset(
    {STATE_INVALID, STATE_SHARED, STATE_EXCLUSIVE, STATE_OWNED, STATE_MODIFIED, STATE_NONE}
)


class CacheBlock:
    """One way of one cache set.

    Blocks are pre-allocated when a :class:`~repro.cache.cache.Cache` is
    built and recycled in place on insertion/invalidation, which keeps
    the simulator allocation-free on the hot path.
    """

    __slots__ = (
        "tag",
        "valid",
        "dirty",
        "loop_bit",
        "last_access",
        "insert_seq",
        "rrpv",
        "state",
        "tech",
        "way",
        "cset",
    )

    def __init__(self, way: int, tech: str = "sram") -> None:
        self.way = way
        self.tech = tech
        self.tag = -1
        self.valid = False
        self.dirty = False
        self.loop_bit = False
        self.last_access = 0
        self.insert_seq = 0
        self.rrpv = 0
        self.state = STATE_NONE
        # Owning CacheSet; assigned once at set construction (blocks
        # never move between sets) so loop-bit writes can maintain the
        # set's incremental loop-block counter.
        self.cset = None

    def reset(self) -> None:
        """Invalidate the block, clearing all metadata except geometry."""
        self.tag = -1
        self.valid = False
        self.dirty = False
        self.loop_bit = False
        self.last_access = 0
        self.insert_seq = 0
        self.rrpv = 0
        self.state = STATE_NONE

    def fill(self, tag: int, dirty: bool, loop_bit: bool, now: int) -> None:
        """Install a new line in this way."""
        self.tag = tag
        self.valid = True
        self.dirty = dirty
        self.loop_bit = loop_bit
        self.last_access = now
        self.insert_seq = now
        self.rrpv = 0
        self.state = STATE_NONE

    def set_loop_bit(self, value: bool) -> None:
        """Write the loop-bit, keeping the owning set's loop counter exact.

        Every loop-bit write outside :meth:`fill`/:meth:`reset` (which
        the set's install/drop paths account for) must go through here —
        the LLC's Fig. 16 occupancy metric reads the incrementally
        maintained per-set counters instead of scanning every way.
        """
        if self.valid and value != self.loop_bit:
            self.cset.loop_count += 1 if value else -1
        self.loop_bit = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join(
            c
            for c, on in (
                ("V", self.valid),
                ("D", self.dirty),
                ("L", self.loop_bit),
            )
            if on
        )
        return (
            f"CacheBlock(way={self.way}, tag={self.tag:#x}, flags={flags or '-'}, "
            f"state={self.state}, tech={self.tech})"
        )
