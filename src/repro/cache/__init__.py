"""Cache substrate: blocks, sets, set-associative caches, replacement.

This subpackage is policy-free plumbing: it models tag/data arrays and
counts events. Inclusion properties live in :mod:`repro.inclusion` and
the paper's contribution in :mod:`repro.core`.
"""

from .block import (
    STATE_EXCLUSIVE,
    STATE_INVALID,
    STATE_MODIFIED,
    STATE_NONE,
    STATE_OWNED,
    STATE_SHARED,
    CacheBlock,
)
from .cache import Cache, EvictedLine
from .replacement import (
    LoopAwarePolicy,
    LRUPolicy,
    MRUPolicy,
    RandomPolicy,
    ReplacementPolicy,
    SRRIPPolicy,
)
from .set import CacheSet
from .stats import CacheStats, CoherenceStats, DuelingStats, LoopBlockStats

__all__ = [
    "CacheBlock",
    "Cache",
    "CacheSet",
    "EvictedLine",
    "CacheStats",
    "CoherenceStats",
    "DuelingStats",
    "LoopBlockStats",
    "ReplacementPolicy",
    "LRUPolicy",
    "MRUPolicy",
    "RandomPolicy",
    "SRRIPPolicy",
    "LoopAwarePolicy",
    "STATE_INVALID",
    "STATE_SHARED",
    "STATE_EXCLUSIVE",
    "STATE_OWNED",
    "STATE_MODIFIED",
    "STATE_NONE",
]
