"""Event counters for caches and the LLC write-class breakdown.

The paper's evaluation is entirely event-count driven: energy comes
from counting reads/writes per technology region, and every figure
(write breakdown, MPKI, loop-block occupancy, redundant fills) is a
projection of these counters. We therefore keep one explicit, documented
counter object per cache rather than scattering ad-hoc integers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class CacheStats:
    """Structural and energy-relevant event counts for one cache.

    Attributes are grouped as:

    - generic structural counters (any level):
      ``lookups``, ``hits``, ``misses``, ``insertions``, ``evictions``,
      ``dirty_evictions``, ``invalidations``, ``writebacks_received``.
    - energy accounting accesses split by technology region of a hybrid
      LLC (homogeneous caches use only the ``sram`` or ``stt`` pair that
      matches their technology): ``data_reads_*``, ``data_writes_*``,
      and ``tag_probes`` (tag-array accesses, counted once per lookup
      and per update).
    - LLC write-class breakdown (Fig. 15): ``fill_writes`` (data fills
      from memory on LLC misses, non-inclusive only), ``clean_victim_writes``
      and ``dirty_victim_writes`` (insertions of L2 victims),
      ``update_writes`` (in-place updates of an existing LLC copy by a
      dirty victim).
    - redundant-write instrumentation: ``redundant_fills`` counts
      non-inclusive data fills later proven useless (Fig. 6 / Fig. 17),
      ``hit_invalidations`` counts exclusive-style invalidate-on-hit.
    - hybrid-placement extras: ``migrations`` (SRAM→STT moves made by
      Lhybrid).
    """

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    invalidations: int = 0
    writebacks_received: int = 0

    tag_probes: int = 0
    data_reads_sram: int = 0
    data_writes_sram: int = 0
    data_reads_stt: int = 0
    data_writes_stt: int = 0

    fill_writes: int = 0
    clean_victim_writes: int = 0
    dirty_victim_writes: int = 0
    update_writes: int = 0

    redundant_fills: int = 0
    hit_invalidations: int = 0
    migrations: int = 0

    @property
    def data_reads(self) -> int:
        """Total data-array reads across both technology regions."""
        return self.data_reads_sram + self.data_reads_stt

    @property
    def data_writes(self) -> int:
        """Total data-array writes across both technology regions."""
        return self.data_writes_sram + self.data_writes_stt

    @property
    def llc_writes(self) -> int:
        """Total writes to the LLC in the paper's Fig. 15 sense."""
        return (
            self.fill_writes
            + self.clean_victim_writes
            + self.dirty_victim_writes
            + self.update_writes
        )

    @property
    def miss_rate(self) -> float:
        """Fraction of lookups that missed (0.0 when never looked up)."""
        return self.misses / self.lookups if self.lookups else 0.0

    def reset(self) -> None:
        """Zero every counter in place."""
        for f in fields(self):
            setattr(self, f.name, 0)

    def snapshot(self) -> dict:
        """Return a plain-dict copy of all counters (for reporting)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def add(self, other: "CacheStats") -> None:
        """Accumulate another stats object into this one."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))


@dataclass
class DuelingStats:
    """Bookkeeping for a set-dueling controller (Section III-B).

    ``leader_a`` / ``leader_b`` miss counters accumulate within the
    current decision interval; ``decisions_a`` / ``decisions_b`` count
    how many intervals each leader won (used in tests and the Fig. 19
    analysis of how often LAP follows each replacement policy).
    """

    leader_a_misses: int = 0
    leader_b_misses: int = 0
    decisions_a: int = 0
    decisions_b: int = 0
    intervals: int = 0

    def reset_interval(self) -> None:
        """Clear per-interval miss counters after a decision."""
        self.leader_a_misses = 0
        self.leader_b_misses = 0


@dataclass
class CoherenceStats:
    """Bus-level coherence traffic counts (Fig. 20c).

    ``snoop_broadcasts`` counts bus transactions that probe peer caches
    (LLC misses and write-upgrades); ``cache_to_cache`` counts transfers
    supplied by a peer; ``invalidation_messages`` counts per-peer
    invalidations delivered.
    """

    snoop_broadcasts: int = 0
    cache_to_cache: int = 0
    invalidation_messages: int = 0
    upgrades: int = 0

    @property
    def total_traffic(self) -> int:
        """Aggregate snoop traffic metric used for Fig. 20c."""
        return self.snoop_broadcasts + self.invalidation_messages

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)


@dataclass
class LoopBlockStats:
    """Loop-block instrumentation (Fig. 4 and Fig. 16).

    ``ctc_histogram`` maps a clean-trip count (CTC) to the number of
    block lifetimes that completed exactly that many consecutive clean
    trips between L2 and the LLC before becoming a non-loop-block.
    ``l2_evictions`` / ``loop_evictions`` feed the loop-block fraction;
    ``llc_loop_samples`` / ``llc_loop_hits`` estimate the fraction of
    LLC-resident blocks that are loop-blocks.
    """

    ctc_histogram: dict = field(default_factory=dict)
    l2_evictions: int = 0
    loop_evictions: int = 0
    loop_reinsertions: int = 0
    llc_loop_samples: int = 0
    llc_loop_blocks: int = 0

    def record_ctc(self, count: int) -> None:
        """Record a finished clean-trip streak of length ``count``."""
        if count > 0:
            self.ctc_histogram[count] = self.ctc_histogram.get(count, 0) + 1

    @property
    def loop_block_fraction(self) -> float:
        """Fraction of L2 evictions that were loop-blocks (Fig. 4)."""
        if not self.l2_evictions:
            return 0.0
        return self.loop_evictions / self.l2_evictions

    def ctc_buckets(self) -> dict:
        """Bucket the CTC histogram as the paper plots it (Fig. 4).

        Returns a dict with keys ``"ctc=1"``, ``"1<ctc<5"``, ``"ctc>=5"``
        mapping to lifetime counts.
        """
        buckets = {"ctc=1": 0, "1<ctc<5": 0, "ctc>=5": 0}
        for ctc, n in self.ctc_histogram.items():
            if ctc == 1:
                buckets["ctc=1"] += n
            elif ctc < 5:
                buckets["1<ctc<5"] += n
            else:
                buckets["ctc>=5"] += n
        return buckets
