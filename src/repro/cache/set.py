"""One set of a set-associative cache.

A :class:`CacheSet` owns its ways and a tag→block map for O(1)
lookups. The ways are block-protocol objects supplied by the cache's
:class:`~repro.kernel.base.TagStore` backend: pre-allocated
:class:`~repro.cache.block.CacheBlock` objects under the ``"object"``
backend, :class:`~repro.kernel.soa.SoABlockView` proxies over numpy
matrices under ``"soa"``. Everything in this class goes through the
shared protocol, so set semantics are backend-independent by
construction. Hybrid LLCs partition the ways of *every* set between an
SRAM region and an STT-RAM region (Table II: 4 SRAM ways + 12 STT-RAM
ways), so region filtering happens here.

Each set also maintains ``loop_count`` — the number of valid ways whose
loop-bit is set — incrementally: install/drop update it here, and every
other loop-bit write goes through :meth:`CacheBlock.set_loop_bit`. The
cache's Fig. 16 occupancy metric sums these counters in O(num_sets)
instead of scanning every way of every set.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .block import CacheBlock


class CacheSet:
    """A fixed-associativity set with an O(1) tag map."""

    __slots__ = ("index", "blocks", "tag_map", "loop_count")

    def __init__(
        self,
        index: int,
        ways: int,
        way_techs: List[str],
        blocks: Optional[List[CacheBlock]] = None,
    ) -> None:
        self.index = index
        if blocks is None:
            blocks = [CacheBlock(w, way_techs[w]) for w in range(ways)]
        self.blocks: List[CacheBlock] = blocks
        for block in self.blocks:
            block.cset = self
        self.tag_map: Dict[int, CacheBlock] = {}
        self.loop_count = 0

    def find(self, tag: int) -> Optional[CacheBlock]:
        """Return the valid block holding ``tag``, or None."""
        return self.tag_map.get(tag)

    def region_blocks(self, region: Optional[str]) -> List[CacheBlock]:
        """All ways, or only the ways of one technology region."""
        if region is None:
            return self.blocks
        return [b for b in self.blocks if b.tech == region]

    def valid_blocks(self) -> List[CacheBlock]:
        """All currently valid blocks (used by occupancy sampling)."""
        return [b for b in self.blocks if b.valid]

    def install(self, block: CacheBlock, tag: int, dirty: bool, loop_bit: bool, now: int) -> None:
        """Fill ``block`` (a way of this set) with a new line."""
        if block.valid:
            self.tag_map.pop(block.tag, None)
            if block.loop_bit:
                self.loop_count -= 1
        block.fill(tag, dirty, loop_bit, now)
        if loop_bit:
            self.loop_count += 1
        self.tag_map[tag] = block

    def drop(self, block: CacheBlock) -> None:
        """Invalidate ``block`` and remove it from the tag map."""
        if block.valid:
            self.tag_map.pop(block.tag, None)
            if block.loop_bit:
                self.loop_count -= 1
        block.reset()

    def occupancy(self) -> int:
        """Number of valid ways in this set."""
        return len(self.tag_map)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CacheSet(index={self.index}, valid={self.occupancy()}/{len(self.blocks)})"
