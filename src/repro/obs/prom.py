"""Prometheus text-exposition encoding of the metrics registry.

:func:`render_prometheus` turns a registry snapshot (the JSON shape
``MetricsRegistry.snapshot`` produces) into the Prometheus text format
(version 0.0.4): counters become ``<name>_total``, gauges stay plain,
and the fixed 1-2-5 log-ladder histograms become cumulative
``_bucket{le="..."}`` series with ``_sum`` and ``_count`` — the shape
every Prometheus scraper, including promtool, parses. ``repro serve``
exposes it at ``/metrics?format=prom`` (JSON stays the default).

Only stdlib; no client library. The format is small enough to emit by
hand and doing so keeps the dependency budget at zero:

- metric names are sanitised to ``[a-zA-Z_:][a-zA-Z0-9_:]*`` (dots
  become underscores) and prefixed (default ``repro_``) so they cannot
  collide with other exporters on a shared Prometheus;
- one ``# HELP`` and one ``# TYPE`` line precede each metric family;
- histogram buckets are emitted cumulatively in ladder order with a
  terminal ``+Inf`` bucket equal to ``_count`` (the invariant scrapers
  check first).
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Mapping, Optional, Union

from ..errors import TelemetryError
from ..telemetry.metrics import (
    BUCKET_BOUNDS,
    BUCKET_LABELS,
    OVERFLOW_LABEL,
    MetricsRegistry,
)

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

DEFAULT_PREFIX = "repro_"

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_NAME_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")

#: label -> upper bound, for turning snapshot bucket labels back into
#: the numeric ``le`` values Prometheus expects.
_LABEL_TO_BOUND: Dict[str, float] = dict(zip(BUCKET_LABELS, BUCKET_BOUNDS))


def sanitize_name(name: str, prefix: str = DEFAULT_PREFIX) -> str:
    """A valid, prefixed Prometheus metric name for a registry name.

    ``serve.job_wall_s`` -> ``repro_serve_job_wall_s``. Raises when the
    input is empty or sanitises to nothing.
    """
    if not name or not isinstance(name, str):
        raise TelemetryError(f"metric names must be non-empty strings, got {name!r}")
    flat = _NAME_BAD_CHARS.sub("_", name)
    full = f"{prefix}{flat}"
    if not _NAME_OK.match(full):
        full = f"_{full}"
    return full


def _format_value(value: Union[int, float]) -> str:
    """Prometheus sample values: integers bare, floats via repr-ish %g."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    return format(value, ".10g")


def _bound_label(label: str) -> str:
    """The ``le`` value for one snapshot bucket label (``"2e-03"`` -> ``2e-05``-style floats)."""
    if label == OVERFLOW_LABEL:
        return "+Inf"
    bound = _LABEL_TO_BOUND.get(label)
    if bound is None:
        raise TelemetryError(f"unknown histogram bucket label {label!r}")
    return format(bound, "g")


def _histogram_lines(
    name: str, data: Mapping[str, object]
) -> Iterable[str]:
    count = int(data.get("count", 0))
    total = float(data.get("sum", 0.0))
    buckets = data.get("buckets", {})
    if not isinstance(buckets, Mapping):
        raise TelemetryError(f"histogram {name!r} snapshot has no bucket mapping")
    cumulative = 0
    # Ladder order is authoritative; a snapshot only stores non-empty
    # buckets, so walk the full ladder and emit the ones present.
    for label in BUCKET_LABELS:
        if label in buckets:
            cumulative += int(buckets[label])
            yield f'{name}_bucket{{le="{_bound_label(label)}"}} {cumulative}'
    if OVERFLOW_LABEL in buckets:
        cumulative += int(buckets[OVERFLOW_LABEL])
    yield f'{name}_bucket{{le="+Inf"}} {cumulative}'
    yield f"{name}_sum {_format_value(total)}"
    yield f"{name}_count {count}"


def render_prometheus(
    source: Union[MetricsRegistry, Mapping[str, Mapping]],
    prefix: str = DEFAULT_PREFIX,
    extra_gauges: Optional[Mapping[str, Union[int, float]]] = None,
) -> str:
    """The full exposition document for a registry (or its snapshot).

    ``extra_gauges`` lets a caller append point-in-time values that are
    not registry instruments (server uptime, job-state counts) without
    mutating the registry; keys are sanitised like registry names.
    """
    if isinstance(source, MetricsRegistry):
        snapshot = source.snapshot()
    elif isinstance(source, Mapping):
        snapshot = source
    else:
        raise TelemetryError(
            "render_prometheus needs a MetricsRegistry or a snapshot dict, "
            f"got {type(source).__name__}"
        )
    lines: List[str] = []

    def emit(name: str, kind: str, help_text: str, samples: Iterable[str]) -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        lines.extend(samples)

    for raw, value in sorted(dict(snapshot.get("counters", {})).items()):
        name = sanitize_name(raw, prefix) + "_total"
        emit(name, "counter", f"repro counter {raw}",
             [f"{name} {_format_value(value)}"])
    gauges = dict(snapshot.get("gauges", {}))
    for raw, value in sorted(gauges.items()):
        name = sanitize_name(raw, prefix)
        emit(name, "gauge", f"repro gauge {raw}",
             [f"{name} {_format_value(value)}"])
    for raw, value in sorted(dict(extra_gauges or {}).items()):
        name = sanitize_name(raw, prefix)
        emit(name, "gauge", f"repro gauge {raw}",
             [f"{name} {_format_value(float(value))}"])
    for raw, data in sorted(dict(snapshot.get("histograms", {})).items()):
        name = sanitize_name(raw, prefix)
        emit(name, "histogram", f"repro histogram {raw}",
             _histogram_lines(name, data))
    return "\n".join(lines) + "\n" if lines else ""


# ----------------------------------------------------------------------
# line-format checking (tests, and a cheap self-check for callers)
# ----------------------------------------------------------------------
_COMMENT_RE = re.compile(r"# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* \S.*\Z")
_SAMPLE_RE = re.compile(
    r"[a-zA-Z_:][a-zA-Z0-9_:]*"            # metric name
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"'  # first label
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*")*\})?'  # more labels
    r" (NaN|[+-]?Inf|[+-]?[0-9]*\.?[0-9]+([eE][+-]?[0-9]+)?)"  # value
    r"( [0-9]+)?\Z"                         # optional timestamp
)


def check_exposition(text: str) -> List[str]:
    """Line-format problems in a rendered document (empty = clean).

    Not a full Prometheus parser — a line grammar check that catches
    the realistic failure modes (bad names, unquoted labels, malformed
    values) so the test suite can hold :func:`render_prometheus` to
    the format without a scraper in the loop.
    """
    problems: List[str] = []
    for n, line in enumerate(text.splitlines(), 1):
        if not line:
            problems.append(f"line {n}: blank line inside exposition")
            continue
        if line.startswith("#"):
            if not _COMMENT_RE.match(line):
                problems.append(f"line {n}: malformed comment: {line!r}")
            continue
        if not _SAMPLE_RE.match(line):
            problems.append(f"line {n}: malformed sample: {line!r}")
    return problems
