"""Per-PR perf trajectory analysis over ``BENCH_hotpath.json``.

The bench file is append-only history (one timestamped entry per
``repro bench`` run); this module turns it into trends: for every
(policy, backend) cell, the series of accesses/sec across entries, the
latest value, the best *prior* value, and the percentage delta between
them. ``repro bench trend`` renders that as a table (or JSON) and, with
``--fail-on-regression PCT``, exits non-zero when any cell's latest
measurement sits more than PCT percent below its prior best — the
guard CI uses to keep the hot path from quietly decaying.

Comparing latest-vs-prior-best (not latest-vs-previous) is deliberate:
throughput measurements are best-of-N but still noisy, and a slow CI
host should not *reset* the baseline — a regression is only real when
the newest number cannot reach what the same cell has provably done
before, within the tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..errors import TelemetryError


@dataclass
class TrendCell:
    """One (policy, backend) series across bench entries."""

    policy: str
    backend: str
    #: (timestamp, accesses/sec) in file (= chronological append) order.
    series: List[tuple] = field(default_factory=list)

    @property
    def latest(self) -> Optional[float]:
        return self.series[-1][1] if self.series else None

    @property
    def best_prior(self) -> Optional[float]:
        if len(self.series) < 2:
            return None
        return max(v for _, v in self.series[:-1])

    @property
    def delta_pct(self) -> Optional[float]:
        """Latest vs best prior, in percent (negative = slower)."""
        best = self.best_prior
        if best is None or not best:
            return None
        return (self.latest - best) / best * 100.0

    def regressed(self, threshold_pct: float) -> bool:
        delta = self.delta_pct
        return delta is not None and delta < -abs(threshold_pct)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "policy": self.policy,
            "backend": self.backend,
            "entries": len(self.series),
            "series": [{"timestamp": t, "accesses_per_sec": v}
                       for t, v in self.series],
            "latest": self.latest,
            "best_prior": self.best_prior,
            "delta_pct": self.delta_pct,
        }


def bench_trend(doc: Dict[str, Any]) -> List[TrendCell]:
    """Extract every (policy, backend) trend cell from a bench document.

    ``doc`` is the schema-2 shape :func:`repro.bench.load_bench_file`
    returns; a v1 ``legacy`` record (flat, backend-less) contributes a
    leading ``object``-backend point when its rates are recoverable, so
    the trajectory reaches back past the schema migration.
    """
    if not isinstance(doc, dict):
        raise TelemetryError("bench trend needs the parsed BENCH_hotpath.json dict")
    cells: Dict[tuple, TrendCell] = {}

    def cell(policy: str, backend: str) -> TrendCell:
        key = (policy, backend)
        found = cells.get(key)
        if found is None:
            found = cells[key] = TrendCell(policy=policy, backend=backend)
        return found

    legacy = doc.get("legacy")
    if isinstance(legacy, dict):
        rates = legacy.get("accesses_per_sec")
        if isinstance(rates, dict):
            stamp = legacy.get("timestamp", "legacy")
            for policy, value in sorted(rates.items()):
                if isinstance(value, (int, float)):
                    cell(policy, "object").series.append((stamp, float(value)))

    for entry in doc.get("entries", []):
        if not isinstance(entry, dict):
            continue
        stamp = entry.get("timestamp", "?")
        rates = entry.get("accesses_per_sec", {})
        if not isinstance(rates, dict):
            continue
        for policy in sorted(rates):
            per_backend = rates[policy]
            if not isinstance(per_backend, dict):
                continue
            for backend in sorted(per_backend):
                value = per_backend[backend]
                if isinstance(value, (int, float)):
                    cell(policy, backend).series.append((stamp, float(value)))

    return sorted(cells.values(), key=lambda c: (c.policy, c.backend))


def regressions(
    cells: List[TrendCell], threshold_pct: float
) -> List[TrendCell]:
    """The cells whose latest point regressed beyond the tolerance."""
    return [c for c in cells if c.regressed(threshold_pct)]


def trend_rows(cells: List[TrendCell], threshold_pct: Optional[float] = None) -> List[list]:
    """CLI table rows: policy, backend, n, latest, best prior, delta."""
    rows: List[list] = []
    for c in cells:
        delta = c.delta_pct
        verdict = "-"
        if delta is not None:
            verdict = f"{delta:+.1f}%"
            if threshold_pct is not None and c.regressed(threshold_pct):
                verdict += " REGRESSION"
        rows.append([
            c.policy,
            c.backend,
            len(c.series),
            round(c.latest) if c.latest is not None else "-",
            round(c.best_prior) if c.best_prior is not None else "-",
            verdict,
        ])
    return rows
