"""The run ledger: one normalized view over result-cache directories.

A sweep leaves its telemetry scattered: ``manifest.json`` (per-job
profiles), content-addressed ``<sha256>.json`` result entries (the job
spec *and* its full metrics), ``spans.jsonl`` (the span trace), and any
``*.metrics.json`` / ``metrics.json`` registry snapshots written by
``--metrics``. :func:`scan_dirs` walks one or more such directories and
merges everything into a :class:`RunLedger`: one :class:`LedgerRow` per
job with provenance (tag-store backend, policy, cache-hit source,
retries) and headline result metrics, plus the merged span and metrics
material. The ledger is what ``repro report`` renders and what any
future fleet aggregation ships between hosts — plain JSON-safe data,
no simulator objects.

Scanning is forgiving by design: a corrupt entry, a missing manifest,
or a half-written span dump downgrades to a partial row (and a note in
``ledger.problems``) rather than an exception — the dashboard must
render *something* for a fleet where one worker died mid-write.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

from ..errors import TelemetryError
from ..telemetry.profiling import MANIFEST_NAME
from .spans import SPANS_NAME, read_spans

LEDGER_SCHEMA = 1
LEDGER_KIND = "repro-ledger"


def _is_entry_name(stem: str) -> bool:
    return len(stem) == 64 and all(c in "0123456789abcdef" for c in stem)


@dataclass
class LedgerRow:
    """One job's normalized record across manifest + cache entry."""

    key: str
    workload: str = "?"
    policy: str = "?"
    system: str = "?"
    refs_per_core: int = 0
    #: Result provenance: "cache", "pool", "serial", or "disk" for an
    #: entry found on disk with no manifest row claiming it.
    source: str = "disk"
    wall_s: float = 0.0
    accesses: int = 0
    accesses_per_s: float = 0.0
    retries: int = 0
    #: Tag-store backend the job was *specified* with ("auto"/"object"/"soa").
    backend: str = "?"
    cache_dir: str = ""
    #: Headline result metrics (RunResult.summary) when the cache entry
    #: was readable; empty for manifest-only rows.
    metrics: Dict[str, float] = field(default_factory=dict)

    @property
    def has_result(self) -> bool:
        return bool(self.metrics)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "workload": self.workload,
            "policy": self.policy,
            "system": self.system,
            "refs_per_core": self.refs_per_core,
            "source": self.source,
            "wall_s": self.wall_s,
            "accesses": self.accesses,
            "accesses_per_s": self.accesses_per_s,
            "retries": self.retries,
            "backend": self.backend,
            "cache_dir": self.cache_dir,
            "metrics": dict(self.metrics),
        }


@dataclass
class RunLedger:
    """Everything :func:`scan_dirs` learned, normalized and roll-up-able."""

    rows: List[LedgerRow] = field(default_factory=list)
    spans: List[Dict[str, Any]] = field(default_factory=list)
    metrics_snapshots: List[Dict[str, Any]] = field(default_factory=list)
    dirs: List[str] = field(default_factory=list)
    manifests: int = 0
    problems: List[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    # roll-ups the dashboard leans on
    # ------------------------------------------------------------------
    def workloads(self) -> List[str]:
        return sorted({r.workload for r in self.rows})

    def policies(self) -> List[str]:
        return sorted({r.policy for r in self.rows})

    def by_source(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for r in self.rows:
            counts[r.source] = counts.get(r.source, 0) + 1
        return counts

    def by_backend(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for r in self.rows:
            counts[r.backend] = counts.get(r.backend, 0) + 1
        return counts

    def total_retries(self) -> int:
        return sum(r.retries for r in self.rows)

    def simulated_accesses(self) -> int:
        return sum(r.accesses for r in self.rows if r.source not in ("cache", "disk"))

    def total_wall_s(self) -> float:
        return sum(r.wall_s for r in self.rows)

    def cache_hit_share(self) -> Optional[float]:
        if not self.rows:
            return None
        hits = sum(1 for r in self.rows if r.source == "cache")
        return hits / len(self.rows)

    def grid(self, metric: str) -> Dict[str, Dict[str, float]]:
        """``{workload: {policy: value}}`` for one summary metric.

        When several rows share a (workload, policy) cell — reruns, or
        the same job under several systems — the last scanned wins;
        the dashboard notes multiplicity separately.
        """
        table: Dict[str, Dict[str, float]] = {}
        for r in self.rows:
            if metric in r.metrics:
                table.setdefault(r.workload, {})[r.policy] = r.metrics[metric]
        return table

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": LEDGER_KIND,
            "schema": LEDGER_SCHEMA,
            "dirs": list(self.dirs),
            "manifests": self.manifests,
            "totals": {
                "rows": len(self.rows),
                "workloads": len(self.workloads()),
                "policies": len(self.policies()),
                "by_source": self.by_source(),
                "by_backend": self.by_backend(),
                "retries": self.total_retries(),
                "simulated_accesses": self.simulated_accesses(),
                "wall_s": self.total_wall_s(),
                "spans": len(self.spans),
                "metrics_snapshots": len(self.metrics_snapshots),
            },
            "rows": [r.as_dict() for r in self.rows],
            "spans": list(self.spans),
            "metrics_snapshots": list(self.metrics_snapshots),
            "problems": list(self.problems),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)


# ----------------------------------------------------------------------
# scanning
# ----------------------------------------------------------------------
def _scan_manifest(root: pathlib.Path, ledger: RunLedger,
                   rows: Dict[str, LedgerRow]) -> None:
    path = root / MANIFEST_NAME
    if not path.exists():
        return
    try:
        data = json.loads(path.read_text())
        jobs = data.get("jobs", [])
        if not isinstance(jobs, list):
            raise ValueError("manifest jobs is not a list")
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        ledger.problems.append(f"{path}: unreadable manifest ({exc})")
        return
    ledger.manifests += 1
    for job in jobs:
        if not isinstance(job, dict) or "key" not in job:
            ledger.problems.append(f"{path}: malformed job profile entry")
            continue
        key = str(job["key"])
        row = rows.get(key)
        if row is None:
            row = rows[key] = LedgerRow(key=key, cache_dir=str(root))
        row.workload = job.get("workload", row.workload)
        row.policy = job.get("policy", row.policy)
        row.system = job.get("system", row.system)
        row.source = job.get("source", row.source)
        row.wall_s = float(job.get("wall_s", row.wall_s))
        row.accesses = int(job.get("accesses", row.accesses))
        row.accesses_per_s = float(job.get("accesses_per_s", row.accesses_per_s))
        row.retries = int(job.get("retries", row.retries))


def _scan_entries(root: pathlib.Path, ledger: RunLedger,
                  rows: Dict[str, LedgerRow]) -> None:
    from ..exec.serialize import result_from_dict

    for path in sorted(root.glob("*.json")):
        if not _is_entry_name(path.stem):
            continue
        try:
            payload = json.loads(path.read_text())
            job = payload["job"]
            result = result_from_dict(payload["result"])
        except Exception as exc:  # any malformed entry: note and move on
            ledger.problems.append(f"{path.name}: unreadable cache entry ({exc})")
            continue
        key = path.stem
        row = rows.get(key)
        if row is None:
            row = rows[key] = LedgerRow(key=key, cache_dir=str(root))
        workload = job.get("workload", {})
        system = job.get("system", {})
        row.policy = job.get("policy", row.policy)
        row.refs_per_core = int(job.get("refs_per_core", row.refs_per_core))
        if row.workload == "?":
            row.workload = result.workload
        if row.system == "?":
            row.system = result.system
        row.backend = system.get("tag_backend", row.backend)
        summary = result.summary()
        row.metrics = {k: float(v) for k, v in summary.items()}
        row.metrics["llc_hit_rate"] = (
            result.llc.hits / result.llc.lookups if result.llc.lookups else 0.0
        )
        # keep a couple of workload-provenance facts handy for tooltips
        if isinstance(workload, dict) and workload.get("benchmarks"):
            row.metrics.setdefault("ncores", float(workload.get("ncores", 0)))


def _scan_spans(root: pathlib.Path, ledger: RunLedger) -> None:
    path = root / SPANS_NAME
    if not path.exists():
        return
    try:
        ledger.spans.extend(read_spans(path))
    except TelemetryError as exc:
        ledger.problems.append(str(exc))


def _scan_metrics(root: pathlib.Path, ledger: RunLedger) -> None:
    candidates = sorted(
        p for p in root.glob("*.json")
        if p.name == "metrics.json" or p.name.endswith(".metrics.json")
    )
    for path in candidates:
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            ledger.problems.append(f"{path.name}: unreadable metrics snapshot ({exc})")
            continue
        if isinstance(data, dict) and {"counters", "gauges", "histograms"} & set(data):
            ledger.metrics_snapshots.append({"file": str(path), "snapshot": data})
        else:
            ledger.problems.append(f"{path.name}: not a metrics-registry snapshot")


def scan_dirs(dirs: Sequence[Union[str, pathlib.Path]]) -> RunLedger:
    """Build the merged ledger for one or more result-cache directories."""
    ledger = RunLedger()
    rows: Dict[str, LedgerRow] = {}
    for d in dirs:
        root = pathlib.Path(d)
        if not root.is_dir():
            raise TelemetryError(f"no such result-cache directory: {root}")
        ledger.dirs.append(str(root))
        _scan_manifest(root, ledger, rows)
        _scan_entries(root, ledger, rows)
        _scan_spans(root, ledger)
        _scan_metrics(root, ledger)
    # Deterministic order: workload, then policy, then key.
    ledger.rows = sorted(
        rows.values(), key=lambda r: (r.workload, r.policy, r.key)
    )
    return ledger
