"""Observability: span tracing, Prometheus exposition, ledger, dashboard.

Import discipline: this package ``__init__`` pulls in only the two
dependency-light leaves (``spans``, ``prom``) because the exec pool,
the simulator, and the serve layer import them at module load —
``ledger``/``dashboard``/``trend`` reach back into ``repro.exec`` and
must be imported explicitly (``from repro.obs import ledger``) to keep
the import graph acyclic.
"""

from .prom import CONTENT_TYPE as PROM_CONTENT_TYPE
from .prom import check_exposition, render_prometheus, sanitize_name
from .spans import (
    SPANS_ENV,
    SPANS_NAME,
    SpanRecorder,
    current_recorder,
    install_recorder,
    read_spans,
    recorder_from_env,
    span,
    start_span,
    summarize_spans,
    tracing_enabled,
    uninstall_recorder,
)

__all__ = [
    "PROM_CONTENT_TYPE",
    "SPANS_ENV",
    "SPANS_NAME",
    "SpanRecorder",
    "check_exposition",
    "current_recorder",
    "install_recorder",
    "read_spans",
    "recorder_from_env",
    "render_prometheus",
    "sanitize_name",
    "span",
    "start_span",
    "summarize_spans",
    "tracing_enabled",
    "uninstall_recorder",
]
