"""Static HTML fleet dashboard rendered from the run ledger.

:func:`render_dashboard` produces one **self-contained** HTML file —
inline CSS, no scripts, no external fetches — from a
:class:`~repro.obs.ledger.RunLedger` plus (optionally) the
``BENCH_hotpath.json`` document and an invariant-check report. It is
the paper's own evaluation shape turned into an operational view:
policy-grid summary tables (the Fig. 14/15 axes), job throughput and
latency histograms, invariant status, span hot spots, and the per-PR
bench trend with regression highlighting.

Chart conventions (kept deliberately boring so the data is the loud
part): single-series charts use one accent hue with no legend; the
bench trend's two backends use the first two categorical slots (blue =
object, orange = soa) with a legend; pass/fail status uses the
reserved status palette *with* a textual badge so color never carries
meaning alone; all text wears text tokens, never a series color; dark
mode is its own selected steps behind ``prefers-color-scheme``, not an
automatic inversion. Bars are thin with a rounded data-end and grow
from a hairline baseline; values are labeled selectively (extremes)
with the rest on native ``title`` tooltips and in the adjacent tables.
"""

from __future__ import annotations

import html
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .ledger import RunLedger
from .spans import summarize_spans
from .trend import TrendCell, bench_trend

#: Metrics the policy grid renders, with direction (is lower better?).
GRID_METRICS: Tuple[Tuple[str, str, bool], ...] = (
    ("epi", "Energy per instruction (nJ)", True),
    ("mpki", "LLC misses per kilo-instruction", True),
    ("llc_writes", "LLC writes", True),
    ("llc_hit_rate", "LLC hit rate", False),
)

_CSS = """
:root { color-scheme: light dark; }
body {
  margin: 0; padding: 24px 28px 48px;
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  background: var(--page); color: var(--ink);
  font-size: 14px; line-height: 1.45;
}
.viz-root {
  --page: #f9f9f7; --surface: #fcfcfb;
  --ink: #0b0b0b; --ink-2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --baseline: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6; --series-2: #eb6834;
  --seq-150: #b7d3f6; --seq-300: #6da7ec;
  --good: #0ca30c; --warning: #fab219; --critical: #d03b3b;
  --good-text: #006300;
}
@media (prefers-color-scheme: dark) {
  .viz-root {
    --page: #0d0d0d; --surface: #1a1a19;
    --ink: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --baseline: #383835;
    --border: rgba(255,255,255,0.10);
    --series-1: #3987e5; --series-2: #d95926;
    --seq-150: #184f95; --seq-300: #1c5cab;
    --good-text: #0ca30c;
  }
}
h1 { font-size: 22px; font-weight: 650; margin: 0 0 2px; }
h2 { font-size: 15px; font-weight: 650; margin: 34px 0 10px; }
.sub { color: var(--ink-2); margin: 0 0 20px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 18px 0 6px; }
.tile {
  background: var(--surface); border: 1px solid var(--border);
  border-radius: 10px; padding: 12px 16px; min-width: 128px;
}
.tile .label { color: var(--ink-2); font-size: 12px; }
.tile .value { font-size: 24px; font-weight: 600; margin-top: 2px; }
.tile .delta { font-size: 12px; color: var(--ink-2); margin-top: 2px; }
.card {
  background: var(--surface); border: 1px solid var(--border);
  border-radius: 10px; padding: 14px 16px; margin: 10px 0;
}
table { border-collapse: collapse; width: 100%; }
th, td { text-align: right; padding: 5px 10px; font-variant-numeric: tabular-nums; }
th { color: var(--ink-2); font-weight: 600; border-bottom: 1px solid var(--grid); }
th:first-child, td:first-child { text-align: left; }
tr + tr td { border-top: 1px solid var(--grid); }
td.best { font-weight: 650; }
td.best::after { content: " \\25C2"; color: var(--series-1); }
.note { color: var(--muted); font-size: 12px; margin-top: 8px; }
.badge {
  display: inline-block; padding: 1px 8px; border-radius: 999px;
  font-size: 12px; font-weight: 600; border: 1px solid var(--border);
}
.badge.ok   { color: var(--good-text); }
.badge.fail { color: var(--critical); }
.badge.warn { color: var(--ink-2); }
.chart { display: flex; align-items: flex-end; gap: 6px; height: 120px;
         padding: 6px 2px 0; border-bottom: 1px solid var(--baseline); }
.chart .col { display: flex; flex-direction: column; justify-content: flex-end;
              align-items: center; flex: 0 1 28px; height: 100%; }
.chart .bar { width: 100%; max-width: 24px;
              border-radius: 4px 4px 0 0; background: var(--series-1); }
.chart .bar.alt { background: var(--series-2); }
.chart .bar.down { background: var(--critical); }
.chart .cap { font-size: 11px; color: var(--ink-2); margin-bottom: 3px;
              white-space: nowrap; }
.xlabels { display: flex; gap: 6px; padding: 4px 2px 0; }
.xlabels span { flex: 0 1 28px; max-width: 28px; text-align: center;
                font-size: 10px; color: var(--muted); overflow: hidden; }
.legend { display: flex; gap: 16px; margin: 6px 0 2px; font-size: 12px;
          color: var(--ink-2); }
.key { display: inline-block; width: 10px; height: 10px; border-radius: 3px;
       margin-right: 5px; vertical-align: -1px; background: var(--series-1); }
.key.alt { background: var(--series-2); }
.grid-wrap { display: grid; grid-template-columns: repeat(auto-fit, minmax(300px, 1fr));
             gap: 12px; }
.multiples { display: grid; grid-template-columns: repeat(auto-fit, minmax(240px, 1fr));
             gap: 12px; }
.mono { font-family: ui-monospace, SFMono-Regular, Menlo, monospace; font-size: 12px; }
"""


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _fmt(value: float) -> str:
    """Compact numeric formatting for cells and labels."""
    if value != value:
        return "nan"
    a = abs(value)
    if a >= 1e9:
        return f"{value / 1e9:.2f}B"
    if a >= 1e6:
        return f"{value / 1e6:.2f}M"
    if a >= 1e4:
        return f"{value / 1e3:.1f}K"
    if a >= 100 or value == int(value):
        return f"{value:,.0f}"
    if a >= 1:
        return f"{value:.3g}"
    return f"{value:.3g}"


def _tile(label: str, value: str, delta: Optional[str] = None) -> str:
    delta_html = f'<div class="delta">{_esc(delta)}</div>' if delta else ""
    return (
        f'<div class="tile"><div class="label">{_esc(label)}</div>'
        f'<div class="value">{_esc(value)}</div>{delta_html}</div>'
    )


def _table(headers: Sequence[str], rows: Sequence[Sequence[str]],
           raw: bool = False) -> str:
    """Plain table; ``raw=True`` trusts cell strings as HTML."""
    head = "".join(f"<th>{_esc(h)}</th>" for h in headers)
    body = []
    for row in rows:
        cells = "".join(
            (cell if raw else f"<td>{_esc(cell)}</td>") for cell in row
        )
        body.append(f"<tr>{cells}</tr>")
    return f"<table><thead><tr>{head}</tr></thead><tbody>{''.join(body)}</tbody></table>"


# ----------------------------------------------------------------------
# chart pieces (pure HTML/CSS)
# ----------------------------------------------------------------------
def _columns(
    values: Sequence[float],
    labels: Sequence[str],
    titles: Sequence[str],
    classes: Optional[Sequence[str]] = None,
    label_max_only: bool = True,
) -> str:
    """A column chart: thin bars, rounded data-end, hairline baseline.

    Values are labeled selectively — the extreme only — with every
    column carrying a native tooltip (``title``) for the rest.
    """
    if not values:
        return '<p class="note">no data</p>'
    peak = max(values) or 1.0
    vmax = max(values)
    cols = []
    for i, v in enumerate(values):
        height = max(2, round(v / peak * 100))
        cap = ""
        if not label_max_only or (v == vmax and v > 0):
            cap = f'<div class="cap">{_esc(_fmt(v))}</div>'
        cls = "bar" if classes is None else f"bar {classes[i]}".strip()
        cols.append(
            f'<div class="col" title="{_esc(titles[i])}">{cap}'
            f'<div class="{cls}" style="height:{height}%"></div></div>'
        )
    xlabels = "".join(f"<span>{_esc(lbl)}</span>" for lbl in labels)
    return (
        f'<div class="chart">{"".join(cols)}</div>'
        f'<div class="xlabels">{xlabels}</div>'
    )


def _histogram(values: Sequence[float], unit: str, bins: int = 12) -> str:
    """Bucket ``values`` into ``bins`` equal-width bins and chart them."""
    finite = [v for v in values if v == v and v >= 0]
    if not finite:
        return '<p class="note">no data</p>'
    lo, hi = min(finite), max(finite)
    if hi <= lo:
        hi = lo + (abs(lo) or 1.0)
    width = (hi - lo) / bins
    counts = [0] * bins
    for v in finite:
        idx = min(bins - 1, int((v - lo) / width))
        counts[idx] += 1
    labels = []
    titles = []
    for i in range(bins):
        left, right = lo + i * width, lo + (i + 1) * width
        labels.append(_fmt(left))
        titles.append(
            f"{counts[i]} job(s) in [{_fmt(left)}, {_fmt(right)}) {unit}"
        )
    return _columns([float(c) for c in counts], labels, titles)


# ----------------------------------------------------------------------
# sections
# ----------------------------------------------------------------------
def _section_tiles(ledger: RunLedger) -> str:
    hit_share = ledger.cache_hit_share()
    tiles = [
        _tile("Jobs in ledger", _fmt(len(ledger.rows))),
        _tile("Workloads", _fmt(len(ledger.workloads()))),
        _tile("Policies", _fmt(len(ledger.policies()))),
        _tile(
            "Cache-hit share",
            "-" if hit_share is None else f"{hit_share * 100:.0f}%",
            "jobs answered without simulating",
        ),
        _tile("Simulated accesses", _fmt(ledger.simulated_accesses())),
        _tile("Job wall time", f"{ledger.total_wall_s():.2f}s",
              f"{ledger.total_retries()} retr{'y' if ledger.total_retries() == 1 else 'ies'}"),
    ]
    return f'<div class="tiles">{"".join(tiles)}</div>'


def _section_policy_grids(ledger: RunLedger) -> str:
    cards = []
    policies = ledger.policies()
    for metric, caption, lower_better in GRID_METRICS:
        grid = ledger.grid(metric)
        if not grid:
            continue
        rows = []
        for workload in sorted(grid):
            cells = [f"<td>{_esc(workload)}</td>"]
            values = grid[workload]
            present = [v for v in values.values() if v == v]
            best = (min(present) if lower_better else max(present)) if present else None
            for policy in policies:
                v = values.get(policy)
                if v is None:
                    cells.append("<td>-</td>")
                    continue
                cls = ' class="best"' if best is not None and v == best else ""
                cells.append(f"<td{cls}>{_esc(_fmt(v))}</td>")
            rows.append(cells)
        cards.append(
            f'<div class="card"><h2 style="margin-top:0">{_esc(caption)}</h2>'
            + _table(["workload", *policies], rows, raw=True)
            + '<p class="note">◂ marks the best policy per row '
            + f"({'lower' if lower_better else 'higher'} is better)</p></div>"
        )
    if not cards:
        return (
            '<div class="card"><p class="note">no result metrics in the '
            "scanned directories (manifest-only rows)</p></div>"
        )
    return f'<div class="grid-wrap">{"".join(cards)}</div>'


def _section_perf(ledger: RunLedger) -> str:
    sim_rows = [r for r in ledger.rows if r.source not in ("cache", "disk")]
    walls = [r.wall_s for r in sim_rows if r.wall_s > 0]
    rates = [r.accesses_per_s for r in sim_rows if r.accesses_per_s > 0]
    return (
        '<div class="grid-wrap">'
        '<div class="card"><h2 style="margin-top:0">Job latency</h2>'
        + _histogram(walls, "s")
        + '<p class="note">wall seconds per simulated job (cache hits excluded)</p></div>'
        '<div class="card"><h2 style="margin-top:0">Job throughput</h2>'
        + _histogram(rates, "accesses/s")
        + '<p class="note">simulated accesses per second per job</p></div>'
        "</div>"
    )


def _badge(ok: Optional[bool], text: str) -> str:
    if ok is None:
        return f'<span class="badge warn">○ {_esc(text)}</span>'
    cls = "ok" if ok else "fail"
    icon = "✓" if ok else "✗"
    return f'<span class="badge {cls}">{icon} {_esc(text)}</span>'


def _section_invariants(check_rows: Optional[Sequence[Tuple[str, Optional[bool], str]]]) -> str:
    if check_rows is None:
        return (
            '<div class="card">'
            + _badge(None, "not run")
            + ' <span class="note">invariant checks were skipped '
            "(re-run without --no-check)</span></div>"
        )
    rows = []
    for name, ok, detail in check_rows:
        rows.append([
            f"<td>{_esc(name)}</td>",
            f'<td style="text-align:left">{_badge(ok, "pass" if ok else "FAIL")}</td>',
            f'<td style="text-align:left">{_esc(detail)}</td>',
        ])
    failed = sum(1 for _, ok, _ in check_rows if not ok)
    verdict = _badge(failed == 0,
                     "all checks passed" if failed == 0 else f"{failed} check(s) failed")
    return (
        f'<div class="card">{verdict}'
        + _table(["check", "status", "detail"], rows, raw=True)
        + "</div>"
    )


def _section_provenance(ledger: RunLedger) -> str:
    source_rows = [[k, _fmt(v)] for k, v in sorted(ledger.by_source().items())]
    backend_rows = [[k, _fmt(v)] for k, v in sorted(ledger.by_backend().items())]
    dirs = "".join(f'<div class="mono">{_esc(d)}</div>' for d in ledger.dirs)
    problems = ""
    if ledger.problems:
        items = "".join(f"<li>{_esc(p)}</li>" for p in ledger.problems[:20])
        problems = (
            f'<p class="note">{len(ledger.problems)} scan problem(s):</p>'
            f'<ul class="note">{items}</ul>'
        )
    return (
        '<div class="grid-wrap">'
        '<div class="card"><h2 style="margin-top:0">Result provenance</h2>'
        + _table(["source", "jobs"], source_rows)
        + '<p class="note">cache = warm result-cache hit; pool/serial = freshly '
        "simulated; disk = cache entry with no manifest row</p></div>"
        '<div class="card"><h2 style="margin-top:0">Tag-store backends</h2>'
        + _table(["backend", "jobs"], backend_rows)
        + f'<p class="note">as specified on the job (auto resolves at run time)</p>'
        f"</div></div>"
        f'<div class="card"><h2 style="margin-top:0">Scanned directories</h2>{dirs}'
        f"{problems}</div>"
    )


def _section_spans(ledger: RunLedger) -> str:
    if not ledger.spans:
        return ""
    summary = summarize_spans(ledger.spans)
    ranked = sorted(summary.items(), key=lambda kv: -kv[1]["wall_s"])[:12]
    rows = [
        [name, _fmt(s["count"]), f"{s['wall_s']:.3f}",
         f"{s['mean_wall_s'] * 1e3:.1f}", f"{s['cpu_s']:.3f}"]
        for name, s in ranked
    ]
    return (
        '<h2>Span hot spots</h2><div class="card">'
        + _table(["span", "count", "total wall (s)", "mean (ms)", "cpu (s)"], rows)
        + f'<p class="note">{len(ledger.spans)} span(s) from spans.jsonl; '
        "top 12 by total wall time</p></div>"
    )


def _section_bench(bench_doc: Optional[Dict[str, Any]],
                   regression_pct: Optional[float]) -> str:
    if not bench_doc:
        return ""
    cells = bench_trend(bench_doc)
    cells = [c for c in cells if c.series]
    if not cells:
        return ""
    multiples = []
    any_regressed = False
    for cell in cells:
        values = [v for _, v in cell.series]
        stamps = [t for t, _ in cell.series]
        classes = []
        for i in range(len(values)):
            cls = "alt" if cell.backend == "soa" else ""
            if (
                i == len(values) - 1
                and regression_pct is not None
                and cell.regressed(regression_pct)
            ):
                cls = "down"
                any_regressed = True
            classes.append(cls)
        titles = [
            f"{cell.policy}/{cell.backend} @ {t}: {_fmt(v)} accesses/s"
            for t, v in cell.series
        ]
        labels = [t[5:10] if len(t) >= 10 else t for t in stamps]
        delta = cell.delta_pct
        delta_text = "" if delta is None else f" ({delta:+.1f}% vs best prior)"
        multiples.append(
            f'<div class="card"><h2 style="margin-top:0">{_esc(cell.policy)} '
            f"· {_esc(cell.backend)}{_esc(delta_text)}</h2>"
            + _columns(values, labels, titles, classes)
            + "</div>"
        )
    legend = (
        '<div class="legend">'
        '<span><span class="key"></span>object backend</span>'
        '<span><span class="key alt"></span>soa backend</span>'
        "</div>"
    )
    header = ""
    if regression_pct is not None:
        header = _badge(
            not any_regressed,
            "no bench regressions" if not any_regressed
            else f"regression beyond {regression_pct:g}% tolerance",
        )
    return (
        f"<h2>Hot-path bench trend</h2>{header}{legend}"
        f'<div class="multiples">{"".join(multiples)}</div>'
        '<p class="note">accesses/sec per BENCH_hotpath.json entry, '
        "chronological; the latest column turns red when it falls beyond "
        "the regression tolerance below the cell's best prior value</p>"
    )


# ----------------------------------------------------------------------
# the document
# ----------------------------------------------------------------------
def render_dashboard(
    ledger: RunLedger,
    bench_doc: Optional[Dict[str, Any]] = None,
    check_rows: Optional[Sequence[Tuple[str, Optional[bool], str]]] = None,
    title: str = "repro fleet report",
    regression_pct: Optional[float] = 10.0,
) -> str:
    """The complete self-contained dashboard document as a string."""
    generated = time.strftime("%Y-%m-%d %H:%M:%SZ", time.gmtime())
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{_esc(title)}</title>",
        '<meta name="viewport" content="width=device-width, initial-scale=1">',
        f"<style>{_CSS}</style></head>",
        '<body class="viz-root"><main>',
        f"<h1>{_esc(title)}</h1>",
        f'<p class="sub">generated {generated} · '
        f"{len(ledger.rows)} job(s) across {len(ledger.dirs)} "
        f"director{'y' if len(ledger.dirs) == 1 else 'ies'}</p>",
        _section_tiles(ledger),
        "<h2>Policy grids</h2>",
        _section_policy_grids(ledger),
        "<h2>Execution performance</h2>",
        _section_perf(ledger),
        "<h2>Invariant checks</h2>",
        _section_invariants(check_rows),
        _section_bench(bench_doc, regression_pct),
        _section_spans(ledger),
        "<h2>Provenance</h2>",
        _section_provenance(ledger),
        "</main></body></html>",
    ]
    return "\n".join(p for p in parts if p)
