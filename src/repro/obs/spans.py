"""Lightweight span tracing: where did the wall-clock go?

A *span* is one named region of execution — ``simulate``, ``exec.batch``,
``kernel.checkout`` — with a wall-clock duration, a CPU-time duration,
and a parent span id, so a dump reconstructs the call tree of a run the
way the flight recorder reconstructs its cache-event stream. Spans are
**coarse**: one per run, per batch, per request — never per access —
so an enabled recorder costs microseconds per simulation, and a
disabled one costs a single ``is None`` check (``span()`` returns a
shared no-op object; nothing is allocated).

Usage::

    from repro.obs.spans import SpanRecorder, install_recorder, span

    install_recorder(SpanRecorder())
    with span("simulate", policy="lap", workload="WL1"):
        ...
    current_recorder().dump("spans.jsonl")

The recorder is process-global and thread-safe; each thread keeps its
own parent stack, so spans opened on the serve event loop, a worker
thread, and the main thread never mis-parent each other. The execution
pool dumps the recorder next to ``manifest.json`` (as ``spans.jsonl``)
whenever tracing is on, and the CLI's global ``--spans PATH`` turns
tracing on for any command.

Dump format is one JSON object per line::

    {"id": 2, "parent": 1, "name": "exec.job", "start_s": 1754700000.1,
     "wall_s": 0.41, "cpu_s": 0.40, "status": "ok", "thread": "MainThread",
     "pid": 4242, "attrs": {"index": 0, "policy": "lap"}}
"""

from __future__ import annotations

import itertools
import json
import os
import pathlib
import threading
import time
from typing import Any, Dict, List, Optional, Union

from ..errors import TelemetryError

#: File name a span dump takes when written next to a run manifest.
SPANS_NAME = "spans.jsonl"

#: Environment variable that enables tracing process-wide (any
#: non-empty value); the CLI's ``--spans`` flag is the explicit form.
SPANS_ENV = "REPRO_SPANS"


class SpanRecorder:
    """Thread-safe collector of finished spans.

    Finished spans accumulate in memory (they are tiny: one dict each,
    and coarse-grained by design) until :meth:`dump` or :meth:`drain`.
    """

    def __init__(self) -> None:
        self._finished: List[Dict[str, Any]] = []
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._local = threading.local()

    # ------------------------------------------------------------------
    # the live-span protocol (used by _LiveSpan, not by user code)
    # ------------------------------------------------------------------
    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def begin(self, name: str) -> int:
        span_id = next(self._ids)
        self._stack().append(span_id)
        return span_id

    def finish(self, record: Dict[str, Any]) -> None:
        stack = self._stack()
        # Pop by identity, not position: an abandoned child (exception
        # that skipped its finish) must not mis-parent later spans.
        with _suppress_value_error():
            stack.remove(record["id"])
        with self._lock:
            self._finished.append(record)

    def current_parent(self) -> Optional[int]:
        stack = self._stack()
        return stack[-1] if stack else None

    # ------------------------------------------------------------------
    # reading the record
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._finished)

    def spans(self) -> List[Dict[str, Any]]:
        """A snapshot copy of every finished span, in finish order."""
        with self._lock:
            return list(self._finished)

    def drain(self) -> List[Dict[str, Any]]:
        """Return every finished span and forget them."""
        with self._lock:
            spans, self._finished = self._finished, []
            return spans

    def dump(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        """Write every finished span (so far) as JSONL to ``path``.

        A directory target gets ``spans.jsonl`` inside it. The write is
        whole-file (temp + ``os.replace``) so a reader never observes a
        half-written dump, and repeated dumps of a growing recorder
        supersede each other cleanly.
        """
        path = pathlib.Path(path)
        if path.is_dir():
            path = path / SPANS_NAME
        # default=str: a span attr that slipped in as a rich object
        # (a policy instance, a Path) degrades to its repr instead of
        # killing the whole dump at the end of a long run.
        lines = "".join(
            json.dumps(s, sort_keys=True, default=str) + "\n"
            for s in self.spans()
        )
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            tmp.write_text(lines)
            os.replace(tmp, path)
        except OSError as exc:
            tmp.unlink(missing_ok=True)
            raise TelemetryError(f"cannot write span dump {path}: {exc}") from None
        return path


class _suppress_value_error:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return exc_type is ValueError


# ----------------------------------------------------------------------
# the process-global recorder
# ----------------------------------------------------------------------
_recorder: Optional[SpanRecorder] = None


def install_recorder(recorder: SpanRecorder) -> Optional[SpanRecorder]:
    """Install ``recorder`` process-wide; returns the previous one."""
    global _recorder
    if not isinstance(recorder, SpanRecorder):
        raise TelemetryError(
            f"install_recorder needs a SpanRecorder, got {type(recorder).__name__}"
        )
    previous = _recorder
    _recorder = recorder
    return previous


def uninstall_recorder() -> Optional[SpanRecorder]:
    """Disable tracing; returns the recorder that was active, if any."""
    global _recorder
    previous = _recorder
    _recorder = None
    return previous


def current_recorder() -> Optional[SpanRecorder]:
    """The active recorder, or ``None`` when tracing is off."""
    return _recorder


def tracing_enabled() -> bool:
    return _recorder is not None


def recorder_from_env(env_var: str = SPANS_ENV) -> Optional[SpanRecorder]:
    """Install a fresh recorder when ``$REPRO_SPANS`` is set (non-empty)."""
    if not os.environ.get(env_var, "").strip():
        return None
    recorder = SpanRecorder()
    install_recorder(recorder)
    return recorder


# ----------------------------------------------------------------------
# spans
# ----------------------------------------------------------------------
class _NullSpan:
    """The shared do-nothing span handed out while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def finish(self, status: str = "ok") -> None:
        return None

    def set(self, **attrs: Any) -> None:
        return None


_NULL = _NullSpan()


class _LiveSpan:
    """One open span; context manager and explicit-finish handle."""

    __slots__ = (
        "_recorder", "name", "id", "parent", "attrs",
        "_epoch", "_wall0", "_cpu0", "_done",
    )

    def __init__(self, recorder: SpanRecorder, name: str, attrs: Dict[str, Any]) -> None:
        self._recorder = recorder
        self.name = name
        self.attrs = attrs
        self.parent = recorder.current_parent()
        self.id = recorder.begin(name)
        self._epoch = time.time()
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        self._done = False

    def set(self, **attrs: Any) -> None:
        """Attach attributes discovered mid-span (counts, outcomes)."""
        self.attrs.update(attrs)

    def finish(self, status: str = "ok") -> None:
        if self._done:
            return
        self._done = True
        self._recorder.finish({
            "id": self.id,
            "parent": self.parent,
            "name": self.name,
            "start_s": self._epoch,
            "wall_s": time.perf_counter() - self._wall0,
            "cpu_s": time.process_time() - self._cpu0,
            "status": status,
            "thread": threading.current_thread().name,
            "pid": os.getpid(),
            "attrs": self.attrs,
        })

    def __enter__(self) -> "_LiveSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.finish("ok" if exc_type is None else "error")
        return False


Span = Union[_NullSpan, _LiveSpan]


def span(name: str, **attrs: Any) -> Span:
    """Open a span named ``name``; use as a context manager.

    When tracing is off this returns a shared no-op object — the cost
    is one global read and one ``is None`` test, which is why spans are
    safe to leave compiled into the exec pool, the serve request path,
    and the kernel flow permanently.
    """
    recorder = _recorder
    if recorder is None:
        return _NULL
    return _LiveSpan(recorder, name, attrs)


def start_span(name: str, **attrs: Any) -> Span:
    """Explicit-handle twin of :func:`span` for regions where a ``with``
    block is impractical (the kernel's flat checkout→batch→checkin
    sections); call ``.finish()`` when the region ends."""
    return span(name, **attrs)


# ----------------------------------------------------------------------
# reading dumps back
# ----------------------------------------------------------------------
def read_spans(path: Union[str, pathlib.Path]) -> List[Dict[str, Any]]:
    """Parse a ``spans.jsonl`` dump; raises :class:`TelemetryError` on
    unreadable files, skips blank lines."""
    path = pathlib.Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise TelemetryError(f"cannot read span dump {path}: {exc}") from None
    spans: List[Dict[str, Any]] = []
    for n, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TelemetryError(f"{path}:{n}: malformed span line: {exc}") from None
        if not isinstance(record, dict) or "name" not in record:
            raise TelemetryError(f"{path}:{n}: span line is not a span object")
        spans.append(record)
    return spans


def summarize_spans(spans: List[Dict[str, Any]]) -> Dict[str, Dict[str, float]]:
    """Per-name roll-up: count, total/mean wall, total CPU."""
    summary: Dict[str, Dict[str, float]] = {}
    for s in spans:
        row = summary.setdefault(
            s["name"], {"count": 0, "wall_s": 0.0, "cpu_s": 0.0}
        )
        row["count"] += 1
        row["wall_s"] += float(s.get("wall_s", 0.0))
        row["cpu_s"] += float(s.get("cpu_s", 0.0))
    for row in summary.values():
        row["mean_wall_s"] = row["wall_s"] / row["count"] if row["count"] else 0.0
    return summary
